//! Offline stand-in for `serde_derive`: the derives expand to nothing.
//!
//! The companion `vendor/serde` stub gives `Serialize`/`Deserialize`
//! blanket impls, so an empty expansion leaves every `#[derive(...)]` site
//! and every `T: Serialize` bound compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
