//! Offline stand-in for `serde`.
//!
//! The build container has no network access and no crates.io mirror, so
//! the workspace vendors API-compatible stubs for its external
//! dependencies (see `vendor/README.md`). The workspace only *derives*
//! `Serialize`/`Deserialize` on config types for forward compatibility —
//! nothing serializes at runtime — so the stub provides the two trait
//! names (satisfied by blanket impls) and re-exports the no-op derive
//! macros under the `derive` feature, exactly like the real crate layout.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirror of `serde::de` far enough for `use serde::de::DeserializeOwned`.
pub mod de {
    pub use crate::DeserializeOwned;
    pub use crate::Deserialize;
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
