//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! A minimal wall-clock timing harness exposing the subset this
//! workspace's benches use: `Criterion` with `sample_size` /
//! `warm_up_time` / `measurement_time`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! No statistics, plots, or comparison against saved baselines — each
//! benchmark reports mean ns/iter on stdout. Passing `--test` (as
//! `cargo test` does for harness-less bench targets) runs every
//! benchmark for a single iteration as a smoke check.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { id: name.into() }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> Self {
        id.id
    }
}

/// Timing settings shared by `Criterion` and groups.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// `--test` mode: one iteration per benchmark, no timing loops.
    smoke: bool,
}

/// Top-level harness, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            settings: Settings {
                sample_size: 10,
                warm_up: Duration::from_millis(200),
                measurement: Duration::from_millis(500),
                smoke: std::env::args().any(|a| a == "--test"),
            },
        }
    }
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up = d;
        self
    }

    /// Target measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.settings, None, &id.into(), &mut f);
        self
    }
}

/// Group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Warm-up duration within this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up = d;
        self
    }

    /// Measurement window within this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.settings, Some(&self.name), &id.into(), &mut f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&self.settings, Some(&self.name), &id, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    settings: Settings,
    /// (total duration, total iterations) accumulated by `iter`.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.settings.smoke {
            black_box(routine());
            self.measured = Some((Duration::ZERO, 1));
            return;
        }
        let warm_end = Instant::now() + self.settings.warm_up;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        let per_sample = self.settings.measurement / self.settings.sample_size as u32;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.settings.sample_size {
            let sample_start = Instant::now();
            loop {
                let t0 = Instant::now();
                black_box(routine());
                total += t0.elapsed();
                iters += 1;
                if sample_start.elapsed() >= per_sample {
                    break;
                }
            }
        }
        self.measured = Some((total, iters));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    settings: &Settings,
    group: Option<&str>,
    id: &BenchmarkId,
    f: &mut F,
) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let mut bencher = Bencher {
        settings: *settings,
        measured: None,
    };
    f(&mut bencher);
    match bencher.measured {
        Some((_, 0)) | None => println!("bench {label}: no measurement"),
        Some((total, iters)) => {
            if settings.smoke {
                println!("bench {label}: ok (smoke)");
            } else {
                let ns = total.as_nanos() as f64 / iters as f64;
                println!("bench {label}: {ns:.0} ns/iter ({iters} iters)");
            }
        }
    }
}

/// Declares a group runner `fn`, mirroring `criterion::criterion_group`.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &m| {
            b.iter(|| black_box(7u64) * m)
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        // In-test runs see the libtest `--test`-less argv; force smoke so
        // this stays instant.
        c.settings.smoke = true;
        demo(&mut c);
    }

    criterion_group!(compile_simple, demo);
    criterion_group! {
        name = compile_full;
        config = Criterion::default().sample_size(3);
        targets = demo,
    }

    #[test]
    fn group_macros_compile() {
        // Referencing the generated fns proves the macros expanded.
        let _: fn() = compile_simple;
        let _: fn() = compile_full;
    }
}
