//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! A deterministic generate-and-assert engine exposing the subset of the
//! real crate this workspace uses: the [`strategy::Strategy`] trait with
//! `prop_map`, `any::<T>()`, integer/float range strategies, tuple
//! strategies, [`collection::vec`] / [`collection::btree_set`], regex-style
//! `&str` strategies, `proptest!` with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, acceptable for this workspace's
//! property tests: no shrinking (a failing case panics with the assert
//! message; inputs are reproducible because generation is a pure function
//! of the test name and case index), and `&str` strategies support only
//! the regex subset actually used (classes, `.`, literals, groups,
//! `{m}` / `{m,n}` repetition).

/// Deterministic random source shared by all strategies.
///
/// SplitMix64 over a seed derived from the owning test's name, so each
/// test gets an independent, run-to-run stable stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod test_runner {
    //! Runner configuration, mirroring `proptest::test_runner`.

    /// How many cases each property runs. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 256 cases, like the real crate; `PROPTEST_CASES` overrides.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Self { cases }
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Element types range strategies can draw, one generic `Range<T>`
    /// impl (instead of per-type impls) so unsuffixed literals infer as
    /// they do with the real crate.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform value in `[lo, hi)`, or `[lo, hi]` when `inclusive`.
        fn sample_uniform(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                    let u = rng.unit_f64() as $t;
                    let v = lo + u * (hi - lo);
                    if !inclusive && v >= hi { lo } else { v }
                }
            }
        )*};
    }
    uniform_float!(f32, f64);

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(self.start < self.end, "empty range strategy");
            T::sample_uniform(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            T::sample_uniform(rng, lo, hi, true)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Regex-style string strategy: `"[a-d]{1,6}( [a-d]{1,6}){0,2}"`.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let pattern = crate::string::parse(self);
            let mut out = String::new();
            crate::string::render(&pattern, rng, &mut out);
            out
        }
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::collections::BTreeSet;

    /// Acceptable size arguments: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a target length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set; bound the retries so narrow
            // element domains still terminate (possibly under target).
            let mut budget = 20 * (target + 1);
            while set.len() < target && budget > 0 {
                set.insert(self.element.generate(rng));
                budget -= 1;
            }
            set
        }
    }

    /// `BTreeSet` strategy aiming for lengths drawn from `size`.
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }
}

pub mod string {
    //! Generator for the regex subset used by `&str` strategies.
    //!
    //! Supported: literal chars, `.` (printable ASCII), classes
    //! `[a-z 0-9]` (ranges and singletons, no negation), groups `(...)`,
    //! and `{m}` / `{m,n}` repetition on any atom. This covers every
    //! pattern in the workspace's property tests; anything else panics
    //! with a clear message rather than silently mis-generating.

    use crate::TestRng;

    /// One regex atom plus its repetition bounds.
    pub struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    enum Atom {
        Literal(char),
        /// Inclusive char ranges; singletons are `(c, c)`.
        Class(Vec<(char, char)>),
        /// `.` — printable ASCII.
        AnyChar,
        Group(Vec<Piece>),
    }

    /// Parses `pattern`, panicking on unsupported syntax.
    pub fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars: Vec<char> = pattern.chars().collect();
        chars.reverse(); // pop() from the front
        let pieces = parse_seq(&mut chars, pattern);
        assert!(
            chars.is_empty(),
            "unbalanced ')' in string strategy {pattern:?}"
        );
        pieces
    }

    fn parse_seq(chars: &mut Vec<char>, pattern: &str) -> Vec<Piece> {
        let mut pieces = Vec::new();
        while let Some(&c) = chars.last() {
            if c == ')' {
                break;
            }
            chars.pop();
            let atom = match c {
                '(' => {
                    let inner = parse_seq(chars, pattern);
                    assert_eq!(
                        chars.pop(),
                        Some(')'),
                        "unclosed '(' in string strategy {pattern:?}"
                    );
                    Atom::Group(inner)
                }
                '[' => Atom::Class(parse_class(chars, pattern)),
                '.' => Atom::AnyChar,
                '|' | '*' | '+' | '?' | '\\' | '^' | '$' => {
                    panic!("unsupported regex feature {c:?} in string strategy {pattern:?}")
                }
                lit => Atom::Literal(lit),
            };
            let (min, max) = parse_repeat(chars, pattern);
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn parse_class(chars: &mut Vec<char>, pattern: &str) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        loop {
            let c = chars
                .pop()
                .unwrap_or_else(|| panic!("unclosed '[' in string strategy {pattern:?}"));
            if c == ']' {
                break;
            }
            assert!(
                c != '^' || !ranges.is_empty(),
                "negated classes unsupported in string strategy {pattern:?}"
            );
            // `a-z` range when '-' sits between two members; trailing '-'
            // never appears in this workspace's patterns.
            if chars.last() == Some(&'-') && chars.len() >= 2 && chars[chars.len() - 2] != ']' {
                chars.pop();
                let hi = chars
                    .pop()
                    .unwrap_or_else(|| panic!("dangling '-' in string strategy {pattern:?}"));
                assert!(c <= hi, "inverted class range in string strategy {pattern:?}");
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        assert!(
            !ranges.is_empty(),
            "empty class in string strategy {pattern:?}"
        );
        ranges
    }

    fn parse_repeat(chars: &mut Vec<char>, pattern: &str) -> (usize, usize) {
        if chars.last() != Some(&'{') {
            return (1, 1);
        }
        chars.pop();
        let mut spec = String::new();
        loop {
            let c = chars
                .pop()
                .unwrap_or_else(|| panic!("unclosed '{{' in string strategy {pattern:?}"));
            if c == '}' {
                break;
            }
            spec.push(c);
        }
        let parse_n = |s: &str| -> usize {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad repetition {spec:?} in string strategy {pattern:?}"))
        };
        match spec.split_once(',') {
            None => {
                let n = parse_n(&spec);
                (n, n)
            }
            Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
        }
    }

    /// Renders one sample of `pieces` into `out`.
    pub fn render(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
        for piece in pieces {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::AnyChar => {
                        out.push(char::from(b' ' + rng.below(95) as u8));
                    }
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for &(lo, hi) in ranges {
                            let span = hi as u64 - lo as u64 + 1;
                            if pick < span {
                                out.push(
                                    char::from_u32(lo as u32 + pick as u32)
                                        .expect("class range crosses surrogates"),
                                );
                                break;
                            }
                            pick -= span;
                        }
                    }
                    Atom::Group(inner) => render(inner, rng, out),
                }
            }
        }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests: each `fn` becomes a `#[test]` that draws its
/// `name in strategy` arguments per case and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

/// Internal: expands each test fn inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_bind!(__rng $($params)*);
                $body
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Internal: binds `name in strategy` parameters from the case RNG.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident) => {};
    ($rng:ident,) => {};
    ($rng:ident mut $var:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident $var:ident in $strat:expr) => {
        let $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident mut $var:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $($rest)*);
    };
    ($rng:ident $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $($rest)*);
    };
}

/// Property assertion; fails the current case (and test) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::core::assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::core::assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u32, u32)>> {
        crate::collection::vec((0u32..40, 0u32..10), 0..12)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 3u32..17, f in 0.25f64..0.75, n in 1usize..6) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..6).contains(&n));
        }

        /// Collections honour their size arguments.
        #[test]
        fn collection_sizes(
            v in crate::collection::vec(0u64..100, 2..5),
            s in crate::collection::btree_set(0u32..1000, 1..4),
            exact in crate::collection::vec(0u8..10, 3usize),
            mut pairs in pairs(),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!((1..4).contains(&s.len()));
            prop_assert_eq!(exact.len(), 3);
            pairs.sort_unstable();
            for (l, r) in pairs {
                prop_assert!(l < 40 && r < 10);
            }
        }

        /// The regex subset produces strings matching the pattern shape.
        #[test]
        fn regex_shapes(
            word in "[a-d]{1,6}( [a-d]{1,6}){0,2}",
            free in ".{0,60}",
            cls in "[a-e ]{0,16}",
        ) {
            let groups: Vec<&str> = word.split(' ').collect();
            prop_assert!((1..=3).contains(&groups.len()));
            for g in groups {
                prop_assert!((1..=6).contains(&g.len()), "{:?}", g);
                prop_assert!(g.chars().all(|c| ('a'..='d').contains(&c)));
            }
            prop_assert!(free.len() <= 60);
            prop_assert!(free.chars().all(|c| (' '..='~').contains(&c)));
            prop_assert!(cls.chars().all(|c| c == ' ' || ('a'..='e').contains(&c)));
        }

        /// `any` plus `prop_map` compose.
        #[test]
        fn any_and_map(x in any::<u32>(), y in (0u32..9).prop_map(|v| v * 2)) {
            let _ = x;
            prop_assert!(y % 2 == 0 && y < 18);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec("[a-z]{1,8}", 1..20);
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
