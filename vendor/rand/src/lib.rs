//! Offline stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! Implements exactly the surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` over
//! half-open and inclusive integer/float ranges, and
//! `seq::SliceRandom::shuffle` — backed by xoshiro256** seeded through
//! SplitMix64. The streams differ from the real crate's ChaCha12 `StdRng`,
//! but every consumer in the workspace only relies on *determinism per
//! seed* and uniformity, never on specific values.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types sampleable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types drawable uniformly from a bounded range, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    /// Uniform value in `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                // Clamp guards the open upper bound against rounding.
                let v = lo + u * (hi - lo);
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
///
/// The single generic impl per range shape (rather than one impl per
/// element type) matters for inference: it lets the compiler unify the
/// range's element type with `gen_range`'s return type immediately, so
/// unsuffixed literals like `rng.gen_range(0..26)` type-check exactly as
/// they do with the real crate.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a `u64` seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never relies on `SmallRng`'s specific engine.
    pub type SmallRng = StdRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let j: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&j));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(f32::EPSILON..1.0);
            assert!(g >= f32::EPSILON && g < 1.0);
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}
