//! Bibliographic record linkage (DBLP–ACM / DBLP–Google-Scholar style):
//! schema-based vs schema-agnostic settings and the value of cleaning.
//!
//! ```text
//! cargo run --release --example bibliographic_dedup
//! ```
//!
//! Demonstrates attribute selection by coverage × distinctiveness, shows
//! how the schema-based view shrinks the corpus (paper Fig. 3), and
//! compares a blocking workflow under both settings.

use er::core::schema::{attribute_stats, corpus_stats};
use er::prelude::*;

fn main() {
    // D9: clean DBLP against noisy, much larger Google Scholar.
    let profile = er::datagen::profiles::profile("D9").expect("D9 exists");
    let ds = generate(profile, 0.05, 21);
    println!(
        "dataset {}: |E1| = {}, |E2| = {}, duplicates = {}\n",
        ds.name,
        ds.e1.len(),
        ds.e2.len(),
        ds.groundtruth.len()
    );

    // Which attribute should the schema-based setting use?
    println!("attribute statistics (coverage x distinctiveness):");
    for stat in attribute_stats(&ds) {
        println!(
            "  {:<10} coverage = {:.2}, gt-coverage = {:.2}, distinctiveness = {:.2}, score = {:.2}",
            stat.name, stat.coverage, stat.groundtruth_coverage, stat.distinctiveness,
            stat.score()
        );
    }
    let best = best_attribute(&ds).expect("attributes exist");
    println!("  -> selected: {best:?}\n");

    // Corpus shrinkage: schema-based and cleaning both cut the text volume.
    let agnostic = text_view(&ds, &SchemaMode::Agnostic);
    let based = text_view(&ds, &SchemaMode::BestAttribute);
    for (label, view) in [("schema-agnostic", &agnostic), ("schema-based", &based)] {
        let raw = corpus_stats(view, false);
        let cleaned = corpus_stats(view, true);
        println!(
            "{label:<16} vocabulary = {:>6} (cleaned {:>6}), characters = {:>7} (cleaned {:>7})",
            raw.vocabulary_size, cleaned.vocabulary_size, raw.char_length, cleaned.char_length
        );
    }

    // The same workflow under both settings.
    let workflow = BlockingWorkflow {
        builder: BlockBuilder::Standard,
        purge: true,
        filter_ratio: Some(0.5),
        cleaning: ComparisonCleaning::Meta(MetaBlocking {
            scheme: WeightingScheme::ChiSquared,
            pruning: PruningAlgorithm::Rcnp,
        }),
    };
    println!("\nworkflow: {}", workflow.describe());
    for (label, view) in [("schema-agnostic", &agnostic), ("schema-based", &based)] {
        let out = workflow.run(view);
        let eff = evaluate(&out.candidates, &ds.groundtruth);
        println!(
            "  {label:<16} PC = {:.3}, PQ = {:.4}, |C| = {:>6}, RT = {:?}",
            eff.pc,
            eff.pq,
            eff.candidates,
            out.runtime()
        );
    }
    println!(
        "\nExpected (paper conclusion 2): the schema-based setting is faster (smaller\n\
         corpus) but its effectiveness is less stable; schema-agnostic is robust."
    );
}
