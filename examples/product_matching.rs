//! Product matching across two retailers — the Abt-Buy / Walmart-Amazon
//! scenario that motivates the paper.
//!
//! ```text
//! cargo run --release --example product_matching
//! ```
//!
//! Builds two small product catalogs by hand (with typos, token splits and
//! a hard negative), then compares a blocking workflow, the kNN-Join and
//! the FAISS-style dense kNN on exactly the same input, and finally runs
//! the paper's Problem 1 (maximize precision subject to recall ≥ 0.9) on a
//! generated Walmart-Amazon-style dataset.

use er::core::optimize::GridResolution;
use er::prelude::*;

fn catalog() -> Dataset {
    let e1 = vec![
        er::core::Entity::from_pairs([
            ("title", "Canon PowerShot SX530 digital camera"),
            ("price", "279.00"),
        ]),
        er::core::Entity::from_pairs([
            ("title", "Logitech MX Master 3S wireless mouse"),
            ("price", "99.99"),
        ]),
        er::core::Entity::from_pairs([
            ("title", "Sony WH-1000XM4 noise cancelling headphones"),
            ("price", "349.99"),
        ]),
        er::core::Entity::from_pairs([
            ("title", "Canon PowerShot SX540 digital camera"), // hard negative!
            ("price", "329.00"),
        ]),
    ];
    let e2 = vec![
        er::core::Entity::from_pairs([
            ("title", "canon power shot sx530 camera black"), // token split
            ("brand", "Canon"),
        ]),
        er::core::Entity::from_pairs([
            ("title", "logitech mx mastr 3s mouse"), // typo
            ("brand", "Logitech"),
        ]),
        er::core::Entity::from_pairs([
            ("title", "sony wh1000xm4 headphones wireless"),
            ("brand", "Sony"),
        ]),
        er::core::Entity::from_pairs([("title", "generic usb c cable 2m"), ("brand", "")]),
    ];
    let gt = GroundTruth::from_pairs([Pair::new(0, 0), Pair::new(1, 1), Pair::new(2, 2)]);
    Dataset::new("catalog", "Shop A / Shop B", e1, e2, gt)
}

fn report(name: &str, description: &str, out: &FilterOutput, ds: &Dataset) {
    let eff = evaluate(&out.candidates, &ds.groundtruth);
    println!("{name:<12} {description}");
    println!(
        "             PC = {:.2}, PQ = {:.2}, candidates = {:?}",
        eff.pc,
        eff.pq,
        out.candidates.to_sorted_vec()
    );
}

fn main() {
    let ds = catalog();
    let view = text_view(&ds, &SchemaMode::Agnostic);

    // A q-grams blocking workflow bridges the "mastr" typo.
    let blocking = BlockingWorkflow {
        builder: BlockBuilder::QGrams { q: 3 },
        purge: false,
        filter_ratio: None,
        cleaning: ComparisonCleaning::Meta(MetaBlocking {
            scheme: WeightingScheme::Js,
            pruning: PruningAlgorithm::Rcnp,
        }),
    };
    report("QBW", &blocking.describe(), &blocking.run(&view), &ds);

    // kNN-Join: one best candidate per query entity.
    let knn = KnnJoin {
        cleaning: false,
        model: RepresentationModel::parse("C3G").expect("C3G"),
        measure: SimilarityMeasure::Cosine,
        k: 1,
        reversed: false,
    };
    report("kNN-Join", &knn.describe(), &knn.run(&view), &ds);

    // FAISS-style dense kNN on hashed subword embeddings.
    let faiss = FlatKnn {
        cleaning: false,
        k: 1,
        reversed: false,
        embedding: EmbeddingConfig {
            dim: 128,
            ..Default::default()
        },
    };
    report("FAISS", &faiss.describe(), &faiss.run(&view), &ds);

    // Problem 1 in action: fine-tune kNN-Join on a generated dataset.
    println!("\nfine-tuning kNN-Join on a D8-style dataset (target PC >= 0.9):");
    let big = generate(er::datagen::profiles::profile("D8").expect("D8"), 0.05, 3);
    let big_view = text_view(&big, &SchemaMode::Agnostic);
    let optimizer = Optimizer::new(0.9);
    let mut best: Option<(KnnJoin, f64, f64)> = None;
    for group in er::sparse::knn_grid(GridResolution::Quick) {
        let outcome = optimizer.first_feasible(group, |cfg| {
            let out = cfg.run(&big_view);
            (evaluate(&out.candidates, &big.groundtruth), out.breakdown)
        });
        if let Some(ev) = outcome.best() {
            if outcome.is_feasible() && best.as_ref().map_or(true, |(_, _, pq)| ev.eff.pq > *pq) {
                best = Some((ev.config, ev.eff.pc, ev.eff.pq));
            }
        }
    }
    match best {
        Some((cfg, pc, pq)) => {
            println!(
                "  best configuration: {} -> PC = {pc:.3}, PQ = {pq:.3}",
                cfg.describe()
            );
        }
        None => println!("  no configuration reached the target"),
    }
}
