//! End-to-end entity resolution: filtering → verification, plus Dirty ER
//! (deduplication) through the same filters.
//!
//! ```text
//! cargo run --release --example end_to_end_er
//! ```
//!
//! The paper benchmarks the filtering step in isolation; this example shows
//! the full pipeline a downstream user runs: a filter produces candidates,
//! a matcher verifies them, and the filter's quality bounds the end-to-end
//! result. It also demonstrates the Dirty ER adapter: any Clean-Clean
//! filter deduplicates a single collection.

use er::core::dirty::{DirtyAdapter, DirtyDataset};
use er::core::verify::JaccardMatcher;
use er::prelude::*;

fn main() {
    // ---- Clean-Clean ER: filter, then verify -----------------------------
    let profile = er::datagen::profiles::profile("D2").expect("D2 exists");
    let ds = generate(profile, 0.2, 5);
    let view = text_view(&ds, &SchemaMode::Agnostic);
    let matcher = JaccardMatcher { threshold: 0.45 };

    println!(
        "Clean-Clean ER on {} ({} x {} entities, {} duplicates)\n",
        ds.name,
        ds.e1.len(),
        ds.e2.len(),
        ds.groundtruth.len()
    );
    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>8}",
        "filter", "verified", "recall", "prec", "F1"
    );

    // Brute force: verify the whole Cartesian product.
    let mut all = CandidateSet::new();
    for i in 0..ds.e1.len() as u32 {
        for j in 0..ds.e2.len() as u32 {
            all.insert_raw(i, j);
        }
    }
    let brute = matcher.evaluate(&view, &all, &ds.groundtruth);
    println!(
        "{:<22} {:>10} {:>8.3} {:>8.3} {:>8.3}",
        "(no filter)", brute.verified, brute.recall, brute.precision, brute.f1
    );

    // Filtered pipelines: same matcher, tiny candidate sets.
    let filters: Vec<(String, Box<dyn Filter>)> = vec![
        ("PBW".into(), Box::new(BlockingWorkflow::pbw())),
        (
            "kNN-Join (K=2)".into(),
            Box::new(KnnJoin {
                cleaning: true,
                model: RepresentationModel::parse("C3G").expect("C3G"),
                measure: SimilarityMeasure::Cosine,
                k: 2,
                reversed: false,
            }),
        ),
        (
            "FAISS (K=2)".into(),
            Box::new(FlatKnn {
                cleaning: true,
                k: 2,
                reversed: false,
                embedding: EmbeddingConfig {
                    dim: 128,
                    ..Default::default()
                },
            }),
        ),
    ];
    for (name, filter) in &filters {
        let out = filter.run(&view);
        let q = matcher.evaluate(&view, &out.candidates, &ds.groundtruth);
        println!(
            "{:<22} {:>10} {:>8.3} {:>8.3} {:>8.3}",
            name, q.verified, q.recall, q.precision, q.f1
        );
    }
    println!(
        "\nThe filters cut verification work by >95% at (nearly) the same end-to-end\n\
         quality — the paper's filtering-verification framework in action.\n"
    );

    // ---- Dirty ER: deduplicate one collection with the same filters ------
    println!("Dirty ER: deduplicating a single noisy catalog\n");
    // Fold both sides of D2 into one collection: matched pairs become
    // intra-collection duplicates.
    let offset = ds.e1.len() as u32;
    let mut entities = ds.e1.clone();
    entities.extend(ds.e2.iter().cloned());
    let duplicates: Vec<Pair> = ds
        .groundtruth
        .iter()
        .map(|p| Pair::new(p.left, p.right + offset))
        .collect();
    let dirty = DirtyDataset::new("D2-dirty", entities, duplicates);

    let adapter = DirtyAdapter::new(BlockingWorkflow::pbw());
    let out = adapter.dedupe(&dirty, |e| e.all_values());
    let eff = evaluate(&out.candidates, &dirty.groundtruth);
    println!(
        "PBW self-join: |E| = {}, brute-force comparisons = {}, candidates = {},\n\
         duplicate recall = {:.3}, precision = {:.4}",
        dirty.len(),
        dirty.comparisons(),
        out.candidates.len(),
        eff.pc,
        eff.pq
    );
}
