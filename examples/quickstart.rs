//! Quickstart: filter a Clean-Clean ER dataset in a dozen lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a synthetic Abt-Buy-style product dataset, runs the
//! parameter-free blocking workflow (Standard Blocking + Block Purging +
//! Comparison Propagation) and the default kNN-Join, and evaluates both
//! against the ground truth.

use er::prelude::*;

fn main() {
    // 1. A Clean-Clean ER task: two product collections with known matches.
    let profile = er::datagen::profiles::profile("D2").expect("D2 exists");
    let dataset = generate(profile, 0.25, 7);
    println!(
        "dataset {}: |E1| = {}, |E2| = {}, duplicates = {}, |E1 x E2| = {}",
        dataset.name,
        dataset.e1.len(),
        dataset.e2.len(),
        dataset.groundtruth.len(),
        dataset.cartesian()
    );

    // 2. Schema-agnostic view: every entity becomes one long textual value.
    let view = text_view(&dataset, &SchemaMode::Agnostic);

    // 3. A blocking workflow: signatures -> blocks -> candidate pairs.
    let blocking = BlockingWorkflow::pbw();
    let output = blocking.run(&view);
    let eff = evaluate(&output.candidates, &dataset.groundtruth);
    println!(
        "\n{} ({}):\n  recall PC = {:.3}, precision PQ = {:.4}, |C| = {} in {:?}",
        blocking.name(),
        blocking.describe(),
        eff.pc,
        eff.pq,
        eff.candidates,
        output.runtime()
    );

    // 4. A sparse NN method: index E1's token sets, query with E2.
    let knn = er::sparse::dknn_baseline(dataset.e1.len(), dataset.e2.len());
    let output = knn.run(&view);
    let eff = evaluate(&output.candidates, &dataset.groundtruth);
    println!(
        "{} ({}):\n  recall PC = {:.3}, precision PQ = {:.4}, |C| = {} in {:?}",
        knn.name(),
        knn.describe(),
        eff.pc,
        eff.pq,
        eff.candidates,
        output.runtime()
    );

    // 5. The search-space reduction either filter buys you:
    println!(
        "\nverification work avoided: {:.1}% of the Cartesian product",
        100.0 * (1.0 - eff.candidates as f64 / dataset.cartesian() as f64)
    );
}
