//! Movie/TV-show linkage (IMDb–TMDb style) with misplaced attribute
//! values — the failure mode that rules out schema-based settings on
//! D5–D7 and D10.
//!
//! ```text
//! cargo run --release --example movie_linkage
//! ```
//!
//! Shows that (i) the best attribute's duplicate coverage caps schema-based
//! recall below the target, (ii) the schema-agnostic view recovers the
//! misplaced values, and (iii) cardinality thresholds (kNN-Join) beat
//! similarity thresholds (ε-Join) on this noisy data — the paper's
//! conclusion 3.

use er::core::optimize::GridResolution;
use er::core::schema::attribute_stats;
use er::prelude::*;

fn optimize_epsilon(view: &er::core::TextView, ds: &Dataset) -> Option<(EpsilonJoin, f64, f64)> {
    let optimizer = Optimizer::new(0.9);
    let mut best: Option<(EpsilonJoin, f64, f64)> = None;
    for group in er::sparse::epsilon_grid(GridResolution::Quick) {
        let outcome = optimizer.first_feasible(group, |cfg| {
            let out = cfg.run(view);
            (evaluate(&out.candidates, &ds.groundtruth), out.breakdown)
        });
        if outcome.is_feasible() {
            let ev = outcome.best().expect("feasible implies best");
            if best.as_ref().map_or(true, |(_, _, pq)| ev.eff.pq > *pq) {
                best = Some((ev.config, ev.eff.pc, ev.eff.pq));
            }
        }
    }
    best
}

fn optimize_knn(view: &er::core::TextView, ds: &Dataset) -> Option<(KnnJoin, f64, f64)> {
    let optimizer = Optimizer::new(0.9);
    let mut best: Option<(KnnJoin, f64, f64)> = None;
    for group in er::sparse::knn_grid(GridResolution::Quick) {
        let outcome = optimizer.first_feasible(group, |cfg| {
            let out = cfg.run(view);
            (evaluate(&out.candidates, &ds.groundtruth), out.breakdown)
        });
        if outcome.is_feasible() {
            let ev = outcome.best().expect("feasible implies best");
            if best.as_ref().map_or(true, |(_, _, pq)| ev.eff.pq > *pq) {
                best = Some((ev.config, ev.eff.pc, ev.eff.pq));
            }
        }
    }
    best
}

fn main() {
    let profile = er::datagen::profiles::profile("D5").expect("D5 exists");
    let ds = generate(profile, 0.1, 11);
    println!(
        "dataset {} ({}): |E1| = {}, |E2| = {}, duplicates = {}\n",
        ds.name,
        ds.sources,
        ds.e1.len(),
        ds.e2.len(),
        ds.groundtruth.len()
    );

    // (i) Why schema-based settings fail here: misplaced titles.
    let title = attribute_stats(&ds)
        .into_iter()
        .find(|s| s.name == "title")
        .expect("title attribute");
    println!(
        "title coverage: overall = {:.0}%, on duplicates = {:.0}% -> a schema-based\n\
         filter can reach at most ~{:.0}% recall; the target is 90%.\n",
        100.0 * title.coverage,
        100.0 * title.groundtruth_coverage,
        100.0 * title.groundtruth_coverage,
    );

    let based = text_view(&ds, &SchemaMode::BestAttribute);
    let agnostic = text_view(&ds, &SchemaMode::Agnostic);
    for (label, view) in [("schema-based", &based), ("schema-agnostic", &agnostic)] {
        let knn = KnnJoin {
            cleaning: false,
            model: RepresentationModel::parse("C3G").expect("C3G"),
            measure: SimilarityMeasure::Cosine,
            k: 3,
            reversed: false,
        };
        let out = knn.run(view);
        let eff = evaluate(&out.candidates, &ds.groundtruth);
        println!(
            "kNN-Join (K=3) on {label:<16}: PC = {:.3}, PQ = {:.4}",
            eff.pc, eff.pq
        );
    }

    // (iii) Similarity vs cardinality thresholds, both fine-tuned.
    println!("\nfine-tuned on the schema-agnostic view (target PC >= 0.9):");
    match optimize_epsilon(&agnostic, &ds) {
        Some((cfg, pc, pq)) => {
            println!(
                "  e-Join   best: {:<40} PC = {pc:.3}, PQ = {pq:.4}",
                cfg.describe()
            );
        }
        None => println!("  e-Join   found no feasible configuration"),
    }
    match optimize_knn(&agnostic, &ds) {
        Some((cfg, pc, pq)) => {
            println!(
                "  kNN-Join best: {:<40} PC = {pc:.3}, PQ = {pq:.4}",
                cfg.describe()
            );
        }
        None => println!("  kNN-Join found no feasible configuration"),
    }
    println!(
        "\nExpected (paper conclusions 3+5): the cardinality threshold scales linearly\n\
         with the query set and is the more robust choice on noisy movie data."
    );
}
