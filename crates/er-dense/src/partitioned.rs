//! The SCANN-equivalent index (paper §IV-D): k-means partitioning plus
//! brute-force or asymmetric-hashing (product-quantization) scoring.
//!
//! SCANN splits the indexed dataset into disjoint partitions during
//! training; a query is answered by scoring only the most relevant
//! partitions. Scoring is either exact (`BF`) or approximate (`AH`), and
//! the similarity is dot product (`DP`) or squared Euclidean (`L2²`) —
//! the four combinations Table V sweeps.

use crate::artifact::{emb_key, flag, vecs_bytes};
use crate::embed::{EmbeddingConfig, HashEmbedder};
use crate::flat::{knn_over, Metric};
use crate::pq::ProductQuantizer;
use crate::vector::{dot, l2_sq, FlatVectors};
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::schema::TextView;
use er_core::timing::{PhaseBreakdown, Stage};
use er_text::Cleaner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lloyd's k-means with k-means++ seeding; returns the centroids.
///
/// Shared by the partitioned index and the product quantizer. Deterministic
/// for a fixed seed. `k` is clamped to the number of points.
pub fn kmeans(data: &[Vec<f32>], k: usize, iterations: usize, seed: u64) -> Vec<Vec<f32>> {
    assert!(!data.is_empty(), "k-means on empty data");
    let k = k.clamp(1, data.len());
    let dim = data[0].len();
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ initialization.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..data.len())].clone());
    let mut dists: Vec<f32> = data.iter().map(|v| l2_sq(v, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f32 = dists.iter().sum();
        let next = if total <= f32::EPSILON {
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = data.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(data[next].clone());
        for (d, v) in dists.iter_mut().zip(data) {
            *d = d.min(l2_sq(v, centroids.last().expect("just pushed")));
        }
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; data.len()];
    for _ in 0..iterations {
        let mut changed = false;
        for (i, v) in data.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = l2_sq(v, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (v, &a) in data.iter().zip(&assignment) {
            counts[a] += 1;
            for (s, x) in sums[a].iter_mut().zip(v) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f32;
                }
                centroids[c] = std::mem::take(&mut sums[c]);
            }
            // Empty clusters keep their previous centroid.
        }
        if !changed {
            break;
        }
    }
    centroids
}

/// Assigns each vector to its nearest centroid.
pub fn assign(data: &[Vec<f32>], centroids: &[Vec<f32>]) -> Vec<usize> {
    data.iter()
        .map(|v| {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = l2_sq(v, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            best
        })
        .collect()
}

/// Scoring mode (Table V's `index` parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scoring {
    /// Exact distance computations ("BF").
    BruteForce,
    /// Product-quantization lookup-table scoring ("AH").
    AsymmetricHashing,
}

/// A trained partitioned index.
#[derive(Debug)]
pub(crate) struct PartitionedIndex {
    pub(crate) vectors: FlatVectors,
    pub(crate) centroids: Vec<Vec<f32>>,
    /// Member ids per partition.
    pub(crate) members: Vec<Vec<u32>>,
    pub(crate) metric: Metric,
    pub(crate) scoring: Scoring,
    pub(crate) pq: Option<(ProductQuantizer, Vec<Vec<u8>>)>,
}

impl PartitionedIndex {
    fn build(vectors: Vec<Vec<f32>>, metric: Metric, scoring: Scoring, seed: u64) -> Self {
        let n = vectors.len();
        // SCANN guidance: ~sqrt(n) partitions.
        let k = ((n as f64).sqrt().round() as usize).clamp(1, 4096);
        let centroids = kmeans(&vectors, k, 10, seed);
        let assignment = assign(&vectors, &centroids);
        let mut members = vec![Vec::new(); centroids.len()];
        for (i, &a) in assignment.iter().enumerate() {
            members[a].push(i as u32);
        }
        let pq = match scoring {
            Scoring::BruteForce => None,
            Scoring::AsymmetricHashing => {
                let dim = vectors.first().map_or(0, Vec::len);
                let m = (dim / 4).clamp(1, 64);
                let pq = ProductQuantizer::train(&vectors, m, seed.wrapping_add(99));
                let codes = vectors.iter().map(|v| pq.encode(v)).collect();
                Some((pq, codes))
            }
        };
        Self {
            vectors: FlatVectors::from_rows(&vectors),
            centroids,
            members,
            metric,
            scoring,
            pq,
        }
    }

    /// kNN search probing the `n_probe` most relevant partitions.
    fn knn(&self, query: &[f32], k: usize, n_probe: usize) -> Vec<(u32, f32)> {
        // Rank partitions by centroid affinity under the metric.
        let mut ranked: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(c, centroid)| {
                let cost = match self.metric {
                    Metric::Dot => -dot(query, centroid),
                    Metric::L2Sq => l2_sq(query, centroid),
                };
                (c, cost)
            })
            .collect();
        ranked.sort_unstable_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let probed = ranked.iter().take(n_probe.max(1)).map(|&(c, _)| c);
        let ids = probed.flat_map(|c| self.members[c].iter().copied());

        match (&self.scoring, &self.pq) {
            (Scoring::BruteForce, _) | (_, None) => {
                knn_over(query, k, ids, |id| match self.metric {
                    Metric::Dot => -dot(query, self.vectors.row(id as usize)),
                    Metric::L2Sq => l2_sq(query, self.vectors.row(id as usize)),
                })
            }
            (Scoring::AsymmetricHashing, Some((pq, codes))) => {
                let table = pq.lookup_table(query, self.metric == Metric::Dot);
                knn_over(query, k, ids, |id| pq.score(&table, &codes[id as usize]))
            }
        }
    }
}

/// The SCANN-equivalent filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionedKnn {
    /// Apply stop-word removal + stemming (`CL`).
    pub cleaning: bool,
    /// Neighbors per query (`K`).
    pub k: usize,
    /// Reverse datasets (`RVS`).
    pub reversed: bool,
    /// `BF` or `AH` (Table V's `index`).
    pub scoring: Scoring,
    /// `DP` or `L2²` (Table V's `similarity`).
    pub metric: Metric,
    /// Partitions probed per query; the fraction SCANN tunes for its
    /// recall/latency target. We probe enough partitions for exactness to
    /// be governed by `scoring`, defaulting to 1/4 of the partitions.
    pub probe_fraction: f64,
    /// Embedding configuration.
    pub embedding: EmbeddingConfig,
    /// Partitioning seed.
    pub seed: u64,
}

impl PartitionedKnn {
    /// One-line configuration description for Table X-style reports.
    pub fn describe(&self) -> String {
        format!(
            "CL={} RVS={} K={} index={} sim={}",
            if self.cleaning { "y" } else { "-" },
            if self.reversed { "y" } else { "-" },
            self.k,
            match self.scoring {
                Scoring::BruteForce => "BF",
                Scoring::AsymmetricHashing => "AH",
            },
            match self.metric {
                Metric::Dot => "DP",
                Metric::L2Sq => "L2^2",
            }
        )
    }
}

impl PartitionedKnn {
    /// Computes per-query rankings up to `k_max` neighbors under the
    /// configured partitioning/probing/scoring (see [`FlatKnn::rankings`]
    /// for the role of rankings in the sweep).
    ///
    /// [`FlatKnn::rankings`]: crate::flat::FlatKnn::rankings
    pub fn rankings(&self, view: &TextView, k_max: usize) -> er_core::QueryRankings {
        let prepared = self.prepare(view);
        self.rankings_from(prepared.downcast::<PartitionedArtifact>(), k_max)
    }

    /// [`PartitionedKnn::rankings`] on a shared prepare-stage artifact:
    /// the embeddings and trained partitioning are reused, only the
    /// scoring runs.
    pub fn rankings_from(
        &self,
        artifact: &PartitionedArtifact,
        k_max: usize,
    ) -> er_core::QueryRankings {
        let Some(index) = &artifact.index else {
            return er_core::QueryRankings {
                neighbors: vec![Vec::new(); artifact.queries.len()],
                reversed: self.reversed,
            };
        };
        let n_probe = ((index.members.len() as f64 * self.probe_fraction).ceil() as usize).max(1);
        let neighbors = artifact
            .queries
            .iter()
            .map(|q| {
                if q.iter().all(|&v| v == 0.0) {
                    return Vec::new();
                }
                index
                    .knn(q, k_max, n_probe)
                    .into_iter()
                    .map(|(i, cost)| (i, f64::from(-cost)))
                    .collect()
            })
            .collect();
        er_core::QueryRankings {
            neighbors,
            reversed: self.reversed,
        }
    }
}

/// The prepare-stage artifact: embedded queries plus the trained
/// partitioned index (`None` when the indexed collection is empty). `K`
/// and the probe fraction stay in the query stage.
pub struct PartitionedArtifact {
    pub(crate) index: Option<PartitionedIndex>,
    pub(crate) queries: Vec<Vec<f32>>,
}

impl PartitionedArtifact {
    /// Approximate heap footprint for cache accounting.
    pub(crate) fn bytes(&self) -> usize {
        let index: usize = self.index.as_ref().map_or(0, |idx| {
            let members: usize = idx
                .members
                .iter()
                .map(|m| std::mem::size_of::<Vec<u32>>() + m.len() * 4)
                .sum();
            let codes: usize = idx.pq.as_ref().map_or(0, |(_, codes)| {
                codes
                    .iter()
                    .map(|c| std::mem::size_of::<Vec<u8>>() + c.len())
                    .sum()
            });
            idx.vectors.heap_bytes() + vecs_bytes(&idx.centroids) + members + codes
        });
        index + vecs_bytes(&self.queries)
    }
}

impl Filter for PartitionedKnn {
    fn name(&self) -> String {
        "SCANN".to_owned()
    }

    fn repr_key(&self) -> String {
        format!(
            "scann:CL={}:RVS={}:idx={}:sim={}:s={:x}:{}",
            flag(self.cleaning),
            flag(self.reversed),
            match self.scoring {
                Scoring::BruteForce => "BF",
                Scoring::AsymmetricHashing => "AH",
            },
            match self.metric {
                Metric::Dot => "DP",
                Metric::L2Sq => "L2",
            },
            self.seed,
            emb_key(&self.embedding)
        )
    }

    fn prepare(&self, view: &TextView) -> Prepared {
        let cleaner = if self.cleaning {
            Cleaner::on()
        } else {
            Cleaner::off()
        };
        let embedder = HashEmbedder::new(self.embedding);
        let (index_texts, query_texts) = if self.reversed {
            (&view.e2, &view.e1)
        } else {
            (&view.e1, &view.e2)
        };
        let mut breakdown = PhaseBreakdown::new();
        let (index_vecs, queries) = breakdown.time_in(Stage::Prepare, "preprocess", || {
            let a: Vec<Vec<f32>> = index_texts
                .iter()
                .map(|t| embedder.embed(t, &cleaner))
                .collect();
            let b: Vec<Vec<f32>> = query_texts
                .iter()
                .map(|t| embedder.embed(t, &cleaner))
                .collect();
            (a, b)
        });
        let index = breakdown.time_in(Stage::Prepare, "index", || {
            (!index_vecs.is_empty())
                .then(|| PartitionedIndex::build(index_vecs, self.metric, self.scoring, self.seed))
        });
        let artifact = PartitionedArtifact { index, queries };
        let bytes = artifact.bytes();
        Prepared::new(artifact, bytes, breakdown)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        let art = prepared.downcast::<PartitionedArtifact>();
        let mut out = FilterOutput::default();
        let Some(index) = &art.index else {
            return out;
        };
        let n_probe = ((index.members.len() as f64 * self.probe_fraction).ceil() as usize).max(1);

        out.breakdown.time("query", || {
            for (q, query) in art.queries.iter().enumerate() {
                if query.iter().all(|&v| v == 0.0) {
                    continue;
                }
                for (i, _) in index.knn(query, self.k, n_probe) {
                    if self.reversed {
                        out.candidates.insert_raw(q as u32, i);
                    } else {
                        out.candidates.insert_raw(i, q as u32);
                    }
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let center = (i % 4) as f32 * 3.0;
                (0..dim)
                    .map(|_| center + rng.gen_range(-0.2..0.2))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn kmeans_finds_separated_clusters() {
        let data = clustered(200, 4, 1);
        let centroids = kmeans(&data, 4, 20, 3);
        assert_eq!(centroids.len(), 4);
        // Every point should be within its cluster spread of some centroid.
        for v in &data {
            let nearest = centroids
                .iter()
                .map(|c| l2_sq(v, c))
                .fold(f32::INFINITY, f32::min);
            assert!(nearest < 1.0, "point far from every centroid: {nearest}");
        }
    }

    #[test]
    fn kmeans_deterministic_per_seed() {
        let data = clustered(60, 3, 2);
        assert_eq!(kmeans(&data, 3, 10, 5), kmeans(&data, 3, 10, 5));
    }

    #[test]
    fn kmeans_clamps_k() {
        let data = clustered(3, 2, 3);
        assert_eq!(kmeans(&data, 10, 5, 0).len(), 3);
    }

    #[test]
    fn assign_partitions_cover_all_points() {
        let data = clustered(100, 3, 4);
        let centroids = kmeans(&data, 5, 10, 1);
        let assignment = assign(&data, &centroids);
        assert_eq!(assignment.len(), 100);
        assert!(assignment.iter().all(|&a| a < centroids.len()));
    }

    #[test]
    fn full_probe_bruteforce_matches_flat() {
        let data = clustered(150, 6, 5);
        let idx = PartitionedIndex::build(data.clone(), Metric::L2Sq, Scoring::BruteForce, 7);
        let flat = FlatIndex::build(data.clone(), Metric::L2Sq);
        let query = &data[10];
        let a: Vec<u32> = idx
            .knn(query, 5, idx.members.len())
            .iter()
            .map(|x| x.0)
            .collect();
        let b: Vec<u32> = flat.knn(query, 5).iter().map(|x| x.0).collect();
        assert_eq!(a, b, "probing all partitions must equal exact search");
    }

    #[test]
    fn ah_scoring_finds_same_cluster() {
        let data = clustered(200, 8, 6);
        let idx =
            PartitionedIndex::build(data.clone(), Metric::L2Sq, Scoring::AsymmetricHashing, 8);
        let query = &data[0]; // cluster 0
        for (id, _) in idx.knn(query, 5, idx.members.len()) {
            assert_eq!(id as usize % 4, 0, "AH neighbor from wrong cluster");
        }
    }

    #[test]
    fn filter_runs_both_scorings() {
        let view = TextView {
            e1: vec![
                "canon camera".into(),
                "office chair".into(),
                "usb cable".into(),
            ]
            .into(),
            e2: vec!["canon camera body".into(), "black office chair".into()].into(),
        };
        for scoring in [Scoring::BruteForce, Scoring::AsymmetricHashing] {
            let f = PartitionedKnn {
                cleaning: false,
                k: 1,
                reversed: false,
                scoring,
                metric: Metric::L2Sq,
                probe_fraction: 1.0,
                embedding: EmbeddingConfig {
                    dim: 32,
                    ..Default::default()
                },
                seed: 3,
            };
            let out = f.run(&view);
            assert_eq!(out.candidates.len(), 2, "{scoring:?}");
            assert!(out
                .candidates
                .contains(er_core::candidates::Pair::new(0, 0)));
        }
    }
}
