//! MinHash LSH (paper §IV-D; Broder 1997, banding per Leskovec et al.).
//!
//! Each entity becomes a set of character k-shingles; a minhash signature
//! of `#bands × #rows` hash values approximates Jaccard similarity; the
//! signature is decomposed into bands, and two entities colliding in at
//! least one band become a candidate pair. The banding approximates a
//! high-pass filter at threshold `(1/#bands)^(1/#rows)`.

use er_core::candidates::CandidateSet;
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::hash::{hash_str, mix64, FastMap};
use er_core::schema::TextView;
use er_core::timing::{PhaseBreakdown, Stage};
use er_text::{kshingles, Cleaner};

/// A configured MinHash LSH filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinHashLsh {
    /// Apply stop-word removal + stemming (`CL`).
    pub cleaning: bool,
    /// Shingle length `k ∈ [2, 5]`.
    pub shingle_k: usize,
    /// Number of bands.
    pub bands: usize,
    /// Rows per band.
    pub rows: usize,
    /// Seed of the permutation family (the method's stochasticity).
    pub seed: u64,
}

impl MinHashLsh {
    /// Signature length `#bands × #rows`.
    pub fn signature_len(&self) -> usize {
        self.bands * self.rows
    }

    /// The similarity threshold the banding approximates,
    /// `(1/#bands)^(1/#rows)`.
    pub fn approximate_threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows as f64)
    }

    /// One-line configuration description for Table X-style reports.
    pub fn describe(&self) -> String {
        format!(
            "CL={} bands={} rows={} k={}",
            if self.cleaning { "y" } else { "-" },
            self.bands,
            self.rows,
            self.shingle_k
        )
    }

    /// Minhash signature of one text; `None` if it has no shingles.
    fn signature(&self, text: &str, cleaner: &Cleaner) -> Option<Vec<u64>> {
        let cleaned = cleaner.clean_to_string(text);
        let shingles = kshingles(&cleaned, self.shingle_k);
        if shingles.is_empty() {
            return None;
        }
        let ids: Vec<u64> = shingles.iter().map(|s| hash_str(s)).collect();
        let n = self.signature_len();
        let mut sig = vec![u64::MAX; n];
        for &id in &ids {
            for (i, slot) in sig.iter_mut().enumerate() {
                // h_i(x) = mix(x ⊕ mix(seed + i)): an independent family.
                let h = mix64(id ^ mix64(self.seed.wrapping_add(i as u64)));
                if h < *slot {
                    *slot = h;
                }
            }
        }
        Some(sig)
    }

    /// Hashes one band of a signature into a bucket key.
    fn band_key(band: &[u64]) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for &v in band {
            acc = mix64(acc ^ v);
        }
        acc
    }
}

/// The prepare-stage artifact: query signatures plus the per-band bucket
/// index of `E1`. Every banding parameter shapes the signatures, so the
/// whole pipeline up to bucket probing is preparation.
pub struct MinHashArtifact {
    /// Query-side signatures (`None` for shingle-less texts).
    pub(crate) sigs2: Vec<Option<Vec<u64>>>,
    /// Per-band buckets of the indexed collection.
    pub(crate) buckets: Vec<FastMap<u64, Vec<u32>>>,
}

impl MinHashArtifact {
    /// Approximate heap footprint for cache accounting.
    pub(crate) fn bytes(&self) -> usize {
        let sigs: usize = self
            .sigs2
            .iter()
            .flatten()
            .map(|s| std::mem::size_of::<Vec<u64>>() + s.len() * 8)
            .sum();
        let buckets: usize = self
            .buckets
            .iter()
            .flat_map(|b| b.values())
            .map(|ids| 8 + std::mem::size_of::<Vec<u32>>() + ids.len() * 4)
            .sum();
        sigs + buckets
    }
}

impl Filter for MinHashLsh {
    fn name(&self) -> String {
        "MH-LSH".to_owned()
    }

    fn repr_key(&self) -> String {
        format!(
            "mh:CL={}:k={}:b={}:r={}:s={:x}",
            if self.cleaning { "y" } else { "-" },
            self.shingle_k,
            self.bands,
            self.rows,
            self.seed
        )
    }

    fn prepare(&self, view: &TextView) -> Prepared {
        let cleaner = if self.cleaning {
            Cleaner::on()
        } else {
            Cleaner::off()
        };
        let mut breakdown = PhaseBreakdown::new();
        let (sigs1, sigs2) = breakdown.time_in(Stage::Prepare, "preprocess", || {
            let a: Vec<Option<Vec<u64>>> = view
                .e1
                .iter()
                .map(|t| self.signature(t, &cleaner))
                .collect();
            let b: Vec<Option<Vec<u64>>> = view
                .e2
                .iter()
                .map(|t| self.signature(t, &cleaner))
                .collect();
            (a, b)
        });

        // Buckets per band for the indexed collection E1.
        let buckets = breakdown.time_in(Stage::Prepare, "index", || {
            let mut buckets: Vec<FastMap<u64, Vec<u32>>> = vec![FastMap::default(); self.bands];
            for (i, sig) in sigs1.iter().enumerate() {
                let Some(sig) = sig else { continue };
                for (b, bucket) in buckets.iter_mut().enumerate() {
                    let key = Self::band_key(&sig[b * self.rows..(b + 1) * self.rows]);
                    bucket.entry(key).or_default().push(i as u32);
                }
            }
            buckets
        });
        let artifact = MinHashArtifact { sigs2, buckets };
        let bytes = artifact.bytes();
        Prepared::new(artifact, bytes, breakdown)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        let art = prepared.downcast::<MinHashArtifact>();
        let mut out = FilterOutput::default();
        out.breakdown.time("query", || {
            let mut candidates = CandidateSet::new();
            for (j, sig) in art.sigs2.iter().enumerate() {
                let Some(sig) = sig else { continue };
                for (b, bucket) in art.buckets.iter().enumerate() {
                    let key = Self::band_key(&sig[b * self.rows..(b + 1) * self.rows]);
                    if let Some(hits) = bucket.get(&key) {
                        for &i in hits {
                            candidates.insert_raw(i, j as u32);
                        }
                    }
                }
            }
            out.candidates = candidates;
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::candidates::Pair;

    fn lsh(bands: usize, rows: usize) -> MinHashLsh {
        MinHashLsh {
            cleaning: false,
            shingle_k: 3,
            bands,
            rows,
            seed: 42,
        }
    }

    #[test]
    fn identical_texts_always_collide() {
        let view = TextView {
            e1: vec!["the exact same product title".into()].into(),
            e2: vec!["the exact same product title".into()].into(),
        };
        let out = lsh(8, 4).run(&view);
        assert!(out.candidates.contains(Pair::new(0, 0)));
    }

    #[test]
    fn unrelated_texts_rarely_collide_with_many_rows() {
        let view = TextView {
            e1: vec!["canon digital camera powershot".into()].into(),
            e2: vec!["wooden kitchen table furniture".into()].into(),
        };
        // Few bands, many rows -> collisions only at high similarity.
        let out = lsh(2, 32).run(&view);
        assert!(out.candidates.is_empty());
    }

    #[test]
    fn many_bands_few_rows_recall_low_similarity() {
        // Near-duplicates with small edits should collide when the banding
        // approximates a low threshold.
        let view = TextView {
            e1: vec!["canon powershot a530 digital camera 5 mp".into()].into(),
            e2: vec!["canon powershot a530 digital camera 5mp kit".into()].into(),
        };
        let out = lsh(64, 2).run(&view);
        assert!(out.candidates.contains(Pair::new(0, 0)));
    }

    #[test]
    fn approximate_threshold_formula() {
        let low = lsh(64, 2).approximate_threshold();
        let high = lsh(2, 32).approximate_threshold();
        assert!(low < 0.2, "many bands/few rows -> low threshold, got {low}");
        assert!(
            high > 0.9,
            "few bands/many rows -> high threshold, got {high}"
        );
    }

    #[test]
    fn different_seeds_give_different_bucketing() {
        let view = TextView {
            e1: (0..30)
                .map(|i| format!("product number {i} with words"))
                .collect(),
            e2: (0..30)
                .map(|i| format!("product number {i} and words"))
                .collect(),
        };
        let a = MinHashLsh {
            seed: 1,
            ..lsh(8, 4)
        }
        .run(&view)
        .candidates
        .len();
        let b = MinHashLsh {
            seed: 2,
            ..lsh(8, 4)
        }
        .run(&view)
        .candidates
        .len();
        // Stochastic: counts usually differ; both must at least be sane.
        assert!(a > 0 && b > 0);
    }

    #[test]
    fn minhash_slots_estimate_jaccard() {
        // The fraction of agreeing signature slots is an unbiased
        // estimator of the shingle-set Jaccard similarity; with 256 slots
        // the estimate should land within ~0.1 of the true value.
        let lsh = MinHashLsh {
            cleaning: false,
            shingle_k: 3,
            bands: 32,
            rows: 8,
            seed: 123,
        };
        let cleaner = Cleaner::off();
        let a = "the quick brown fox jumps over the lazy dog";
        let b = "the quick brown fox jumps over a sleepy dog";
        let sig_a = lsh.signature(a, &cleaner).expect("sig a");
        let sig_b = lsh.signature(b, &cleaner).expect("sig b");
        let agree = sig_a.iter().zip(&sig_b).filter(|(x, y)| x == y).count() as f64;
        let estimated = agree / sig_a.len() as f64;

        // True Jaccard over 3-shingles.
        let sh = |s: &str| -> std::collections::HashSet<String> {
            kshingles(s, 3).into_iter().collect()
        };
        let (sa, sb) = (sh(a), sh(b));
        let inter = sa.intersection(&sb).count() as f64;
        let union = sa.union(&sb).count() as f64;
        let truth = inter / union;
        assert!(
            (estimated - truth).abs() < 0.12,
            "estimated {estimated:.3} vs true {truth:.3}"
        );
        // Identical inputs agree on every slot.
        let again = lsh.signature(a, &cleaner).expect("sig");
        assert_eq!(sig_a, again);
    }

    #[test]
    fn empty_texts_never_pair() {
        let view = TextView {
            e1: vec!["".into(), "real text".into()].into(),
            e2: vec!["".into()].into(),
        };
        let out = lsh(4, 4).run(&view);
        assert!(out.candidates.is_empty());
    }

    #[test]
    fn phases_recorded() {
        let view = TextView {
            e1: vec!["a b c".into()].into(),
            e2: vec!["a b d".into()].into(),
        };
        let out = lsh(4, 2).run(&view);
        for phase in ["preprocess", "index", "query"] {
            assert!(out.breakdown.get(phase).is_some());
        }
    }
}
