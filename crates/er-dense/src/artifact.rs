//! Shared prepare-stage artifacts for the dense NN filters.
//!
//! The expensive part of every dense method is embedding the two
//! collections and building the vector index; the per-grid-point
//! parameters (`K`, radius, probes) only steer the query stage. The
//! helpers here key and build the common embed+index artifact so the
//! optimizer sweeps prepare it exactly once per representation
//! configuration (see DESIGN.md §9).

use crate::embed::{EmbeddingConfig, HashEmbedder};
use crate::flat::{FlatIndex, Metric};
use er_core::filter::Prepared;
use er_core::parallel;
use er_core::schema::TextView;
use er_core::timing::{PhaseBreakdown, Stage};
use er_text::Cleaner;

/// `y`/`-` flag rendering shared by all representation keys.
pub fn flag(on: bool) -> &'static str {
    if on {
        "y"
    } else {
        "-"
    }
}

/// Compact key fragment identifying an embedding space.
pub fn emb_key(cfg: &EmbeddingConfig) -> String {
    format!(
        "d{}g{}-{}s{:x}",
        cfg.dim, cfg.ngram_min, cfg.ngram_max, cfg.seed
    )
}

/// Approximate heap footprint of a vector collection.
pub fn vecs_bytes(vs: &[Vec<f32>]) -> usize {
    vs.iter()
        .map(|v| std::mem::size_of::<Vec<f32>>() + v.len() * std::mem::size_of::<f32>())
        .sum()
}

/// The embedded view plus an exact flat index over the index side —
/// shared by [`crate::flat::FlatKnn`], [`crate::flat::FlatRange`] and
/// (with its own key) [`crate::deepblocker::DeepBlocker`].
pub struct DenseIndexArtifact {
    /// Flat L2² index over the indexed collection's embeddings.
    pub index: FlatIndex,
    /// Query-side embeddings, in collection order.
    pub queries: Vec<Vec<f32>>,
}

impl DenseIndexArtifact {
    /// Representation key of the plain embed+flat-index artifact: the
    /// radius and `K` sweeps of a fixed embedding configuration share it.
    pub fn repr_key(cleaning: bool, embedding: &EmbeddingConfig, reversed: bool) -> String {
        format!(
            "dense:flat:CL={}:RVS={}:{}",
            flag(cleaning),
            flag(reversed),
            emb_key(embedding)
        )
    }

    /// Embeds both sides and builds the flat index (both prepare-stage
    /// phases, named exactly as the monolithic runs named them).
    pub fn prepare(
        view: &TextView,
        cleaning: bool,
        embedding: EmbeddingConfig,
        reversed: bool,
    ) -> Prepared {
        let cleaner = if cleaning {
            Cleaner::on()
        } else {
            Cleaner::off()
        };
        let embedder = HashEmbedder::new(embedding);
        let (index_texts, query_texts) = if reversed {
            (&view.e2, &view.e1)
        } else {
            (&view.e1, &view.e2)
        };
        let mut breakdown = PhaseBreakdown::new();
        let (index_vecs, queries) = breakdown.time_in(Stage::Prepare, "preprocess", || {
            let a: Vec<Vec<f32>> = parallel::par_map(index_texts, |t| embedder.embed(t, &cleaner));
            let b: Vec<Vec<f32>> = parallel::par_map(query_texts, |t| embedder.embed(t, &cleaner));
            (a, b)
        });
        let index = breakdown.time_in(Stage::Prepare, "index", || {
            FlatIndex::build(index_vecs, Metric::L2Sq)
        });
        let bytes = index.heap_bytes() + vecs_bytes(&queries);
        Prepared::new(DenseIndexArtifact { index, queries }, bytes, breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repr_key_distinguishes_flags_and_embedding() {
        let a = EmbeddingConfig::default();
        let b = EmbeddingConfig {
            dim: 32,
            ..Default::default()
        };
        assert_ne!(
            DenseIndexArtifact::repr_key(false, &a, false),
            DenseIndexArtifact::repr_key(true, &a, false)
        );
        assert_ne!(
            DenseIndexArtifact::repr_key(false, &a, false),
            DenseIndexArtifact::repr_key(false, &a, true)
        );
        assert_ne!(
            DenseIndexArtifact::repr_key(false, &a, false),
            DenseIndexArtifact::repr_key(false, &b, false)
        );
    }

    #[test]
    fn prepare_embeds_and_indexes_both_sides() {
        let view = TextView {
            e1: vec!["canon camera".into(), "office chair".into()].into(),
            e2: vec!["canon camera body".into()].into(),
        };
        let cfg = EmbeddingConfig {
            dim: 16,
            ..Default::default()
        };
        let prepared = DenseIndexArtifact::prepare(&view, false, cfg, false);
        let art = prepared.downcast::<DenseIndexArtifact>();
        assert_eq!(art.index.len(), 2);
        assert_eq!(art.queries.len(), 1);
        assert!(prepared.bytes() > 0);
        assert!(prepared.breakdown().get("preprocess").is_some());
        assert!(prepared.breakdown().get("index").is_some());

        let rev = DenseIndexArtifact::prepare(&view, false, cfg, true);
        let rev_art = rev.downcast::<DenseIndexArtifact>();
        assert_eq!(rev_art.index.len(), 1);
        assert_eq!(rev_art.queries.len(), 2);
    }
}
