//! u8 scalar quantization of [`FlatVectors`] rows with *conservative*
//! cost lower bounds, for the quantize-then-rescore flat scan.
//!
//! Each row is affinely quantized on its own range: `v_i ≈ vlo + c_i·vs`
//! with `c_i ∈ 0..=255`. A query is quantized the same way once per
//! search, and the u8×u8 integer dot product (exact in `u64`) yields an
//! approximate query–row cost plus a rigorous error budget. The budget
//! combines
//!
//! * the quantization residuals (`|v_i − v̂_i| ≤ ev_max`, likewise
//!   `eq_max` for the query),
//! * slop for the handful of f64 operations evaluating the bound, and
//! * the worst-case f32 accumulation error of the *exact* kernels in
//!   [`crate::vector`],
//!
//! so [`QuantizedVectors::lower_bound`] never exceeds the f32 cost the
//! exact kernel would compute. The flat scan therefore may skip a row
//! whenever the bound is strictly worse than the current k-th best cost:
//! the exact kernel value would have been strictly rejected by the
//! selection heap too, and the search result stays **bit-identical** to
//! the unquantized scan (see DESIGN.md §12 and the proptests). Bounds
//! only affect *speed* — a looser bound skips fewer rows, never changes a
//! result.
//!
//! Quantization is deterministic, so the sidecar is rebuilt from the f32
//! rows at store-decode time instead of being serialized.

use crate::flat::Metric;
use crate::vector::FlatVectors;

/// Relative slop absorbing f64 rounding in the bound evaluation
/// (generous: covers sums of up to ~10⁶ terms).
const F64_SLOP: f64 = 1e-10;
/// f32 unit roundoff, rounded up.
const EPS32: f64 = 1.2e-7;

/// Per-row quantization metadata; all f64 so bound evaluation never
/// rounds against us in f32.
#[derive(Debug, Clone)]
struct RowMeta {
    /// Affine offset: dequantized value of code 0.
    vlo: f64,
    /// Affine scale: value step per code increment.
    vs: f64,
    /// Upper bound on `max_i |v_i − (vlo + c_i·vs)|`.
    ev_max: f64,
    /// `Σ c_i` (exact).
    sum_cv: f64,
    /// Upper bound on `Σ |vlo + c_i·vs|`.
    sum_abs_vhat: f64,
    /// `max_i |v_i|` (exact).
    max_abs_v: f64,
    /// Lower bound on `Σ v_i²`.
    norm_sq_lo: f64,
}

/// Reusable quantized-query scratch; one lives inside each
/// [`crate::flat::KnnScratch`].
#[derive(Debug, Clone, Default)]
pub struct QuantQuery {
    codes: Vec<u8>,
    qlo: f64,
    qs: f64,
    eq_max: f64,
    sum_cq: f64,
    sum_abs_qhat: f64,
    /// Upper bound on `Σ |q_i|`, for the kernel-error term.
    sum_abs_q: f64,
    norm_sq_lo: f64,
}

/// u8 scalar-quantized sidecar of a [`FlatVectors`] store.
#[derive(Debug, Clone)]
pub struct QuantizedVectors {
    /// Row-major codes, `rows.len() × dim`.
    codes: Vec<u8>,
    rows: Vec<RowMeta>,
    dim: usize,
}

/// Quantizes one slice into `codes` (cleared first); returns
/// `(lo, step, err_max, sum_codes, sum_abs_hat)` or `None` on non-finite
/// input.
fn quantize_slice(v: &[f32], codes: &mut Vec<u8>) -> Option<(f64, f64, f64, f64, f64)> {
    codes.clear();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        if !x.is_finite() {
            return None;
        }
        lo = lo.min(f64::from(x));
        hi = hi.max(f64::from(x));
    }
    if v.is_empty() {
        return Some((0.0, 0.0, 0.0, 0.0, 0.0));
    }
    let step = (hi - lo) / 255.0;
    let mut err_max = 0.0f64;
    let mut sum_codes = 0u64;
    let mut sum_abs_hat = 0.0f64;
    for &x in v {
        let c = if step > 0.0 {
            ((f64::from(x) - lo) / step).round().clamp(0.0, 255.0) as u8
        } else {
            0
        };
        codes.push(c);
        let hat = lo + f64::from(c) * step;
        err_max = err_max.max((f64::from(x) - hat).abs());
        sum_codes += u64::from(c);
        sum_abs_hat += hat.abs();
    }
    Some((
        lo,
        step,
        err_max * (1.0 + F64_SLOP) + 1e-300,
        sum_codes as f64,
        sum_abs_hat * (1.0 + F64_SLOP) + 1e-300,
    ))
}

/// Lower bound on `Σ x_i²` of the f32 values, evaluated in f64.
fn norm_sq_lo(v: &[f32]) -> f64 {
    let s: f64 = v.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
    s * (1.0 - F64_SLOP)
}

impl QuantizedVectors {
    /// Builds the sidecar; `None` when there is nothing to quantize or
    /// any value is non-finite (the scan then stays fully exact).
    pub fn build(vectors: &FlatVectors) -> Option<Self> {
        if vectors.is_empty() || vectors.dim() == 0 {
            return None;
        }
        let dim = vectors.dim();
        let mut codes = Vec::with_capacity(vectors.len() * dim);
        let mut rows = Vec::with_capacity(vectors.len());
        let mut row_codes = Vec::with_capacity(dim);
        for r in 0..vectors.len() {
            let v = vectors.row(r);
            let (vlo, vs, ev_max, sum_cv, sum_abs_vhat) = quantize_slice(v, &mut row_codes)?;
            codes.extend_from_slice(&row_codes);
            rows.push(RowMeta {
                vlo,
                vs,
                ev_max,
                sum_cv,
                sum_abs_vhat,
                max_abs_v: v.iter().fold(0.0f64, |m, &x| m.max(f64::from(x).abs())),
                norm_sq_lo: norm_sq_lo(v),
            });
        }
        Some(Self { codes, rows, dim })
    }

    /// Exact heap footprint, for artifact-cache accounting.
    pub fn heap_bytes(&self) -> usize {
        self.codes.len() + self.rows.len() * std::mem::size_of::<RowMeta>()
    }

    /// Quantizes `query` into the reusable scratch; `false` when the
    /// query cannot be soundly quantized (dimension mismatch or
    /// non-finite values) and the caller must scan exactly.
    pub fn quantize_query(&self, query: &[f32], scratch: &mut QuantQuery) -> bool {
        if query.len() != self.dim {
            return false;
        }
        let mut codes = std::mem::take(&mut scratch.codes);
        let Some((qlo, qs, eq_max, sum_cq, sum_abs_qhat)) = quantize_slice(query, &mut codes)
        else {
            scratch.codes = codes;
            return false;
        };
        let sum_abs_q: f64 = query.iter().map(|&x| f64::from(x).abs()).sum();
        *scratch = QuantQuery {
            codes,
            qlo,
            qs,
            eq_max,
            sum_cq,
            sum_abs_qhat,
            sum_abs_q: sum_abs_q * (1.0 + F64_SLOP) + 1e-300,
            norm_sq_lo: norm_sq_lo(query),
        };
        true
    }

    /// Conservative lower bound on the f32 cost the exact kernel computes
    /// for (`query`, `row`) under `metric`. Soundness contract: the
    /// returned value never exceeds `f64::from(FlatIndex::cost(...))`,
    /// so `lower_bound > worst` proves the selection heap would strictly
    /// reject the row.
    pub fn lower_bound(&self, q: &QuantQuery, row: usize, metric: Metric) -> f64 {
        let m = &self.rows[row];
        let cv = &self.codes[row * self.dim..row * self.dim + self.dim];
        // Exact integer dot product of the codes.
        let mut ip = 0u64;
        for (&a, &b) in q.codes.iter().zip(cv) {
            ip += u64::from(a) * u64::from(b);
        }
        let d = self.dim as f64;
        // ⟨q̂, v̂⟩ expanded over the affine forms; each term exact up to
        // f64 rounding, covered by `mag · F64_SLOP`.
        let t1 = d * q.qlo * m.vlo;
        let t2 = q.qlo * m.vs * m.sum_cv;
        let t3 = m.vlo * q.qs * q.sum_cq;
        let t4 = q.qs * m.vs * (ip as f64);
        let dot_hat = t1 + t2 + t3 + t4;
        let mag = t1.abs() + t2.abs() + t3.abs() + t4.abs();
        // |⟨q,v⟩ − ⟨q̂,v̂⟩| ≤ ev·Σ|q̂| + eq·Σ|v̂| + d·eq·ev.
        let err = m.ev_max * q.sum_abs_qhat + q.eq_max * m.sum_abs_vhat + d * q.eq_max * m.ev_max;
        // Upper bound on the exact real dot product.
        let ub_dot = dot_hat + (err + mag * F64_SLOP) * (1.0 + F64_SLOP) + 1e-20;
        // Worst-case f32 accumulation error of the exact kernels
        // (standard γ_n bound with a 4× safety factor).
        let kern = 4.0 * (d + 8.0) * EPS32 * q.sum_abs_q * (m.max_abs_v + 1e-300);
        match metric {
            Metric::Dot => -(ub_dot + kern) - 1e-20,
            Metric::L2Sq => {
                let base = q.norm_sq_lo + m.norm_sq_lo - 2.0 * ub_dot;
                if base <= 0.0 {
                    0.0
                } else {
                    let gamma = 4.0 * (d + 8.0) * EPS32;
                    (base * (1.0 - gamma) - 1e-30).max(0.0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64, scale: f32) -> Vec<f32> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (((state >> 40) as f32 / 8388608.0) - 1.0) * scale
            })
            .collect()
    }

    #[test]
    fn non_finite_rows_disable_quantization() {
        let fv = FlatVectors::from_rows(&[vec![1.0, f32::NAN], vec![0.0, 1.0]]);
        assert!(QuantizedVectors::build(&fv).is_none());
        let inf = FlatVectors::from_rows(&[vec![1.0, f32::INFINITY]]);
        assert!(QuantizedVectors::build(&inf).is_none());
        assert!(QuantizedVectors::build(&FlatVectors::with_dim(4)).is_none());
    }

    #[test]
    fn non_finite_query_falls_back_to_exact() {
        let fv = FlatVectors::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0]]);
        let qv = QuantizedVectors::build(&fv).expect("finite rows");
        let mut qq = QuantQuery::default();
        assert!(!qv.quantize_query(&[f32::NAN, 0.0], &mut qq));
        assert!(
            !qv.quantize_query(&[1.0, 2.0, 3.0], &mut qq),
            "dim mismatch"
        );
        assert!(qv.quantize_query(&[1.0, 2.0], &mut qq));
    }

    #[test]
    fn lower_bound_never_exceeds_exact_cost() {
        // The soundness contract, brute-forced over random rows/queries at
        // several dimensions and magnitudes, for both metrics.
        for (dim, scale) in [(3usize, 1.0f32), (8, 100.0), (17, 0.01), (64, 5.0)] {
            let rows: Vec<Vec<f32>> = (0..40)
                .map(|r| pseudo_random(dim, 1000 + r, scale))
                .collect();
            let fv = FlatVectors::from_rows(&rows);
            let qv = QuantizedVectors::build(&fv).expect("finite rows");
            let mut qq = QuantQuery::default();
            for s in 0..10u64 {
                let q = pseudo_random(dim, 77 + s, scale);
                assert!(qv.quantize_query(&q, &mut qq));
                for (r, row) in rows.iter().enumerate() {
                    let exact_dot = -crate::vector::dot(&q, row);
                    let exact_l2 = crate::vector::l2_sq(&q, row);
                    let lb_dot = qv.lower_bound(&qq, r, Metric::Dot);
                    let lb_l2 = qv.lower_bound(&qq, r, Metric::L2Sq);
                    assert!(
                        lb_dot <= f64::from(exact_dot),
                        "dot dim={dim} scale={scale} row={r}: {lb_dot} > {exact_dot}"
                    );
                    assert!(
                        lb_l2 <= f64::from(exact_l2),
                        "l2 dim={dim} scale={scale} row={r}: {lb_l2} > {exact_l2}"
                    );
                    assert!(lb_l2 >= 0.0);
                }
            }
        }
    }

    #[test]
    fn bounds_are_tight_enough_to_prune() {
        // On well-spread data the bound must sit close to the exact cost,
        // otherwise the quantized scan never skips anything. Accept a few
        // percent of the cost magnitude at dim 64.
        let dim = 64;
        let rows: Vec<Vec<f32>> = (0..50).map(|r| pseudo_random(dim, 5 + r, 1.0)).collect();
        let fv = FlatVectors::from_rows(&rows);
        let qv = QuantizedVectors::build(&fv).expect("finite rows");
        let mut qq = QuantQuery::default();
        let q = pseudo_random(dim, 999, 1.0);
        assert!(qv.quantize_query(&q, &mut qq));
        for (r, row) in rows.iter().enumerate() {
            let exact = f64::from(crate::vector::l2_sq(&q, row));
            let lb = qv.lower_bound(&qq, r, Metric::L2Sq);
            assert!(
                exact - lb <= 0.08 * exact.max(1.0),
                "row {r}: bound {lb} too loose for exact {exact}"
            );
        }
    }

    #[test]
    fn constant_rows_quantize_exactly() {
        let fv = FlatVectors::from_rows(&[vec![2.5; 16], vec![-1.0; 16]]);
        let qv = QuantizedVectors::build(&fv).expect("finite rows");
        let mut qq = QuantQuery::default();
        assert!(qv.quantize_query(&[2.5; 16], &mut qq));
        // Identical constant vectors: the L2 bound must be ~0, not negative.
        let lb = qv.lower_bound(&qq, 0, Metric::L2Sq);
        assert!((0.0..=1e-6).contains(&lb));
    }

    #[test]
    fn heap_bytes_counts_codes_and_metadata() {
        let fv = FlatVectors::from_rows(&vec![vec![0.0; 10]; 4]);
        let qv = QuantizedVectors::build(&fv).expect("finite rows");
        assert_eq!(qv.heap_bytes(), 4 * 10 + 4 * std::mem::size_of::<RowMeta>());
    }
}
