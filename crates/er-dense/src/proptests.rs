//! Property-based tests of the dense NN substrate.

#![cfg(test)]

use crate::embed::{EmbeddingConfig, HashEmbedder};
use crate::flat::{FlatIndex, Metric};
use crate::partitioned::{assign, kmeans};
use crate::pq::ProductQuantizer;
use crate::vector::{cosine, dot, l2_sq, normalize};
use er_text::Cleaner;
use proptest::prelude::*;

fn arb_vec(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, dim)
}

proptest! {
    /// Normalization yields unit vectors (or zero), preserving direction.
    #[test]
    fn normalize_properties(v in arb_vec(8)) {
        let mut n = v.clone();
        normalize(&mut n);
        let norm = dot(&n, &n).sqrt();
        if v.iter().any(|&x| x != 0.0) {
            prop_assert!((norm - 1.0).abs() < 1e-4, "norm {}", norm);
            prop_assert!(cosine(&v, &n) > 1.0 - 1e-4);
        } else {
            prop_assert_eq!(norm, 0.0);
        }
    }

    /// L2 distance satisfies identity and symmetry; dot is bilinear-ish.
    #[test]
    fn metric_axioms(a in arb_vec(6), b in arb_vec(6)) {
        prop_assert_eq!(l2_sq(&a, &a), 0.0);
        prop_assert!((l2_sq(&a, &b) - l2_sq(&b, &a)).abs() < 1e-3);
        prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-3);
        prop_assert!(l2_sq(&a, &b) >= 0.0);
    }

    /// Exact kNN returns the same top-1 as a linear scan and respects k.
    #[test]
    fn flat_knn_exact(
        data in proptest::collection::vec(arb_vec(4), 1..20),
        query in arb_vec(4),
        k in 1usize..6,
    ) {
        let idx = FlatIndex::build(data.clone(), Metric::L2Sq);
        let nn = idx.knn(&query, k);
        prop_assert_eq!(nn.len(), k.min(data.len()));
        // Best-first ordering.
        for w in nn.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        // Top-1 matches the linear scan minimum.
        let best_cost = data.iter().map(|v| l2_sq(&query, v)).fold(f32::INFINITY, f32::min);
        prop_assert!((nn[0].1 - best_cost).abs() < 1e-3);
    }

    /// k-means: every point is assigned to its nearest centroid, and the
    /// centroid count is clamped correctly.
    #[test]
    fn kmeans_assignment_consistent(
        data in proptest::collection::vec(arb_vec(3), 1..25),
        k in 1usize..8,
    ) {
        let centroids = kmeans(&data, k, 5, 42);
        prop_assert_eq!(centroids.len(), k.min(data.len()));
        let assignment = assign(&data, &centroids);
        for (v, &a) in data.iter().zip(&assignment) {
            let assigned = l2_sq(v, &centroids[a]);
            for c in &centroids {
                prop_assert!(assigned <= l2_sq(v, c) + 1e-3);
            }
        }
    }

    /// PQ round trip: encode produces m codes within codebook range, and
    /// the LUT score of a vector's own code is bounded by its true
    /// distance to any codebook reconstruction.
    #[test]
    fn pq_codes_valid(
        data in proptest::collection::vec(arb_vec(8), 4..30),
        m in 1usize..5,
    ) {
        let pq = ProductQuantizer::train(&data, m, 3);
        for v in data.iter().take(5) {
            let code = pq.encode(v);
            prop_assert_eq!(code.len(), m);
            prop_assert!(code.iter().all(|&c| (c as usize) < crate::pq::CODEBOOK_SIZE));
            // Own-code reconstruction is the nearest codebook point per
            // subspace, so no other code scores lower for this query.
            let table = pq.lookup_table(v, false);
            let own = pq.score(&table, &code);
            for other in data.iter().take(5) {
                let other_code = pq.encode(other);
                prop_assert!(pq.score(&table, &other_code) >= own - 1e-3);
            }
        }
    }

    /// The quantize-then-rescore scan returns *bit-identical* results to
    /// the always-exact unquantized index, for both metrics, serially and
    /// through the parallel batch fan-out.
    #[test]
    fn quantized_rescore_matches_exact_scan(
        data in proptest::collection::vec(arb_vec(6), 1..40),
        queries in proptest::collection::vec(arb_vec(6), 1..8),
        k in 1usize..10,
    ) {
        for metric in [Metric::L2Sq, Metric::Dot] {
            let quantized = FlatIndex::build_quantized(data.clone(), metric);
            let exact = FlatIndex::build_unquantized(data.clone(), metric);
            for threads in [1usize, 8] {
                let a = quantized.knn_batch_with(threads, &queries, k);
                let b = exact.knn_batch_with(threads, &queries, k);
                prop_assert_eq!(a.len(), b.len());
                for (qa, qb) in a.iter().zip(&b) {
                    prop_assert_eq!(qa.len(), qb.len());
                    for (x, y) in qa.iter().zip(qb) {
                        prop_assert_eq!(x.0, y.0, "{:?} threads={}", metric, threads);
                        prop_assert_eq!(
                            x.1.to_bits(), y.1.to_bits(),
                            "{:?} threads={}", metric, threads
                        );
                    }
                }
            }
        }
    }

    /// Embeddings are deterministic unit vectors; permutation of tokens
    /// leaves the embedding unchanged (mean aggregation).
    #[test]
    fn embedding_invariants(words in proptest::collection::vec("[a-f]{1,8}", 1..5)) {
        let embedder = HashEmbedder::new(EmbeddingConfig { dim: 32, ..Default::default() });
        let text = words.join(" ");
        let v = embedder.embed(&text, &Cleaner::off());
        prop_assert!((dot(&v, &v).sqrt() - 1.0).abs() < 1e-4);
        let mut reversed_words = words.clone();
        reversed_words.reverse();
        let rv = embedder.embed(&reversed_words.join(" "), &Cleaner::off());
        prop_assert!(cosine(&v, &rv) > 1.0 - 1e-4, "word order must not matter");
    }
}
