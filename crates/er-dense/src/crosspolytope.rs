//! Cross-Polytope LSH (paper §IV-D; Andoni et al., NIPS 2015 / FALCONN).
//!
//! A cross-polytope hash applies a random rotation to the (unit) vector and
//! returns the closest vertex of the cross-polytope `{±e_i}` — i.e. the
//! signed index of the largest-magnitude rotated coordinate. Partitions are
//! the Voronoi cells of a randomly rotated cross-polytope; with one
//! dimension this degenerates to Hyperplane LSH. The `last cp dimension`
//! parameter truncates the rotated space of the last hash function,
//! trading granularity for collision probability, exactly as in FALCONN.
//! Multiprobe visits the vertices with the next-largest coordinates.

use crate::artifact::{emb_key, flag, vecs_bytes};
use crate::embed::{EmbeddingConfig, HashEmbedder};
use crate::vector::{dot, FlatVectors};
use er_core::candidates::CandidateSet;
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::hash::FastMap;
use er_core::schema::TextView;
use er_core::timing::{PhaseBreakdown, Stage};
use er_text::Cleaner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A configured Cross-Polytope LSH filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossPolytopeLsh {
    /// Apply stop-word removal + stemming (`CL`).
    pub cleaning: bool,
    /// Number of hash tables (cross-polytopes).
    pub tables: usize,
    /// Hash functions concatenated per table.
    pub hashes: usize,
    /// Rotated dimensionality of the *last* hash function per table
    /// (`last cp dimension`); earlier hashes use the full dimension.
    pub last_cp_dim: usize,
    /// Vertices probed for the last hash function (1 = exact vertex only).
    pub probes: usize,
    /// Embedding configuration.
    pub embedding: EmbeddingConfig,
    /// Rotation sampling seed (the method's stochasticity).
    pub seed: u64,
}

impl CrossPolytopeLsh {
    /// One-line configuration description for Table X-style reports.
    pub fn describe(&self) -> String {
        format!(
            "CL={} tables={} hashes={} cpdim={} probes={}",
            if self.cleaning { "y" } else { "-" },
            self.tables,
            self.hashes,
            self.last_cp_dim,
            self.probes
        )
    }
}

/// A random rotation: `rows × dim` Gaussian matrix (a true orthogonal
/// rotation is unnecessary — Gaussian projections preserve the argmax
/// statistics LSH relies on, which is the standard FALCONN shortcut for
/// dimension-reducing final hashes).
pub(crate) struct Rotation {
    pub(crate) rows: FlatVectors,
}

impl Rotation {
    fn sample(rows: usize, dim: usize, rng: &mut StdRng) -> Self {
        let mut packed = FlatVectors::with_dim(dim);
        let mut row = vec![0.0f32; dim];
        for _ in 0..rows {
            for x in &mut row {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                *x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            }
            packed.push_row(&row);
        }
        Self { rows: packed }
    }

    /// Rotated coordinates of `v`.
    fn apply(&self, v: &[f32]) -> Vec<f32> {
        (0..self.rows.len())
            .map(|r| dot(self.rows.row(r), v))
            .collect()
    }
}

/// The signed-argmax vertex id of rotated coordinates: `2i` for `+e_i`,
/// `2i + 1` for `−e_i`.
fn vertex(rotated: &[f32]) -> u32 {
    let mut best = 0usize;
    let mut best_mag = -1.0f32;
    for (i, &c) in rotated.iter().enumerate() {
        if c.abs() > best_mag {
            best_mag = c.abs();
            best = i;
        }
    }
    (2 * best as u32) + u32::from(rotated[best] < 0.0)
}

/// Vertex ids in descending coordinate magnitude (the multiprobe order).
fn vertex_sequence(rotated: &[f32], probes: usize) -> Vec<u32> {
    let mut order: Vec<usize> = (0..rotated.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        rotated[b]
            .abs()
            .partial_cmp(&rotated[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Each coordinate contributes its signed vertex first, then the
    // opposite sign vertex (much less likely, visited late).
    let mut out = Vec::with_capacity(probes);
    for &i in &order {
        if out.len() >= probes {
            break;
        }
        out.push((2 * i as u32) + u32::from(rotated[i] < 0.0));
    }
    for &i in &order {
        if out.len() >= probes {
            break;
        }
        out.push((2 * i as u32) + u32::from(rotated[i] >= 0.0));
    }
    out
}

/// One table: `hashes − 1` full-dimension rotations plus a final rotation
/// truncated to `last_cp_dim` rows.
pub(crate) struct Table {
    pub(crate) leading: Vec<Rotation>,
    pub(crate) last: Rotation,
}

impl Table {
    /// The concatenated key of the leading hashes (the last hash is handled
    /// separately for multiprobe).
    fn leading_key(&self, v: &[f32]) -> u64 {
        let mut key = 0xcbf2_9ce4_8422_2325u64;
        for rot in &self.leading {
            let vtx = vertex(&rot.apply(v));
            key = er_core::hash::mix64(key ^ u64::from(vtx));
        }
        key
    }
}

/// The prepare-stage artifact: sampled rotations, `E1` buckets and the
/// query-side embeddings. Only the probe count stays in the query stage.
pub struct CrossPolytopeArtifact {
    pub(crate) tables: Vec<Table>,
    pub(crate) buckets: Vec<FastMap<u64, Vec<u32>>>,
    pub(crate) queries: Vec<Vec<f32>>,
}

impl CrossPolytopeArtifact {
    /// Approximate heap footprint for cache accounting.
    pub(crate) fn bytes(&self) -> usize {
        let rotations: usize = self
            .tables
            .iter()
            .flat_map(|t| t.leading.iter().chain(std::iter::once(&t.last)))
            .map(|r| r.rows.heap_bytes())
            .sum();
        let buckets: usize = self
            .buckets
            .iter()
            .flat_map(|b| b.values())
            .map(|ids| 8 + std::mem::size_of::<Vec<u32>>() + ids.len() * 4)
            .sum();
        rotations + buckets + vecs_bytes(&self.queries)
    }
}

impl Filter for CrossPolytopeLsh {
    fn name(&self) -> String {
        "CP-LSH".to_owned()
    }

    fn repr_key(&self) -> String {
        format!(
            "cp:CL={}:T={}:H={}:cpd={}:s={:x}:{}",
            flag(self.cleaning),
            self.tables,
            self.hashes,
            self.last_cp_dim,
            self.seed,
            emb_key(&self.embedding)
        )
    }

    fn prepare(&self, view: &TextView) -> Prepared {
        assert!(self.hashes >= 1, "at least one hash function required");
        assert!(self.last_cp_dim >= 1, "last cp dimension must be positive");
        let cleaner = if self.cleaning {
            Cleaner::on()
        } else {
            Cleaner::off()
        };
        let embedder = HashEmbedder::new(self.embedding);
        let mut breakdown = PhaseBreakdown::new();

        let (v1, queries) = breakdown.time_in(Stage::Prepare, "preprocess", || {
            embedder.embed_view(view, &cleaner)
        });

        let dim = self.embedding.dim;
        let cp_dim = self.last_cp_dim.min(dim);
        let (tables, buckets) = breakdown.time_in(Stage::Prepare, "index", || {
            let mut rng = StdRng::seed_from_u64(self.seed);
            let tables: Vec<Table> = (0..self.tables)
                .map(|_| Table {
                    leading: (0..self.hashes - 1)
                        .map(|_| Rotation::sample(dim.min(32), dim, &mut rng))
                        .collect(),
                    last: Rotation::sample(cp_dim, dim, &mut rng),
                })
                .collect();
            let mut buckets: Vec<FastMap<u64, Vec<u32>>> = vec![FastMap::default(); self.tables];
            for (i, v) in v1.iter().enumerate() {
                if v.iter().all(|&x| x == 0.0) {
                    continue;
                }
                for (t, table) in tables.iter().enumerate() {
                    let lead = table.leading_key(v);
                    let vtx = vertex(&table.last.apply(v));
                    let key = er_core::hash::mix64(lead ^ u64::from(vtx));
                    buckets[t].entry(key).or_default().push(i as u32);
                }
            }
            (tables, buckets)
        });
        let artifact = CrossPolytopeArtifact {
            tables,
            buckets,
            queries,
        };
        let bytes = artifact.bytes();
        Prepared::new(artifact, bytes, breakdown)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        let art = prepared.downcast::<CrossPolytopeArtifact>();
        let mut out = FilterOutput::default();
        out.breakdown.time("query", || {
            let mut candidates = CandidateSet::new();
            for (j, v) in art.queries.iter().enumerate() {
                if v.iter().all(|&x| x == 0.0) {
                    continue;
                }
                for (t, table) in art.tables.iter().enumerate() {
                    let lead = table.leading_key(v);
                    let rotated = table.last.apply(v);
                    for vtx in vertex_sequence(&rotated, self.probes.max(1)) {
                        let key = er_core::hash::mix64(lead ^ u64::from(vtx));
                        if let Some(hits) = art.buckets[t].get(&key) {
                            for &i in hits {
                                candidates.insert_raw(i, j as u32);
                            }
                        }
                    }
                }
            }
            out.candidates = candidates;
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::candidates::Pair;

    fn lsh(tables: usize, hashes: usize, cp_dim: usize, probes: usize) -> CrossPolytopeLsh {
        CrossPolytopeLsh {
            cleaning: false,
            tables,
            hashes,
            last_cp_dim: cp_dim,
            probes,
            embedding: EmbeddingConfig {
                dim: 64,
                ..Default::default()
            },
            seed: 9,
        }
    }

    #[test]
    fn vertex_picks_signed_argmax() {
        assert_eq!(vertex(&[0.1, -0.9, 0.3]), 3, "-e_1");
        assert_eq!(vertex(&[0.5, 0.2]), 0, "+e_0");
        assert_eq!(vertex(&[-0.5]), 1, "-e_0");
    }

    #[test]
    fn vertex_sequence_orders_by_magnitude() {
        let seq = vertex_sequence(&[0.1, -0.9, 0.3], 3);
        assert_eq!(seq, vec![3, 4, 0]);
        // Requesting more probes than 2*dim caps at all vertices.
        let all = vertex_sequence(&[0.1, -0.9], 10);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn identical_vectors_always_collide() {
        let view = TextView {
            e1: vec!["olympus stylus camera".into()].into(),
            e2: vec!["olympus stylus camera".into()].into(),
        };
        let out = lsh(4, 2, 16, 1).run(&view);
        assert!(out.candidates.contains(Pair::new(0, 0)));
    }

    #[test]
    fn more_probes_never_reduce_candidates() {
        let view = TextView {
            e1: (0..40).map(|i| format!("gadget {i} pro max")).collect(),
            e2: (0..10).map(|i| format!("gadget {i} pro")).collect(),
        };
        let base = lsh(2, 2, 16, 1).run(&view).candidates.len();
        let probed = lsh(2, 2, 16, 8).run(&view).candidates.len();
        assert!(probed >= base, "{probed} < {base}");
    }

    #[test]
    fn more_hashes_make_buckets_finer() {
        let view = TextView {
            e1: (0..50).map(|i| format!("alpha {i} beta")).collect(),
            e2: (0..50).map(|i| format!("alpha {i} gamma")).collect(),
        };
        let coarse = lsh(1, 1, 4, 1).run(&view).candidates.len();
        let fine = lsh(1, 4, 4, 1).run(&view).candidates.len();
        assert!(fine <= coarse, "{fine} > {coarse}");
    }

    #[test]
    fn probe_sweep_shares_one_artifact() {
        let view = TextView {
            e1: (0..40).map(|i| format!("gadget {i} pro max")).collect(),
            e2: (0..10).map(|i| format!("gadget {i} pro")).collect(),
        };
        assert_eq!(lsh(2, 2, 16, 1).repr_key(), lsh(2, 2, 16, 8).repr_key());
        assert_ne!(lsh(2, 2, 16, 1).repr_key(), lsh(2, 2, 8, 1).repr_key());
        let prepared = lsh(2, 2, 16, 1).prepare(&view);
        for probes in [1, 4, 8] {
            let f = lsh(2, 2, 16, probes);
            assert_eq!(
                f.query(&view, &prepared).candidates.to_sorted_vec(),
                f.run(&view).candidates.to_sorted_vec(),
                "probes={probes}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let view = TextView {
            e1: (0..20).map(|i| format!("widget {i}")).collect(),
            e2: (0..20).map(|i| format!("widget {i}x")).collect(),
        };
        let a = lsh(2, 2, 8, 2).run(&view).candidates.to_sorted_vec();
        let b = lsh(2, 2, 8, 2).run(&view).candidates.to_sorted_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_texts_skipped() {
        let view = TextView {
            e1: vec!["".into()].into(),
            e2: vec!["anything".into()].into(),
        };
        assert!(lsh(2, 2, 8, 1).run(&view).candidates.is_empty());
    }
}
