//! Deterministic feature-hashed character-n-gram embeddings.
//!
//! The paper's dense NN methods use pre-trained 300-dimensional fastText
//! vectors, whose key property for ER is *subword composition*: a token's
//! vector is the sum of its character n-gram vectors, which makes typo'd
//! and out-of-vocabulary tokens land near their clean forms. We reproduce
//! that property without external model files: each character n-gram
//! (n ∈ [3, 5], plus the whole token) hashes to a dimension index and a
//! sign; a token is the signed sum of its n-gram one-hot vectors; an entity
//! is the normalized mean of its token vectors — exactly the "average tuple
//! embedding" the paper says FAISS and SCANN use. See DESIGN.md
//! (substitutions) for the rationale.

use er_core::hash::hash_str_seeded;
use er_core::schema::TextView;
use er_text::Cleaner;

use crate::vector::normalize;

/// Embedder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmbeddingConfig {
    /// Vector dimensionality (paper: 300).
    pub dim: usize,
    /// Smallest subword n-gram length (fastText default: 3).
    pub ngram_min: usize,
    /// Largest subword n-gram length (fastText uses 6; 5 keeps the hot loop
    /// cheaper with no observable effect at our scales).
    pub ngram_max: usize,
    /// Hash seed; fixed per study so embeddings are reproducible.
    pub seed: u64,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        Self {
            dim: 300,
            ngram_min: 3,
            ngram_max: 5,
            seed: 0x5eed,
        }
    }
}

/// A deterministic text-to-vector embedder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashEmbedder {
    /// Configuration.
    pub config: EmbeddingConfig,
}

impl HashEmbedder {
    /// Creates an embedder.
    pub fn new(config: EmbeddingConfig) -> Self {
        assert!(config.dim > 0, "embedding dimension must be positive");
        assert!(
            config.ngram_min >= 1 && config.ngram_min <= config.ngram_max,
            "invalid n-gram range"
        );
        Self { config }
    }

    /// Adds the signed hashed n-grams of `token` into `acc`.
    ///
    /// Digit-bearing n-grams are strongly down-weighted: pre-trained
    /// subword embeddings represent numbers and alphanumeric identifiers
    /// poorly (they are rare and carry no distributional semantics), which
    /// is precisely why the paper finds semantic representations introduce
    /// false positives on ER data full of model codes and years. The
    /// down-weighting reproduces that failure mode.
    fn add_token(&self, token: &str, acc: &mut [f32]) {
        const DIGIT_WEIGHT: f32 = 0.15;
        let chars: Vec<char> = token.chars().collect();
        let dim = self.config.dim as u64;
        let mut add = |gram: &str| {
            let h = hash_str_seeded(gram, self.config.seed);
            let idx = (h % dim) as usize;
            let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
            let weight = if gram.bytes().any(|b| b.is_ascii_digit()) {
                DIGIT_WEIGHT
            } else {
                1.0
            };
            acc[idx] += sign * weight;
        };
        // Whole-token feature (fastText includes the word itself).
        add(token);
        let mut buf = String::new();
        for n in self.config.ngram_min..=self.config.ngram_max {
            if chars.len() < n {
                break;
            }
            for window in chars.windows(n) {
                buf.clear();
                buf.extend(window.iter());
                add(&buf);
            }
        }
    }

    /// Embeds one entity text: normalized mean of its token vectors.
    ///
    /// Empty texts produce the zero vector (such entities never become
    /// nearest neighbors, matching how coverage losses surface in the
    /// schema-based settings).
    pub fn embed(&self, text: &str, cleaner: &Cleaner) -> Vec<f32> {
        let tokens = cleaner.clean_to_tokens(text);
        let mut acc = vec![0.0f32; self.config.dim];
        if tokens.is_empty() {
            return acc;
        }
        let mut token_vec = vec![0.0f32; self.config.dim];
        for token in &tokens {
            token_vec.iter_mut().for_each(|v| *v = 0.0);
            self.add_token(token, &mut token_vec);
            normalize(&mut token_vec);
            for (a, t) in acc.iter_mut().zip(&token_vec) {
                *a += t;
            }
        }
        for a in &mut acc {
            *a /= tokens.len() as f32;
        }
        normalize(&mut acc);
        acc
    }

    /// Embeds every entity of both collections of a view.
    pub fn embed_view(&self, view: &TextView, cleaner: &Cleaner) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let e1 = er_core::parallel::par_map(&view.e1, |t| self.embed(t, cleaner));
        let e2 = er_core::parallel::par_map(&view.e2, |t| self.embed(t, cleaner));
        (e1, e2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{cosine, dot};

    fn embedder() -> HashEmbedder {
        HashEmbedder::new(EmbeddingConfig {
            dim: 64,
            ..Default::default()
        })
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let v = embedder().embed("digital camera", &Cleaner::off());
        assert!((dot(&v, &v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let v = embedder().embed("", &Cleaner::off());
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn embedding_is_deterministic() {
        let e = embedder();
        assert_eq!(
            e.embed("canon powershot", &Cleaner::off()),
            e.embed("canon powershot", &Cleaner::off())
        );
    }

    #[test]
    fn typo_stays_closer_than_unrelated_token() {
        // Subword composition: "powershot" vs "powershor" share most
        // n-grams; "keyboard" shares none.
        let e = embedder();
        let clean = e.embed("powershot", &Cleaner::off());
        let typo = e.embed("powershor", &Cleaner::off());
        let other = e.embed("keyboard", &Cleaner::off());
        assert!(cosine(&clean, &typo) > cosine(&clean, &other) + 0.2);
    }

    #[test]
    fn shared_tokens_raise_similarity() {
        let e = embedder();
        let a = e.embed("canon eos camera", &Cleaner::off());
        let b = e.embed("canon eos body", &Cleaner::off());
        let c = e.embed("office chair black", &Cleaner::off());
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn seed_changes_space() {
        let a = HashEmbedder::new(EmbeddingConfig {
            dim: 64,
            seed: 1,
            ..Default::default()
        });
        let b = HashEmbedder::new(EmbeddingConfig {
            dim: 64,
            seed: 2,
            ..Default::default()
        });
        assert_ne!(
            a.embed("canon", &Cleaner::off()),
            b.embed("canon", &Cleaner::off())
        );
    }

    #[test]
    fn embed_view_shapes() {
        let view = TextView {
            e1: vec!["a b".into(), "c".into()].into(),
            e2: vec!["d".into()].into(),
        };
        let (v1, v2) = embedder().embed_view(&view, &Cleaner::off());
        assert_eq!(v1.len(), 2);
        assert_eq!(v2.len(), 1);
        assert!(v1.iter().all(|v| v.len() == 64));
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn zero_dim_rejected() {
        let _ = HashEmbedder::new(EmbeddingConfig {
            dim: 0,
            ..Default::default()
        });
    }
}
