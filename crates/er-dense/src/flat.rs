//! Exact brute-force kNN over dense vectors — the FAISS `Flat` index
//! equivalent (paper §IV-D).
//!
//! The paper reports that for this benchmark FAISS works best with the Flat
//! index on normalized embeddings with Euclidean distance, so [`FlatKnn`]
//! fixes exactly that configuration and exposes the `CL`, `RVS` and `K`
//! parameters of Table V.

use crate::embed::{EmbeddingConfig, HashEmbedder};
use er_core::filter::{Filter, FilterOutput};
use er_core::schema::TextView;
use er_text::Cleaner;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Ranking metric of a [`FlatIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Maximum dot product (SCANN's "DP").
    Dot,
    /// Minimum squared Euclidean distance (FAISS default; SCANN's "L2²").
    L2Sq,
}

/// A heap entry ordered so the *worst* kept neighbor is at the top.
#[derive(PartialEq)]
struct HeapItem {
    /// Larger = worse (distance, or negated dot product).
    cost: f32,
    id: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cost
            .partial_cmp(&other.cost)
            .unwrap_or(Ordering::Equal)
            // Among equal costs, keep the smaller id (pop larger first).
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An exact (brute-force) vector index.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    vectors: Vec<Vec<f32>>,
    metric: Metric,
}

impl FlatIndex {
    /// Builds the index by storing the vectors.
    pub fn build(vectors: Vec<Vec<f32>>, metric: Metric) -> Self {
        Self { vectors, metric }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Access to the stored vectors (used by the partitioned index tests).
    pub fn vectors(&self) -> &[Vec<f32>] {
        &self.vectors
    }

    /// Cost of a candidate under the metric: lower is better.
    #[inline]
    pub fn cost(&self, query: &[f32], id: u32) -> f32 {
        let v = &self.vectors[id as usize];
        match self.metric {
            Metric::Dot => -crate::vector::dot(query, v),
            Metric::L2Sq => crate::vector::l2_sq(query, v),
        }
    }

    /// Returns the `k` nearest vectors as `(id, cost)`, best first; ties
    /// break toward smaller ids.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(u32, f32)> {
        knn_over(query, k, 0..self.vectors.len() as u32, |id| self.cost(query, id))
    }

    /// Range (similarity) search: every vector with cost ≤ `radius`, in
    /// ascending id order.
    ///
    /// FAISS supports this next to kNN search; the paper evaluated it and
    /// found it "consistently underperforms kNN search" for ER filtering —
    /// the `ablation_excluded` binary verifies that observation.
    pub fn range(&self, query: &[f32], radius: f32) -> Vec<(u32, f32)> {
        (0..self.vectors.len() as u32)
            .filter_map(|id| {
                let c = self.cost(query, id);
                (c <= radius).then_some((id, c))
            })
            .collect()
    }
}

/// The FAISS range-search filter: pairs every query with all indexed
/// vectors within squared Euclidean distance `radius` — the
/// similarity-threshold counterpart of [`FlatKnn`], implemented for the
/// exclusion ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatRange {
    /// Apply stop-word removal + stemming (`CL`).
    pub cleaning: bool,
    /// Squared Euclidean radius on unit vectors (`2 − 2·cos`).
    pub radius: f32,
    /// Embedding configuration.
    pub embedding: EmbeddingConfig,
}

impl FlatRange {
    /// One-line configuration description.
    pub fn describe(&self) -> String {
        format!("CL={} radius={:.2}", if self.cleaning { "y" } else { "-" }, self.radius)
    }
}

impl Filter for FlatRange {
    fn name(&self) -> String {
        "FAISS-range".to_owned()
    }

    fn run(&self, view: &TextView) -> FilterOutput {
        let mut out = FilterOutput::default();
        let cleaner = if self.cleaning { Cleaner::on() } else { Cleaner::off() };
        let embedder = HashEmbedder::new(self.embedding);
        let (v1, v2) = out
            .breakdown
            .time("preprocess", || embedder.embed_view(view, &cleaner));
        let index = out.breakdown.time("index", || FlatIndex::build(v1, Metric::L2Sq));
        out.breakdown.time("query", || {
            for (j, query) in v2.iter().enumerate() {
                if query.iter().all(|&v| v == 0.0) {
                    continue;
                }
                for (i, _) in index.range(query, self.radius) {
                    out.candidates.insert_raw(i, j as u32);
                }
            }
        });
        out
    }
}

/// Generic top-k selection over an id stream with a cost function; shared
/// with the partitioned index. Best (lowest cost) first.
pub(crate) fn knn_over(
    _query: &[f32],
    k: usize,
    ids: impl Iterator<Item = u32>,
    mut cost: impl FnMut(u32) -> f32,
) -> Vec<(u32, f32)> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
    for id in ids {
        let c = cost(id);
        if heap.len() < k {
            heap.push(HeapItem { cost: c, id });
        } else if let Some(worst) = heap.peek() {
            if c < worst.cost || (c == worst.cost && id < worst.id) {
                heap.pop();
                heap.push(HeapItem { cost: c, id });
            }
        }
    }
    let mut out: Vec<(u32, f32)> = heap.into_iter().map(|h| (h.id, h.cost)).collect();
    out.sort_unstable_by(|a, b| {
        a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal).then(a.0.cmp(&b.0))
    });
    out
}

/// The FAISS-equivalent filter: embed, index `E1` flat, kNN-query with
/// every `E2` entity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatKnn {
    /// Apply stop-word removal + stemming (`CL`).
    pub cleaning: bool,
    /// Neighbors per query (`K`).
    pub k: usize,
    /// Reverse datasets (`RVS`).
    pub reversed: bool,
    /// Embedding configuration.
    pub embedding: EmbeddingConfig,
}

impl FlatKnn {
    /// One-line configuration description for Table X-style reports.
    pub fn describe(&self) -> String {
        format!(
            "CL={} RVS={} K={}",
            if self.cleaning { "y" } else { "-" },
            if self.reversed { "y" } else { "-" },
            self.k
        )
    }
}

impl FlatKnn {
    /// Computes per-query rankings up to `k_max` neighbors.
    ///
    /// The optimizer's K-sweep then derives the candidate set of any
    /// `K ≤ k_max` as a prefix, and Figures 4–6 read duplicate ranks off
    /// the same lists. Similarities are negated costs (descending order).
    pub fn rankings(&self, view: &TextView, k_max: usize) -> er_core::QueryRankings {
        let cleaner = if self.cleaning { Cleaner::on() } else { Cleaner::off() };
        let embedder = HashEmbedder::new(self.embedding);
        let (index_texts, query_texts) = if self.reversed {
            (&view.e2, &view.e1)
        } else {
            (&view.e1, &view.e2)
        };
        let index_vecs: Vec<Vec<f32>> =
            index_texts.iter().map(|t| embedder.embed(t, &cleaner)).collect();
        let index = FlatIndex::build(index_vecs, Metric::L2Sq);
        let neighbors = query_texts
            .iter()
            .map(|t| {
                let q = embedder.embed(t, &cleaner);
                if q.iter().all(|&v| v == 0.0) {
                    return Vec::new();
                }
                index
                    .knn(&q, k_max)
                    .into_iter()
                    .map(|(i, cost)| (i, f64::from(-cost)))
                    .collect()
            })
            .collect();
        er_core::QueryRankings { neighbors, reversed: self.reversed }
    }
}

impl Filter for FlatKnn {
    fn name(&self) -> String {
        "FAISS".to_owned()
    }

    fn run(&self, view: &TextView) -> FilterOutput {
        let mut out = FilterOutput::default();
        let cleaner = if self.cleaning { Cleaner::on() } else { Cleaner::off() };
        let embedder = HashEmbedder::new(self.embedding);

        let (index_texts, query_texts) = if self.reversed {
            (&view.e2, &view.e1)
        } else {
            (&view.e1, &view.e2)
        };
        let (index_vecs, query_vecs) = out.breakdown.time("preprocess", || {
            let a: Vec<Vec<f32>> =
                index_texts.iter().map(|t| embedder.embed(t, &cleaner)).collect();
            let b: Vec<Vec<f32>> =
                query_texts.iter().map(|t| embedder.embed(t, &cleaner)).collect();
            (a, b)
        });

        let index =
            out.breakdown.time("index", || FlatIndex::build(index_vecs, Metric::L2Sq));

        out.breakdown.time("query", || {
            for (q, query) in query_vecs.iter().enumerate() {
                // Zero vectors (empty texts) have no meaningful neighbors.
                if query.iter().all(|&v| v == 0.0) {
                    continue;
                }
                for (i, _) in index.knn(query, self.k) {
                    if self.reversed {
                        out.candidates.insert_raw(q as u32, i);
                    } else {
                        out.candidates.insert_raw(i, q as u32);
                    }
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::candidates::Pair;

    fn vectors() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 1.0],
            vec![-1.0, 0.0],
        ]
    }

    #[test]
    fn l2_knn_orders_by_distance() {
        let idx = FlatIndex::build(vectors(), Metric::L2Sq);
        let nn = idx.knn(&[1.0, 0.0], 2);
        assert_eq!(nn[0].0, 0);
        assert_eq!(nn[1].0, 1);
        assert!(nn[0].1 <= nn[1].1);
    }

    #[test]
    fn dot_knn_prefers_aligned_vectors() {
        let idx = FlatIndex::build(vectors(), Metric::Dot);
        let nn = idx.knn(&[1.0, 0.0], 4);
        assert_eq!(nn.first().map(|x| x.0), Some(0));
        assert_eq!(nn.last().map(|x| x.0), Some(3), "anti-aligned ranks last");
    }

    #[test]
    fn k_larger_than_index_returns_all() {
        let idx = FlatIndex::build(vectors(), Metric::L2Sq);
        assert_eq!(idx.knn(&[0.0, 0.0], 100).len(), 4);
        assert!(idx.knn(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn ties_break_toward_smaller_ids() {
        let idx = FlatIndex::build(
            vec![vec![1.0, 0.0], vec![1.0, 0.0], vec![1.0, 0.0]],
            Metric::L2Sq,
        );
        let nn = idx.knn(&[1.0, 0.0], 2);
        assert_eq!(nn.iter().map(|x| x.0).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn filter_pairs_duplicates_first() {
        let view = TextView {
            e1: vec!["canon eos 5d camera".into(), "office chair".into()],
            e2: vec!["canon eos5d camera body".into(), "leather office chair".into()],
        };
        let f = FlatKnn {
            cleaning: false,
            k: 1,
            reversed: false,
            embedding: EmbeddingConfig { dim: 64, ..Default::default() },
        };
        let out = f.run(&view);
        assert!(out.candidates.contains(Pair::new(0, 0)));
        assert!(out.candidates.contains(Pair::new(1, 1)));
        assert_eq!(out.candidates.len(), 2);
    }

    #[test]
    fn reversed_filter_keeps_orientation() {
        let view = TextView {
            e1: vec!["alpha beta".into()],
            e2: vec!["alpha beta".into(), "unrelated thing".into()],
        };
        let f = FlatKnn {
            cleaning: false,
            k: 1,
            reversed: true,
            embedding: EmbeddingConfig { dim: 64, ..Default::default() },
        };
        let out = f.run(&view);
        // Two queries from E2... reversed: queries come from E1 (1 query).
        assert_eq!(out.candidates.len(), 1);
        assert!(out.candidates.contains(Pair::new(0, 0)));
    }

    #[test]
    fn range_search_returns_within_radius() {
        let idx = FlatIndex::build(vectors(), Metric::L2Sq);
        let hits = idx.range(&[1.0, 0.0], 0.05);
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![0, 1]);
        assert!(idx.range(&[1.0, 0.0], -1.0).is_empty());
        // Radius large enough covers everything.
        assert_eq!(idx.range(&[1.0, 0.0], 100.0).len(), 4);
    }

    #[test]
    fn range_filter_monotone_in_radius() {
        let view = TextView {
            e1: vec!["canon camera".into(), "office chair".into()],
            e2: vec!["canon camera body".into()],
        };
        let filter = |radius: f32| FlatRange {
            cleaning: false,
            radius,
            embedding: EmbeddingConfig { dim: 32, ..Default::default() },
        };
        let small = filter(0.2).run(&view).candidates;
        let large = filter(1.5).run(&view).candidates;
        assert!(small.len() <= large.len());
        for p in small.iter() {
            assert!(large.contains(p));
        }
    }

    #[test]
    fn empty_query_text_yields_nothing() {
        let view = TextView { e1: vec!["something".into()], e2: vec!["".into()] };
        let f = FlatKnn {
            cleaning: false,
            k: 3,
            reversed: false,
            embedding: EmbeddingConfig { dim: 32, ..Default::default() },
        };
        assert!(f.run(&view).candidates.is_empty());
    }
}
