//! Exact brute-force kNN over dense vectors — the FAISS `Flat` index
//! equivalent (paper §IV-D).
//!
//! The paper reports that for this benchmark FAISS works best with the Flat
//! index on normalized embeddings with Euclidean distance, so [`FlatKnn`]
//! fixes exactly that configuration and exposes the `CL`, `RVS` and `K`
//! parameters of Table V.

use crate::artifact::DenseIndexArtifact;
use crate::embed::EmbeddingConfig;
use crate::quant::{QuantQuery, QuantizedVectors};
use crate::vector::FlatVectors;
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::parallel::{self, Threads};
use er_core::schema::TextView;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Ranking metric of a [`FlatIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Maximum dot product (SCANN's "DP").
    Dot,
    /// Minimum squared Euclidean distance (FAISS default; SCANN's "L2²").
    L2Sq,
}

/// A heap entry ordered so the *worst* kept neighbor is at the top.
#[derive(PartialEq)]
struct HeapItem {
    /// Larger = worse (distance, or negated dot product).
    cost: f32,
    id: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cost
            .partial_cmp(&other.cost)
            .unwrap_or(Ordering::Equal)
            // Among equal costs, keep the smaller id (pop larger first).
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An exact (brute-force) vector index over contiguous row-major storage.
///
/// Alongside the f32 rows the index keeps a u8 scalar-quantized sidecar
/// ([`QuantizedVectors`]) when the data permits one *and* the collection
/// is at least [`QUANT_CUTOVER_ROWS`] rows. Scans use it as a *first pass
/// only*: a row whose conservative cost lower bound already exceeds the
/// current k-th best is skipped, every surviving row is rescored with the
/// exact f32 kernel — so results are bit-identical to the unquantized
/// scan (see [`FlatIndex::build_unquantized`] and the proptests).
///
/// Below the cutover the sidecar is skipped entirely: on tiny
/// collections the bound computation costs more than the exact kernel it
/// tries to avoid (the kernel benchmark measured ~0.36× at smoke scale),
/// and the pruning it buys needs a deep scan to amortize. Quantization
/// is a pure function of the rows, so the cutover decision is too — the
/// store round-trip rebuilds the identical configuration
/// ([`FlatIndex::from_parts`]).
#[derive(Debug, Clone)]
pub struct FlatIndex {
    vectors: FlatVectors,
    metric: Metric,
    quant: Option<QuantizedVectors>,
}

/// Row count below which [`FlatIndex::build`] skips the quantized scan
/// sidecar (see the struct docs for why small scans lose with it).
pub const QUANT_CUTOVER_ROWS: usize = 4096;

impl FlatIndex {
    /// Builds the index by packing the vectors into contiguous storage,
    /// plus the quantized scan sidecar when all values are finite and the
    /// collection clears [`QUANT_CUTOVER_ROWS`].
    pub fn build(vectors: Vec<Vec<f32>>, metric: Metric) -> Self {
        Self::from_parts(FlatVectors::from_rows(&vectors), metric)
    }

    /// [`FlatIndex::build`] without the quantized sidecar: the always-
    /// exact reference configuration the quantized scan is tested
    /// against.
    pub fn build_unquantized(vectors: Vec<Vec<f32>>, metric: Metric) -> Self {
        Self {
            vectors: FlatVectors::from_rows(&vectors),
            metric,
            quant: None,
        }
    }

    /// [`FlatIndex::build`] with the quantized sidecar forced on
    /// regardless of [`QUANT_CUTOVER_ROWS`] (still `None` for non-finite
    /// data). Tests and the kernel benchmark use this to exercise the
    /// pruned-scan path on collections the cutover would keep exact.
    pub fn build_quantized(vectors: Vec<Vec<f32>>, metric: Metric) -> Self {
        let vectors = FlatVectors::from_rows(&vectors);
        let quant = QuantizedVectors::build(&vectors);
        Self {
            vectors,
            metric,
            quant,
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Exact heap footprint of the stored vectors plus the quantized
    /// sidecar, for cache accounting.
    pub fn heap_bytes(&self) -> usize {
        self.vectors.heap_bytes() + self.quant.as_ref().map_or(0, QuantizedVectors::heap_bytes)
    }

    /// Storage and metric, for serialization. The quantized sidecar is
    /// *not* serialized: quantization is deterministic, so decode rebuilds
    /// an identical sidecar from the f32 rows.
    pub(crate) fn raw_parts(&self) -> (&FlatVectors, Metric) {
        (&self.vectors, self.metric)
    }

    /// Rebuilds the index from already-packed storage, re-deriving the
    /// quantized sidecar under the same [`QUANT_CUTOVER_ROWS`] gate as
    /// [`FlatIndex::build`] — so a store round-trip reproduces the
    /// identical configuration (and heap accounting).
    pub(crate) fn from_parts(vectors: FlatVectors, metric: Metric) -> Self {
        let quant = if vectors.len() >= QUANT_CUTOVER_ROWS {
            QuantizedVectors::build(&vectors)
        } else {
            None
        };
        Self {
            vectors,
            metric,
            quant,
        }
    }

    /// Cost of a candidate under the metric: lower is better.
    #[inline]
    pub fn cost(&self, query: &[f32], id: u32) -> f32 {
        let v = self.vectors.row(id as usize);
        match self.metric {
            Metric::Dot => -crate::vector::dot(query, v),
            Metric::L2Sq => crate::vector::l2_sq(query, v),
        }
    }

    /// Returns the `k` nearest vectors as `(id, cost)`, best first; ties
    /// break toward smaller ids.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(u32, f32)> {
        self.knn_scratch(query, k, &mut KnnScratch::default())
    }

    /// [`FlatIndex::knn`] reusing a caller-provided [`KnnScratch`], so a
    /// query loop allocates one bounded heap (and one quantized-query
    /// buffer) for its whole lifetime instead of one per query.
    ///
    /// Rows feed the selection heap in ascending id order. With a
    /// quantized sidecar present, a full heap lets the scan skip any row
    /// whose conservative lower bound is strictly worse than the current
    /// k-th best — [`QuantizedVectors::lower_bound`] guarantees the exact
    /// kernel cost would have been strictly rejected by
    /// [`KnnScratch::consider`] too (`cost < worst` and the
    /// `cost == worst && id < worst_id` tie arm both fail), so the heap
    /// evolves identically to an exact scan and the result is bitwise the
    /// same.
    pub fn knn_scratch(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut KnnScratch,
    ) -> Vec<(u32, f32)> {
        if k == 0 {
            return Vec::new();
        }
        scratch.begin(k);
        let n = self.vectors.len();
        let mut qq = std::mem::take(&mut scratch.qq);
        let quant = self
            .quant
            .as_ref()
            .filter(|qv| n > k && qv.quantize_query(query, &mut qq));
        for id in 0..n as u32 {
            if let Some(qv) = quant {
                if scratch.len() == k {
                    if let Some(worst) = scratch.worst_cost() {
                        if qv.lower_bound(&qq, id as usize, self.metric) > f64::from(worst) {
                            continue;
                        }
                    }
                }
            }
            scratch.consider(k, id, self.cost(query, id));
        }
        scratch.qq = qq;
        scratch.take_sorted()
    }

    /// Batch kNN fan-out over the global [`Threads`] worker count: one
    /// result list per query, empty for all-zero (empty-text) queries.
    pub fn knn_batch(&self, queries: &[Vec<f32>], k: usize) -> Vec<Vec<(u32, f32)>> {
        self.knn_batch_with(Threads::get(), queries, k)
    }

    /// [`FlatIndex::knn_batch`] over an explicit worker count.
    ///
    /// Queries are independent, so the chunked fan-out merged in query
    /// order returns exactly `queries.iter().map(|q| self.knn(q, k))` for
    /// every `threads`. Each worker chunk reuses one [`KnnScratch`].
    pub fn knn_batch_with(
        &self,
        threads: usize,
        queries: &[Vec<f32>],
        k: usize,
    ) -> Vec<Vec<(u32, f32)>> {
        let chunk = parallel::query_chunk_len(queries.len());
        let per_chunk = parallel::par_map_chunks_with(threads, queries, chunk, |_, part| {
            let mut scratch = KnnScratch::default();
            part.iter()
                .map(|q| {
                    if q.iter().all(|&v| v == 0.0) {
                        Vec::new()
                    } else {
                        self.knn_scratch(q, k, &mut scratch)
                    }
                })
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Range (similarity) search: every vector with cost ≤ `radius`, in
    /// ascending id order.
    ///
    /// FAISS supports this next to kNN search; the paper evaluated it and
    /// found it "consistently underperforms kNN search" for ER filtering —
    /// the `ablation_excluded` binary verifies that observation.
    pub fn range(&self, query: &[f32], radius: f32) -> Vec<(u32, f32)> {
        (0..self.vectors.len() as u32)
            .filter_map(|id| {
                let c = self.cost(query, id);
                (c <= radius).then_some((id, c))
            })
            .collect()
    }

    /// Batch range-search fan-out over the global [`Threads`] count; empty
    /// for all-zero queries. Per-query results match [`FlatIndex::range`]
    /// for every thread count.
    pub fn range_batch(&self, queries: &[Vec<f32>], radius: f32) -> Vec<Vec<(u32, f32)>> {
        self.range_batch_with(Threads::get(), queries, radius)
    }

    /// [`FlatIndex::range_batch`] over an explicit worker count.
    pub fn range_batch_with(
        &self,
        threads: usize,
        queries: &[Vec<f32>],
        radius: f32,
    ) -> Vec<Vec<(u32, f32)>> {
        let chunk = parallel::query_chunk_len(queries.len());
        let per_chunk = parallel::par_map_chunks_with(threads, queries, chunk, |_, part| {
            part.iter()
                .map(|q| {
                    if q.iter().all(|&v| v == 0.0) {
                        Vec::new()
                    } else {
                        self.range(q, radius)
                    }
                })
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// The FAISS range-search filter: pairs every query with all indexed
/// vectors within squared Euclidean distance `radius` — the
/// similarity-threshold counterpart of [`FlatKnn`], implemented for the
/// exclusion ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatRange {
    /// Apply stop-word removal + stemming (`CL`).
    pub cleaning: bool,
    /// Squared Euclidean radius on unit vectors (`2 − 2·cos`).
    pub radius: f32,
    /// Embedding configuration.
    pub embedding: EmbeddingConfig,
}

impl FlatRange {
    /// One-line configuration description.
    pub fn describe(&self) -> String {
        format!(
            "CL={} radius={:.2}",
            if self.cleaning { "y" } else { "-" },
            self.radius
        )
    }
}

impl Filter for FlatRange {
    fn name(&self) -> String {
        "FAISS-range".to_owned()
    }

    fn repr_key(&self) -> String {
        DenseIndexArtifact::repr_key(self.cleaning, &self.embedding, false)
    }

    fn prepare(&self, view: &TextView) -> Prepared {
        DenseIndexArtifact::prepare(view, self.cleaning, self.embedding, false)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        let art = prepared.downcast::<DenseIndexArtifact>();
        let mut out = FilterOutput::default();
        out.breakdown.time("query", || {
            for (j, hits) in art
                .index
                .range_batch(&art.queries, self.radius)
                .into_iter()
                .enumerate()
            {
                for (i, _) in hits {
                    out.candidates.insert_raw(i, j as u32);
                }
            }
        });
        out
    }
}

/// Reusable scratch for repeated bounded top-k selections.
///
/// Holds the selection heap (and the quantized-query buffer of the
/// pruned flat scan) so a query loop pays for its allocations once
/// instead of once per query; [`FlatIndex::knn_batch_with`] keeps one per
/// worker chunk. The [`KnnScratch::consider`]/[`KnnScratch::take_sorted`]
/// protocol is the single implementation of the bounded-heap selection:
/// the quant-pruned flat scan and the generic id-stream path share it, so
/// they cannot diverge on replace/tie decisions.
#[derive(Default)]
pub struct KnnScratch {
    heap: BinaryHeap<HeapItem>,
    /// Reused quantized-query buffer of the pruned flat scan.
    qq: QuantQuery,
}

impl KnnScratch {
    /// Number of entries currently kept.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Cost of the current worst kept entry, if any.
    #[inline]
    pub(crate) fn worst_cost(&self) -> Option<f32> {
        self.heap.peek().map(|h| h.cost)
    }

    /// Resets the scratch for a selection of up to `k` entries.
    pub(crate) fn begin(&mut self, k: usize) {
        self.heap.clear();
        if self.heap.capacity() < k + 1 {
            self.heap.reserve(k + 1 - self.heap.capacity());
        }
    }

    /// Offers one `(id, cost)` candidate to the bounded heap. Ties on
    /// cost keep the smaller id.
    #[inline]
    pub(crate) fn consider(&mut self, k: usize, id: u32, cost: f32) {
        if self.heap.len() < k {
            self.heap.push(HeapItem { cost, id });
        } else if let Some(worst) = self.heap.peek() {
            if cost < worst.cost || (cost == worst.cost && id < worst.id) {
                self.heap.pop();
                self.heap.push(HeapItem { cost, id });
            }
        }
    }

    /// Drains the kept entries, best (lowest cost) first, ties by
    /// ascending id.
    pub(crate) fn take_sorted(&mut self) -> Vec<(u32, f32)> {
        let mut out: Vec<(u32, f32)> = self.heap.drain().map(|h| (h.id, h.cost)).collect();
        out.sort_unstable_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }
}

/// Generic top-k selection over an id stream with a cost function; shared
/// with the partitioned index. Best (lowest cost) first.
pub(crate) fn knn_over(
    _query: &[f32],
    k: usize,
    ids: impl Iterator<Item = u32>,
    cost: impl FnMut(u32) -> f32,
) -> Vec<(u32, f32)> {
    let mut scratch = KnnScratch::default();
    knn_over_scratch(&mut scratch, k, ids, cost)
}

/// [`knn_over`] against a caller-owned [`KnnScratch`]. The heap is
/// bounded at `k + 1` entries, so the selection is `O(N log k)` and never
/// materializes (or fully sorts) all `N` costs.
pub(crate) fn knn_over_scratch(
    scratch: &mut KnnScratch,
    k: usize,
    ids: impl Iterator<Item = u32>,
    mut cost: impl FnMut(u32) -> f32,
) -> Vec<(u32, f32)> {
    if k == 0 {
        return Vec::new();
    }
    scratch.begin(k);
    for id in ids {
        let c = cost(id);
        scratch.consider(k, id, c);
    }
    scratch.take_sorted()
}

/// The FAISS-equivalent filter: embed, index `E1` flat, kNN-query with
/// every `E2` entity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatKnn {
    /// Apply stop-word removal + stemming (`CL`).
    pub cleaning: bool,
    /// Neighbors per query (`K`).
    pub k: usize,
    /// Reverse datasets (`RVS`).
    pub reversed: bool,
    /// Embedding configuration.
    pub embedding: EmbeddingConfig,
}

impl FlatKnn {
    /// One-line configuration description for Table X-style reports.
    pub fn describe(&self) -> String {
        format!(
            "CL={} RVS={} K={}",
            if self.cleaning { "y" } else { "-" },
            if self.reversed { "y" } else { "-" },
            self.k
        )
    }
}

impl FlatKnn {
    /// Computes per-query rankings up to `k_max` neighbors.
    ///
    /// The optimizer's K-sweep then derives the candidate set of any
    /// `K ≤ k_max` as a prefix, and Figures 4–6 read duplicate ranks off
    /// the same lists. Similarities are negated costs (descending order).
    pub fn rankings(&self, view: &TextView, k_max: usize) -> er_core::QueryRankings {
        let prepared = self.prepare(view);
        self.rankings_from(prepared.downcast::<DenseIndexArtifact>(), k_max)
    }

    /// [`FlatKnn::rankings`] on a shared prepare-stage artifact: the
    /// embeddings and index are reused, only the kNN scoring runs.
    pub fn rankings_from(
        &self,
        artifact: &DenseIndexArtifact,
        k_max: usize,
    ) -> er_core::QueryRankings {
        let neighbors = artifact
            .index
            .knn_batch(&artifact.queries, k_max)
            .into_iter()
            .map(|nn| {
                nn.into_iter()
                    .map(|(i, cost)| (i, f64::from(-cost)))
                    .collect()
            })
            .collect();
        er_core::QueryRankings {
            neighbors,
            reversed: self.reversed,
        }
    }
}

impl Filter for FlatKnn {
    fn name(&self) -> String {
        "FAISS".to_owned()
    }

    fn repr_key(&self) -> String {
        DenseIndexArtifact::repr_key(self.cleaning, &self.embedding, self.reversed)
    }

    fn prepare(&self, view: &TextView) -> Prepared {
        DenseIndexArtifact::prepare(view, self.cleaning, self.embedding, self.reversed)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        let art = prepared.downcast::<DenseIndexArtifact>();
        let mut out = FilterOutput::default();
        out.breakdown.time("query", || {
            // Zero vectors (empty texts) yield empty neighbor lists.
            for (q, nn) in art
                .index
                .knn_batch(&art.queries, self.k)
                .into_iter()
                .enumerate()
            {
                for (i, _) in nn {
                    if self.reversed {
                        out.candidates.insert_raw(q as u32, i);
                    } else {
                        out.candidates.insert_raw(i, q as u32);
                    }
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::candidates::Pair;

    fn vectors() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 1.0],
            vec![-1.0, 0.0],
        ]
    }

    #[test]
    fn l2_knn_orders_by_distance() {
        let idx = FlatIndex::build(vectors(), Metric::L2Sq);
        let nn = idx.knn(&[1.0, 0.0], 2);
        assert_eq!(nn[0].0, 0);
        assert_eq!(nn[1].0, 1);
        assert!(nn[0].1 <= nn[1].1);
    }

    #[test]
    fn dot_knn_prefers_aligned_vectors() {
        let idx = FlatIndex::build(vectors(), Metric::Dot);
        let nn = idx.knn(&[1.0, 0.0], 4);
        assert_eq!(nn.first().map(|x| x.0), Some(0));
        assert_eq!(nn.last().map(|x| x.0), Some(3), "anti-aligned ranks last");
    }

    #[test]
    fn k_larger_than_index_returns_all() {
        let idx = FlatIndex::build(vectors(), Metric::L2Sq);
        assert_eq!(idx.knn(&[0.0, 0.0], 100).len(), 4);
        assert!(idx.knn(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn ties_break_toward_smaller_ids() {
        let idx = FlatIndex::build(
            vec![vec![1.0, 0.0], vec![1.0, 0.0], vec![1.0, 0.0]],
            Metric::L2Sq,
        );
        let nn = idx.knn(&[1.0, 0.0], 2);
        assert_eq!(nn.iter().map(|x| x.0).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn filter_pairs_duplicates_first() {
        let view = TextView {
            e1: vec!["canon eos 5d camera".into(), "office chair".into()].into(),
            e2: vec![
                "canon eos5d camera body".into(),
                "leather office chair".into(),
            ]
            .into(),
        };
        let f = FlatKnn {
            cleaning: false,
            k: 1,
            reversed: false,
            embedding: EmbeddingConfig {
                dim: 64,
                ..Default::default()
            },
        };
        let out = f.run(&view);
        assert!(out.candidates.contains(Pair::new(0, 0)));
        assert!(out.candidates.contains(Pair::new(1, 1)));
        assert_eq!(out.candidates.len(), 2);
    }

    #[test]
    fn reversed_filter_keeps_orientation() {
        let view = TextView {
            e1: vec!["alpha beta".into()].into(),
            e2: vec!["alpha beta".into(), "unrelated thing".into()].into(),
        };
        let f = FlatKnn {
            cleaning: false,
            k: 1,
            reversed: true,
            embedding: EmbeddingConfig {
                dim: 64,
                ..Default::default()
            },
        };
        let out = f.run(&view);
        // Two queries from E2... reversed: queries come from E1 (1 query).
        assert_eq!(out.candidates.len(), 1);
        assert!(out.candidates.contains(Pair::new(0, 0)));
    }

    #[test]
    fn range_search_returns_within_radius() {
        let idx = FlatIndex::build(vectors(), Metric::L2Sq);
        let hits = idx.range(&[1.0, 0.0], 0.05);
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![0, 1]);
        assert!(idx.range(&[1.0, 0.0], -1.0).is_empty());
        // Radius large enough covers everything.
        assert_eq!(idx.range(&[1.0, 0.0], 100.0).len(), 4);
    }

    #[test]
    fn range_filter_monotone_in_radius() {
        let view = TextView {
            e1: vec!["canon camera".into(), "office chair".into()].into(),
            e2: vec!["canon camera body".into()].into(),
        };
        let filter = |radius: f32| FlatRange {
            cleaning: false,
            radius,
            embedding: EmbeddingConfig {
                dim: 32,
                ..Default::default()
            },
        };
        let small = filter(0.2).run(&view).candidates;
        let large = filter(1.5).run(&view).candidates;
        assert!(small.len() <= large.len());
        for p in small.iter() {
            assert!(large.contains(p));
        }
    }

    #[test]
    fn batch_queries_match_serial_for_any_thread_count() {
        // Pseudo-random vectors, including exact duplicates (tie-breaks)
        // and one all-zero query (skip path).
        let dim = 8;
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / 1000.0
        };
        let base: Vec<Vec<f32>> = (0..150)
            .map(|_| (0..dim).map(|_| next()).collect())
            .collect();
        let mut queries = base[..40].to_vec();
        queries.push(vec![0.0; dim]);
        queries.extend(base[..3].to_vec());

        for metric in [Metric::L2Sq, Metric::Dot] {
            let idx = FlatIndex::build(base.clone(), metric);
            let serial_knn: Vec<Vec<(u32, f32)>> = queries
                .iter()
                .map(|q| {
                    if q.iter().all(|&v| v == 0.0) {
                        Vec::new()
                    } else {
                        idx.knn(q, 7)
                    }
                })
                .collect();
            let serial_range: Vec<Vec<(u32, f32)>> = queries
                .iter()
                .map(|q| {
                    if q.iter().all(|&v| v == 0.0) {
                        Vec::new()
                    } else {
                        idx.range(q, 0.5)
                    }
                })
                .collect();
            for threads in [1, 2, 3, 8] {
                assert_eq!(
                    idx.knn_batch_with(threads, &queries, 7),
                    serial_knn,
                    "knn threads={threads}"
                );
                assert_eq!(
                    idx.range_batch_with(threads, &queries, 0.5),
                    serial_range,
                    "range threads={threads}"
                );
            }
        }
    }

    #[test]
    fn quantized_scan_matches_row_at_a_time() {
        // The quant-pruned scan must agree bitwise with the generic
        // exact per-row selection path and with an unquantized index.
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / 1000.0
        };
        let base: Vec<Vec<f32>> = (0..37).map(|_| (0..9).map(|_| next()).collect()).collect();
        let queries: Vec<Vec<f32>> = (0..5).map(|_| (0..9).map(|_| next()).collect()).collect();
        for metric in [Metric::L2Sq, Metric::Dot] {
            // Forced constructor: 37 rows sit below QUANT_CUTOVER_ROWS,
            // and this test exists to exercise the pruned path.
            let idx = FlatIndex::build_quantized(base.clone(), metric);
            assert!(idx.quant.is_some(), "finite data must quantize");
            let exact = FlatIndex::build_unquantized(base.clone(), metric);
            assert!(exact.quant.is_none());
            for q in &queries {
                for k in [1usize, 4, 11, 36, 37, 50] {
                    let per_row = knn_over(q, k, 0..idx.len() as u32, |id| idx.cost(q, id));
                    let got = idx.knn(q, k);
                    assert_eq!(got, per_row, "{metric:?} k={k}");
                    assert_eq!(got, exact.knn(q, k), "{metric:?} k={k} unquantized");
                    for (a, b) in got.iter().zip(&per_row) {
                        assert_eq!(a.1.to_bits(), b.1.to_bits(), "{metric:?} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn quantized_scan_handles_duplicate_rows_and_ties() {
        // Many identical rows: every cost ties, so pruning must not skip
        // a row the exact tie-break (smaller id wins) would have rejected
        // anyway — and the kept ids must be the smallest ones.
        let base = vec![vec![0.5f32, -0.25, 0.125]; 20];
        for metric in [Metric::L2Sq, Metric::Dot] {
            let idx = FlatIndex::build_quantized(base.clone(), metric);
            let exact = FlatIndex::build_unquantized(base.clone(), metric);
            let q = vec![0.5f32, -0.25, 0.125];
            for k in [1usize, 5, 19] {
                let got = idx.knn(&q, k);
                assert_eq!(got, exact.knn(&q, k), "{metric:?} k={k}");
                assert_eq!(
                    got.iter().map(|x| x.0).collect::<Vec<_>>(),
                    (0..k as u32).collect::<Vec<_>>(),
                    "{metric:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn quant_cutover_gates_the_sidecar_by_row_count() {
        let small = vec![vec![0.5f32, -0.25]; 20];
        let idx = FlatIndex::build(small.clone(), Metric::L2Sq);
        assert!(
            idx.quant.is_none(),
            "below QUANT_CUTOVER_ROWS the exact scan must run bare"
        );
        let forced = FlatIndex::build_quantized(small, Metric::L2Sq);
        assert!(forced.quant.is_some(), "forced constructor ignores cutover");

        let big: Vec<Vec<f32>> = (0..QUANT_CUTOVER_ROWS)
            .map(|i| vec![i as f32, -(i as f32)])
            .collect();
        let idx = FlatIndex::build(big, Metric::L2Sq);
        assert!(idx.quant.is_some(), "at the cutover the sidecar comes back");
    }

    #[test]
    fn scratch_reuse_matches_fresh_knn() {
        let idx = FlatIndex::build(vectors(), Metric::L2Sq);
        let mut scratch = KnnScratch::default();
        // Reuse across queries with different k: results must equal knn().
        for (q, k) in [
            ([1.0, 0.0], 2),
            ([0.0, 1.0], 4),
            ([-1.0, 0.5], 1),
            ([0.3, 0.3], 3),
        ] {
            assert_eq!(idx.knn_scratch(&q, k, &mut scratch), idx.knn(&q, k));
        }
    }

    #[test]
    fn shared_artifact_matches_cold_runs_and_spans_filters() {
        let view = TextView {
            e1: vec!["canon eos 5d camera".into(), "office chair".into()].into(),
            e2: vec![
                "canon eos5d camera body".into(),
                "leather office chair".into(),
            ]
            .into(),
        };
        let emb = EmbeddingConfig {
            dim: 64,
            ..Default::default()
        };
        let knn = |k| FlatKnn {
            cleaning: false,
            k,
            reversed: false,
            embedding: emb,
        };
        let range = FlatRange {
            cleaning: false,
            radius: 0.5,
            embedding: emb,
        };
        // The K sweep and the radius search share one embed+index artifact.
        assert_eq!(knn(1).repr_key(), knn(7).repr_key());
        assert_eq!(knn(1).repr_key(), range.repr_key());
        let prepared = knn(1).prepare(&view);
        for k in [1, 2] {
            assert_eq!(
                knn(k).query(&view, &prepared).candidates.to_sorted_vec(),
                knn(k).run(&view).candidates.to_sorted_vec(),
                "k={k}"
            );
        }
        assert_eq!(
            range.query(&view, &prepared).candidates.to_sorted_vec(),
            range.run(&view).candidates.to_sorted_vec()
        );
    }

    #[test]
    fn empty_query_text_yields_nothing() {
        let view = TextView {
            e1: vec!["something".into()].into(),
            e2: vec!["".into()].into(),
        };
        let f = FlatKnn {
            cleaning: false,
            k: 3,
            reversed: false,
            embedding: EmbeddingConfig {
                dim: 32,
                ..Default::default()
            },
        };
        assert!(f.run(&view).candidates.is_empty());
    }
}
