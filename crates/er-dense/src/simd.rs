//! Explicit-width SIMD kernels for [`crate::vector`], behind the `simd`
//! cargo feature plus runtime CPU detection.
//!
//! Every kernel here is **bit-identical** to its blocked scalar reference
//! in [`crate::vector`] — the dispatch in [`crate::vector::dot`] /
//! [`crate::vector::l2_sq`] must never change a single result bit, or
//! cached candidate sets would silently depend on the host CPU. The
//! blocked reference accumulates 8 independent f32 lanes per chunk and
//! reduces them with the fixed `lane_sum` tree
//! `((a0..a3) = lanes i + i+4; (a0 + a2) + (a1 + a3))`; the vector
//! kernels reproduce exactly that operation sequence:
//!
//! * multiplies and adds stay separate (`mul` then `add`) — **no FMA**,
//!   whose single rounding would drift from the reference;
//! * the AVX2 reduction folds the 256-bit accumulator to 128 bits
//!   (lanes `i + i+4`), adds the upper 64-bit half (`a0+a2`, `a1+a3`)
//!   and finishes with one scalar add — the `lane_sum` tree verbatim;
//! * the NEON variant keeps two `float32x4` accumulators for lanes 0–3
//!   and 4–7 and reduces through the same tree;
//! * the remainder loop is the same sequential scalar tail.
//!
//! `tests` cross-check `to_bits` equality against the blocked reference
//! on every length class; the dispatcher itself is additionally covered
//! by the `bench_kernels` gate in `er-bench`.

#![cfg(feature = "simd")]

/// Runtime AVX2 support probe (cached by `std`).
#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// AVX2 dot product, bit-identical to [`crate::vector::dot_blocked`].
///
/// # Safety
/// The caller must ensure the host supports AVX2 (see [`avx2`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let blocks = a.len() / 8;
    let mut acc = _mm256_setzero_ps();
    for c in 0..blocks {
        let x = _mm256_loadu_ps(a.as_ptr().add(c * 8));
        let y = _mm256_loadu_ps(b.as_ptr().add(c * 8));
        // Separate mul + add: the reference kernel's two roundings.
        acc = _mm256_add_ps(acc, _mm256_mul_ps(x, y));
    }
    let mut sum = lane_sum_avx2(acc);
    for i in blocks * 8..a.len() {
        sum += a.get_unchecked(i) * b.get_unchecked(i);
    }
    sum
}

/// AVX2 squared Euclidean distance, bit-identical to
/// [`crate::vector::l2_sq_blocked`].
///
/// # Safety
/// The caller must ensure the host supports AVX2 (see [`avx2`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn l2_sq_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let blocks = a.len() / 8;
    let mut acc = _mm256_setzero_ps();
    for c in 0..blocks {
        let x = _mm256_loadu_ps(a.as_ptr().add(c * 8));
        let y = _mm256_loadu_ps(b.as_ptr().add(c * 8));
        let d = _mm256_sub_ps(x, y);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
    }
    let mut sum = lane_sum_avx2(acc);
    for i in blocks * 8..a.len() {
        let d = a.get_unchecked(i) - b.get_unchecked(i);
        sum += d * d;
    }
    sum
}

/// The `lane_sum` reduction tree on a 256-bit accumulator: lane `i` of
/// the result of the 128-bit fold is `acc[i] + acc[i + 4]`, then
/// `(a0 + a2) + (a1 + a3)`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lane_sum_avx2(acc: std::arch::x86_64::__m256) -> f32 {
    use std::arch::x86_64::*;
    let s = _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps::<1>(acc));
    // [a0+a2, a1+a3, _, _]
    let t = _mm_add_ps(s, _mm_movehl_ps(s, s));
    // (a0+a2) + (a1+a3)
    _mm_cvtss_f32(_mm_add_ss(t, _mm_movehdup_ps(t)))
}

/// NEON dot product, bit-identical to [`crate::vector::dot_blocked`]:
/// two `float32x4` accumulators stand in for lanes 0–3 / 4–7.
///
/// # Safety
/// NEON is baseline on aarch64; unsafe only for the raw loads.
#[cfg(target_arch = "aarch64")]
pub(crate) unsafe fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::aarch64::*;
    debug_assert_eq!(a.len(), b.len());
    let blocks = a.len() / 8;
    let mut acc_lo = vdupq_n_f32(0.0);
    let mut acc_hi = vdupq_n_f32(0.0);
    for c in 0..blocks {
        let x_lo = vld1q_f32(a.as_ptr().add(c * 8));
        let y_lo = vld1q_f32(b.as_ptr().add(c * 8));
        let x_hi = vld1q_f32(a.as_ptr().add(c * 8 + 4));
        let y_hi = vld1q_f32(b.as_ptr().add(c * 8 + 4));
        // Separate mul + add (no vfmaq): the reference's two roundings.
        acc_lo = vaddq_f32(acc_lo, vmulq_f32(x_lo, y_lo));
        acc_hi = vaddq_f32(acc_hi, vmulq_f32(x_hi, y_hi));
    }
    let mut sum = lane_sum_neon(acc_lo, acc_hi);
    for i in blocks * 8..a.len() {
        sum += a.get_unchecked(i) * b.get_unchecked(i);
    }
    sum
}

/// NEON squared Euclidean distance, bit-identical to
/// [`crate::vector::l2_sq_blocked`].
///
/// # Safety
/// NEON is baseline on aarch64; unsafe only for the raw loads.
#[cfg(target_arch = "aarch64")]
pub(crate) unsafe fn l2_sq_neon(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::aarch64::*;
    debug_assert_eq!(a.len(), b.len());
    let blocks = a.len() / 8;
    let mut acc_lo = vdupq_n_f32(0.0);
    let mut acc_hi = vdupq_n_f32(0.0);
    for c in 0..blocks {
        let d_lo = vsubq_f32(
            vld1q_f32(a.as_ptr().add(c * 8)),
            vld1q_f32(b.as_ptr().add(c * 8)),
        );
        let d_hi = vsubq_f32(
            vld1q_f32(a.as_ptr().add(c * 8 + 4)),
            vld1q_f32(b.as_ptr().add(c * 8 + 4)),
        );
        acc_lo = vaddq_f32(acc_lo, vmulq_f32(d_lo, d_lo));
        acc_hi = vaddq_f32(acc_hi, vmulq_f32(d_hi, d_hi));
    }
    let mut sum = lane_sum_neon(acc_lo, acc_hi);
    for i in blocks * 8..a.len() {
        let d = a.get_unchecked(i) - b.get_unchecked(i);
        sum += d * d;
    }
    sum
}

/// The `lane_sum` reduction tree on the two NEON accumulators.
#[cfg(target_arch = "aarch64")]
#[inline]
fn lane_sum_neon(
    acc_lo: std::arch::aarch64::float32x4_t,
    acc_hi: std::arch::aarch64::float32x4_t,
) -> f32 {
    use std::arch::aarch64::*;
    // [a0, a1, a2, a3] = lanes i + i+4.
    let s = vaddq_f32(acc_lo, acc_hi);
    // [a0+a2, a1+a3]
    let t = vadd_f32(vget_low_f32(s), vget_high_f32(s));
    vget_lane_f32::<0>(t) + vget_lane_f32::<1>(t)
}

#[cfg(test)]
mod tests {
    use crate::vector::{dot_blocked, l2_sq_blocked};

    fn pseudo_random(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 8388608.0) - 1.0
            })
            .collect()
    }

    /// The vector kernels must agree with the blocked reference to the
    /// bit, on lengths exercising empty, sub-block, exact-block and
    /// remainder shapes.
    #[test]
    fn simd_kernels_bitwise_match_blocked_reference() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 64, 65, 129, 300] {
            let a = pseudo_random(len, 3);
            let b = pseudo_random(len, 5);
            #[cfg(target_arch = "x86_64")]
            if super::avx2() {
                let (d, l) = unsafe { (super::dot_avx2(&a, &b), super::l2_sq_avx2(&a, &b)) };
                assert_eq!(d.to_bits(), dot_blocked(&a, &b).to_bits(), "dot len={len}");
                assert_eq!(l.to_bits(), l2_sq_blocked(&a, &b).to_bits(), "l2 len={len}");
            }
            #[cfg(target_arch = "aarch64")]
            {
                let (d, l) = unsafe { (super::dot_neon(&a, &b), super::l2_sq_neon(&a, &b)) };
                assert_eq!(d.to_bits(), dot_blocked(&a, &b).to_bits(), "dot len={len}");
                assert_eq!(l.to_bits(), l2_sq_blocked(&a, &b).to_bits(), "l2 len={len}");
            }
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            let _ = (a, b);
        }
    }
}
