//! The DeepBlocker equivalent (paper §IV-D; Thirumuruganathan et al.,
//! VLDB 2021), using the Autoencoder tuple-embedding module.
//!
//! DeepBlocker converts attribute values into fastText embeddings,
//! aggregates them per tuple, learns a *tuple embedding* with a
//! self-supervised Autoencoder and performs kNN search with FAISS. We
//! reproduce that pipeline on the hashed subword embeddings: aggregate →
//! train autoencoder on all tuples of both collections → encode → exact
//! kNN. Training cost lands in the `preprocess` phase, reproducing the
//! paper's observation that it dominates DeepBlocker's run-time by an
//! order of magnitude.

use crate::artifact::{emb_key, flag, vecs_bytes, DenseIndexArtifact};
use crate::embed::{EmbeddingConfig, HashEmbedder};
use crate::flat::{FlatIndex, Metric};
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::schema::TextView;
use er_core::timing::{PhaseBreakdown, Stage};
use er_neural::{Autoencoder, AutoencoderConfig};
use er_text::Cleaner;

/// DeepBlocker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepBlockerConfig {
    /// Apply stop-word removal + stemming (`CL`).
    pub cleaning: bool,
    /// Neighbors per query (`K`).
    pub k: usize,
    /// Reverse datasets (`RVS`).
    pub reversed: bool,
    /// Base embedding configuration.
    pub embedding: EmbeddingConfig,
    /// Autoencoder bottleneck width.
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Training seed (the method's stochasticity: random initialization +
    /// batch shuffling).
    pub seed: u64,
}

impl Default for DeepBlockerConfig {
    fn default() -> Self {
        Self {
            cleaning: true,
            k: 5,
            reversed: false,
            embedding: EmbeddingConfig::default(),
            hidden_dim: 150,
            epochs: 15,
            seed: 0,
        }
    }
}

/// The DeepBlocker filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepBlocker {
    /// Configuration.
    pub config: DeepBlockerConfig,
}

impl DeepBlocker {
    /// Creates a DeepBlocker.
    pub fn new(config: DeepBlockerConfig) -> Self {
        Self { config }
    }

    /// One-line configuration description for Table X-style reports.
    pub fn describe(&self) -> String {
        format!(
            "CL={} RVS={} K={}",
            if self.config.cleaning { "y" } else { "-" },
            if self.config.reversed { "y" } else { "-" },
            self.config.k
        )
    }
}

impl DeepBlocker {
    /// Computes per-query rankings up to `k_max` neighbors: trains the
    /// tuple-embedding module once and ranks in the learned space, so the
    /// optimizer's K-sweep amortizes the expensive training.
    pub fn rankings(&self, view: &TextView, k_max: usize) -> er_core::QueryRankings {
        let prepared = self.prepare(view);
        self.rankings_from(prepared.downcast::<DenseIndexArtifact>(), k_max)
    }

    /// [`DeepBlocker::rankings`] on a shared prepare-stage artifact: the
    /// trained tuple embeddings and index are reused, only the kNN
    /// scoring runs.
    pub fn rankings_from(
        &self,
        artifact: &DenseIndexArtifact,
        k_max: usize,
    ) -> er_core::QueryRankings {
        let neighbors = artifact
            .queries
            .iter()
            .map(|q| {
                if q.iter().all(|&v| v == 0.0) {
                    return Vec::new();
                }
                artifact
                    .index
                    .knn(q, k_max)
                    .into_iter()
                    .map(|(i, cost)| (i, f64::from(-cost)))
                    .collect()
            })
            .collect();
        er_core::QueryRankings {
            neighbors,
            reversed: self.config.reversed,
        }
    }
}

impl Filter for DeepBlocker {
    fn name(&self) -> String {
        "DeepBlocker".to_owned()
    }

    fn repr_key(&self) -> String {
        let cfg = &self.config;
        format!(
            "db:CL={}:RVS={}:hid={}:ep={}:s={:x}:{}",
            flag(cfg.cleaning),
            flag(cfg.reversed),
            cfg.hidden_dim,
            cfg.epochs,
            cfg.seed,
            emb_key(&cfg.embedding)
        )
    }

    fn prepare(&self, view: &TextView) -> Prepared {
        let cfg = &self.config;
        let cleaner = if cfg.cleaning {
            Cleaner::on()
        } else {
            Cleaner::off()
        };
        let embedder = HashEmbedder::new(cfg.embedding);
        let (index_texts, query_texts) = if cfg.reversed {
            (&view.e2, &view.e1)
        } else {
            (&view.e1, &view.e2)
        };

        // Pre-processing: base embeddings + self-supervised training of the
        // tuple-embedding module on all tuples, then encoding. Training is
        // the dominant cost, which is exactly why the K sweep must share
        // this artifact.
        let mut breakdown = PhaseBreakdown::new();
        let (index_vecs, queries) = breakdown.time_in(Stage::Prepare, "preprocess", || {
            let base_index: Vec<Vec<f32>> = index_texts
                .iter()
                .map(|t| embedder.embed(t, &cleaner))
                .collect();
            let base_query: Vec<Vec<f32>> = query_texts
                .iter()
                .map(|t| embedder.embed(t, &cleaner))
                .collect();

            let mut training: Vec<Vec<f32>> = base_index
                .iter()
                .chain(base_query.iter())
                .filter(|v| v.iter().any(|&x| x != 0.0))
                .cloned()
                .collect();
            if training.is_empty() {
                // Degenerate input: skip learning, keep base vectors.
                return (base_index, base_query);
            }
            // Cap the training set so run-time scales with the smaller
            // datasets the module needs, as DeepBlocker does with its
            // synthetic labelled set.
            training.truncate(20_000);
            let ae = Autoencoder::train(
                &training,
                &AutoencoderConfig {
                    input_dim: cfg.embedding.dim,
                    hidden_dim: cfg.hidden_dim,
                    epochs: cfg.epochs,
                    batch_size: 64,
                    learning_rate: 1e-3,
                    seed: cfg.seed,
                },
            );
            let encode_all = |vs: &[Vec<f32>]| -> Vec<Vec<f32>> {
                vs.iter()
                    .map(|v| {
                        if v.iter().all(|&x| x == 0.0) {
                            vec![0.0; ae.embedding_dim()]
                        } else {
                            let mut e = ae.encode(v);
                            crate::vector::normalize(&mut e);
                            e
                        }
                    })
                    .collect()
            };
            (encode_all(&base_index), encode_all(&base_query))
        });

        let index = breakdown.time_in(Stage::Prepare, "index", || {
            FlatIndex::build(index_vecs, Metric::L2Sq)
        });
        let bytes = index.heap_bytes() + vecs_bytes(&queries);
        Prepared::new(DenseIndexArtifact { index, queries }, bytes, breakdown)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        let art = prepared.downcast::<DenseIndexArtifact>();
        let cfg = &self.config;
        let mut out = FilterOutput::default();
        out.breakdown.time("query", || {
            for (q, query) in art.queries.iter().enumerate() {
                if query.iter().all(|&v| v == 0.0) {
                    continue;
                }
                for (i, _) in art.index.knn(query, cfg.k) {
                    if cfg.reversed {
                        out.candidates.insert_raw(q as u32, i);
                    } else {
                        out.candidates.insert_raw(i, q as u32);
                    }
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::candidates::Pair;

    fn fast_config() -> DeepBlockerConfig {
        DeepBlockerConfig {
            cleaning: false,
            k: 1,
            reversed: false,
            embedding: EmbeddingConfig {
                dim: 32,
                ..Default::default()
            },
            hidden_dim: 8,
            epochs: 4,
            seed: 1,
        }
    }

    fn view() -> TextView {
        TextView {
            e1: vec![
                "canon eos rebel camera kit".into(),
                "leather office chair black".into(),
                "usb c charging cable".into(),
            ]
            .into(),
            e2: vec![
                "canon eos rebel camera body".into(),
                "black leather office chair".into(),
            ]
            .into(),
        }
    }

    #[test]
    fn finds_near_duplicates() {
        let out = DeepBlocker::new(fast_config()).run(&view());
        assert!(out.candidates.contains(Pair::new(0, 0)));
        assert!(out.candidates.contains(Pair::new(1, 1)));
        assert_eq!(out.candidates.len(), 2, "K = 1, two queries");
    }

    #[test]
    fn preprocess_dominates_runtime() {
        // The paper's signature observation: training the tuple-embedding
        // module dwarfs indexing and querying.
        let out = DeepBlocker::new(fast_config()).run(&view());
        assert!(out.breakdown.fraction("preprocess") > 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DeepBlocker::new(fast_config())
            .run(&view())
            .candidates
            .to_sorted_vec();
        let b = DeepBlocker::new(fast_config())
            .run(&view())
            .candidates
            .to_sorted_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn reversed_orientation_is_canonical() {
        let cfg = DeepBlockerConfig {
            reversed: true,
            ..fast_config()
        };
        let out = DeepBlocker::new(cfg).run(&view());
        for p in out.candidates.iter() {
            assert!((p.left as usize) < 3 && (p.right as usize) < 2);
        }
    }

    #[test]
    fn empty_collections_yield_nothing() {
        let v = TextView {
            e1: vec!["".into()].into(),
            e2: vec!["".into()].into(),
        };
        let out = DeepBlocker::new(fast_config()).run(&v);
        assert!(out.candidates.is_empty());
    }
}
