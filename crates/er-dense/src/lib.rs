//! Dense vector-based nearest-neighbor filtering (paper §IV-D).
//!
//! Entities are transformed into fixed-length dense vectors and the closest
//! vectors to every query become its candidates. The paper's embedding is
//! pre-trained 300-dim fastText; this repository substitutes deterministic
//! feature-hashed character-n-gram embeddings (see [`embed`] and DESIGN.md)
//! that preserve the relevant subword behaviour without external model
//! files.
//!
//! * [`vector`] — dispatched dot/L2² kernels (blocked scalar reference,
//!   AVX2/NEON under the `simd` feature) and the contiguous
//!   [`FlatVectors`] row store,
//! * [`quant`] — u8 scalar quantization with conservative cost bounds
//!   for the exact-rescore flat scan,
//! * [`embed`] — the hashed subword embedder ("average tuple embedding"),
//! * [`flat`] — exact brute-force kNN, the FAISS-Flat equivalent,
//! * [`pq`] — product quantization (asymmetric-hashing scoring),
//! * [`partitioned`] — k-means partitioned index, the SCANN equivalent,
//! * [`minhash`] — MinHash LSH over character k-shingles,
//! * [`hyperplane`] — Hyperplane LSH (sign-random-projection, multiprobe),
//! * [`crosspolytope`] — Cross-Polytope LSH (FALCONN-style),
//! * [`deepblocker`] — autoencoder tuple embedding + kNN (DeepBlocker),
//! * [`grid`] — the Table V configuration spaces and baselines.

pub mod artifact;
pub mod crosspolytope;
pub mod deepblocker;
pub mod embed;
pub mod flat;
pub mod grid;
pub mod hnsw;
pub mod hyperplane;
pub mod minhash;
pub mod partitioned;
pub mod pq;
pub mod quant;
mod simd;
pub mod store;
pub mod vector;

pub use artifact::DenseIndexArtifact;
pub use crosspolytope::CrossPolytopeLsh;
pub use deepblocker::{DeepBlocker, DeepBlockerConfig};
pub use embed::{EmbeddingConfig, HashEmbedder};
pub use flat::{FlatIndex, FlatKnn, FlatRange, KnnScratch, Metric, QUANT_CUTOVER_ROWS};
pub use grid::{ddb_baseline, DenseMethod};
pub use hnsw::{HnswIndex, HnswKnn};
pub use hyperplane::HyperplaneLsh;
pub use minhash::MinHashLsh;
pub use partitioned::{assign, kmeans, PartitionedArtifact, PartitionedKnn, Scoring};
pub use pq::ProductQuantizer;
pub use quant::QuantizedVectors;
pub use store::{
    CrossPolytopeCodec, DenseFlatCodec, DenseFlatQCodec, HyperplaneCodec, MinHashCodec,
    PartitionedCodec,
};
pub use vector::{
    cosine, dot, dot_blocked, dot_scalar, l2_sq, l2_sq_blocked, l2_sq_scalar, normalize,
    FlatVectors,
};

#[cfg(test)]
mod proptests;
