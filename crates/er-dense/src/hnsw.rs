//! HNSW — Hierarchical Navigable Small World graphs [Malkov & Yashunin,
//! 2016] — the *approximate* kNN method FAISS offers next to the Flat
//! index.
//!
//! The paper evaluated FAISS's approximate indexes and excluded them: "they
//! do not outperform the Flat index with respect to Problem 1" (§IV-D).
//! This implementation exists so that exclusion can be verified (see the
//! `ablation_excluded` binary): HNSW trades a little recall for sub-linear
//! query time, and under a hard recall target that trade rarely pays on
//! ER-sized inputs.
//!
//! The construction follows the original algorithm: nodes get a geometric
//! random level; insertion greedily descends the upper layers, then runs a
//! beam search (`ef_construction`) on each layer at or below the node's
//! level, connecting to the `M` closest neighbors and pruning back-edges
//! to the per-layer degree bound.

use crate::artifact::{emb_key, flag, vecs_bytes};
use crate::embed::{EmbeddingConfig, HashEmbedder};
use crate::vector::{l2_sq, FlatVectors};
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::parallel::{self, Threads};
use er_core::schema::TextView;
use er_core::timing::{PhaseBreakdown, Stage};
use er_text::Cleaner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry by distance (farthest on top).
#[derive(PartialEq)]
struct Far {
    dist: f32,
    id: u32,
}
impl Eq for Far {}
impl Ord for Far {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}
impl PartialOrd for Far {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap entry by distance (nearest on top), via reversed ordering.
#[derive(PartialEq)]
struct Near {
    dist: f32,
    id: u32,
}
impl Eq for Near {}
impl Ord for Near {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.id.cmp(&self.id))
    }
}
impl PartialOrd for Near {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An HNSW index over dense vectors with squared-Euclidean distance.
pub struct HnswIndex {
    vectors: FlatVectors,
    /// `neighbors[layer][node]` — adjacency per layer; nodes absent from a
    /// layer have an empty list.
    neighbors: Vec<Vec<Vec<u32>>>,
    levels: Vec<u8>,
    entry: u32,
    max_level: u8,
    /// Per-layer degree bound `M` (layer 0 uses `2·M`).
    m: usize,
    ef_construction: usize,
}

impl HnswIndex {
    /// Builds the index by inserting every vector. `m` is the degree bound
    /// (typ. 8–32), `ef_construction` the construction beam width
    /// (typ. 64–200). Deterministic for a fixed `seed`.
    pub fn build(vectors: Vec<Vec<f32>>, m: usize, ef_construction: usize, seed: u64) -> Self {
        assert!(m >= 2, "M must be at least 2");
        let mut index = Self {
            vectors: FlatVectors::default(),
            neighbors: vec![Vec::new()],
            levels: Vec::new(),
            entry: 0,
            max_level: 0,
            m,
            ef_construction: ef_construction.max(m),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let level_mult = 1.0 / (m as f64).ln();
        for v in vectors {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let level = ((-u.ln() * level_mult).floor() as u8).min(30);
            index.insert(v, level);
        }
        index
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    fn dist(&self, q: &[f32], id: u32) -> f32 {
        l2_sq(q, self.vectors.row(id as usize))
    }

    fn degree_bound(&self, layer: usize) -> usize {
        if layer == 0 {
            self.m * 2
        } else {
            self.m
        }
    }

    /// Beam search on one layer from `entry_points`, returning up to `ef`
    /// nearest candidates (unsorted heap order).
    fn search_layer(
        &self,
        q: &[f32],
        entry_points: &[u32],
        ef: usize,
        layer: usize,
    ) -> Vec<(u32, f32)> {
        let mut visited: std::collections::HashSet<u32> = entry_points.iter().copied().collect();
        let mut candidates: BinaryHeap<Near> = BinaryHeap::new();
        let mut best: BinaryHeap<Far> = BinaryHeap::new();
        for &ep in entry_points {
            let d = self.dist(q, ep);
            candidates.push(Near { dist: d, id: ep });
            best.push(Far { dist: d, id: ep });
        }
        while let Some(Near { dist, id }) = candidates.pop() {
            let worst = best.peek().map_or(f32::INFINITY, |f| f.dist);
            if dist > worst && best.len() >= ef {
                break;
            }
            for &n in &self.neighbors[layer][id as usize] {
                if !visited.insert(n) {
                    continue;
                }
                let d = self.dist(q, n);
                let worst = best.peek().map_or(f32::INFINITY, |f| f.dist);
                if best.len() < ef || d < worst {
                    candidates.push(Near { dist: d, id: n });
                    best.push(Far { dist: d, id: n });
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        best.into_iter().map(|f| (f.id, f.dist)).collect()
    }

    /// Heuristic neighbor selection (Algorithm 4 of the HNSW paper): scan
    /// candidates by ascending distance and keep one only if it is closer
    /// to the query than to every already-selected neighbor. This retains
    /// "bridge" edges between clusters that plain closest-M selection
    /// would prune, which is what keeps the graph connected.
    fn select_neighbors(&self, sorted: &[(u32, f32)], bound: usize) -> Vec<u32> {
        let mut selected: Vec<u32> = Vec::with_capacity(bound);
        for &(cand, dist_to_q) in sorted {
            if selected.len() >= bound {
                break;
            }
            let dominated = selected.iter().any(|&s| {
                l2_sq(
                    self.vectors.row(cand as usize),
                    self.vectors.row(s as usize),
                ) < dist_to_q
            });
            if !dominated {
                selected.push(cand);
            }
        }
        // Backfill with plain nearest if the heuristic was too strict.
        for &(cand, _) in sorted {
            if selected.len() >= bound {
                break;
            }
            if !selected.contains(&cand) {
                selected.push(cand);
            }
        }
        selected
    }

    fn insert(&mut self, v: Vec<f32>, level: u8) {
        let id = self.vectors.len() as u32;
        self.vectors.push_row(&v);
        self.levels.push(level);
        while self.neighbors.len() <= level as usize {
            let nodes = self.vectors.len();
            self.neighbors
                .push(vec![Vec::new(); nodes.saturating_sub(1)]);
        }
        for layer in self.neighbors.iter_mut() {
            layer.push(Vec::new());
        }
        if id == 0 {
            self.entry = 0;
            self.max_level = level;
            return;
        }

        let q = self.vectors.row(id as usize).to_vec();
        let mut ep = vec![self.entry];
        // Greedy descent through layers above the new node's level.
        for layer in ((level as usize + 1)..=(self.max_level as usize)).rev() {
            let found = self.search_layer(&q, &ep, 1, layer);
            if let Some(&(best, _)) = found
                .iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal))
            {
                let _ = best;
            }
            ep = found.into_iter().map(|(i, _)| i).collect();
            ep.truncate(1);
        }
        // Connect on each layer at or below the node's level.
        for layer in (0..=((level as usize).min(self.max_level as usize))).rev() {
            let mut found = self.search_layer(&q, &ep, self.ef_construction, layer);
            found.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));
            let bound = self.degree_bound(layer);
            let selected = self.select_neighbors(&found, bound);
            for &n in &selected {
                self.neighbors[layer][id as usize].push(n);
                self.neighbors[layer][n as usize].push(id);
                // Prune the back-edges to the degree bound with the same
                // diversity heuristic.
                if self.neighbors[layer][n as usize].len() > bound {
                    let base = self.vectors.row(n as usize).to_vec();
                    let mut edges: Vec<(u32, f32)> = self.neighbors[layer][n as usize]
                        .iter()
                        .map(|&e| (e, l2_sq(&base, self.vectors.row(e as usize))))
                        .collect();
                    edges.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));
                    self.neighbors[layer][n as usize] = self.select_neighbors(&edges, bound);
                }
            }
            ep = found.into_iter().map(|(i, _)| i).collect();
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = id;
        }
    }

    /// Approximate kNN: `ef` is the search beam width (`ef ≥ k`); returns
    /// `(id, distance)` best-first.
    pub fn knn(&self, q: &[f32], k: usize, ef: usize) -> Vec<(u32, f32)> {
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut ep = vec![self.entry];
        for layer in (1..=(self.max_level as usize)).rev() {
            let found = self.search_layer(q, &ep, 1, layer);
            ep = found.into_iter().map(|(i, _)| i).collect();
            ep.truncate(1);
        }
        let mut found = self.search_layer(q, &ep, ef.max(k), 0);
        found.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        found.truncate(k);
        found
    }

    /// Batch kNN fan-out over the global [`Threads`] worker count: one
    /// result list per query, empty for all-zero (empty-text) queries.
    pub fn knn_batch(&self, queries: &[Vec<f32>], k: usize, ef: usize) -> Vec<Vec<(u32, f32)>> {
        self.knn_batch_with(Threads::get(), queries, k, ef)
    }

    /// [`HnswIndex::knn_batch`] over an explicit worker count. The graph
    /// is read-only during search and queries are independent, so the
    /// query-order merge matches the serial loop for every `threads`.
    pub fn knn_batch_with(
        &self,
        threads: usize,
        queries: &[Vec<f32>],
        k: usize,
        ef: usize,
    ) -> Vec<Vec<(u32, f32)>> {
        let chunk = parallel::query_chunk_len(queries.len());
        let per_chunk = parallel::par_map_chunks_with(threads, queries, chunk, |_, part| {
            part.iter()
                .map(|q| {
                    if q.iter().all(|&v| v == 0.0) {
                        Vec::new()
                    } else {
                        self.knn(q, k, ef)
                    }
                })
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// The FAISS-HNSW-equivalent filter: approximate dense kNN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswKnn {
    /// Apply stop-word removal + stemming (`CL`).
    pub cleaning: bool,
    /// Neighbors per query (`K`).
    pub k: usize,
    /// Degree bound `M`.
    pub m: usize,
    /// Search beam width (`efSearch`).
    pub ef_search: usize,
    /// Embedding configuration.
    pub embedding: EmbeddingConfig,
    /// Level-sampling seed.
    pub seed: u64,
}

impl HnswKnn {
    /// One-line configuration description.
    pub fn describe(&self) -> String {
        format!(
            "CL={} K={} M={} ef={}",
            if self.cleaning { "y" } else { "-" },
            self.k,
            self.m,
            self.ef_search
        )
    }
}

/// The prepare-stage artifact: the built graph plus the query
/// embeddings. The graph depends on `M`, the construction beam (derived
/// from `efSearch`) and the seed; only `K` stays in the query stage.
pub struct HnswArtifact {
    index: HnswIndex,
    queries: Vec<Vec<f32>>,
}

impl HnswArtifact {
    /// Approximate heap footprint for cache accounting.
    fn bytes(&self) -> usize {
        let adjacency: usize = self
            .index
            .neighbors
            .iter()
            .flatten()
            .map(|n| std::mem::size_of::<Vec<u32>>() + n.len() * 4)
            .sum();
        self.index.vectors.heap_bytes() + adjacency + vecs_bytes(&self.queries)
    }
}

impl Filter for HnswKnn {
    fn name(&self) -> String {
        "FAISS-HNSW".to_owned()
    }

    fn repr_key(&self) -> String {
        format!(
            "hnsw:CL={}:M={}:ef={}:s={:x}:{}",
            flag(self.cleaning),
            self.m,
            self.ef_search,
            self.seed,
            emb_key(&self.embedding)
        )
    }

    fn prepare(&self, view: &TextView) -> Prepared {
        let cleaner = if self.cleaning {
            Cleaner::on()
        } else {
            Cleaner::off()
        };
        let embedder = HashEmbedder::new(self.embedding);
        let mut breakdown = PhaseBreakdown::new();
        let (v1, queries) = breakdown.time_in(Stage::Prepare, "preprocess", || {
            embedder.embed_view(view, &cleaner)
        });
        let index = breakdown.time_in(Stage::Prepare, "index", || {
            HnswIndex::build(v1, self.m, (self.ef_search * 2).max(64), self.seed)
        });
        let artifact = HnswArtifact { index, queries };
        let bytes = artifact.bytes();
        Prepared::new(artifact, bytes, breakdown)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        let art = prepared.downcast::<HnswArtifact>();
        let mut out = FilterOutput::default();
        out.breakdown.time("query", || {
            for (j, nn) in art
                .index
                .knn_batch(&art.queries, self.k, self.ef_search)
                .into_iter()
                .enumerate()
            {
                for (i, _) in nn {
                    out.candidates.insert_raw(i, j as u32);
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::{FlatIndex, Metric};
    use rand::Rng;

    fn clustered(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let center = (i % 8) as f32 * 2.5;
                (0..dim)
                    .map(|_| center + rng.gen_range(-0.3..0.3))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn exact_top1_found_on_clustered_data() {
        let data = clustered(400, 8, 1);
        let index = HnswIndex::build(data.clone(), 12, 100, 7);
        let flat = FlatIndex::build(data.clone(), Metric::L2Sq);
        let mut hits = 0;
        for q in data.iter().step_by(10) {
            let approx = index.knn(q, 1, 64);
            let exact = flat.knn(q, 1);
            if approx.first().map(|a| a.0) == exact.first().map(|e| e.0) {
                hits += 1;
            }
        }
        assert!(hits >= 38, "top-1 recall too low: {hits}/40");
    }

    #[test]
    fn recall_at_10_is_high_with_wide_beam() {
        let data = clustered(300, 6, 2);
        let index = HnswIndex::build(data.clone(), 16, 128, 3);
        let flat = FlatIndex::build(data.clone(), Metric::L2Sq);
        let mut found = 0;
        let mut total = 0;
        for q in data.iter().step_by(20) {
            let approx: std::collections::HashSet<u32> =
                index.knn(q, 10, 128).into_iter().map(|(i, _)| i).collect();
            for (i, _) in flat.knn(q, 10) {
                total += 1;
                if approx.contains(&i) {
                    found += 1;
                }
            }
        }
        let recall = found as f64 / total as f64;
        assert!(recall >= 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn wider_beam_never_worse_smoke() {
        let data = clustered(200, 4, 3);
        let index = HnswIndex::build(data.clone(), 8, 64, 5);
        let flat = FlatIndex::build(data.clone(), Metric::L2Sq);
        let q = &data[17];
        let exact: std::collections::HashSet<u32> =
            flat.knn(q, 5).into_iter().map(|(i, _)| i).collect();
        let narrow = index
            .knn(q, 5, 8)
            .into_iter()
            .filter(|(i, _)| exact.contains(i))
            .count();
        let wide = index
            .knn(q, 5, 128)
            .into_iter()
            .filter(|(i, _)| exact.contains(i))
            .count();
        assert!(wide >= narrow, "wide {wide} < narrow {narrow}");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = clustered(120, 4, 4);
        let a = HnswIndex::build(data.clone(), 8, 64, 9);
        let b = HnswIndex::build(data.clone(), 8, 64, 9);
        let q = &data[3];
        assert_eq!(a.knn(q, 5, 32), b.knn(q, 5, 32));
    }

    #[test]
    fn degenerate_inputs() {
        let empty = HnswIndex::build(Vec::new(), 8, 32, 0);
        assert!(empty.is_empty());
        assert!(empty.knn(&[0.0; 4], 3, 16).is_empty());
        let single = HnswIndex::build(vec![vec![1.0, 0.0]], 8, 32, 0);
        assert_eq!(single.knn(&[1.0, 0.0], 3, 16), vec![(0, 0.0)]);
    }

    #[test]
    fn batch_queries_match_serial_for_any_thread_count() {
        let data = clustered(150, 4, 6);
        let index = HnswIndex::build(data.clone(), 8, 64, 11);
        let mut queries = data[..30].to_vec();
        queries.push(vec![0.0; 4]);
        let serial: Vec<Vec<(u32, f32)>> = queries
            .iter()
            .map(|q| {
                if q.iter().all(|&v| v == 0.0) {
                    Vec::new()
                } else {
                    index.knn(q, 5, 32)
                }
            })
            .collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                index.knn_batch_with(threads, &queries, 5, 32),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn filter_finds_duplicates() {
        let view = TextView {
            e1: vec![
                "canon eos camera".into(),
                "office chair black".into(),
                "usb cable".into(),
            ]
            .into(),
            e2: vec!["canon eos camera body".into(), "black office chair".into()].into(),
        };
        let f = HnswKnn {
            cleaning: false,
            k: 1,
            m: 8,
            ef_search: 32,
            embedding: EmbeddingConfig {
                dim: 32,
                ..Default::default()
            },
            seed: 1,
        };
        let out = f.run(&view);
        assert!(out.candidates.contains(er_core::Pair::new(0, 0)));
        assert!(out.candidates.contains(er_core::Pair::new(1, 1)));
    }
}
