//! Hyperplane LSH (paper §IV-D; Charikar, STOC 2002) with multiprobe.
//!
//! Each hash table draws `#hashes` random normal vectors; a vector's bucket
//! key is the sign pattern of its projections, so two vectors with angle α
//! collide on one bit with probability `1 − α/π`. Multiprobe additionally
//! visits the buckets obtained by flipping the *least confident* bits
//! (smallest `|projection|`), trading query time for recall — the paper
//! auto-tunes the probe count toward the recall target, which our harness
//! reproduces by sweeping `probes` ascending.

use crate::artifact::{emb_key, flag, vecs_bytes};
use crate::embed::{EmbeddingConfig, HashEmbedder};
use crate::vector::{dot, FlatVectors};
use er_core::candidates::CandidateSet;
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::hash::FastMap;
use er_core::schema::TextView;
use er_core::timing::{PhaseBreakdown, Stage};
use er_text::Cleaner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A configured Hyperplane LSH filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperplaneLsh {
    /// Apply stop-word removal + stemming (`CL`).
    pub cleaning: bool,
    /// Number of hash tables.
    pub tables: usize,
    /// Hash functions (bits) per table, ≤ 30.
    pub hashes: usize,
    /// Buckets probed per table (1 = exact bucket only).
    pub probes: usize,
    /// Embedding configuration.
    pub embedding: EmbeddingConfig,
    /// Hyperplane sampling seed (the method's stochasticity).
    pub seed: u64,
}

impl HyperplaneLsh {
    /// One-line configuration description for Table X-style reports.
    pub fn describe(&self) -> String {
        format!(
            "CL={} tables={} hashes={} probes={}",
            if self.cleaning { "y" } else { "-" },
            self.tables,
            self.hashes,
            self.probes
        )
    }
}

/// One table's random hyperplanes.
pub(crate) struct Table {
    /// `hashes` normal vectors (rows), each of embedding dimension.
    pub(crate) normals: FlatVectors,
}

impl Table {
    /// Sign-pattern key and per-bit projection magnitudes.
    fn key_and_margins(&self, v: &[f32]) -> (u32, Vec<f32>) {
        let mut key = 0u32;
        let mut margins = Vec::with_capacity(self.normals.len());
        for bit in 0..self.normals.len() {
            let p = dot(self.normals.row(bit), v);
            if p >= 0.0 {
                key |= 1 << bit;
            }
            margins.push(p.abs());
        }
        (key, margins)
    }
}

/// Multiprobe sequence: the exact key first, then keys by ascending total
/// flipped margin (best-first search over flip sets).
fn probe_sequence(key: u32, margins: &[f32], probes: usize) -> Vec<u32> {
    #[derive(PartialEq)]
    struct Node {
        cost: f32,
        mask: u32,
        /// Highest bit index considered so far (for non-redundant expansion).
        last_bit: usize,
    }
    impl Eq for Node {}
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap via reversed cost comparison.
            other
                .cost
                .partial_cmp(&self.cost)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.mask.cmp(&self.mask))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut order: Vec<usize> = (0..margins.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        margins[a]
            .partial_cmp(&margins[b])
            .unwrap_or(Ordering::Equal)
    });

    let mut out = Vec::with_capacity(probes);
    out.push(key);
    if probes <= 1 || margins.is_empty() {
        return out;
    }
    let mut heap = BinaryHeap::new();
    heap.push(Node {
        cost: margins[order[0]],
        mask: 1 << order[0],
        last_bit: 0,
    });
    while out.len() < probes {
        let Some(node) = heap.pop() else { break };
        out.push(key ^ node.mask);
        // Expand: extend the flip set with the next bit, or shift its last
        // flipped bit — the classic non-redundant multiprobe expansion.
        let next = node.last_bit + 1;
        if next < order.len() {
            heap.push(Node {
                cost: node.cost + margins[order[next]],
                mask: node.mask | (1 << order[next]),
                last_bit: next,
            });
            heap.push(Node {
                cost: node.cost - margins[order[node.last_bit]] + margins[order[next]],
                mask: (node.mask & !(1 << order[node.last_bit])) | (1 << order[next]),
                last_bit: next,
            });
        }
    }
    out
}

/// The prepare-stage artifact: sampled hyperplanes, `E1` buckets and the
/// query-side embeddings. The probe count only steers the query stage, so
/// a probe sweep shares one artifact.
pub struct HyperplaneArtifact {
    pub(crate) tables: Vec<Table>,
    pub(crate) buckets: Vec<FastMap<u32, Vec<u32>>>,
    pub(crate) queries: Vec<Vec<f32>>,
}

impl HyperplaneArtifact {
    /// Approximate heap footprint for cache accounting.
    pub(crate) fn bytes(&self) -> usize {
        let normals: usize = self.tables.iter().map(|t| t.normals.heap_bytes()).sum();
        let buckets: usize = self
            .buckets
            .iter()
            .flat_map(|b| b.values())
            .map(|ids| 4 + std::mem::size_of::<Vec<u32>>() + ids.len() * 4)
            .sum();
        normals + buckets + vecs_bytes(&self.queries)
    }
}

impl Filter for HyperplaneLsh {
    fn name(&self) -> String {
        "HP-LSH".to_owned()
    }

    fn repr_key(&self) -> String {
        format!(
            "hp:CL={}:T={}:H={}:s={:x}:{}",
            flag(self.cleaning),
            self.tables,
            self.hashes,
            self.seed,
            emb_key(&self.embedding)
        )
    }

    fn prepare(&self, view: &TextView) -> Prepared {
        assert!(
            self.hashes >= 1 && self.hashes <= 30,
            "hashes must be in [1, 30]"
        );
        let cleaner = if self.cleaning {
            Cleaner::on()
        } else {
            Cleaner::off()
        };
        let embedder = HashEmbedder::new(self.embedding);
        let mut breakdown = PhaseBreakdown::new();

        let (v1, queries) = breakdown.time_in(Stage::Prepare, "preprocess", || {
            embedder.embed_view(view, &cleaner)
        });

        // Sample hyperplanes and index E1.
        let (tables, buckets) = breakdown.time_in(Stage::Prepare, "index", || {
            let mut rng = StdRng::seed_from_u64(self.seed);
            let dim = self.embedding.dim;
            let tables: Vec<Table> = (0..self.tables)
                .map(|_| {
                    let mut normals = FlatVectors::with_dim(dim);
                    let mut row = vec![0.0f32; dim];
                    for _ in 0..self.hashes {
                        for x in &mut row {
                            // Box-Muller standard normals.
                            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                            let u2: f32 = rng.gen_range(0.0..1.0);
                            *x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                        }
                        normals.push_row(&row);
                    }
                    Table { normals }
                })
                .collect();
            let mut buckets: Vec<FastMap<u32, Vec<u32>>> = vec![FastMap::default(); self.tables];
            for (i, v) in v1.iter().enumerate() {
                if v.iter().all(|&x| x == 0.0) {
                    continue;
                }
                for (t, table) in tables.iter().enumerate() {
                    let (key, _) = table.key_and_margins(v);
                    buckets[t].entry(key).or_default().push(i as u32);
                }
            }
            (tables, buckets)
        });
        let artifact = HyperplaneArtifact {
            tables,
            buckets,
            queries,
        };
        let bytes = artifact.bytes();
        Prepared::new(artifact, bytes, breakdown)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        let art = prepared.downcast::<HyperplaneArtifact>();
        let mut out = FilterOutput::default();
        out.breakdown.time("query", || {
            let mut candidates = CandidateSet::new();
            for (j, v) in art.queries.iter().enumerate() {
                if v.iter().all(|&x| x == 0.0) {
                    continue;
                }
                for (t, table) in art.tables.iter().enumerate() {
                    let (key, margins) = table.key_and_margins(v);
                    for probe in probe_sequence(key, &margins, self.probes.max(1)) {
                        if let Some(hits) = art.buckets[t].get(&probe) {
                            for &i in hits {
                                candidates.insert_raw(i, j as u32);
                            }
                        }
                    }
                }
            }
            out.candidates = candidates;
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::candidates::Pair;

    fn lsh(tables: usize, hashes: usize, probes: usize) -> HyperplaneLsh {
        HyperplaneLsh {
            cleaning: false,
            tables,
            hashes,
            probes,
            embedding: EmbeddingConfig {
                dim: 64,
                ..Default::default()
            },
            seed: 5,
        }
    }

    #[test]
    fn identical_vectors_always_collide() {
        let view = TextView {
            e1: vec!["canon powershot camera".into()].into(),
            e2: vec!["canon powershot camera".into()].into(),
        };
        let out = lsh(4, 8, 1).run(&view);
        assert!(out.candidates.contains(Pair::new(0, 0)));
    }

    #[test]
    fn more_probes_never_reduce_candidates() {
        let view = TextView {
            e1: (0..40)
                .map(|i| format!("item model {i} series pro"))
                .collect(),
            e2: (0..10).map(|i| format!("item model {i} series")).collect(),
        };
        let base = lsh(2, 10, 1).run(&view).candidates.len();
        let probed = lsh(2, 10, 16).run(&view).candidates.len();
        assert!(probed >= base, "{probed} < {base}");
    }

    #[test]
    fn more_hashes_reduce_collisions() {
        let view = TextView {
            e1: (0..50).map(|i| format!("product alpha {i}")).collect(),
            e2: (0..50).map(|i| format!("product beta {i}")).collect(),
        };
        let coarse = lsh(1, 2, 1).run(&view).candidates.len();
        let fine = lsh(1, 16, 1).run(&view).candidates.len();
        assert!(fine <= coarse, "{fine} > {coarse}");
    }

    #[test]
    fn probe_sequence_starts_exact_and_deduplicates() {
        let margins = vec![0.5, 0.1, 0.9];
        let seq = probe_sequence(0b101, &margins, 4);
        assert_eq!(seq[0], 0b101);
        assert_eq!(seq[1], 0b101 ^ 0b010, "least-confident bit flipped first");
        let unique: std::collections::HashSet<u32> = seq.iter().copied().collect();
        assert_eq!(unique.len(), seq.len(), "probe keys must be distinct");
    }

    #[test]
    fn probe_sequence_handles_edge_cases() {
        assert_eq!(probe_sequence(7, &[], 5), vec![7]);
        assert_eq!(probe_sequence(7, &[0.3], 1), vec![7]);
        let seq = probe_sequence(0, &[0.1], 10);
        assert_eq!(seq, vec![0, 1], "only two buckets exist for one bit");
    }

    #[test]
    fn probe_sweep_shares_one_artifact() {
        let view = TextView {
            e1: (0..40)
                .map(|i| format!("item model {i} series pro"))
                .collect(),
            e2: (0..10).map(|i| format!("item model {i} series")).collect(),
        };
        assert_eq!(lsh(2, 10, 1).repr_key(), lsh(2, 10, 16).repr_key());
        assert_ne!(lsh(2, 10, 1).repr_key(), lsh(2, 8, 1).repr_key());
        let prepared = lsh(2, 10, 1).prepare(&view);
        for probes in [1, 4, 16] {
            let f = lsh(2, 10, probes);
            assert_eq!(
                f.query(&view, &prepared).candidates.to_sorted_vec(),
                f.run(&view).candidates.to_sorted_vec(),
                "probes={probes}"
            );
        }
    }

    #[test]
    fn stochastic_across_seeds() {
        let view = TextView {
            e1: (0..30).map(|i| format!("thing {i} red large")).collect(),
            e2: (0..30).map(|i| format!("thing {i} red")).collect(),
        };
        let a = HyperplaneLsh {
            seed: 1,
            ..lsh(2, 12, 1)
        }
        .run(&view)
        .candidates;
        let b = HyperplaneLsh {
            seed: 1,
            ..lsh(2, 12, 1)
        }
        .run(&view)
        .candidates;
        assert_eq!(
            a.to_sorted_vec(),
            b.to_sorted_vec(),
            "same seed, same output"
        );
    }
}
