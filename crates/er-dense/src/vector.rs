//! Small dense-vector utilities shared by every dense NN method.

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance (the `L2²` similarity of SCANN/FAISS — no
/// square root, since ranking is monotone in it).
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Cosine similarity; 0 for zero vectors.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Normalizes `v` to unit L2 norm in place; zero vectors stay zero.
#[inline]
pub fn normalize(v: &mut [f32]) {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_l2() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn cosine_bounds() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((dot(&v, &v) - 1.0).abs() < 1e-6);
        let mut zero = vec![0.0, 0.0];
        normalize(&mut zero);
        assert_eq!(zero, vec![0.0, 0.0]);
    }

    #[test]
    fn unit_vectors_relate_l2_to_cosine() {
        // For unit vectors: ||a-b||² = 2 - 2·cos(a,b).
        let mut a = vec![0.6, 0.8, 0.0];
        let mut b = vec![0.0, 0.6, 0.8];
        normalize(&mut a);
        normalize(&mut b);
        let lhs = l2_sq(&a, &b);
        let rhs = 2.0 - 2.0 * cosine(&a, &b);
        assert!((lhs - rhs).abs() < 1e-6);
    }
}
