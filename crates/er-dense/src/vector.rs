//! Dense-vector kernels and the contiguous row-major vector storage
//! shared by every dense NN method.
//!
//! [`dot`] and [`l2_sq`] are thin dispatchers: with the `simd` feature
//! they route to the explicit AVX2/NEON kernels in [`crate::simd`] when
//! the host supports them, otherwise (and always without the feature)
//! they run [`dot_blocked`]/[`l2_sq_blocked`] — safe kernels written for
//! autovectorization: the hot loop runs over `LANES`-wide chunks with one
//! independent accumulator per lane (`chunks_exact` proves the bounds,
//! the unrolled accumulators break the sequential-add dependency chain),
//! followed by a fixed-shape lane reduction and a scalar remainder. Every
//! dispatched variant reproduces the blocked kernels' exact operation
//! sequence, so results are **bitwise identical across dispatch targets**
//! (asserted via `to_bits` in `crate::simd` and `bench_kernels`) — a
//! candidate set can never depend on the host CPU.
//!
//! The summation order is a pure function of the input length, so results
//! are deterministic — but they differ in the last ulp from a strict
//! left-to-right scalar sum, which is why [`dot_scalar`]/[`l2_sq_scalar`]
//! are retained as references for tests and benchmarks.

/// Accumulator width of the blocked kernels.
const LANES: usize = 8;

/// Fixed-shape reduction of the lane accumulators; part of the kernels'
/// deterministic summation order.
#[inline]
fn lane_sum(acc: [f32; LANES]) -> f32 {
    let a0 = acc[0] + acc[4];
    let a1 = acc[1] + acc[5];
    let a2 = acc[2] + acc[6];
    let a3 = acc[3] + acc[7];
    (a0 + a2) + (a1 + a3)
}

/// Dot product — dispatches to the widest kernel the host supports; the
/// result is bit-identical to [`dot_blocked`] on every target.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { crate::simd::dot_neon(a, b) }
    }
    #[cfg(not(all(feature = "simd", target_arch = "aarch64")))]
    {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::simd::avx2() {
            // SAFETY: AVX2 support was just probed.
            return unsafe { crate::simd::dot_avx2(a, b) };
        }
        dot_blocked(a, b)
    }
}

/// Squared Euclidean distance (the `L2²` similarity of SCANN/FAISS — no
/// square root, since ranking is monotone in it). Dispatches like
/// [`dot`]; bit-identical to [`l2_sq_blocked`] on every target.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { crate::simd::l2_sq_neon(a, b) }
    }
    #[cfg(not(all(feature = "simd", target_arch = "aarch64")))]
    {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::simd::avx2() {
            // SAFETY: AVX2 support was just probed.
            return unsafe { crate::simd::l2_sq_avx2(a, b) };
        }
        l2_sq_blocked(a, b)
    }
}

/// Dot product (blocked safe kernel) — the always-compiled reference the
/// SIMD variants are `to_bits`-tested against.
#[inline]
pub fn dot_blocked(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for ((l, &xv), &yv) in acc.iter_mut().zip(x).zip(y) {
            *l += xv * yv;
        }
    }
    let mut sum = lane_sum(acc);
    for (&xv, &yv) in ca.remainder().iter().zip(cb.remainder()) {
        sum += xv * yv;
    }
    sum
}

/// Squared Euclidean distance (blocked safe kernel) — the always-compiled
/// reference the SIMD variants are `to_bits`-tested against.
#[inline]
pub fn l2_sq_blocked(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for ((l, &xv), &yv) in acc.iter_mut().zip(x).zip(y) {
            let d = xv - yv;
            *l += d * d;
        }
    }
    let mut sum = lane_sum(acc);
    for (&xv, &yv) in ca.remainder().iter().zip(cb.remainder()) {
        let d = xv - yv;
        sum += d * d;
    }
    sum
}

/// Strict left-to-right scalar dot product — the pre-blocking reference
/// implementation, kept for accuracy tests and kernel benchmarks.
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Strict left-to-right scalar squared Euclidean distance — the
/// pre-blocking reference, kept for accuracy tests and kernel benchmarks.
#[inline]
pub fn l2_sq_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Cosine similarity; 0 for zero vectors.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Normalizes `v` to unit L2 norm in place; zero vectors stay zero.
#[inline]
pub fn normalize(v: &mut [f32]) {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

/// Contiguous row-major storage for equal-dimension vectors.
///
/// Replaces `Vec<Vec<f32>>` in the index hot paths: one allocation, cache-
/// line-friendly sequential scans, and an exact heap-byte count for the
/// artifact cache (`Vec<Vec<f32>>` costs one allocation header per row
/// that the old estimates ignored).
#[derive(Debug, Clone, Default)]
pub struct FlatVectors {
    data: Vec<f32>,
    dim: usize,
    rows: usize,
}

impl FlatVectors {
    /// Empty storage accepting rows of dimension `dim`.
    pub fn with_dim(dim: usize) -> Self {
        Self {
            data: Vec::new(),
            dim,
            rows: 0,
        }
    }

    /// Packs owned rows; all rows must share one dimension.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let mut out = Self::with_dim(dim);
        out.data.reserve(dim * rows.len());
        for row in rows {
            out.push_row(row);
        }
        out
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: &[f32]) {
        if self.rows == 0 && self.dim == 0 {
            self.dim = row.len();
        }
        assert_eq!(row.len(), self.dim, "row dimension mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..i * self.dim + self.dim]
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Exact heap footprint of the stored elements.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// The contiguous row-major element storage, for serialization.
    pub(crate) fn raw_data(&self) -> &[f32] {
        &self.data
    }

    /// Rebuilds storage from its raw parts; `data.len()` must equal
    /// `dim * rows` (the store codec validates before calling).
    pub(crate) fn from_raw(data: Vec<f32>, dim: usize, rows: usize) -> Self {
        debug_assert_eq!(data.len(), dim * rows);
        Self { data, dim, rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_l2() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn cosine_bounds() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((dot(&v, &v) - 1.0).abs() < 1e-6);
        let mut zero = vec![0.0, 0.0];
        normalize(&mut zero);
        assert_eq!(zero, vec![0.0, 0.0]);
    }

    #[test]
    fn unit_vectors_relate_l2_to_cosine() {
        // For unit vectors: ||a-b||² = 2 - 2·cos(a,b).
        let mut a = vec![0.6, 0.8, 0.0];
        let mut b = vec![0.0, 0.6, 0.8];
        normalize(&mut a);
        normalize(&mut b);
        let lhs = l2_sq(&a, &b);
        let rhs = 2.0 - 2.0 * cosine(&a, &b);
        assert!((lhs - rhs).abs() < 1e-6);
    }

    fn pseudo_random(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 8388608.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn blocked_kernels_match_scalar_reference() {
        // Different summation order, same value up to accumulated rounding.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 31, 64, 129] {
            let a = pseudo_random(len, 3);
            let b = pseudo_random(len, 5);
            let tol = 1e-4 * (len.max(1) as f32);
            assert!(
                (dot_blocked(&a, &b) - dot_scalar(&a, &b)).abs() <= tol,
                "dot len={len}"
            );
            assert!(
                (l2_sq_blocked(&a, &b) - l2_sq_scalar(&a, &b)).abs() <= tol,
                "l2 len={len}"
            );
        }
    }

    #[test]
    fn dispatched_kernels_bitwise_match_blocked_reference() {
        // Whatever `dot`/`l2_sq` dispatch to must equal the blocked
        // reference to the bit — the cross-CPU determinism contract.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 31, 64, 129, 300] {
            let a = pseudo_random(len, 7);
            let b = pseudo_random(len, 9);
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_blocked(&a, &b).to_bits(),
                "dot len={len}"
            );
            assert_eq!(
                l2_sq(&a, &b).to_bits(),
                l2_sq_blocked(&a, &b).to_bits(),
                "l2 len={len}"
            );
        }
    }

    #[test]
    fn flat_vectors_round_trip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let fv = FlatVectors::from_rows(&rows);
        assert_eq!(fv.len(), 3);
        assert_eq!(fv.dim(), 2);
        assert!(!fv.is_empty());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(fv.row(i), row.as_slice());
        }
        assert_eq!(fv.heap_bytes(), 6 * 4);

        let mut grown = FlatVectors::with_dim(2);
        for row in &rows {
            grown.push_row(row);
        }
        assert_eq!(grown.row(2), [5.0, 6.0]);

        let empty = FlatVectors::from_rows(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.heap_bytes(), 0);
    }
}
