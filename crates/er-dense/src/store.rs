//! Persistent-store codecs for the dense artifacts.
//!
//! The codecs cover every dense prepare-stage artifact: the shared
//! embed+flat-index artifact (FAISS-Flat, range and DeepBlocker runs),
//! MinHash signatures+buckets, the two LSH families (hyperplanes and
//! cross-polytope rotations plus their hash tables) and the SCANN-style
//! partitioned index with its optional product quantizer.
//!
//! Flat-index files exist in two generations. [`DenseFlatCodec`] (id 3)
//! predates the quantized scan sidecar: it is decode-only and opts out of
//! exact heap parity, because its headers record the footprint without
//! the sidecar that [`FlatIndex::from_parts`] now rebuilds. New files are
//! written by [`DenseFlatQCodec`] (id 9) with the *same section layout* —
//! the sidecar is never serialized since quantization is deterministic,
//! so decode re-derives an identical one and exact parity holds.
//!
//! Common building blocks: [`FlatVectors`] serializes as `(rows, dim)`
//! scalars plus one `f32` section; ragged `Vec<Vec<f32>>` collections as
//! CSR (`u32` offsets + flat `f32`s); bucket maps as per-table sorted-key
//! arrays with CSR value lists, which also makes the encoded bytes
//! deterministic regardless of hash-map iteration order. Decode
//! re-validates every invariant the query paths rely on (CSR shape,
//! member bounds, dimension agreement, PQ geometry) so a file that beats
//! the checksums still cannot cause an out-of-bounds panic later, and
//! recomputes `heap_bytes` with the same formulas the prepare paths use —
//! all of which depend only on array sizes, so cache budgeting is
//! byte-identical either way.

use crate::artifact::{vecs_bytes, DenseIndexArtifact};
use crate::crosspolytope::{CrossPolytopeArtifact, Rotation, Table as CpTable};
use crate::flat::{FlatIndex, Metric};
use crate::hyperplane::{HyperplaneArtifact, Table as HpTable};
use crate::minhash::MinHashArtifact;
use crate::partitioned::{PartitionedArtifact, PartitionedIndex, Scoring};
use crate::pq::ProductQuantizer;
use crate::vector::FlatVectors;
use er_core::hash::FastMap;
use er_store::{ArtifactCodec, SectionCursor, SectionRatio, Sections, StoreError, StoreFile};
use std::any::Any;
use std::hash::Hash;
use std::sync::Arc;

/// Codec id of legacy (pre-quantization) embed+flat-index files.
pub const DENSE_FLAT_CODEC_ID: u32 = 3;
/// Codec id stamped into new embed+flat-index artifact files.
pub const DENSE_FLAT_Q_CODEC_ID: u32 = 9;
/// Codec id stamped into MinHash artifact files.
pub const MINHASH_CODEC_ID: u32 = 4;
/// Codec id stamped into Hyperplane-LSH artifact files.
pub const HYPERPLANE_CODEC_ID: u32 = 5;
/// Codec id stamped into Cross-Polytope-LSH artifact files.
pub const CROSSPOLYTOPE_CODEC_ID: u32 = 6;
/// Codec id stamped into partitioned-index artifact files.
pub const PARTITIONED_CODEC_ID: u32 = 7;

fn malformed(msg: impl Into<String>) -> StoreError {
    StoreError::Malformed(msg.into())
}

fn metric_code(m: Metric) -> u64 {
    match m {
        Metric::Dot => 0,
        Metric::L2Sq => 1,
    }
}

fn metric_from(code: u64) -> er_store::Result<Metric> {
    match code {
        0 => Ok(Metric::Dot),
        1 => Ok(Metric::L2Sq),
        other => Err(malformed(format!("unknown metric code {other}"))),
    }
}

fn scoring_code(s: Scoring) -> u64 {
    match s {
        Scoring::BruteForce => 0,
        Scoring::AsymmetricHashing => 1,
    }
}

fn scoring_from(code: u64) -> er_store::Result<Scoring> {
    match code {
        0 => Ok(Scoring::BruteForce),
        1 => Ok(Scoring::AsymmetricHashing),
        other => Err(malformed(format!("unknown scoring code {other}"))),
    }
}

/// Writes one [`FlatVectors`]: `(rows, dim)` scalars + one `f32` section.
fn push_vectors(s: &mut Sections, fv: &FlatVectors) {
    s.scalar(fv.len() as u64);
    s.scalar(fv.dim() as u64);
    s.f32s(fv.raw_data());
}

/// Reads one [`FlatVectors`], checking the element count matches.
fn read_vectors(what: &str, cur: &mut SectionCursor<'_>) -> er_store::Result<FlatVectors> {
    let rows = cur.scalar_usize()?;
    let dim = cur.scalar_usize()?;
    let data = cur.f32s()?;
    if rows.checked_mul(dim) != Some(data.len()) {
        return Err(malformed(format!("{what}: rows*dim != elements")));
    }
    Ok(FlatVectors::from_raw(data.to_vec(), dim, rows))
}

/// Writes a ragged vector collection as CSR offsets + flat elements.
fn push_vecs(s: &mut Sections, vecs: &[Vec<f32>]) {
    let mut offsets = Vec::with_capacity(vecs.len() + 1);
    offsets.push(0u32);
    let mut flat = Vec::new();
    for v in vecs {
        flat.extend_from_slice(v);
        offsets.push(flat.len() as u32);
    }
    s.u32s(&offsets);
    s.f32s(&flat);
}

/// Reads a ragged vector collection, validating the CSR offsets.
fn read_vecs(what: &str, cur: &mut SectionCursor<'_>) -> er_store::Result<Vec<Vec<f32>>> {
    let offsets = cur.u32s()?;
    let flat = cur.f32s()?;
    let ok = offsets.first() == Some(&0)
        && offsets.last().copied() == Some(flat.len() as u32)
        && offsets.windows(2).all(|w| w[0] <= w[1]);
    if !ok {
        return Err(malformed(format!("{what}: broken CSR offsets")));
    }
    Ok(offsets
        .windows(2)
        .map(|w| flat[w[0] as usize..w[1] as usize].to_vec())
        .collect())
}

/// Checks every vector in `vecs` has dimension `dim` (the query kernels
/// assume both sides of a dot product agree).
fn check_dims(what: &str, vecs: &[Vec<f32>], dim: usize) -> er_store::Result<()> {
    if vecs.iter().all(|v| v.len() == dim) {
        Ok(())
    } else {
        Err(malformed(format!("{what}: dimension mismatch")))
    }
}

/// A bucket-map key type: `u32` or `u64` sections.
trait BucketKey: Copy + Ord + Hash + Eq + 'static {
    fn push(s: &mut Sections, keys: &[Self]);
    fn read<'a>(cur: &mut SectionCursor<'a>) -> er_store::Result<&'a [Self]>;
}

impl BucketKey for u32 {
    fn push(s: &mut Sections, keys: &[Self]) {
        s.u32s(keys);
    }
    fn read<'a>(cur: &mut SectionCursor<'a>) -> er_store::Result<&'a [Self]> {
        cur.u32s()
    }
}

impl BucketKey for u64 {
    fn push(s: &mut Sections, keys: &[Self]) {
        s.u64s(keys);
    }
    fn read<'a>(cur: &mut SectionCursor<'a>) -> er_store::Result<&'a [Self]> {
        cur.u64s()
    }
}

/// Writes per-table bucket maps: a table-count scalar, then per table the
/// sorted keys plus CSR value lists. Sorting fixes the bytes regardless of
/// hash-map iteration order.
fn push_buckets<K: BucketKey>(s: &mut Sections, maps: &[FastMap<K, Vec<u32>>]) {
    s.scalar(maps.len() as u64);
    for m in maps {
        let mut keys: Vec<K> = m.keys().copied().collect();
        keys.sort_unstable();
        let mut offsets = Vec::with_capacity(keys.len() + 1);
        offsets.push(0u32);
        let mut vals = Vec::new();
        for k in &keys {
            vals.extend_from_slice(&m[k]);
            offsets.push(vals.len() as u32);
        }
        K::push(s, &keys);
        s.u32s(&offsets);
        s.u32s(&vals);
    }
}

/// Reads per-table bucket maps, validating key uniqueness and CSR shape.
fn read_buckets<K: BucketKey>(
    what: &str,
    cur: &mut SectionCursor<'_>,
) -> er_store::Result<Vec<FastMap<K, Vec<u32>>>> {
    let tables = cur.scalar_usize()?;
    let mut out = Vec::new();
    for t in 0..tables {
        let keys = K::read(cur)?;
        if !keys.windows(2).all(|w| w[0] < w[1]) {
            return Err(malformed(format!("{what}: table {t} keys not unique")));
        }
        let offsets = cur.u32s()?;
        let vals = cur.u32s()?;
        let ok = offsets.len() == keys.len() + 1
            && offsets.first() == Some(&0)
            && offsets.last().copied() == Some(vals.len() as u32)
            && offsets.windows(2).all(|w| w[0] <= w[1]);
        if !ok {
            return Err(malformed(format!("{what}: table {t} broken CSR offsets")));
        }
        let mut map = FastMap::default();
        for (i, &k) in keys.iter().enumerate() {
            map.insert(
                k,
                vals[offsets[i] as usize..offsets[i + 1] as usize].to_vec(),
            );
        }
        out.push(map);
    }
    Ok(out)
}

/// Shared decode of both flat-index generations (identical sections).
fn decode_flat(file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
    let mut cur = file.cursor()?;
    let metric = metric_from(cur.scalar()?)?;
    let vectors = read_vectors("index vectors", &mut cur)?;
    let queries = read_vecs("queries", &mut cur)?;
    cur.finish()?;
    if !vectors.is_empty() {
        check_dims("queries", &queries, vectors.dim())?;
    }
    let index = FlatIndex::from_parts(vectors, metric);
    let heap_bytes = index.heap_bytes() + vecs_bytes(&queries);
    Ok((Arc::new(DenseIndexArtifact { index, queries }), heap_bytes))
}

/// Decodes legacy (pre-quantization) [`DenseIndexArtifact`] files. New
/// files are written by [`DenseFlatQCodec`].
pub struct DenseFlatCodec;

impl ArtifactCodec for DenseFlatCodec {
    fn id(&self) -> u32 {
        DENSE_FLAT_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "dense-flat"
    }

    /// Legacy layout: decode-only.
    fn encode(&self, _artifact: &(dyn Any + Send + Sync)) -> Option<Sections> {
        None
    }

    /// Legacy headers recorded `heap_bytes` without the quantized scan
    /// sidecar that decode now rebuilds.
    fn exact_heap_parity(&self) -> bool {
        false
    }

    fn decode(&self, file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
        decode_flat(file)
    }
}

/// (De)serializes [`DenseIndexArtifact`] (FAISS-Flat, range, DeepBlocker).
///
/// Same sections as the legacy [`DenseFlatCodec`]; only the u8 scan
/// sidecar semantics differ, and that is rebuilt — not stored — so the
/// header's `heap_bytes` matches decode exactly.
pub struct DenseFlatQCodec;

impl ArtifactCodec for DenseFlatQCodec {
    fn id(&self) -> u32 {
        DENSE_FLAT_Q_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "dense-flat-q"
    }

    fn encode(&self, artifact: &(dyn Any + Send + Sync)) -> Option<Sections> {
        let art = artifact.downcast_ref::<DenseIndexArtifact>()?;
        let mut s = Sections::new();
        let (vectors, metric) = art.index.raw_parts();
        s.scalar(metric_code(metric));
        push_vectors(&mut s, vectors);
        push_vecs(&mut s, &art.queries);
        Some(s)
    }

    fn decode(&self, file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
        decode_flat(file)
    }

    /// Reports the derived quantization sidecar: encoded bytes are the
    /// serialized f32 rows, decoded bytes add the rebuilt u8 sidecar.
    fn section_ratios(&self, file: &StoreFile) -> er_store::Result<Vec<SectionRatio>> {
        let mut cur = file.cursor()?;
        let metric = metric_from(cur.scalar()?)?;
        let vectors = read_vectors("index vectors", &mut cur)?;
        let encoded = vectors.heap_bytes() as u64;
        let index = FlatIndex::from_parts(vectors, metric);
        Ok(vec![SectionRatio {
            label: "index".to_owned(),
            encoded_bytes: encoded,
            decoded_bytes: index.heap_bytes() as u64,
        }])
    }
}

/// (De)serializes [`MinHashArtifact`].
pub struct MinHashCodec;

impl ArtifactCodec for MinHashCodec {
    fn id(&self) -> u32 {
        MINHASH_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "minhash"
    }

    fn encode(&self, artifact: &(dyn Any + Send + Sync)) -> Option<Sections> {
        let art = artifact.downcast_ref::<MinHashArtifact>()?;
        let mut s = Sections::new();
        s.scalar(art.sigs2.len() as u64);
        let sig_len = art.sigs2.iter().flatten().next().map_or(0, Vec::len);
        s.scalar(sig_len as u64);
        let presence: Vec<u32> = art
            .sigs2
            .iter()
            .map(|sig| u32::from(sig.is_some()))
            .collect();
        let mut flat = Vec::new();
        for sig in art.sigs2.iter().flatten() {
            debug_assert_eq!(sig.len(), sig_len);
            flat.extend_from_slice(sig);
        }
        s.u32s(&presence);
        s.u64s(&flat);
        push_buckets(&mut s, &art.buckets);
        Some(s)
    }

    fn decode(&self, file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
        let mut cur = file.cursor()?;
        let n = cur.scalar_usize()?;
        let sig_len = cur.scalar_usize()?;
        let presence = cur.u32s()?;
        let flat = cur.u64s()?;
        if presence.len() != n || !presence.iter().all(|&p| p <= 1) {
            return Err(malformed("signatures: broken presence array"));
        }
        let present = presence.iter().filter(|&&p| p == 1).count();
        if present > 0 && sig_len == 0 {
            return Err(malformed("signatures: present but zero-length"));
        }
        if present.checked_mul(sig_len) != Some(flat.len()) {
            return Err(malformed("signatures: flat length mismatch"));
        }
        let mut chunks = flat.chunks_exact(sig_len.max(1));
        let sigs2: Vec<Option<Vec<u64>>> = presence
            .iter()
            .map(|&p| {
                if p == 1 {
                    chunks.next().map(<[u64]>::to_vec)
                } else {
                    None
                }
            })
            .collect();
        let buckets = read_buckets::<u64>("buckets", &mut cur)?;
        cur.finish()?;
        let art = MinHashArtifact { sigs2, buckets };
        let heap_bytes = art.bytes();
        Ok((Arc::new(art), heap_bytes))
    }
}

/// (De)serializes [`HyperplaneArtifact`].
pub struct HyperplaneCodec;

impl ArtifactCodec for HyperplaneCodec {
    fn id(&self) -> u32 {
        HYPERPLANE_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "hyperplane"
    }

    fn encode(&self, artifact: &(dyn Any + Send + Sync)) -> Option<Sections> {
        let art = artifact.downcast_ref::<HyperplaneArtifact>()?;
        let mut s = Sections::new();
        s.scalar(art.tables.len() as u64);
        for t in &art.tables {
            push_vectors(&mut s, &t.normals);
        }
        push_buckets(&mut s, &art.buckets);
        push_vecs(&mut s, &art.queries);
        Some(s)
    }

    fn decode(&self, file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
        let mut cur = file.cursor()?;
        let n_tables = cur.scalar_usize()?;
        let mut tables = Vec::new();
        for _ in 0..n_tables {
            let normals = read_vectors("hyperplanes", &mut cur)?;
            tables.push(HpTable { normals });
        }
        let buckets = read_buckets::<u32>("buckets", &mut cur)?;
        let queries = read_vecs("queries", &mut cur)?;
        cur.finish()?;
        if let Some(dim) = tables.first().map(|t| t.normals.dim()) {
            if tables.iter().any(|t| t.normals.dim() != dim) {
                return Err(malformed("hyperplanes: table dimension mismatch"));
            }
            check_dims("queries", &queries, dim)?;
        }
        let art = HyperplaneArtifact {
            tables,
            buckets,
            queries,
        };
        let heap_bytes = art.bytes();
        Ok((Arc::new(art), heap_bytes))
    }
}

/// (De)serializes [`CrossPolytopeArtifact`].
pub struct CrossPolytopeCodec;

impl ArtifactCodec for CrossPolytopeCodec {
    fn id(&self) -> u32 {
        CROSSPOLYTOPE_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "crosspolytope"
    }

    fn encode(&self, artifact: &(dyn Any + Send + Sync)) -> Option<Sections> {
        let art = artifact.downcast_ref::<CrossPolytopeArtifact>()?;
        let mut s = Sections::new();
        s.scalar(art.tables.len() as u64);
        for t in &art.tables {
            s.scalar(t.leading.len() as u64);
            for rot in &t.leading {
                push_vectors(&mut s, &rot.rows);
            }
            push_vectors(&mut s, &t.last.rows);
        }
        push_buckets(&mut s, &art.buckets);
        push_vecs(&mut s, &art.queries);
        Some(s)
    }

    fn decode(&self, file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
        let mut cur = file.cursor()?;
        let n_tables = cur.scalar_usize()?;
        let mut tables = Vec::new();
        let mut dim = None;
        for _ in 0..n_tables {
            let n_leading = cur.scalar_usize()?;
            let mut leading = Vec::new();
            for _ in 0..n_leading {
                leading.push(Rotation {
                    rows: read_vectors("rotation", &mut cur)?,
                });
            }
            let last = Rotation {
                rows: read_vectors("last rotation", &mut cur)?,
            };
            for rot in leading.iter().chain(std::iter::once(&last)) {
                if *dim.get_or_insert(rot.rows.dim()) != rot.rows.dim() {
                    return Err(malformed("rotations: dimension mismatch"));
                }
            }
            tables.push(CpTable { leading, last });
        }
        let buckets = read_buckets::<u64>("buckets", &mut cur)?;
        let queries = read_vecs("queries", &mut cur)?;
        cur.finish()?;
        if let Some(dim) = dim {
            check_dims("queries", &queries, dim)?;
        }
        let art = CrossPolytopeArtifact {
            tables,
            buckets,
            queries,
        };
        let heap_bytes = art.bytes();
        Ok((Arc::new(art), heap_bytes))
    }
}

/// (De)serializes [`PartitionedArtifact`].
pub struct PartitionedCodec;

impl ArtifactCodec for PartitionedCodec {
    fn id(&self) -> u32 {
        PARTITIONED_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "partitioned"
    }

    fn encode(&self, artifact: &(dyn Any + Send + Sync)) -> Option<Sections> {
        let art = artifact.downcast_ref::<PartitionedArtifact>()?;
        let mut s = Sections::new();
        s.scalar(u64::from(art.index.is_some()));
        if let Some(idx) = &art.index {
            s.scalar(metric_code(idx.metric));
            s.scalar(scoring_code(idx.scoring));
            push_vectors(&mut s, &idx.vectors);
            push_vecs(&mut s, &idx.centroids);
            let mut offsets = Vec::with_capacity(idx.members.len() + 1);
            offsets.push(0u32);
            let mut flat = Vec::new();
            for m in &idx.members {
                flat.extend_from_slice(m);
                offsets.push(flat.len() as u32);
            }
            s.u32s(&offsets);
            s.u32s(&flat);
            s.scalar(u64::from(idx.pq.is_some()));
            if let Some((pq, codes)) = &idx.pq {
                let (m, sub_dims, pq_offsets, codebooks) = pq.raw_parts();
                s.scalar(m as u64);
                let dims: Vec<u64> = sub_dims.iter().map(|&d| d as u64).collect();
                let offs: Vec<u64> = pq_offsets.iter().map(|&o| o as u64).collect();
                s.u64s(&dims);
                s.u64s(&offs);
                let counts: Vec<u32> = codebooks.iter().map(|cb| cb.len() as u32).collect();
                s.u32s(&counts);
                let mut flat_cb = Vec::new();
                for cb in codebooks {
                    for centroid in cb {
                        flat_cb.extend_from_slice(centroid);
                    }
                }
                s.f32s(&flat_cb);
                let mut flat_codes = Vec::new();
                for c in codes {
                    debug_assert_eq!(c.len(), m);
                    flat_codes.extend_from_slice(c);
                }
                s.bytes(&flat_codes);
            }
        }
        push_vecs(&mut s, &art.queries);
        Some(s)
    }

    fn decode(&self, file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
        let mut cur = file.cursor()?;
        let has_index = cur.scalar()?;
        if has_index > 1 {
            return Err(malformed("broken index-presence flag"));
        }
        let index = if has_index == 1 {
            Some(decode_index(&mut cur)?)
        } else {
            None
        };
        let queries = read_vecs("queries", &mut cur)?;
        cur.finish()?;
        if let Some(idx) = &index {
            check_dims("queries", &queries, idx.vectors.dim())?;
        }
        let art = PartitionedArtifact { index, queries };
        let heap_bytes = art.bytes();
        Ok((Arc::new(art), heap_bytes))
    }
}

/// Reads and validates the trained [`PartitionedIndex`].
fn decode_index(cur: &mut SectionCursor<'_>) -> er_store::Result<PartitionedIndex> {
    let metric = metric_from(cur.scalar()?)?;
    let scoring = scoring_from(cur.scalar()?)?;
    let vectors = read_vectors("partition vectors", cur)?;
    let centroids = read_vecs("centroids", cur)?;
    check_dims("centroids", &centroids, vectors.dim())?;
    let offsets = cur.u32s()?;
    let flat = cur.u32s()?;
    let ok = offsets.len() == centroids.len() + 1
        && offsets.first() == Some(&0)
        && offsets.last().copied() == Some(flat.len() as u32)
        && offsets.windows(2).all(|w| w[0] <= w[1]);
    if !ok {
        return Err(malformed("members: broken CSR offsets"));
    }
    if !flat.iter().all(|&id| (id as usize) < vectors.len()) {
        return Err(malformed("members: id out of range"));
    }
    let members: Vec<Vec<u32>> = offsets
        .windows(2)
        .map(|w| flat[w[0] as usize..w[1] as usize].to_vec())
        .collect();
    let has_pq = cur.scalar()?;
    if has_pq > 1 {
        return Err(malformed("broken pq-presence flag"));
    }
    let pq = if has_pq == 1 {
        Some(decode_pq(cur, &vectors)?)
    } else {
        None
    };
    Ok(PartitionedIndex {
        vectors,
        centroids,
        members,
        metric,
        scoring,
        pq,
    })
}

/// Reads and validates the product quantizer plus the per-vector codes.
fn decode_pq(
    cur: &mut SectionCursor<'_>,
    vectors: &FlatVectors,
) -> er_store::Result<(ProductQuantizer, Vec<Vec<u8>>)> {
    let m = cur.scalar_usize()?;
    let sub_dims: Vec<usize> = cur.u64s()?.iter().map(|&d| d as usize).collect();
    let offsets: Vec<usize> = cur.u64s()?.iter().map(|&o| o as usize).collect();
    if m == 0 || sub_dims.len() != m || offsets.len() != m {
        return Err(malformed("pq: broken subspace geometry"));
    }
    // Each subspace must slice inside the vector dimension, or the
    // query-time lookup table would index out of range.
    for (&off, &d) in offsets.iter().zip(&sub_dims) {
        if d == 0 || off.checked_add(d).map_or(true, |end| end > vectors.dim()) {
            return Err(malformed("pq: subspace outside vector dimension"));
        }
    }
    let counts = cur.u32s()?;
    let flat_cb = cur.f32s()?;
    if counts.len() != m {
        return Err(malformed("pq: codebook count mismatch"));
    }
    let mut codebooks = Vec::with_capacity(m);
    let mut at = 0usize;
    for (i, &count) in counts.iter().enumerate() {
        let mut cb = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let end = at + sub_dims[i];
            if end > flat_cb.len() {
                return Err(malformed("pq: codebook elements truncated"));
            }
            cb.push(flat_cb[at..end].to_vec());
            at = end;
        }
        codebooks.push(cb);
    }
    if at != flat_cb.len() {
        return Err(malformed("pq: codebook elements left over"));
    }
    let flat_codes = cur.bytes()?;
    if vectors.len().checked_mul(m) != Some(flat_codes.len()) {
        return Err(malformed("pq: code length mismatch"));
    }
    let codes: Vec<Vec<u8>> = flat_codes
        .chunks_exact(m.max(1))
        .map(<[u8]>::to_vec)
        .collect();
    // Every code byte indexes its subspace's lookup table at query time.
    for code in &codes {
        for (sub, &byte) in code.iter().enumerate() {
            if (byte as usize) >= codebooks[sub].len() {
                return Err(malformed("pq: code outside codebook"));
            }
        }
    }
    let pq = ProductQuantizer::from_raw_parts(m, sub_dims, offsets, codebooks);
    Ok((pq, codes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crosspolytope::CrossPolytopeLsh;
    use crate::embed::EmbeddingConfig;
    use crate::flat::FlatKnn;
    use crate::hyperplane::HyperplaneLsh;
    use crate::minhash::MinHashLsh;
    use crate::partitioned::PartitionedKnn;
    use er_core::artifacts::{ArtifactKey, DiskTier, TierLoad};
    use er_core::filter::{Filter, Prepared};
    use er_core::schema::TextView;
    use er_store::ArtifactStore;

    fn store_in(name: &str) -> (ArtifactStore, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("er_dense_store_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(
            &dir,
            vec![
                Box::new(DenseFlatCodec),
                Box::new(DenseFlatQCodec),
                Box::new(MinHashCodec),
                Box::new(HyperplaneCodec),
                Box::new(CrossPolytopeCodec),
                Box::new(PartitionedCodec),
            ],
        )
        .expect("open");
        (store, dir)
    }

    fn view() -> TextView {
        TextView::new(
            (0..9)
                .map(|i| format!("canon powershot camera model {i}"))
                .collect::<Vec<_>>(),
            (0..6)
                .map(|i| format!("canon camera kit number {}", i * 3))
                .collect::<Vec<_>>(),
        )
    }

    fn emb() -> EmbeddingConfig {
        EmbeddingConfig {
            dim: 16,
            ..Default::default()
        }
    }

    /// Stores then loads `fresh` and checks the byte-parity contract.
    fn roundtrip(store: &ArtifactStore, filter_id: u64, repr: &str, fresh: &Prepared) -> Prepared {
        let key = ArtifactKey::new(filter_id, repr);
        assert!(
            store.store(&key, fresh).expect("store"),
            "{repr}: not encoded"
        );
        let TierLoad::Hit { prepared, saved } = store.load(&key) else {
            panic!("{repr}: expected hit");
        };
        assert_eq!(prepared.bytes(), fresh.bytes(), "{repr}: heap bytes parity");
        assert_eq!(saved, fresh.breakdown().prepare_total());
        prepared
    }

    #[test]
    fn flat_artifact_roundtrips_with_identical_queries() {
        let (store, dir) = store_in("flat");
        let f = FlatKnn {
            cleaning: false,
            k: 3,
            reversed: false,
            embedding: emb(),
        };
        let fresh = f.prepare(&view());
        let back = roundtrip(&store, 1, &f.repr_key(), &fresh);
        let (a, b) = (
            fresh.downcast::<DenseIndexArtifact>(),
            back.downcast::<DenseIndexArtifact>(),
        );
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.index.len(), b.index.len());
        for (q, query) in a.queries.iter().enumerate() {
            assert_eq!(a.index.knn(query, 3), b.index.knn(query, 3), "query {q}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn new_flat_files_use_the_quantized_codec() {
        let (store, dir) = store_in("flatq");
        let f = FlatKnn {
            cleaning: false,
            k: 2,
            reversed: false,
            embedding: emb(),
        };
        let fresh = f.prepare(&view());
        roundtrip(&store, 9, &f.repr_key(), &fresh);
        let infos = store.inspect().expect("inspect");
        assert_eq!(infos.len(), 1);
        let info = infos[0].1.as_ref().expect("readable file");
        assert_eq!(info.codec_id, DENSE_FLAT_Q_CODEC_ID);
        assert_eq!(info.codec_name, Some("dense-flat-q"));
        // The compression report shows the rebuilt sidecar's overhead:
        // decoded (f32 rows + u8 sidecar) ≥ encoded (f32 rows only). This
        // tiny collection sits below QUANT_CUTOVER_ROWS, so the decode
        // gate skips the sidecar and the two figures are equal.
        let ratios = &info.section_ratios;
        assert_eq!(ratios.len(), 1);
        assert_eq!(ratios[0].label, "index");
        assert!(ratios[0].decoded_bytes >= ratios[0].encoded_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn minhash_artifact_roundtrips_with_identical_candidates() {
        let (store, dir) = store_in("minhash");
        let f = MinHashLsh {
            cleaning: false,
            shingle_k: 3,
            bands: 4,
            rows: 2,
            seed: 7,
        };
        let v = view();
        let fresh = f.prepare(&v);
        let back = roundtrip(&store, 2, &f.repr_key(), &fresh);
        let out_a = f.query(&v, &fresh);
        let out_b = f.query(&v, &back);
        assert_eq!(out_a.candidates.len(), out_b.candidates.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hyperplane_artifact_roundtrips_with_identical_candidates() {
        let (store, dir) = store_in("hp");
        let f = HyperplaneLsh {
            cleaning: false,
            tables: 3,
            hashes: 6,
            probes: 2,
            embedding: emb(),
            seed: 11,
        };
        let v = view();
        let fresh = f.prepare(&v);
        let back = roundtrip(&store, 3, &f.repr_key(), &fresh);
        let out_a = f.query(&v, &fresh);
        let out_b = f.query(&v, &back);
        assert_eq!(out_a.candidates.len(), out_b.candidates.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crosspolytope_artifact_roundtrips_with_identical_candidates() {
        let (store, dir) = store_in("cp");
        let f = CrossPolytopeLsh {
            cleaning: false,
            tables: 2,
            hashes: 2,
            last_cp_dim: 4,
            probes: 2,
            embedding: emb(),
            seed: 13,
        };
        let v = view();
        let fresh = f.prepare(&v);
        let back = roundtrip(&store, 4, &f.repr_key(), &fresh);
        let out_a = f.query(&v, &fresh);
        let out_b = f.query(&v, &back);
        assert_eq!(out_a.candidates.len(), out_b.candidates.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partitioned_artifact_roundtrips_in_both_scoring_modes() {
        let (store, dir) = store_in("scann");
        for (i, scoring) in [Scoring::BruteForce, Scoring::AsymmetricHashing]
            .into_iter()
            .enumerate()
        {
            let f = PartitionedKnn {
                cleaning: false,
                k: 2,
                reversed: false,
                scoring,
                metric: Metric::L2Sq,
                probe_fraction: 1.0,
                embedding: emb(),
                seed: 17,
            };
            let v = view();
            let fresh = f.prepare(&v);
            let back = roundtrip(&store, 5 + i as u64, &f.repr_key(), &fresh);
            let out_a = f.query(&v, &fresh);
            let out_b = f.query(&v, &back);
            assert_eq!(
                out_a.candidates.len(),
                out_b.candidates.len(),
                "{scoring:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_views_roundtrip_through_every_codec() {
        let (store, dir) = store_in("empty");
        let v = TextView::new(Vec::new(), Vec::new());
        let filters: Vec<(u64, Box<dyn Filter>)> = vec![
            (
                20,
                Box::new(FlatKnn {
                    cleaning: false,
                    k: 1,
                    reversed: false,
                    embedding: emb(),
                }),
            ),
            (
                21,
                Box::new(MinHashLsh {
                    cleaning: false,
                    shingle_k: 3,
                    bands: 2,
                    rows: 2,
                    seed: 1,
                }),
            ),
            (
                22,
                Box::new(PartitionedKnn {
                    cleaning: false,
                    k: 1,
                    reversed: false,
                    scoring: Scoring::BruteForce,
                    metric: Metric::L2Sq,
                    probe_fraction: 1.0,
                    embedding: emb(),
                    seed: 2,
                }),
            ),
        ];
        for (id, f) in &filters {
            let fresh = f.prepare(&v);
            roundtrip(&store, *id, &f.repr_key(), &fresh);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unrelated_artifacts_are_not_encoded() {
        for codec in [
            Box::new(DenseFlatQCodec) as Box<dyn ArtifactCodec>,
            Box::new(MinHashCodec),
            Box::new(HyperplaneCodec),
            Box::new(CrossPolytopeCodec),
            Box::new(PartitionedCodec),
        ] {
            assert!(
                codec.encode(&("not dense".to_owned())).is_none(),
                "{}",
                codec.name()
            );
        }
    }
}
