//! The Table V configuration spaces of the dense NN methods, plus the DDB
//! baseline.
//!
//! Threshold-based methods (the LSH family) use plain grids; their `probes`
//! parameter is swept ascending per combination, reproducing the paper's
//! automatic probe tuning toward the recall target. Cardinality-based
//! methods (FAISS, SCANN, DeepBlocker) share the `RVS` parameter and an
//! ascending `K` sweep, which the harness applies over precomputed
//! [`er_core::QueryRankings`] prefixes.

use crate::crosspolytope::CrossPolytopeLsh;
use crate::deepblocker::{DeepBlocker, DeepBlockerConfig};
use crate::embed::EmbeddingConfig;
use crate::flat::{FlatKnn, Metric};
use crate::hyperplane::HyperplaneLsh;
use crate::minhash::MinHashLsh;
use crate::partitioned::{PartitionedKnn, Scoring};
use er_core::optimize::GridResolution;

/// Identifies a dense method for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DenseMethod {
    /// MinHash LSH.
    MinHash,
    /// Hyperplane LSH.
    Hyperplane,
    /// Cross-Polytope LSH.
    CrossPolytope,
    /// FAISS-Flat exact kNN.
    Faiss,
    /// SCANN partitioned kNN.
    Scann,
    /// DeepBlocker autoencoder kNN.
    DeepBlocker,
}

impl DenseMethod {
    /// Display name as in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DenseMethod::MinHash => "MH-LSH",
            DenseMethod::Hyperplane => "HP-LSH",
            DenseMethod::CrossPolytope => "CP-LSH",
            DenseMethod::Faiss => "FAISS",
            DenseMethod::Scann => "SCANN",
            DenseMethod::DeepBlocker => "DeepBlocker",
        }
    }
}

fn cleanings(res: GridResolution) -> &'static [bool] {
    match res {
        GridResolution::Quick => &[true],
        _ => &[false, true],
    }
}

/// The `K` sweep of the cardinality-based methods, ascending. The paper
/// uses \[1,100\] step 1, \[105,1000\] step 5, \[1010,5000\] step 10.
pub fn k_sweep(res: GridResolution) -> Vec<usize> {
    match res {
        GridResolution::Full => {
            let mut ks: Vec<usize> = (1..=100).collect();
            ks.extend((105..=1000).step_by(5));
            ks.extend((1010..=5000).step_by(10));
            ks
        }
        GridResolution::Pruned => {
            let mut ks: Vec<usize> = (1..=10).collect();
            ks.extend([12, 15, 20, 30, 50, 75, 100, 150, 250, 500, 1000]);
            ks
        }
        GridResolution::Quick => vec![1, 2, 5, 10, 25],
    }
}

/// The ascending probe sweep of the LSH methods (the paper auto-tunes
/// probes toward the recall target; sweeping ascending and stopping at the
/// first feasible configuration is equivalent).
pub fn probe_sweep(res: GridResolution) -> Vec<usize> {
    match res {
        GridResolution::Full => vec![1, 2, 4, 8, 16, 32, 64, 128, 256],
        GridResolution::Pruned => vec![1, 4, 16, 64],
        GridResolution::Quick => vec![1, 8],
    }
}

/// MinHash LSH grid (plain): `CL × (bands, rows) × k`.
///
/// Bands and rows are powers of two with product in {128, 256, 512}
/// (21 combinations), shingle length `k ∈ [2, 5]` — the paper's 168
/// configurations at full resolution.
pub fn minhash_grid(res: GridResolution, seed: u64) -> Vec<MinHashLsh> {
    let band_rows: Vec<(usize, usize)> = match res {
        GridResolution::Full => {
            let mut out = Vec::new();
            for product in [128usize, 256, 512] {
                let mut bands = 2;
                while bands * 2 <= product {
                    out.push((bands, product / bands));
                    bands *= 2;
                }
            }
            out
        }
        GridResolution::Pruned => vec![(4, 32), (16, 8), (32, 8), (32, 16), (64, 2)],
        GridResolution::Quick => vec![(32, 8), (64, 2)],
    };
    let ks: &[usize] = match res {
        GridResolution::Full => &[2, 3, 4, 5],
        GridResolution::Pruned => &[2, 3, 5],
        GridResolution::Quick => &[3],
    };
    let mut out = Vec::new();
    for &cleaning in cleanings(res) {
        for &(bands, rows) in &band_rows {
            for &shingle_k in ks {
                out.push(MinHashLsh {
                    cleaning,
                    shingle_k,
                    bands,
                    rows,
                    seed,
                });
            }
        }
    }
    out
}

/// Hyperplane LSH grid, grouped per `(CL, tables, hashes)` with probes
/// ascending inside each group.
pub fn hyperplane_grid(
    res: GridResolution,
    embedding: EmbeddingConfig,
    seed: u64,
) -> Vec<Vec<HyperplaneLsh>> {
    let (tables, hashes): (Vec<usize>, Vec<usize>) = match res {
        GridResolution::Full => ((0..10).map(|n| 1usize << n).collect(), (1..=20).collect()),
        GridResolution::Pruned => (vec![4, 16, 64], vec![6, 10, 14]),
        GridResolution::Quick => (vec![8], vec![8]),
    };
    let probes = probe_sweep(res);
    let mut out = Vec::new();
    for &cleaning in cleanings(res) {
        for &t in &tables {
            for &h in &hashes {
                out.push(
                    probes
                        .iter()
                        .map(|&p| HyperplaneLsh {
                            cleaning,
                            tables: t,
                            hashes: h,
                            probes: p,
                            embedding,
                            seed,
                        })
                        .collect(),
                );
            }
        }
    }
    out
}

/// Cross-Polytope LSH grid, grouped per `(CL, tables, hashes, cp_dim)`
/// with probes ascending inside each group.
pub fn crosspolytope_grid(
    res: GridResolution,
    embedding: EmbeddingConfig,
    seed: u64,
) -> Vec<Vec<CrossPolytopeLsh>> {
    let (tables, hashes, cp_dims): (Vec<usize>, Vec<usize>, Vec<usize>) = match res {
        GridResolution::Full => (
            (0..10).map(|n| 1usize << n).collect(),
            (1..=4).collect(),
            (0..10).map(|n| 1usize << n).collect(),
        ),
        GridResolution::Pruned => (vec![4, 16], vec![1, 2], vec![16, 64, 256]),
        GridResolution::Quick => (vec![8], vec![1], vec![32]),
    };
    let probes = probe_sweep(res);
    let mut out = Vec::new();
    for &cleaning in cleanings(res) {
        for &t in &tables {
            for &h in &hashes {
                for &d in &cp_dims {
                    out.push(
                        probes
                            .iter()
                            .map(|&p| CrossPolytopeLsh {
                                cleaning,
                                tables: t,
                                hashes: h,
                                last_cp_dim: d,
                                probes: p,
                                embedding,
                                seed,
                            })
                            .collect(),
                    );
                }
            }
        }
    }
    out
}

/// FAISS grid: `(CL, RVS)` combinations; the K sweep is applied by the
/// harness over rankings. Each returned filter carries `k = 1`; callers
/// override `k`.
pub fn flat_combos(res: GridResolution, embedding: EmbeddingConfig) -> Vec<FlatKnn> {
    let rvs: &[bool] = if res == GridResolution::Quick {
        &[false]
    } else {
        &[false, true]
    };
    let mut out = Vec::new();
    for &cleaning in cleanings(res) {
        for &reversed in rvs {
            out.push(FlatKnn {
                cleaning,
                k: 1,
                reversed,
                embedding,
            });
        }
    }
    out
}

/// SCANN grid: `(CL, RVS, index, similarity)` combinations.
pub fn scann_combos(
    res: GridResolution,
    embedding: EmbeddingConfig,
    seed: u64,
) -> Vec<PartitionedKnn> {
    let rvs: &[bool] = if res == GridResolution::Quick {
        &[false]
    } else {
        &[false, true]
    };
    let scorings: &[Scoring] = match res {
        GridResolution::Quick => &[Scoring::BruteForce],
        _ => &[Scoring::BruteForce, Scoring::AsymmetricHashing],
    };
    let metrics: &[Metric] = match res {
        GridResolution::Quick => &[Metric::L2Sq],
        _ => &[Metric::Dot, Metric::L2Sq],
    };
    let mut out = Vec::new();
    for &cleaning in cleanings(res) {
        for &reversed in rvs {
            for &scoring in scorings {
                for &metric in metrics {
                    out.push(PartitionedKnn {
                        cleaning,
                        k: 1,
                        reversed,
                        scoring,
                        metric,
                        probe_fraction: 0.25,
                        embedding,
                        seed,
                    });
                }
            }
        }
    }
    out
}

/// DeepBlocker grid: `(CL, RVS)` combinations.
pub fn deepblocker_combos(
    res: GridResolution,
    embedding: EmbeddingConfig,
    seed: u64,
) -> Vec<DeepBlocker> {
    let rvs: &[bool] = if res == GridResolution::Quick {
        &[false]
    } else {
        &[false, true]
    };
    let (hidden, epochs) = match res {
        GridResolution::Full => (embedding.dim / 2, 20),
        GridResolution::Pruned => (embedding.dim / 2, 10),
        GridResolution::Quick => (embedding.dim / 4, 4),
    };
    let mut out = Vec::new();
    for &cleaning in cleanings(res) {
        for &reversed in rvs {
            out.push(DeepBlocker::new(DeepBlockerConfig {
                cleaning,
                k: 1,
                reversed,
                embedding,
                hidden_dim: hidden.max(2),
                epochs,
                seed,
            }));
        }
    }
    out
}

/// The Default DeepBlocker baseline (paper §VI): cleaning on, `K = 5`, the
/// smaller input collection as the query set.
pub fn ddb_baseline(n1: usize, n2: usize, embedding: EmbeddingConfig, seed: u64) -> DeepBlocker {
    DeepBlocker::new(DeepBlockerConfig {
        cleaning: true,
        k: 5,
        reversed: n1 < n2,
        embedding,
        hidden_dim: (embedding.dim / 2).max(2),
        epochs: 15,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minhash_full_grid_matches_table5() {
        // 2 CL × 21 band/row splits × 4 shingle lengths = 168.
        assert_eq!(minhash_grid(GridResolution::Full, 0).len(), 168);
    }

    #[test]
    fn minhash_band_row_products_are_valid() {
        for cfg in minhash_grid(GridResolution::Full, 0) {
            let product = cfg.bands * cfg.rows;
            assert!(matches!(product, 128 | 256 | 512), "{product}");
            assert!(cfg.bands.is_power_of_two() && cfg.rows.is_power_of_two());
            assert!(cfg.bands >= 2 && cfg.rows >= 2);
        }
    }

    #[test]
    fn hyperplane_full_grid_matches_table5() {
        // 2 CL × 10 tables × 20 hashes = 400 combos.
        assert_eq!(
            hyperplane_grid(GridResolution::Full, EmbeddingConfig::default(), 0).len(),
            400
        );
    }

    #[test]
    fn k_sweep_is_ascending_and_reaches_5000() {
        let ks = k_sweep(GridResolution::Full);
        assert_eq!(ks[0], 1);
        assert_eq!(*ks.last().expect("nonempty"), 5000);
        assert!(ks.windows(2).all(|w| w[0] < w[1]));
        assert!(k_sweep(GridResolution::Quick).len() < 10);
    }

    #[test]
    fn probe_groups_ascend() {
        for group in hyperplane_grid(GridResolution::Pruned, EmbeddingConfig::default(), 0) {
            assert!(group.windows(2).all(|w| w[0].probes < w[1].probes));
        }
        for group in crosspolytope_grid(GridResolution::Quick, EmbeddingConfig::default(), 0) {
            assert!(!group.is_empty());
        }
    }

    #[test]
    fn scann_covers_all_index_similarity_combos() {
        let combos = scann_combos(GridResolution::Pruned, EmbeddingConfig::default(), 0);
        // 2 CL × 2 RVS × 2 scorings × 2 metrics.
        assert_eq!(combos.len(), 16);
        assert!(combos
            .iter()
            .any(|c| c.scoring == Scoring::AsymmetricHashing && c.metric == Metric::Dot));
    }

    #[test]
    fn ddb_reverses_toward_smaller_query_set() {
        assert!(
            ddb_baseline(10, 100, EmbeddingConfig::default(), 0)
                .config
                .reversed
        );
        assert!(
            !ddb_baseline(100, 10, EmbeddingConfig::default(), 0)
                .config
                .reversed
        );
        let d = ddb_baseline(10, 100, EmbeddingConfig::default(), 0);
        assert_eq!(d.config.k, 5);
        assert!(d.config.cleaning);
    }

    #[test]
    fn method_names_match_paper() {
        assert_eq!(DenseMethod::MinHash.name(), "MH-LSH");
        assert_eq!(DenseMethod::Faiss.name(), "FAISS");
        assert_eq!(DenseMethod::DeepBlocker.name(), "DeepBlocker");
    }
}
