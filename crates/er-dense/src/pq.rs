//! Product quantization [Jégou et al., 2011] — the "asymmetric hashing"
//! scoring mode of the SCANN-equivalent index (paper §IV-D).
//!
//! The vector space is split into `m` subspaces; each subspace gets a small
//! k-means codebook (16 centroids, one code byte per subspace). A database
//! vector is stored as `m` bytes; a query computes a lookup table of
//! query-to-centroid distances per subspace and scores any database vector
//! with `m` table lookups — *asymmetric* because the query stays exact.

use crate::partitioned::kmeans;
use crate::vector::{dot, l2_sq};

/// Number of centroids per subspace (one nibble would do; a byte keeps the
/// code simple).
pub const CODEBOOK_SIZE: usize = 16;

/// A trained product quantizer.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    /// Number of subspaces `m`.
    pub m: usize,
    /// Dimensionality of each subspace (last one may be shorter).
    sub_dims: Vec<usize>,
    /// Subspace start offsets.
    offsets: Vec<usize>,
    /// `m` codebooks of up to [`CODEBOOK_SIZE`] centroids each.
    codebooks: Vec<Vec<Vec<f32>>>,
}

/// The trained parts of a quantizer: `(m, sub_dims, offsets, codebooks)`.
pub(crate) type PqParts<'a> = (usize, &'a [usize], &'a [usize], &'a [Vec<Vec<f32>>]);

impl ProductQuantizer {
    /// All trained parts, for serialization.
    pub(crate) fn raw_parts(&self) -> PqParts<'_> {
        (self.m, &self.sub_dims, &self.offsets, &self.codebooks)
    }

    /// Rebuilds a quantizer from its raw parts (the store codec validates
    /// the shape invariants before calling).
    pub(crate) fn from_raw_parts(
        m: usize,
        sub_dims: Vec<usize>,
        offsets: Vec<usize>,
        codebooks: Vec<Vec<Vec<f32>>>,
    ) -> Self {
        Self {
            m,
            sub_dims,
            offsets,
            codebooks,
        }
    }
}

impl ProductQuantizer {
    /// Trains a quantizer on `data` with `m` subspaces.
    ///
    /// Panics on empty data, zero `m`, or `m` exceeding the dimensionality.
    pub fn train(data: &[Vec<f32>], m: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot train PQ on empty data");
        let dim = data[0].len();
        assert!(m >= 1 && m <= dim, "m must be in [1, dim]");

        let base = dim / m;
        let rem = dim % m;
        let mut sub_dims = Vec::with_capacity(m);
        let mut offsets = Vec::with_capacity(m);
        let mut off = 0;
        for s in 0..m {
            let d = base + usize::from(s < rem);
            offsets.push(off);
            sub_dims.push(d);
            off += d;
        }

        let codebooks = (0..m)
            .map(|s| {
                let sub: Vec<Vec<f32>> = data
                    .iter()
                    .map(|v| v[offsets[s]..offsets[s] + sub_dims[s]].to_vec())
                    .collect();
                kmeans(
                    &sub,
                    CODEBOOK_SIZE.min(sub.len()),
                    10,
                    seed.wrapping_add(s as u64),
                )
            })
            .collect();
        Self {
            m,
            sub_dims,
            offsets,
            codebooks,
        }
    }

    /// Encodes a vector into `m` code bytes (nearest centroid per subspace).
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        (0..self.m)
            .map(|s| {
                let sub = &v[self.offsets[s]..self.offsets[s] + self.sub_dims[s]];
                let mut best = 0u8;
                let mut best_d = f32::INFINITY;
                for (c, centroid) in self.codebooks[s].iter().enumerate() {
                    let d = l2_sq(sub, centroid);
                    if d < best_d {
                        best_d = d;
                        best = c as u8;
                    }
                }
                best
            })
            .collect()
    }

    /// Builds the query lookup table: `table[s][c]` is the partial cost of
    /// centroid `c` in subspace `s` (L2² distance, or negated dot product
    /// when `use_dot`).
    pub fn lookup_table(&self, query: &[f32], use_dot: bool) -> Vec<Vec<f32>> {
        (0..self.m)
            .map(|s| {
                let sub = &query[self.offsets[s]..self.offsets[s] + self.sub_dims[s]];
                self.codebooks[s]
                    .iter()
                    .map(|c| if use_dot { -dot(sub, c) } else { l2_sq(sub, c) })
                    .collect()
            })
            .collect()
    }

    /// Approximate cost of an encoded vector under a lookup table.
    #[inline]
    pub fn score(&self, table: &[Vec<f32>], code: &[u8]) -> f32 {
        code.iter()
            .enumerate()
            .map(|(s, &c)| table[s][c as usize])
            .sum()
    }

    /// Decodes a code back to its centroid reconstruction (for tests and
    /// diagnostics).
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.offsets.last().copied().unwrap_or(0));
        for (s, &c) in code.iter().enumerate() {
            out.extend_from_slice(&self.codebooks[s][c as usize]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn encode_decode_reduces_error_vs_zero() {
        let data = random_data(200, 16, 1);
        let pq = ProductQuantizer::train(&data, 4, 7);
        for v in data.iter().take(20) {
            let recon = pq.decode(&pq.encode(v));
            let err = l2_sq(v, &recon);
            let zero_err = dot(v, v);
            assert!(err < zero_err, "{err} >= {zero_err}");
        }
    }

    #[test]
    fn lut_score_equals_decoded_distance() {
        let data = random_data(100, 12, 2);
        let pq = ProductQuantizer::train(&data, 3, 9);
        let query = &data[0];
        let table = pq.lookup_table(query, false);
        for v in data.iter().take(10) {
            let code = pq.encode(v);
            let via_table = pq.score(&table, &code);
            let via_decode = l2_sq(query, &pq.decode(&code));
            assert!((via_table - via_decode).abs() < 1e-4);
        }
    }

    #[test]
    fn dot_table_negates_similarity() {
        let data = random_data(50, 8, 3);
        let pq = ProductQuantizer::train(&data, 2, 11);
        let q = &data[0];
        let table = pq.lookup_table(q, true);
        let code = pq.encode(q);
        let score = pq.score(&table, &code);
        let recon = pq.decode(&code);
        assert!((score + dot(q, &recon)).abs() < 1e-4);
    }

    #[test]
    fn uneven_dims_are_covered() {
        // dim = 10, m = 3 -> subspaces of 4, 3, 3.
        let data = random_data(60, 10, 4);
        let pq = ProductQuantizer::train(&data, 3, 13);
        let code = pq.encode(&data[0]);
        assert_eq!(code.len(), 3);
        assert_eq!(pq.decode(&code).len(), 10);
    }

    #[test]
    fn approximate_ranking_correlates_with_exact() {
        // The PQ's nearest by approximate score should be among the true
        // nearest half of a clustered dataset.
        let mut data = random_data(100, 8, 5);
        for (i, v) in data.iter_mut().enumerate() {
            v[0] += (i % 2) as f32 * 4.0; // two well-separated clusters
        }
        let pq = ProductQuantizer::train(&data, 4, 17);
        let query = data[0].clone();
        let table = pq.lookup_table(&query, false);
        let mut scored: Vec<(usize, f32)> = data
            .iter()
            .enumerate()
            .map(|(i, v)| (i, pq.score(&table, &pq.encode(v))))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        // All of the top 10 approximate neighbors are in query's cluster.
        for &(i, _) in scored.iter().take(10) {
            assert_eq!(i % 2, 0, "wrong cluster at rank of {i}");
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        let _ = ProductQuantizer::train(&[], 2, 0);
    }
}
