//! First-order optimizers: SGD with momentum and Adam.
//!
//! Optimizers operate on flat parameter/gradient slices so a [`crate::Dense`]
//! layer's weights and bias can be updated with the same code path.

/// A stateful parameter-update rule.
pub trait Optimizer {
    /// Applies one update step to `params` given `grads`.
    ///
    /// The optimizer keys internal state (momenta) by `slot`, which must be
    /// stable per parameter tensor across steps.
    fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum.
    pub fn new(learning_rate: f32, momentum: f32) -> Self {
        Self {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.velocity.len() <= slot {
            self.velocity.resize(slot + 1, Vec::new());
        }
        let v = &mut self.velocity[slot];
        if v.len() != params.len() {
            *v = vec![0.0; params.len()];
        }
        for ((p, &g), vel) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *vel = self.momentum * *vel - self.learning_rate * g;
            *p += *vel;
        }
    }
}

/// The Adam optimizer [Kingma & Ba, 2015] with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (α).
    pub learning_rate: f32,
    /// First-moment decay (β₁).
    pub beta1: f32,
    /// Second-moment decay (β₂).
    pub beta2: f32,
    /// Numerical-stability constant (ε).
    pub epsilon: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(learning_rate: f32) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Advances the shared time step; call once per mini-batch *before*
    /// stepping the parameter tensors of that batch.
    pub fn next_step(&mut self) {
        self.t += 1;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.t == 0 {
            self.t = 1; // tolerate a missing next_step() on the first batch
        }
        for buf in [&mut self.m, &mut self.v] {
            if buf.len() <= slot {
                buf.resize(slot + 1, Vec::new());
            }
            if buf[slot].len() != params.len() {
                buf[slot] = vec![0.0; params.len()];
            }
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (m, v) = (&mut self.m[slot], &mut self.v[slot]);
        for i in 0..params.len() {
            let g = grads[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)² with gradient 2(x - 3).
    fn converges_on_quadratic(opt: &mut dyn Optimizer) -> f32 {
        let mut x = [0.0f32];
        for _ in 0..500 {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges() {
        let mut sgd = Sgd::new(0.1, 0.0);
        assert!((converges_on_quadratic(&mut sgd) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut sgd = Sgd::new(0.05, 0.9);
        assert!((converges_on_quadratic(&mut sgd) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges() {
        let mut adam = Adam::new(0.1);
        let mut x = [0.0f32];
        for _ in 0..500 {
            adam.next_step();
            let g = [2.0 * (x[0] - 3.0)];
            adam.step(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "adam reached {}", x[0]);
    }

    #[test]
    fn slots_are_independent() {
        let mut sgd = Sgd::new(0.5, 0.9);
        let mut a = [0.0f32];
        let mut b = [0.0f32];
        sgd.step(0, &mut a, &[1.0]);
        sgd.step(1, &mut b, &[-1.0]);
        // With shared state the second step would inherit the first
        // velocity; independent slots move symmetrically.
        assert_eq!(a[0], -b[0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut sgd = Sgd::new(0.1, 0.0);
        let mut p = [0.0f32; 2];
        sgd.step(0, &mut p, &[1.0]);
    }
}
