//! Row-major `f32` matrices with the products back-propagation needs.
//!
//! Kept deliberately small: dense storage, cache-friendly loops over
//! contiguous rows, no panics beyond dimension assertions. The autoencoder
//! works on batches of a few thousand 300-dimensional vectors, for which
//! this is plenty fast on one core.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` entries.
    pub data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Self {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs` (`m×k · k×n → m×n`), accumulated in the
    /// i-k-j order so the inner loop streams both operands.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let lhs_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in lhs_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Product `selfᵀ · rhs` without materializing the transpose
    /// (`k×m ᵀ · k×n → m×n`) — the shape of weight gradients `xᵀ·dy`.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "transpose_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let lhs_row = self.row(k);
            let rhs_row = rhs.row(k);
            for (i, &a) in lhs_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Product `self · rhsᵀ` (`m×k · n×k ᵀ → m×n`) — the shape of input
    /// gradients `dy·Wᵀ`.
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_transpose dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let lhs_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let rhs_row = rhs.row(j);
                *o = dot(lhs_row, rhs_row);
            }
        }
        out
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius-norm squared (sum of squared entries).
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn matmul_reference() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.matmul(&b), m(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let id = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]); // 2x3
        let b = m(&[&[1.0, 0.5], &[-1.0, 2.0]]); // 2x2
                                                 // aT (3x2) · b (2x2) = 3x2
        let at = Matrix::from_fn(3, 2, |r, c| a.row(c)[r]);
        assert_eq!(a.transpose_matmul(&b), at.matmul(&b));
        // b (2x2) · aT? matmul_transpose: b(2x2)·c(3x2)T where cols match.
        let c = m(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]); // 3x2
        let ct = Matrix::from_fn(2, 3, |r, cc| c.row(cc)[r]);
        assert_eq!(b.matmul_transpose(&c), b.matmul(&ct));
    }

    #[test]
    fn row_views() {
        let mut a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        a.row_mut(0)[1] = 9.0;
        assert_eq!(a.row(0), &[1.0, 9.0]);
    }

    #[test]
    fn map_and_norm() {
        let mut a = m(&[&[3.0, 4.0]]);
        assert_eq!(a.norm_sq(), 25.0);
        a.map_inplace(|v| v * 2.0);
        assert_eq!(a.row(0), &[6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}
