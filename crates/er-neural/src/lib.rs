//! A minimal neural-network substrate.
//!
//! DeepBlocker's Autoencoder tuple-embedding module (paper §IV-D) needs a
//! small trainable network: dense layers, activations, an optimizer and a
//! mean-squared-error loss. This crate implements exactly that from
//! scratch — no BLAS, no autograd framework — with deterministic, seeded
//! initialization so the stochastic method can be averaged over controlled
//! repetitions.
//!
//! * [`matrix`] — row-major `f32` matrices with the handful of products
//!   back-propagation needs,
//! * [`layers`] — dense layers and activations with manual gradients,
//! * [`optimizer`] — SGD with momentum and Adam,
//! * [`autoencoder`] — the self-supervised reconstruction model used as the
//!   tuple-embedding module.

pub mod autoencoder;
pub mod layers;
pub mod matrix;
pub mod optimizer;

pub use autoencoder::{Autoencoder, AutoencoderConfig};
pub use layers::{Activation, Dense};
pub use matrix::Matrix;
pub use optimizer::{Adam, Optimizer, Sgd};

#[cfg(test)]
mod proptests;
