//! Property-based tests of the neural substrate's algebra.

#![cfg(test)]

use crate::layers::{Activation, Dense};
use crate::matrix::{dot, Matrix};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols).prop_map(move |data| Matrix {
        rows,
        cols,
        data,
    })
}

proptest! {
    /// (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_associative(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 2),
        c in arb_matrix(2, 3),
    ) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        for (x, y) in lhs.data.iter().zip(&rhs.data) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    /// transpose_matmul and matmul_transpose agree with explicit
    /// transposition.
    #[test]
    fn transpose_products(a in arb_matrix(3, 4), b in arb_matrix(3, 2)) {
        let at = Matrix::from_fn(4, 3, |r, c| a.row(c)[r]);
        let expected = at.matmul(&b);
        let got = a.transpose_matmul(&b);
        for (x, y) in expected.data.iter().zip(&got.data) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        // a (3×4) · aᵀ via matmul_transpose equals the explicit product.
        let at2 = Matrix::from_fn(4, 3, |r, c| a.row(c)[r]);
        let expected2 = a.matmul(&at2);
        let got2 = a.matmul_transpose(&a);
        for (x, y) in expected2.data.iter().zip(&got2.data) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Activations: ReLU output non-negative; tanh output in (-1, 1);
    /// identity untouched.
    #[test]
    fn activation_ranges(mut m in arb_matrix(2, 5)) {
        let original = m.clone();
        Activation::Identity.forward(&mut m);
        prop_assert_eq!(&m.data, &original.data);
        let mut relu = original.clone();
        Activation::Relu.forward(&mut relu);
        prop_assert!(relu.data.iter().all(|&v| v >= 0.0));
        let mut tanh = original.clone();
        Activation::Tanh.forward(&mut tanh);
        prop_assert!(tanh.data.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    /// A dense layer is affine: f(x) + f(y) - f(0) == f(x + y) under the
    /// identity activation.
    #[test]
    fn dense_identity_is_affine(x in arb_matrix(1, 3), y in arb_matrix(1, 3)) {
        let layer = Dense::new(3, 2, Activation::Identity, 5);
        let sum = Matrix {
            rows: 1,
            cols: 3,
            data: x.data.iter().zip(&y.data).map(|(a, b)| a + b).collect(),
        };
        let zero = Matrix::zeros(1, 3);
        let fx = layer.infer(&x);
        let fy = layer.infer(&y);
        let f0 = layer.infer(&zero);
        let fsum = layer.infer(&sum);
        for i in 0..2 {
            let lhs = fx.data[i] + fy.data[i] - f0.data[i];
            prop_assert!((lhs - fsum.data[i]).abs() < 1e-3);
        }
    }

    /// Dot product is commutative and distributes over addition.
    #[test]
    fn dot_algebra(
        a in proptest::collection::vec(-3.0f32..3.0, 6),
        b in proptest::collection::vec(-3.0f32..3.0, 6),
        c in proptest::collection::vec(-3.0f32..3.0, 6),
    ) {
        prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-3);
        let bc: Vec<f32> = b.iter().zip(&c).map(|(x, y)| x + y).collect();
        prop_assert!((dot(&a, &bc) - (dot(&a, &b) + dot(&a, &c))).abs() < 1e-2);
    }
}
