//! The self-supervised autoencoder used as a tuple-embedding module
//! (DeepBlocker's most effective module, paper §IV-D).
//!
//! The model maps an aggregated tuple vector `x ∈ ℝᵈ` through an encoder
//! `ℝᵈ → ℝʰ` (tanh) and a decoder `ℝʰ → ℝᵈ` (identity) and is trained to
//! reconstruct its input under mean-squared error. After training, the
//! encoder output is the learned tuple embedding used for kNN search. The
//! training cost dominating the method's run-time — the paper's key
//! observation about DeepBlocker — falls out naturally.

use crate::layers::{Activation, Dense};
use crate::matrix::Matrix;
use crate::optimizer::{Adam, Optimizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoencoderConfig {
    /// Input (and reconstruction) dimensionality `d`.
    pub input_dim: usize,
    /// Embedding dimensionality `h`.
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed (initialization + batch shuffling) — the source of the
    /// method's stochasticity.
    pub seed: u64,
}

impl Default for AutoencoderConfig {
    fn default() -> Self {
        Self {
            input_dim: 300,
            hidden_dim: 150,
            epochs: 20,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 0,
        }
    }
}

/// A trained encoder/decoder pair.
#[derive(Debug, Clone)]
pub struct Autoencoder {
    encoder: Dense,
    decoder: Dense,
    /// Mean training loss per epoch, recorded during [`Autoencoder::train`].
    pub loss_history: Vec<f32>,
}

impl Autoencoder {
    /// Trains an autoencoder on `data` (one row per tuple vector).
    ///
    /// Panics if `data` is empty or rows disagree with
    /// `config.input_dim`.
    pub fn train(data: &[Vec<f32>], config: &AutoencoderConfig) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(
            data.iter().all(|row| row.len() == config.input_dim),
            "row dimensionality must equal input_dim"
        );
        let mut encoder = Dense::new(
            config.input_dim,
            config.hidden_dim,
            Activation::Tanh,
            config.seed,
        );
        let mut decoder = Dense::new(
            config.hidden_dim,
            config.input_dim,
            Activation::Identity,
            config.seed.wrapping_add(1),
        );
        let mut adam = Adam::new(config.learning_rate);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(2));
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut loss_history = Vec::with_capacity(config.epochs);

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(config.batch_size.max(1)) {
                let batch =
                    Matrix::from_rows(&chunk.iter().map(|&i| data[i].clone()).collect::<Vec<_>>());
                let hidden = encoder.forward(&batch);
                let recon = decoder.forward(&hidden);

                // MSE loss and its gradient.
                let n = recon.data.len() as f32;
                let mut loss = 0.0f32;
                let grad = Matrix {
                    rows: recon.rows,
                    cols: recon.cols,
                    data: recon
                        .data
                        .iter()
                        .zip(&batch.data)
                        .map(|(y, x)| {
                            let d = y - x;
                            loss += d * d;
                            2.0 * d / n
                        })
                        .collect(),
                };
                epoch_loss += f64::from(loss / n);
                batches += 1;

                let grad_hidden = decoder.backward(grad);
                let _ = encoder.backward(grad_hidden);

                adam.next_step();
                adam.step(0, &mut encoder.weights.data, &encoder.grad_weights.data);
                adam.step(1, &mut encoder.bias, &encoder.grad_bias);
                adam.step(2, &mut decoder.weights.data, &decoder.grad_weights.data);
                adam.step(3, &mut decoder.bias, &decoder.grad_bias);
            }
            loss_history.push((epoch_loss / batches.max(1) as f64) as f32);
        }
        Self {
            encoder,
            decoder,
            loss_history,
        }
    }

    /// Embedding dimensionality `h`.
    pub fn embedding_dim(&self) -> usize {
        self.encoder.outputs()
    }

    /// Encodes one vector into its learned embedding.
    pub fn encode(&self, x: &[f32]) -> Vec<f32> {
        let m = Matrix::from_rows(&[x.to_vec()]);
        self.encoder.infer(&m).data
    }

    /// Encodes a batch of vectors.
    pub fn encode_batch(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        xs.iter().map(|x| self.encode(x)).collect()
    }

    /// Mean-squared reconstruction error of one vector.
    pub fn reconstruction_error(&self, x: &[f32]) -> f32 {
        let m = Matrix::from_rows(&[x.to_vec()]);
        let recon = self.decoder.infer(&self.encoder.infer(&m));
        recon
            .data
            .iter()
            .zip(x)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f32>()
            / x.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn toy_data(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        // Low-rank data: vectors on a 2D manifold embedded in `dim` dims —
        // reconstructible through a narrow bottleneck.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let a: f32 = rng.gen_range(-1.0..1.0);
                let b: f32 = rng.gen_range(-1.0..1.0);
                (0..dim)
                    .map(|d| a * (d as f32 * 0.1).sin() + b * (d as f32 * 0.1).cos())
                    .collect()
            })
            .collect()
    }

    fn config(dim: usize) -> AutoencoderConfig {
        AutoencoderConfig {
            input_dim: dim,
            hidden_dim: 4,
            epochs: 60,
            batch_size: 16,
            learning_rate: 5e-3,
            seed: 7,
        }
    }

    #[test]
    fn training_reduces_loss() {
        let data = toy_data(64, 16, 1);
        let ae = Autoencoder::train(&data, &config(16));
        let first = ae.loss_history[0];
        let last = *ae.loss_history.last().expect("history");
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn reconstruction_beats_zero_baseline() {
        let data = toy_data(64, 16, 2);
        let ae = Autoencoder::train(&data, &config(16));
        for x in data.iter().take(8) {
            let err = ae.reconstruction_error(x);
            let zero_err = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
            assert!(err < zero_err, "err {err} vs baseline {zero_err}");
        }
    }

    #[test]
    fn encode_is_deterministic_given_seed() {
        let data = toy_data(32, 8, 3);
        let cfg = AutoencoderConfig {
            input_dim: 8,
            hidden_dim: 3,
            epochs: 5,
            batch_size: 8,
            learning_rate: 1e-3,
            seed: 11,
        };
        let a = Autoencoder::train(&data, &cfg);
        let b = Autoencoder::train(&data, &cfg);
        assert_eq!(a.encode(&data[0]), b.encode(&data[0]));
        let c = Autoencoder::train(&data, &AutoencoderConfig { seed: 12, ..cfg });
        assert_ne!(a.encode(&data[0]), c.encode(&data[0]));
    }

    #[test]
    fn embedding_has_hidden_dim() {
        let data = toy_data(16, 8, 4);
        let cfg = AutoencoderConfig {
            input_dim: 8,
            hidden_dim: 5,
            epochs: 2,
            batch_size: 8,
            learning_rate: 1e-3,
            seed: 0,
        };
        let ae = Autoencoder::train(&data, &cfg);
        assert_eq!(ae.embedding_dim(), 5);
        assert_eq!(ae.encode(&data[0]).len(), 5);
        assert_eq!(ae.encode_batch(&data[..3]).len(), 3);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_data_panics() {
        let _ = Autoencoder::train(&[], &AutoencoderConfig::default());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_dim_panics() {
        let cfg = AutoencoderConfig {
            input_dim: 4,
            ..AutoencoderConfig::default()
        };
        let _ = Autoencoder::train(&[vec![0.0; 3]], &cfg);
    }
}
