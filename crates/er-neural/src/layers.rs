//! Dense layers and activations with hand-written gradients.
//!
//! A [`Dense`] layer computes `y = x·W + b` for a batch `x` (`batch × in`).
//! [`Dense::backward`] consumes `dL/dy` and produces `dL/dx`, accumulating
//! `dL/dW = xᵀ·dy` and `dL/db = Σ_rows dy` internally for the optimizer.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no nonlinearity).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation in place.
    pub fn forward(&self, m: &mut Matrix) {
        match self {
            Activation::Identity => {}
            Activation::Relu => m.map_inplace(|v| v.max(0.0)),
            Activation::Tanh => m.map_inplace(f32::tanh),
        }
    }

    /// Multiplies `grad` by the activation derivative evaluated at the
    /// *outputs* `y` (both ReLU and tanh derivatives are expressible in
    /// terms of the output, which avoids stashing pre-activations).
    pub fn backward(&self, y: &Matrix, grad: &mut Matrix) {
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for (g, &out) in grad.data.iter_mut().zip(&y.data) {
                    if out <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for (g, &out) in grad.data.iter_mut().zip(&y.data) {
                    *g *= 1.0 - out * out;
                }
            }
        }
    }
}

/// A fully connected layer with bias and activation.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights, `in × out`.
    pub weights: Matrix,
    /// Bias, length `out`.
    pub bias: Vec<f32>,
    /// Activation applied after the affine map.
    pub activation: Activation,
    /// Gradient of the loss w.r.t. weights (set by [`Dense::backward`]).
    pub grad_weights: Matrix,
    /// Gradient of the loss w.r.t. bias.
    pub grad_bias: Vec<f32>,
    last_input: Option<Matrix>,
    last_output: Option<Matrix>,
}

impl Dense {
    /// Creates a layer with Xavier/Glorot-uniform initialization from a
    /// seeded RNG.
    pub fn new(inputs: usize, outputs: usize, activation: Activation, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = (6.0 / (inputs + outputs) as f32).sqrt();
        let weights = Matrix::from_fn(inputs, outputs, |_, _| rng.gen_range(-limit..=limit));
        Self {
            weights,
            bias: vec![0.0; outputs],
            activation,
            grad_weights: Matrix::zeros(inputs, outputs),
            grad_bias: vec![0.0; outputs],
            last_input: None,
            last_output: None,
        }
    }

    /// Input dimensionality.
    pub fn inputs(&self) -> usize {
        self.weights.rows
    }

    /// Output dimensionality.
    pub fn outputs(&self) -> usize {
        self.weights.cols
    }

    /// Forward pass for a batch, caching what the backward pass needs.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.weights);
        for r in 0..y.rows {
            for (v, b) in y.row_mut(r).iter_mut().zip(&self.bias) {
                *v += b;
            }
        }
        self.activation.forward(&mut y);
        self.last_input = Some(x.clone());
        self.last_output = Some(y.clone());
        y
    }

    /// Inference-only forward pass (no caches touched).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.weights);
        for r in 0..y.rows {
            for (v, b) in y.row_mut(r).iter_mut().zip(&self.bias) {
                *v += b;
            }
        }
        self.activation.forward(&mut y);
        y
    }

    /// Backward pass: consumes `dL/dy`, stores `dL/dW` and `dL/db`, returns
    /// `dL/dx`. Must follow a [`Dense::forward`] call.
    pub fn backward(&mut self, mut grad_out: Matrix) -> Matrix {
        let y = self.last_output.as_ref().expect("backward before forward");
        let x = self.last_input.as_ref().expect("backward before forward");
        self.activation.backward(y, &mut grad_out);

        self.grad_weights = x.transpose_matmul(&grad_out);
        for gb in &mut self.grad_bias {
            *gb = 0.0;
        }
        for r in 0..grad_out.rows {
            for (gb, &g) in self.grad_bias.iter_mut().zip(grad_out.row(r)) {
                *gb += g;
            }
        }
        grad_out.matmul_transpose(&self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_affine_identity() {
        let mut layer = Dense::new(2, 2, Activation::Identity, 7);
        layer.weights = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        layer.bias = vec![0.5, -0.5];
        let x = Matrix::from_rows(&[vec![2.0, 3.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.row(0), &[2.5, 2.5]);
        assert_eq!(layer.infer(&x).row(0), &[2.5, 2.5]);
    }

    #[test]
    fn relu_clamps_and_blocks_gradient() {
        let mut layer = Dense::new(1, 2, Activation::Relu, 7);
        layer.weights = Matrix::from_rows(&[vec![1.0, -1.0]]);
        let x = Matrix::from_rows(&[vec![3.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.row(0), &[3.0, 0.0]);
        let dx = layer.backward(Matrix::from_rows(&[vec![1.0, 1.0]]));
        // Second unit is dead: gradient flows only through the first.
        assert_eq!(dx.row(0), &[1.0]);
        assert_eq!(layer.grad_weights.row(0), &[3.0, 0.0]);
        assert_eq!(layer.grad_bias, vec![1.0, 0.0]);
    }

    /// Numerical gradient check on a small tanh layer with MSE loss.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Dense::new(3, 2, Activation::Tanh, 42);
        let x = Matrix::from_rows(&[vec![0.1, -0.2, 0.3], vec![0.5, 0.4, -0.6]]);
        let target = Matrix::from_rows(&[vec![0.2, -0.1], vec![-0.3, 0.4]]);

        let loss = |layer: &Dense| -> f32 {
            let y = layer.infer(&x);
            let mut l = 0.0;
            for (a, b) in y.data.iter().zip(&target.data) {
                l += (a - b) * (a - b);
            }
            l / y.data.len() as f32
        };

        // Analytic gradient.
        let y = layer.forward(&x);
        let n = y.data.len() as f32;
        let grad_out = Matrix {
            rows: y.rows,
            cols: y.cols,
            data: y
                .data
                .iter()
                .zip(&target.data)
                .map(|(a, b)| 2.0 * (a - b) / n)
                .collect(),
        };
        let _ = layer.backward(grad_out);

        // Finite differences on a few weights.
        let eps = 1e-3;
        for idx in [0usize, 2, 5] {
            let orig = layer.weights.data[idx];
            layer.weights.data[idx] = orig + eps;
            let lp = loss(&layer);
            layer.weights.data[idx] = orig - eps;
            let lm = loss(&layer);
            layer.weights.data[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = layer.grad_weights.data[idx];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "weight {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = Dense::new(4, 3, Activation::Tanh, 99);
        let b = Dense::new(4, 3, Activation::Tanh, 99);
        let c = Dense::new(4, 3, Activation::Tanh, 100);
        assert_eq!(a.weights, b.weights);
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut layer = Dense::new(2, 2, Activation::Identity, 1);
        let _ = layer.backward(Matrix::zeros(1, 2));
    }
}
