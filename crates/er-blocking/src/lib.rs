//! Blocking workflows for entity resolution (paper §IV-B).
//!
//! A blocking workflow is a pipeline of up to four steps (paper Fig. 1):
//!
//! 1. **Block building** ([`build`]) — extract signatures from every entity
//!    and cluster entities with identical signatures into blocks,
//! 2. **Block Purging** ([`purge`], optional) — drop oversized,
//!    stop-word-like blocks,
//! 3. **Block Filtering** ([`filter`], optional) — keep every entity only in
//!    its `r%` smallest blocks,
//! 4. **Comparison cleaning** ([`propagation`] or [`metablocking`],
//!    mandatory) — discard redundant (and optionally superfluous) candidate
//!    pairs.
//!
//! [`workflow`] wires the steps into the five fine-tuned workflows of the
//! study (SBW, QBW, EQBW, SABW, ESABW), the two baselines (PBW, DBW) and
//! the Table III configuration grid.

pub mod blocks;
pub mod build;
pub mod filter;
pub mod metablocking;
pub mod propagation;
pub mod purge;
pub mod segmented;
pub mod sorted_neighborhood;
pub mod store;
pub mod workflow;

pub use blocks::{Block, BlockCollection};
pub use build::BlockBuilder;
pub use er_core::optimize::GridResolution;
pub use filter::block_filtering;
pub use metablocking::{BlockingGraph, MetaBlocking, PruningAlgorithm, WeightingScheme};
pub use propagation::comparison_propagation;
pub use purge::block_purging;
pub use segmented::{SegmentedBlocks, SigSegment};
pub use sorted_neighborhood::SortedNeighborhood;
pub use store::BlockingCodec;
pub use workflow::{BlockingWorkflow, ComparisonCleaning, WorkflowKind};

#[cfg(test)]
mod proptests;
