//! Comparison Propagation (paper §IV-B; Papadakis et al., TKDE 2013).
//!
//! The parameter-free comparison-cleaning method: it removes *all* redundant
//! candidate pairs (pairs repeated across blocks) without touching the
//! superfluous ones, so precision rises at zero recall cost. Conceptually it
//! retains each pair only in the block with the least common block id; the
//! observable output — the set of distinct cross pairs — is what we
//! materialize directly.

use crate::blocks::BlockCollection;
use er_core::candidates::CandidateSet;

/// Emits every distinct candidate pair of the block collection.
pub fn comparison_propagation(blocks: &BlockCollection) -> CandidateSet {
    // Capacity guess: redundancy typically halves the raw comparisons.
    let mut out = CandidateSet::with_capacity((blocks.total_comparisons() / 2) as usize);
    for block in &blocks.blocks {
        for &l in &block.left {
            for &r in &block.right {
                out.insert_raw(l, r);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::Block;
    use er_core::candidates::Pair;

    #[test]
    fn redundant_pairs_collapse() {
        // (0,0) appears in both blocks; output holds it once.
        let bc = BlockCollection::from_blocks(
            [
                Block {
                    left: vec![0],
                    right: vec![0, 1],
                },
                Block {
                    left: vec![0, 1],
                    right: vec![0],
                },
            ],
            2,
            2,
        );
        let c = comparison_propagation(&bc);
        assert_eq!(c.len(), 3);
        assert!(c.contains(Pair::new(0, 0)));
        assert!(c.contains(Pair::new(0, 1)));
        assert!(c.contains(Pair::new(1, 0)));
    }

    #[test]
    fn no_blocks_no_candidates() {
        let bc = BlockCollection::from_blocks([], 5, 5);
        assert!(comparison_propagation(&bc).is_empty());
    }

    #[test]
    fn distinct_pairs_bounded_by_total_comparisons() {
        let bc = BlockCollection::from_blocks(
            [
                Block {
                    left: vec![0, 1, 2],
                    right: vec![0, 1],
                },
                Block {
                    left: vec![1, 2],
                    right: vec![1, 2],
                },
            ],
            3,
            3,
        );
        let c = comparison_propagation(&bc);
        assert!(c.len() as u64 <= bc.total_comparisons());
        // Recall preservation: every pair of every block is present.
        for block in &bc.blocks {
            for &l in &block.left {
                for &r in &block.right {
                    assert!(c.contains(Pair::new(l, r)));
                }
            }
        }
    }
}
