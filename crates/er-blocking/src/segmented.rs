//! Segment-aware block building for the incremental index layer.
//!
//! The sparse incremental index (`er_sparse::segmented`) keeps the
//! indexed collection as immutable segments plus a mutable delta; the
//! blocking workflows need the same treatment so `er serve` can keep
//! answering blocking lookups while rows stream in. A
//! [`SegmentedBlocks`] holds each `E1` row's *signature set* (the
//! expensive extraction step of [`BlockBuilder::build`]) in immutable
//! [`SigSegment`]s plus a delta keyed by stable row id, with a tombstone
//! set suppressing deleted rows; [`SegmentedBlocks::build`] merges the
//! layers into a [`BlockCollection`] that is **bitwise identical** to
//! `BlockBuilder::build` over the net dataset — live stable ids in
//! ascending order are exactly the dense `E1` positions of a full
//! rebuild, and blocks drain in the same sorted-signature order.
//!
//! Signature extraction is the only text-dependent work, so upserts pay
//! it once; flush/compaction just regroup already-extracted sets. The
//! `E2` side is the fixed query collection, extracted once up front
//! (chunked over the worker pool; chunk boundaries are a pure function
//! of the length, so any thread count yields the same bytes).

use crate::blocks::{Block, BlockCollection};
use crate::build::BlockBuilder;
use er_core::hash::{FastMap, FastSet};
use er_core::parallel;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One immutable run of extracted signature sets: `sigs[i]` belongs to
/// stable row id `ids[i]` (ids strictly ascending, each set sorted and
/// duplicate-free).
#[derive(Debug)]
pub struct SigSegment {
    /// Sequence number, unique within one index's lifetime.
    pub seq: u64,
    /// Stable row id of each row, strictly ascending.
    pub ids: Vec<u32>,
    /// Sorted, deduplicated signature hashes per row.
    pub sigs: Vec<Vec<u64>>,
}

impl SigSegment {
    /// Heap estimate: per-row Vec headers plus the hash payloads.
    pub fn heap_bytes(&self) -> usize {
        self.ids.len() * 4 + self.sigs.iter().map(|s| 24 + s.len() * 8).sum::<usize>()
    }
}

/// Which layer owns a live stable id (same discipline as the sparse
/// segmented index: the newest layer holding a row answers for it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Owner {
    Delta,
    Seg(u64),
}

/// Segmented signature index over the `E1` side of a blocking workflow
/// (see module docs).
#[derive(Debug)]
pub struct SegmentedBlocks {
    builder: BlockBuilder,
    segments: Vec<Arc<SigSegment>>,
    delta: BTreeMap<u32, Vec<u64>>,
    tombstones: BTreeSet<u32>,
    /// Extracted signature sets of the fixed `E2` collection.
    right_sigs: Vec<Vec<u64>>,
    next_seq: u64,
    owner: FastMap<u32, Owner>,
    in_segments: BTreeSet<u32>,
}

/// Extracts the sorted signature set of every text, chunked over
/// `threads` workers (byte-identical for any worker count).
fn extract_batch(builder: &BlockBuilder, texts: &[String], threads: usize) -> Vec<Vec<u64>> {
    let chunk = parallel::query_chunk_len(texts.len());
    let per_chunk = parallel::par_map_chunks_with(threads, texts, chunk, |_, part| {
        let mut scratch = FastSet::default();
        part.iter()
            .map(|text| {
                builder.signatures(text, &mut scratch);
                let mut sigs: Vec<u64> = scratch.iter().copied().collect();
                sigs.sort_unstable();
                sigs
            })
            .collect::<Vec<_>>()
    });
    per_chunk.into_iter().flatten().collect()
}

impl SegmentedBlocks {
    /// An empty segmented blocking index for `builder`, extracting the
    /// fixed `E2` texts' signatures over `threads` workers.
    pub fn new(builder: BlockBuilder, e2_texts: &[String], threads: usize) -> Self {
        SegmentedBlocks {
            builder,
            segments: Vec::new(),
            delta: BTreeMap::new(),
            tombstones: BTreeSet::new(),
            right_sigs: extract_batch(&builder, e2_texts, threads),
            next_seq: 0,
            owner: FastMap::default(),
            in_segments: BTreeSet::new(),
        }
    }

    /// The configured block builder.
    pub fn builder(&self) -> &BlockBuilder {
        &self.builder
    }

    /// Number of immutable segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Rows currently in the mutable delta.
    pub fn delta_rows(&self) -> usize {
        self.delta.len()
    }

    /// Live (block-visible) `E1` rows.
    pub fn live_rows(&self) -> usize {
        self.owner.len()
    }

    /// Heap estimate of the signature storage (segments + delta + the
    /// fixed right side); the rebuildable ownership maps are excluded.
    pub fn heap_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.heap_bytes()).sum::<usize>()
            + self.delta.values().map(|s| 28 + s.len() * 8).sum::<usize>()
            + self.tombstones.len() * 4
            + self
                .right_sigs
                .iter()
                .map(|s| 24 + s.len() * 8)
                .sum::<usize>()
    }

    /// Inserts or replaces row `id`, extracting its signatures.
    pub fn upsert(&mut self, id: u32, text: &str) {
        let mut scratch = FastSet::default();
        self.builder.signatures(text, &mut scratch);
        let mut sigs: Vec<u64> = scratch.into_iter().collect();
        sigs.sort_unstable();
        self.upsert_sigs(id, sigs);
    }

    /// Inserts or replaces row `id` with an already-extracted sorted
    /// signature set.
    pub fn upsert_sigs(&mut self, id: u32, sigs: Vec<u64>) {
        self.tombstones.remove(&id);
        self.delta.insert(id, sigs);
        self.owner.insert(id, Owner::Delta);
    }

    /// Deletes row `id` (tombstone discipline matches the sparse index:
    /// always recorded, pruned once no segment backs it).
    pub fn delete(&mut self, id: u32) {
        self.delta.remove(&id);
        self.owner.remove(&id);
        self.tombstones.insert(id);
    }

    fn rebuild_owner(&mut self) {
        self.owner.clear();
        self.in_segments.clear();
        for seg in &self.segments {
            for &id in &seg.ids {
                self.in_segments.insert(id);
                if !self.tombstones.contains(&id) {
                    self.owner.insert(id, Owner::Seg(seg.seq));
                }
            }
        }
        for &id in self.delta.keys() {
            self.owner.insert(id, Owner::Delta);
        }
        let in_segments = &self.in_segments;
        self.tombstones.retain(|id| in_segments.contains(id));
    }

    /// Folds the delta into a fresh immutable segment. Returns `false`
    /// when the delta is empty.
    pub fn flush(&mut self) -> bool {
        if self.delta.is_empty() {
            return false;
        }
        let rows: Vec<(u32, Vec<u64>)> = std::mem::take(&mut self.delta).into_iter().collect();
        let segment = SigSegment {
            seq: self.next_seq,
            ids: rows.iter().map(|(id, _)| *id).collect(),
            sigs: rows.into_iter().map(|(_, s)| s).collect(),
        };
        self.next_seq += 1;
        self.segments.push(Arc::new(segment));
        self.rebuild_owner();
        true
    }

    /// Folds all segments plus the delta into one segment holding exactly
    /// the live rows. Returns `false` when there is nothing to fold.
    pub fn compact(&mut self) -> bool {
        if self.segments.len() <= 1 && self.delta.is_empty() && self.tombstones.is_empty() {
            return false;
        }
        let by_seq: FastMap<u64, usize> = self
            .segments
            .iter()
            .enumerate()
            .map(|(i, s)| (s.seq, i))
            .collect();
        let mut live: Vec<u32> = self.owner.keys().copied().collect();
        live.sort_unstable();
        let mut ids = Vec::with_capacity(live.len());
        let mut sigs = Vec::with_capacity(live.len());
        for id in live {
            let set = match self.owner[&id] {
                Owner::Delta => self.delta[&id].clone(),
                Owner::Seg(seq) => {
                    let seg = &self.segments[by_seq[&seq]];
                    let row = seg
                        .ids
                        .binary_search(&id)
                        .expect("owner points into segment");
                    seg.sigs[row].clone()
                }
            };
            ids.push(id);
            sigs.push(set);
        }
        let segment = SigSegment {
            seq: self.next_seq,
            ids,
            sigs,
        };
        self.next_seq += 1;
        self.segments = vec![Arc::new(segment)];
        self.delta.clear();
        self.tombstones.clear();
        self.rebuild_owner();
        true
    }

    /// The live stable ids in ascending order — dense `E1` position `i`
    /// of [`SegmentedBlocks::build`]'s output corresponds to the `i`-th
    /// entry here (the mapping callers use to translate block members
    /// back to stable ids).
    pub fn live_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.owner.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Builds the block collection over the net dataset: bitwise
    /// identical to `self.builder().build(&view)` where `view.e1` holds
    /// the live rows' texts in ascending stable-id order and `view.e2`
    /// the fixed right side.
    pub fn build(&self) -> BlockCollection {
        let mut index: FastMap<u64, Block> = FastMap::default();
        // Left side: live rows in ascending stable-id order are the dense
        // E1 positions of the oracle rebuild.
        for (dense, id) in self.live_ids().into_iter().enumerate() {
            let sigs = match self.owner[&id] {
                Owner::Delta => &self.delta[&id],
                Owner::Seg(seq) => {
                    let seg = self
                        .segments
                        .iter()
                        .find(|s| s.seq == seq)
                        .expect("owner names a segment");
                    &seg.sigs[seg
                        .ids
                        .binary_search(&id)
                        .expect("owner points into segment")]
                }
            };
            for &sig in sigs {
                index.entry(sig).or_default().left.push(dense as u32);
            }
        }
        for (j, sigs) in self.right_sigs.iter().enumerate() {
            for &sig in sigs {
                index.entry(sig).or_default().right.push(j as u32);
            }
        }
        let b_max = match *self.builder() {
            BlockBuilder::SuffixArrays { b_max, .. }
            | BlockBuilder::ExtendedSuffixArrays { b_max, .. } => Some(b_max),
            _ => None,
        };
        let mut entries: Vec<(u64, Block)> = index.into_iter().collect();
        entries.sort_unstable_by_key(|(sig, _)| *sig);
        let blocks = entries.into_iter().filter_map(|(_, b)| {
            if let Some(b_max) = b_max {
                if b.assignments() >= b_max {
                    return None;
                }
            }
            Some(b)
        });
        BlockCollection::from_blocks(blocks, self.owner.len(), self.right_sigs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::schema::TextView;
    use proptest::prelude::*;

    fn e2() -> Vec<String> {
        vec![
            "joe biden jr".to_owned(),
            "harris walmart".to_owned(),
            "".to_owned(),
            "kwalmart biden".to_owned(),
        ]
    }

    fn builders() -> Vec<BlockBuilder> {
        vec![
            BlockBuilder::Standard,
            BlockBuilder::QGrams { q: 3 },
            BlockBuilder::SuffixArrays { l_min: 3, b_max: 5 },
        ]
    }

    /// Asserts `seg.build()` equals the oracle `BlockBuilder::build` over
    /// the net view, field by field.
    fn assert_matches_oracle(seg: &SegmentedBlocks, net: &BTreeMap<u32, String>) {
        let view = TextView::new(net.values().cloned().collect::<Vec<_>>(), e2());
        let want = seg.builder().build(&view);
        let got = seg.build();
        assert_eq!(got.blocks, want.blocks);
        assert_eq!((got.n1, got.n2), (want.n1, want.n2));
        assert_eq!(
            seg.live_ids(),
            net.keys().copied().collect::<Vec<_>>(),
            "dense mapping"
        );
    }

    #[test]
    fn layers_match_full_rebuild_for_every_builder() {
        for builder in builders() {
            let mut seg = SegmentedBlocks::new(builder, &e2(), 1);
            let mut net = BTreeMap::new();
            for (id, text) in [(2u32, "joe biden"), (5, "kamala harris"), (9, "walmart")] {
                seg.upsert(id, text);
                net.insert(id, text.to_owned());
            }
            assert_matches_oracle(&seg, &net);
            assert!(seg.flush());
            assert_matches_oracle(&seg, &net);
            // Shadow a segment row, delete another, add a fresh one.
            seg.upsert(5, "harris");
            net.insert(5, "harris".to_owned());
            seg.delete(2);
            net.remove(&2);
            seg.upsert(11, "biden walmart");
            net.insert(11, "biden walmart".to_owned());
            assert_matches_oracle(&seg, &net);
            assert!(seg.flush());
            assert_eq!(seg.segment_count(), 2);
            assert_matches_oracle(&seg, &net);
            assert!(seg.compact());
            assert_eq!(seg.segment_count(), 1);
            assert_matches_oracle(&seg, &net);
            assert!(!seg.compact());
        }
    }

    #[test]
    fn delete_all_yields_no_blocks() {
        let mut seg = SegmentedBlocks::new(BlockBuilder::Standard, &e2(), 1);
        seg.upsert(0, "joe biden");
        seg.flush();
        seg.delete(0);
        assert_eq!(seg.live_rows(), 0);
        assert!(seg.build().is_empty());
        assert_matches_oracle(&seg, &BTreeMap::new());
    }

    #[test]
    fn e2_extraction_is_thread_count_invariant() {
        let texts: Vec<String> = (0..40)
            .map(|i| format!("tok{} common {}", i, i % 5))
            .collect();
        let one = SegmentedBlocks::new(BlockBuilder::QGrams { q: 3 }, &texts, 1);
        let eight = SegmentedBlocks::new(BlockBuilder::QGrams { q: 3 }, &texts, 8);
        assert_eq!(one.right_sigs, eight.right_sigs);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any interleaving of upserts, deletes, flushes and compactions
        /// builds blocks bitwise-identical to a full rebuild of the net
        /// dataset.
        #[test]
        fn any_op_interleaving_matches_full_rebuild(
            ops in proptest::collection::vec((0u8..4, 0u32..16, "[a-d ]{0,10}"), 1..30),
        ) {
            let mut seg = SegmentedBlocks::new(BlockBuilder::Standard, &e2(), 1);
            let mut net = BTreeMap::new();
            for (op, id, text) in &ops {
                match op % 4 {
                    0 | 1 => {
                        seg.upsert(*id, text);
                        net.insert(*id, text.clone());
                    }
                    2 => {
                        seg.delete(*id);
                        net.remove(id);
                    }
                    _ => {
                        if *id % 2 == 0 {
                            seg.flush();
                        } else {
                            seg.compact();
                        }
                    }
                }
            }
            let view = TextView::new(net.values().cloned().collect::<Vec<_>>(), e2());
            let want = seg.builder().build(&view);
            let got = seg.build();
            prop_assert_eq!(got.blocks, want.blocks);
            prop_assert_eq!((got.n1, got.n2), (want.n1, want.n2));
        }
    }
}
