//! Block Filtering (paper §IV-B; Papadakis et al., VLDB 2016).
//!
//! For a particular entity, its largest blocks are the least likely to
//! associate it with its match. Block Filtering orders every entity's
//! blocks by ascending size and retains the entity only in the top
//! `⌈r · |blocks(e)|⌉` smallest ones, where `r` is the filtering ratio.
//! With `r = 1.0` the step is the identity.

use crate::blocks::{Block, BlockCollection};

/// Applies Block Filtering with ratio `r ∈ (0, 1]`.
///
/// Both sides of the bipartite blocks are filtered independently; blocks
/// left without one side are dropped.
pub fn block_filtering(input: &BlockCollection, r: f64) -> BlockCollection {
    assert!(
        r > 0.0 && r <= 1.0,
        "filtering ratio must be in (0, 1], got {r}"
    );
    if input.is_empty() || r >= 1.0 {
        return input.clone();
    }

    let sizes: Vec<u64> = input.blocks.iter().map(Block::comparisons).collect();
    let (left_index, right_index) = input.entity_index();

    // For each entity, mark the retained (entity, block) assignments.
    let mut keep_left = vec![Vec::new(); input.n1];
    let mut keep_right = vec![Vec::new(); input.n2];
    let mut scratch: Vec<u32> = Vec::new();
    let mut retain = |blocks_of_e: &[u32], out: &mut Vec<u32>| {
        if blocks_of_e.is_empty() {
            return;
        }
        scratch.clear();
        scratch.extend_from_slice(blocks_of_e);
        // Ascending block size; ties broken by block id for determinism.
        scratch.sort_unstable_by_key(|&bid| (sizes[bid as usize], bid));
        let keep = ((r * blocks_of_e.len() as f64).ceil() as usize).max(1);
        out.extend_from_slice(&scratch[..keep.min(scratch.len())]);
    };
    for (e, blocks_of_e) in left_index.iter().enumerate() {
        retain(blocks_of_e, &mut keep_left[e]);
    }
    for (e, blocks_of_e) in right_index.iter().enumerate() {
        retain(blocks_of_e, &mut keep_right[e]);
    }

    // Rebuild blocks from the retained assignments, preserving block ids.
    let mut rebuilt: Vec<Block> = vec![Block::default(); input.blocks.len()];
    for (e, bids) in keep_left.iter().enumerate() {
        for &bid in bids {
            rebuilt[bid as usize].left.push(e as u32);
        }
    }
    for (e, bids) in keep_right.iter().enumerate() {
        for &bid in bids {
            rebuilt[bid as usize].right.push(e as u32);
        }
    }
    BlockCollection::from_blocks(rebuilt, input.n1, input.n2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection(blocks: Vec<(Vec<u32>, Vec<u32>)>, n1: usize, n2: usize) -> BlockCollection {
        BlockCollection::from_blocks(
            blocks
                .into_iter()
                .map(|(left, right)| Block { left, right }),
            n1,
            n2,
        )
    }

    #[test]
    fn ratio_one_is_identity() {
        let bc = collection(vec![(vec![0, 1], vec![0]), (vec![1], vec![1])], 2, 2);
        let out = block_filtering(&bc, 1.0);
        assert_eq!(out.total_comparisons(), bc.total_comparisons());
        assert_eq!(out.len(), bc.len());
    }

    #[test]
    fn entity_keeps_smallest_blocks() {
        // Entity 0 (left) is in a small block (1 comparison) and a big one
        // (4 comparisons). With r = 0.5 it keeps only the small one.
        let bc = collection(
            vec![
                (vec![0], vec![0]),       // small
                (vec![0, 1], vec![0, 1]), // big
            ],
            2,
            2,
        );
        let out = block_filtering(&bc, 0.5);
        // Left entity 0 keeps block 0; left entity 1 keeps only block 1 (its
        // single block). Right entities likewise keep their smallest block.
        let block_with_left0: Vec<_> = out.blocks.iter().filter(|b| b.left.contains(&0)).collect();
        assert_eq!(block_with_left0.len(), 1);
        assert_eq!(block_with_left0[0].comparisons(), 1);
    }

    #[test]
    fn singleton_membership_survives_any_ratio() {
        // max(1, ...) ensures an entity always keeps at least one block.
        let bc = collection(vec![(vec![0], vec![0])], 1, 1);
        let out = block_filtering(&bc, 0.05);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn filtering_is_monotone_in_ratio() {
        let bc = collection(
            vec![
                (vec![0, 1, 2], vec![0, 1, 2]),
                (vec![0, 1], vec![0]),
                (vec![0], vec![1]),
                (vec![2], vec![2, 1]),
            ],
            3,
            3,
        );
        let mut prev = 0;
        for r in [0.25, 0.5, 0.75, 1.0] {
            let comparisons = block_filtering(&bc, r).total_comparisons();
            assert!(comparisons >= prev, "r={r}: {comparisons} < {prev}");
            prev = comparisons;
        }
    }

    #[test]
    #[should_panic(expected = "filtering ratio")]
    fn zero_ratio_rejected() {
        let bc = collection(vec![(vec![0], vec![0])], 1, 1);
        let _ = block_filtering(&bc, 0.0);
    }

    #[test]
    fn empty_collection_passes_through() {
        let bc = collection(vec![], 0, 0);
        assert!(block_filtering(&bc, 0.5).is_empty());
    }
}
