//! Blocking workflows (paper Fig. 1) and their configuration grids
//! (Table III).
//!
//! A workflow = block building → optional Block Purging → optional Block
//! Filtering → mandatory comparison cleaning. The five fine-tuned workflows
//! of the study differ only in the block builder; the proactive ones (SABW,
//! ESABW) skip the generic block-cleaning steps. Two baselines with fixed
//! parameters complete the set: the Parameter-free Blocking Workflow (PBW)
//! and the Default Blocking Workflow (DBW).

use crate::blocks::BlockCollection;
use crate::build::BlockBuilder;
use crate::filter::block_filtering;
use crate::metablocking::{MetaBlocking, PruningAlgorithm, WeightingScheme};
use crate::propagation::comparison_propagation;
use crate::purge::block_purging;
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::optimize::GridResolution;
use er_core::schema::TextView;
use er_core::timing::{PhaseBreakdown, Stage};

/// The comparison-cleaning step: parameter-free Comparison Propagation or
/// one of the 42 Meta-blocking configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComparisonCleaning {
    /// Comparison Propagation — removes redundant pairs only.
    Propagation,
    /// Meta-blocking — removes redundant and superfluous pairs.
    Meta(MetaBlocking),
}

impl ComparisonCleaning {
    /// Display string, e.g. `"CP"` or `"WEP+ECBS"`.
    pub fn describe(&self) -> String {
        match self {
            ComparisonCleaning::Propagation => "CP".to_owned(),
            ComparisonCleaning::Meta(mb) => {
                format!("{}+{}", mb.pruning.name(), mb.scheme.name())
            }
        }
    }
}

/// A fully configured blocking workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingWorkflow {
    /// Block-building method and parameters.
    pub builder: BlockBuilder,
    /// Apply Block Purging? (Always false for proactive builders.)
    pub purge: bool,
    /// Block Filtering ratio; `None` or `Some(1.0)` disables the step.
    pub filter_ratio: Option<f64>,
    /// Comparison-cleaning step.
    pub cleaning: ComparisonCleaning,
}

impl BlockingWorkflow {
    /// The Parameter-free Blocking Workflow baseline: Standard Blocking +
    /// Block Purging + Comparison Propagation.
    pub fn pbw() -> Self {
        Self {
            builder: BlockBuilder::Standard,
            purge: true,
            filter_ratio: None,
            cleaning: ComparisonCleaning::Propagation,
        }
    }

    /// The Default Blocking Workflow baseline: Q-Grams (q = 6) + Block
    /// Filtering (r = 0.5) + WEP+ECBS (the defaults of the paper's ref \[11\]).
    pub fn dbw() -> Self {
        Self {
            builder: BlockBuilder::QGrams { q: 6 },
            purge: false,
            filter_ratio: Some(0.5),
            cleaning: ComparisonCleaning::Meta(MetaBlocking {
                scheme: WeightingScheme::Ecbs,
                pruning: PruningAlgorithm::Wep,
            }),
        }
    }

    /// One-line configuration description for Table VIII-style reports.
    pub fn describe(&self) -> String {
        let mut parts = vec![match self.builder {
            BlockBuilder::Standard => "Standard".to_owned(),
            BlockBuilder::QGrams { q } => format!("Q-Grams(q={q})"),
            BlockBuilder::ExtendedQGrams { q, t } => format!("ExtQGrams(q={q},t={t})"),
            BlockBuilder::SuffixArrays { l_min, b_max } => {
                format!("SuffixArrays(lmin={l_min},bmax={b_max})")
            }
            BlockBuilder::ExtendedSuffixArrays { l_min, b_max } => {
                format!("ExtSuffixArrays(lmin={l_min},bmax={b_max})")
            }
        }];
        if self.purge {
            parts.push("BP".to_owned());
        }
        if let Some(r) = self.filter_ratio {
            if r < 1.0 {
                parts.push(format!("BF(r={r})"));
            }
        }
        parts.push(self.cleaning.describe());
        parts.join(" | ")
    }

    /// Runs block building + block cleaning, returning the intermediate
    /// block collection (used by the ablation experiments).
    pub fn build_blocks(&self, view: &TextView) -> BlockCollection {
        let mut blocks = self.builder.build(view);
        if self.purge {
            blocks = block_purging(&blocks);
        }
        if let Some(r) = self.filter_ratio {
            if r < 1.0 {
                blocks = block_filtering(&blocks, r);
            }
        }
        blocks
    }
}

/// Estimated heap footprint of a raw block collection, for cache budgets.
/// The store codec recomputes the same formula on decode so heap bytes
/// stay identical across a persist/reload cycle.
pub(crate) fn block_bytes(blocks: &BlockCollection) -> usize {
    blocks
        .blocks
        .iter()
        .map(|b| 2 * std::mem::size_of::<Vec<u32>>() + (b.left.len() + b.right.len()) * 4)
        .sum()
}

impl Filter for BlockingWorkflow {
    fn name(&self) -> String {
        WorkflowKind::of(&self.builder).acronym().to_owned()
    }

    /// Raw block building depends only on the builder; purging, filtering
    /// and comparison cleaning are all query-stage, so every workflow over
    /// the same builder shares one block collection.
    fn repr_key(&self) -> String {
        format!("blocks:{:?}", self.builder)
    }

    fn prepare(&self, view: &TextView) -> Prepared {
        let mut breakdown = PhaseBreakdown::new();
        let blocks = breakdown.time_in(Stage::Prepare, "build", || self.builder.build(view));
        let bytes = block_bytes(&blocks);
        Prepared::new(blocks, bytes, breakdown)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        let raw = prepared.downcast::<BlockCollection>();
        let mut out = FilterOutput::default();
        let mut blocks = None;
        if self.purge {
            blocks = Some(out.breakdown.time("purge", || block_purging(raw)));
        }
        if let Some(r) = self.filter_ratio {
            if r < 1.0 {
                blocks = Some(out.breakdown.time("filter", || {
                    block_filtering(blocks.as_ref().unwrap_or(raw), r)
                }));
            }
        }
        let blocks = blocks.as_ref().unwrap_or(raw);
        out.candidates = out.breakdown.time("clean", || match &self.cleaning {
            ComparisonCleaning::Propagation => comparison_propagation(blocks),
            ComparisonCleaning::Meta(mb) => mb.clean(blocks),
        });
        out
    }
}

/// The five fine-tuned workflow families of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkflowKind {
    /// Standard Blocking workflow.
    Sbw,
    /// Q-Grams Blocking workflow.
    Qbw,
    /// Extended Q-Grams Blocking workflow.
    Eqbw,
    /// Suffix Arrays Blocking workflow (proactive).
    Sabw,
    /// Extended Suffix Arrays Blocking workflow (proactive).
    Esabw,
}

impl WorkflowKind {
    /// All five workflow kinds.
    pub const ALL: [WorkflowKind; 5] = [
        WorkflowKind::Sbw,
        WorkflowKind::Qbw,
        WorkflowKind::Eqbw,
        WorkflowKind::Sabw,
        WorkflowKind::Esabw,
    ];

    /// The acronym used in the paper's tables.
    pub fn acronym(&self) -> &'static str {
        match self {
            WorkflowKind::Sbw => "SBW",
            WorkflowKind::Qbw => "QBW",
            WorkflowKind::Eqbw => "EQBW",
            WorkflowKind::Sabw => "SABW",
            WorkflowKind::Esabw => "ESABW",
        }
    }

    /// Maps a builder back to its workflow family.
    pub fn of(builder: &BlockBuilder) -> WorkflowKind {
        match builder {
            BlockBuilder::Standard => WorkflowKind::Sbw,
            BlockBuilder::QGrams { .. } => WorkflowKind::Qbw,
            BlockBuilder::ExtendedQGrams { .. } => WorkflowKind::Eqbw,
            BlockBuilder::SuffixArrays { .. } => WorkflowKind::Sabw,
            BlockBuilder::ExtendedSuffixArrays { .. } => WorkflowKind::Esabw,
        }
    }

    /// True for the proactive families (no block cleaning in their grid).
    pub fn is_proactive(&self) -> bool {
        matches!(self, WorkflowKind::Sabw | WorkflowKind::Esabw)
    }

    /// Enumerates the builder configurations of this family.
    fn builders(&self, res: GridResolution) -> Vec<BlockBuilder> {
        use GridResolution::*;
        match self {
            WorkflowKind::Sbw => vec![BlockBuilder::Standard],
            WorkflowKind::Qbw => {
                // q = 2 is omitted from the pruned grid: it never wins for
                // QBW in the paper's Table VIII and its tiny grams create
                // pathologically dense graphs on the largest datasets.
                let qs: &[usize] = match res {
                    Full => &[2, 3, 4, 5, 6],
                    Pruned => &[3, 4, 6],
                    Quick => &[3],
                };
                qs.iter().map(|&q| BlockBuilder::QGrams { q }).collect()
            }
            WorkflowKind::Eqbw => {
                let qs: &[usize] = match res {
                    Full => &[2, 3, 4, 5, 6],
                    Pruned => &[3, 4, 6],
                    Quick => &[3],
                };
                let ts: &[f64] = match res {
                    Full => &[0.8, 0.85, 0.9, 0.95],
                    Pruned => &[0.8, 0.9],
                    Quick => &[0.9],
                };
                qs.iter()
                    .flat_map(|&q| {
                        ts.iter()
                            .map(move |&t| BlockBuilder::ExtendedQGrams { q, t })
                    })
                    .collect()
            }
            WorkflowKind::Sabw | WorkflowKind::Esabw => {
                let lmins: &[usize] = match res {
                    Full => &[2, 3, 4, 5, 6],
                    Pruned => &[2, 3, 4, 6],
                    Quick => &[3],
                };
                let bmaxs: Vec<usize> = match res {
                    Full => (2..=100).collect(),
                    Pruned => vec![5, 10, 25, 50, 100],
                    Quick => vec![25, 100],
                };
                let extended = *self == WorkflowKind::Esabw;
                lmins
                    .iter()
                    .flat_map(|&l_min| {
                        bmaxs.iter().map(move |&b_max| {
                            if extended {
                                BlockBuilder::ExtendedSuffixArrays { l_min, b_max }
                            } else {
                                BlockBuilder::SuffixArrays { l_min, b_max }
                            }
                        })
                    })
                    .collect()
            }
        }
    }

    /// Enumerates the comparison-cleaning options: CP plus WS × PA.
    fn cleanings(res: GridResolution) -> Vec<ComparisonCleaning> {
        let (schemes, prunings): (&[WeightingScheme], &[PruningAlgorithm]) = match res {
            GridResolution::Full => (&WeightingScheme::ALL, &PruningAlgorithm::ALL),
            GridResolution::Pruned => (
                &WeightingScheme::ALL,
                &[
                    PruningAlgorithm::Blast,
                    PruningAlgorithm::Cnp,
                    PruningAlgorithm::Rcnp,
                    PruningAlgorithm::Wep,
                    PruningAlgorithm::Wnp,
                ],
            ),
            GridResolution::Quick => (
                &[
                    WeightingScheme::Arcs,
                    WeightingScheme::Cbs,
                    WeightingScheme::Js,
                    WeightingScheme::ChiSquared,
                ],
                &[
                    PruningAlgorithm::Blast,
                    PruningAlgorithm::Rcnp,
                    PruningAlgorithm::Wep,
                ],
            ),
        };
        let mut out = vec![ComparisonCleaning::Propagation];
        for &scheme in schemes {
            for &pruning in prunings {
                out.push(ComparisonCleaning::Meta(MetaBlocking { scheme, pruning }));
            }
        }
        out
    }

    /// The full configuration grid of this workflow family (Table III).
    ///
    /// Lazy families sweep Block Purging ∈ {on, off} and the Block Filtering
    /// ratio; proactive families sweep only the builder and the cleaning.
    pub fn grid(&self, res: GridResolution) -> Vec<BlockingWorkflow> {
        let ratios: Vec<Option<f64>> = if self.is_proactive() {
            vec![None]
        } else {
            let steps: Vec<f64> = match res {
                GridResolution::Full => (1..=40).map(|i| i as f64 * 0.025).collect(),
                GridResolution::Pruned => vec![0.25, 0.5, 0.75, 1.0],
                GridResolution::Quick => vec![0.5, 1.0],
            };
            steps.into_iter().map(Some).collect()
        };
        let purges: &[bool] = if self.is_proactive() {
            &[false]
        } else {
            &[false, true]
        };

        let mut grid = Vec::new();
        for builder in self.builders(res) {
            for &purge in purges {
                for &filter_ratio in &ratios {
                    for cleaning in Self::cleanings(res) {
                        grid.push(BlockingWorkflow {
                            builder,
                            purge,
                            filter_ratio,
                            cleaning,
                        });
                    }
                }
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> TextView {
        TextView {
            e1: vec![
                "apple iphone 12 black".into(),
                "samsung galaxy s21".into(),
                "google pixel 5".into(),
            ]
            .into(),
            e2: vec![
                "apple iphone12 black case".into(),
                "galaxy s21 samsung phone".into(),
                "nokia 3310".into(),
            ]
            .into(),
        }
    }

    #[test]
    fn pbw_finds_token_sharing_pairs() {
        let out = BlockingWorkflow::pbw().run(&view());
        assert!(out
            .candidates
            .contains(er_core::candidates::Pair::new(0, 0)));
        assert!(out
            .candidates
            .contains(er_core::candidates::Pair::new(1, 1)));
        assert!(out.breakdown.get("build").is_some());
        assert!(out.breakdown.get("clean").is_some());
    }

    #[test]
    fn dbw_matches_paper_default() {
        let dbw = BlockingWorkflow::dbw();
        assert_eq!(dbw.builder, BlockBuilder::QGrams { q: 6 });
        assert_eq!(dbw.filter_ratio, Some(0.5));
        assert_eq!(dbw.cleaning.describe(), "WEP+ECBS");
        let out = dbw.run(&view());
        assert!(!out.candidates.is_empty());
    }

    #[test]
    fn full_grid_sizes_match_table3() {
        // Standard: 2 (BP) × 40 (BFr) × 43 (CC) = 3,440.
        assert_eq!(WorkflowKind::Sbw.grid(GridResolution::Full).len(), 3_440);
        // Q-Grams: × 5 values of q = 17,200.
        assert_eq!(WorkflowKind::Qbw.grid(GridResolution::Full).len(), 17_200);
        // Extended Q-Grams: × 5 q × 4 t = 68,800.
        assert_eq!(WorkflowKind::Eqbw.grid(GridResolution::Full).len(), 68_800);
        // Suffix Arrays: 5 lmin × 99 bmax × 43 CC = 21,285 (no block cleaning).
        assert_eq!(WorkflowKind::Sabw.grid(GridResolution::Full).len(), 21_285);
        assert_eq!(WorkflowKind::Esabw.grid(GridResolution::Full).len(), 21_285);
    }

    #[test]
    fn pruned_grids_are_small_but_nonempty() {
        for kind in WorkflowKind::ALL {
            let pruned = kind.grid(GridResolution::Pruned).len();
            let quick = kind.grid(GridResolution::Quick).len();
            assert!((1..=100).contains(&quick), "{kind:?}: quick {quick}");
            assert!(pruned > quick, "{kind:?}");
            assert!(pruned < kind.grid(GridResolution::Full).len(), "{kind:?}");
        }
    }

    #[test]
    fn proactive_grids_skip_block_cleaning() {
        for wf in WorkflowKind::Sabw.grid(GridResolution::Quick) {
            assert!(!wf.purge);
            assert!(wf.filter_ratio.is_none());
        }
    }

    #[test]
    fn every_grid_config_runs() {
        let v = view();
        for wf in WorkflowKind::Sbw.grid(GridResolution::Quick) {
            let out = wf.run(&v);
            // Meta-blocking may prune everything on a tiny view; the run
            // itself must succeed and stay within the propagation superset.
            let superset = comparison_propagation(&wf.build_blocks(&v));
            for p in out.candidates.iter() {
                assert!(superset.contains(p), "{}", wf.describe());
            }
        }
    }

    #[test]
    fn describe_mentions_all_steps() {
        let wf = BlockingWorkflow {
            builder: BlockBuilder::QGrams { q: 4 },
            purge: true,
            filter_ratio: Some(0.5),
            cleaning: ComparisonCleaning::Meta(MetaBlocking {
                scheme: WeightingScheme::Js,
                pruning: PruningAlgorithm::Rcnp,
            }),
        };
        let d = wf.describe();
        assert!(d.contains("Q-Grams(q=4)") && d.contains("BP") && d.contains("BF(r=0.5)"));
        assert!(d.contains("RCNP+JS"));
    }

    #[test]
    fn workflow_names_follow_family() {
        assert_eq!(BlockingWorkflow::pbw().name(), "SBW");
        assert_eq!(BlockingWorkflow::dbw().name(), "QBW");
    }
}
