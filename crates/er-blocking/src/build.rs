//! Block building: the five signature schemes of the study (paper §IV-B).
//!
//! Every scheme first tokenizes the considered text on whitespace (Standard
//! Blocking's signatures), then optionally derives finer signatures from
//! the tokens. Entities sharing a signature land in the same block. The
//! proactive schemes (Suffix Arrays and Extended Suffix Arrays) additionally
//! bound the number of entities per signature with `b_max`.

use crate::blocks::{Block, BlockCollection};
use er_core::hash::{hash_str, FastMap, FastSet};
use er_core::schema::TextView;
use er_text::{extended_qgram_keys, qgrams, substrings_min_len, suffixes_min_len, tokenize};

/// A block-building method with its configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockBuilder {
    /// Whitespace tokens as signatures (parameter-free).
    Standard,
    /// Character q-grams of every token.
    QGrams {
        /// Gram length, `[2, 6]` in the study.
        q: usize,
    },
    /// Concatenations of at least `L = max(1, ⌊k·t⌋)` q-grams per token.
    ExtendedQGrams {
        /// Gram length.
        q: usize,
        /// Combination threshold `t ∈ [0.8, 1.0)` in the study.
        t: f64,
    },
    /// Token suffixes of length ≥ `l_min`, kept only if fewer than `b_max`
    /// entities share them (proactive).
    SuffixArrays {
        /// Minimum suffix length.
        l_min: usize,
        /// Maximum entities per block.
        b_max: usize,
    },
    /// All token substrings of length ≥ `l_min`, same `b_max` bound
    /// (proactive).
    ExtendedSuffixArrays {
        /// Minimum substring length.
        l_min: usize,
        /// Maximum entities per block.
        b_max: usize,
    },
}

impl BlockBuilder {
    /// Short name used in reports, e.g. `"Standard"`.
    pub fn name(&self) -> &'static str {
        match self {
            BlockBuilder::Standard => "Standard",
            BlockBuilder::QGrams { .. } => "Q-Grams",
            BlockBuilder::ExtendedQGrams { .. } => "Extended Q-Grams",
            BlockBuilder::SuffixArrays { .. } => "Suffix Arrays",
            BlockBuilder::ExtendedSuffixArrays { .. } => "Extended Suffix Arrays",
        }
    }

    /// True for the proactive schemes, which bound block sizes during
    /// building and skip the generic block-cleaning steps (Table III).
    pub fn is_proactive(&self) -> bool {
        matches!(
            self,
            BlockBuilder::SuffixArrays { .. } | BlockBuilder::ExtendedSuffixArrays { .. }
        )
    }

    /// Extracts the deduplicated signature hashes of one entity text.
    pub(crate) fn signatures(&self, text: &str, out: &mut FastSet<u64>) {
        out.clear();
        let tokens = tokenize(text);
        match *self {
            BlockBuilder::Standard => {
                out.extend(tokens.iter().map(|t| hash_str(t)));
            }
            BlockBuilder::QGrams { q } => {
                for token in &tokens {
                    out.extend(qgrams(token, q).iter().map(|g| hash_str(g)));
                }
            }
            BlockBuilder::ExtendedQGrams { q, t } => {
                for token in &tokens {
                    out.extend(extended_qgram_keys(token, q, t).iter().map(|k| hash_str(k)));
                }
            }
            BlockBuilder::SuffixArrays { l_min, .. } => {
                for token in &tokens {
                    out.extend(suffixes_min_len(token, l_min).iter().map(|s| hash_str(s)));
                }
            }
            BlockBuilder::ExtendedSuffixArrays { l_min, .. } => {
                for token in &tokens {
                    out.extend(substrings_min_len(token, l_min).iter().map(|s| hash_str(s)));
                }
            }
        }
    }

    /// Builds the block collection for a text view.
    ///
    /// Signatures are deduplicated per entity, so an entity appears at most
    /// once per block. For the proactive schemes, blocks reaching `b_max`
    /// total entities are discarded.
    pub fn build(&self, view: &TextView) -> BlockCollection {
        let mut index: FastMap<u64, Block> = FastMap::default();
        let mut sigs = FastSet::default();
        for (i, text) in view.e1.iter().enumerate() {
            self.signatures(text, &mut sigs);
            for &sig in &sigs {
                index.entry(sig).or_default().left.push(i as u32);
            }
        }
        for (j, text) in view.e2.iter().enumerate() {
            self.signatures(text, &mut sigs);
            for &sig in &sigs {
                index.entry(sig).or_default().right.push(j as u32);
            }
        }

        let b_max = match *self {
            BlockBuilder::SuffixArrays { b_max, .. }
            | BlockBuilder::ExtendedSuffixArrays { b_max, .. } => Some(b_max),
            _ => None,
        };
        // Drain into a deterministic order (sorted by signature hash) so
        // block ids are stable across runs.
        let mut entries: Vec<(u64, Block)> = index.into_iter().collect();
        entries.sort_unstable_by_key(|(sig, _)| *sig);
        let blocks = entries.into_iter().filter_map(|(_, b)| {
            if let Some(b_max) = b_max {
                if b.assignments() >= b_max {
                    return None;
                }
            }
            Some(b)
        });
        BlockCollection::from_blocks(blocks, view.e1.len(), view.e2.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(e1: &[&str], e2: &[&str]) -> TextView {
        TextView {
            e1: e1.iter().map(|s| s.to_string()).collect(),
            e2: e2.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn standard_blocking_groups_by_token() {
        let v = view(&["joe biden", "kamala harris"], &["joe biden jr", "harris"]);
        let bc = BlockBuilder::Standard.build(&v);
        // Valid cross blocks: joe {0}x{0}, biden {0}x{0}, harris {1}x{1}.
        assert_eq!(bc.len(), 3);
        assert_eq!(bc.total_comparisons(), 3);
    }

    #[test]
    fn entity_appears_once_per_block() {
        // "joe joe" must contribute "joe" once.
        let v = view(&["joe joe"], &["joe"]);
        let bc = BlockBuilder::Standard.build(&v);
        assert_eq!(bc.len(), 1);
        assert_eq!(bc.blocks[0].left.len(), 1);
    }

    #[test]
    fn qgrams_blocking_bridges_typos() {
        // "biden" vs "biden" typo "bidan": share the "bid" 3-gram.
        let v = view(&["biden"], &["bidan"]);
        assert_eq!(BlockBuilder::Standard.build(&v).len(), 0);
        let bc = BlockBuilder::QGrams { q: 3 }.build(&v);
        assert!(!bc.is_empty(), "q-grams should bridge the typo");
    }

    #[test]
    fn suffix_arrays_respect_bmax() {
        // Four entities share suffix "den"; with b_max = 4 the block
        // (4 assignments) is discarded, with b_max = 5 it survives.
        let v = view(&["aden", "bden"], &["cden", "dden"]);
        let small = BlockBuilder::SuffixArrays { l_min: 3, b_max: 4 }.build(&v);
        assert_eq!(small.len(), 0);
        let large = BlockBuilder::SuffixArrays { l_min: 3, b_max: 5 }.build(&v);
        assert!(!large.is_empty());
    }

    #[test]
    fn extended_suffix_arrays_superset_of_suffixes() {
        let v = view(&["walmart"], &["kwalmart"]);
        let sa = BlockBuilder::SuffixArrays {
            l_min: 3,
            b_max: 100,
        }
        .build(&v);
        let esa = BlockBuilder::ExtendedSuffixArrays {
            l_min: 3,
            b_max: 100,
        }
        .build(&v);
        assert!(esa.len() >= sa.len());
        assert!(esa.total_comparisons() >= sa.total_comparisons());
    }

    #[test]
    fn block_ids_are_deterministic() {
        let v = view(&["a b c", "b c d"], &["c d e", "a e"]);
        let b1 = BlockBuilder::Standard.build(&v);
        let b2 = BlockBuilder::Standard.build(&v);
        assert_eq!(b1.blocks, b2.blocks);
    }

    #[test]
    fn empty_texts_produce_no_blocks() {
        let v = view(&["", ""], &["anything"]);
        assert!(BlockBuilder::Standard.build(&v).is_empty());
    }

    #[test]
    fn proactive_flag() {
        assert!(BlockBuilder::SuffixArrays {
            l_min: 3,
            b_max: 10
        }
        .is_proactive());
        assert!(!BlockBuilder::QGrams { q: 3 }.is_proactive());
    }
}
