//! Sorted Neighborhood blocking (Hernández & Stolfo, SIGMOD 1995).
//!
//! The paper *evaluated and excluded* this method (§IV-B): it consistently
//! underperforms the five signature-based workflows because its windowed
//! candidates are incompatible with the block- and comparison-cleaning
//! techniques that remove superfluous pairs. We implement it so the
//! exclusion can be verified (see the `ablation_excluded` binary).
//!
//! Mechanics: every entity emits its tokens as sorting keys; the combined
//! key list of both collections is sorted lexicographically; a window of
//! size `w` slides over the sorted list and every cross-collection pair
//! inside a window becomes a candidate.

use er_core::candidates::CandidateSet;
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::schema::TextView;
use er_core::timing::{PhaseBreakdown, Stage};
use er_text::tokenize;

/// A configured Sorted Neighborhood run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortedNeighborhood {
    /// Window size `w ≥ 2`.
    pub window: usize,
}

impl SortedNeighborhood {
    /// One-line configuration description.
    pub fn describe(&self) -> String {
        format!("SortedNeighborhood(w={})", self.window)
    }
}

/// One sorted-list entry: the key and its owner.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    key: String,
    /// False = `E1`, true = `E2`.
    from_e2: bool,
    entity: u32,
}

/// Heap footprint of the sorted entry list, for cache accounting.
fn entry_bytes(entries: &[Entry]) -> usize {
    entries
        .iter()
        .map(|e| std::mem::size_of::<Entry>() + e.key.len())
        .sum()
}

impl Filter for SortedNeighborhood {
    fn name(&self) -> String {
        "SN".to_owned()
    }

    /// The sorted key list is independent of the window size, so every
    /// window sweep shares one artifact.
    fn repr_key(&self) -> String {
        "sn:entries".to_owned()
    }

    fn prepare(&self, view: &TextView) -> Prepared {
        let mut breakdown = PhaseBreakdown::new();
        let entries = breakdown.time_in(Stage::Prepare, "build", || {
            let mut entries = Vec::new();
            for (i, text) in view.e1.iter().enumerate() {
                for key in tokenize(text) {
                    entries.push(Entry {
                        key,
                        from_e2: false,
                        entity: i as u32,
                    });
                }
            }
            for (j, text) in view.e2.iter().enumerate() {
                for key in tokenize(text) {
                    entries.push(Entry {
                        key,
                        from_e2: true,
                        entity: j as u32,
                    });
                }
            }
            entries.sort_unstable();
            entries
        });
        let bytes = entry_bytes(&entries);
        Prepared::new(entries, bytes, breakdown)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        assert!(self.window >= 2, "window must be at least 2");
        let entries = prepared.downcast::<Vec<Entry>>();
        let mut out = FilterOutput::default();
        out.candidates = out.breakdown.time("clean", || {
            let mut candidates = CandidateSet::new();
            if entries.len() < 2 {
                return candidates;
            }
            for (pos, a) in entries.iter().enumerate() {
                let end = (pos + self.window).min(entries.len());
                for b in &entries[pos + 1..end] {
                    match (a.from_e2, b.from_e2) {
                        (false, true) => {
                            candidates.insert_raw(a.entity, b.entity);
                        }
                        (true, false) => {
                            candidates.insert_raw(b.entity, a.entity);
                        }
                        _ => {}
                    }
                }
            }
            candidates
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::candidates::Pair;

    fn view(e1: &[&str], e2: &[&str]) -> TextView {
        TextView {
            e1: e1.iter().map(|s| s.to_string()).collect(),
            e2: e2.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn shared_tokens_land_in_one_window() {
        let v = view(&["zeta alpha"], &["alpha omega"]);
        let out = SortedNeighborhood { window: 2 }.run(&v);
        // The two "alpha" keys are adjacent after sorting.
        assert!(out.candidates.contains(Pair::new(0, 0)));
    }

    #[test]
    fn window_growth_adds_candidates() {
        let v = view(
            &["apple", "banana", "cherry"],
            &["apricot", "blueberry", "coconut"],
        );
        let mut prev = 0;
        for w in [2, 3, 4, 6] {
            let n = SortedNeighborhood { window: w }.run(&v).candidates.len();
            assert!(n >= prev, "w={w}");
            prev = n;
        }
    }

    #[test]
    fn near_keys_pair_even_without_shared_tokens() {
        // Sorted proximity, not token equality, drives SN: "abc" and "abd"
        // sort adjacently.
        let v = view(&["abc"], &["abd"]);
        let out = SortedNeighborhood { window: 2 }.run(&v);
        assert!(out.candidates.contains(Pair::new(0, 0)));
    }

    #[test]
    fn same_collection_pairs_never_emitted() {
        let v = view(&["same word", "same word"], &["other thing"]);
        let out = SortedNeighborhood { window: 4 }.run(&v);
        for p in out.candidates.iter() {
            assert!((p.left as usize) < 2 && (p.right as usize) < 1);
        }
    }

    #[test]
    fn empty_input_yields_nothing() {
        let v = view(&[], &[]);
        assert!(SortedNeighborhood { window: 3 }
            .run(&v)
            .candidates
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_rejected() {
        let v = view(&["a"], &["a"]);
        let _ = SortedNeighborhood { window: 1 }.run(&v);
    }

    #[test]
    fn shared_artifact_matches_cold_runs_across_windows() {
        let v = view(
            &["apple", "banana", "cherry"],
            &["apricot", "blueberry", "coconut"],
        );
        let prepared = SortedNeighborhood { window: 2 }.prepare(&v);
        for w in [2, 3, 4, 6] {
            let sn = SortedNeighborhood { window: w };
            let cold = sn.run(&v);
            let warm = sn.query(&v, &prepared);
            assert_eq!(
                warm.candidates.to_sorted_vec(),
                cold.candidates.to_sorted_vec(),
                "w={w}"
            );
        }
        assert_eq!(
            SortedNeighborhood { window: 2 }.repr_key(),
            SortedNeighborhood { window: 9 }.repr_key()
        );
    }
}
