//! Property-based tests of the blocking pipeline invariants.

#![cfg(test)]

use crate::blocks::{Block, BlockCollection};
use crate::build::BlockBuilder;
use crate::filter::block_filtering;
use crate::metablocking::{BlockingGraph, PruningAlgorithm, WeightingScheme};
use crate::propagation::comparison_propagation;
use crate::purge::block_purging;
use er_core::schema::TextView;
use proptest::prelude::*;

fn arb_collection() -> impl Strategy<Value = BlockCollection> {
    proptest::collection::vec(
        (
            proptest::collection::btree_set(0u32..12, 1..5),
            proptest::collection::btree_set(0u32..12, 1..5),
        ),
        1..10,
    )
    .prop_map(|blocks| {
        BlockCollection::from_blocks(
            blocks.into_iter().map(|(l, r)| Block {
                left: l.into_iter().collect(),
                right: r.into_iter().collect(),
            }),
            12,
            12,
        )
    })
}

fn arb_view() -> impl Strategy<Value = TextView> {
    (
        proptest::collection::vec("[a-d]{1,6}( [a-d]{1,6}){0,3}", 1..6),
        proptest::collection::vec("[a-d]{1,6}( [a-d]{1,6}){0,3}", 1..6),
    )
        .prop_map(|(e1, e2)| TextView::new(e1, e2))
}

proptest! {
    /// Purging and filtering never add blocks, comparisons or assignments.
    #[test]
    fn cleaning_steps_shrink(bc in arb_collection(), r in 0.05f64..1.0) {
        let purged = block_purging(&bc);
        prop_assert!(purged.len() <= bc.len());
        prop_assert!(purged.total_comparisons() <= bc.total_comparisons());
        let filtered = block_filtering(&bc, r);
        prop_assert!(filtered.total_comparisons() <= bc.total_comparisons());
        prop_assert!(filtered.total_assignments() <= bc.total_assignments());
    }

    /// Block filtering keeps every participating entity in at least one
    /// block (the max(1, ...) guarantee).
    #[test]
    fn filtering_preserves_entity_participation(bc in arb_collection(), r in 0.05f64..1.0) {
        let (before_l, before_r) = bc.entity_index();
        let filtered = block_filtering(&bc, r);
        let (after_l, after_r) = filtered.entity_index();
        for e in 0..bc.n1 {
            if !before_l[e].is_empty() {
                // The entity may end up only in blocks whose other side got
                // emptied; participation in the *assignment* sense is
                // preserved before invalid-block dropping, so check it kept
                // at least one assignment OR all its blocks became invalid.
                let kept = !after_l[e].is_empty();
                let all_invalid =
                    filtered.blocks.iter().all(|b| !b.left.contains(&(e as u32)));
                prop_assert!(kept || all_invalid);
            }
            let _ = &after_r;
            let _ = &before_r;
        }
    }

    /// Every meta-blocking configuration returns a subset of Comparison
    /// Propagation's output and never invents pairs.
    #[test]
    fn metablocking_subset_of_propagation(bc in arb_collection()) {
        let superset = comparison_propagation(&bc);
        let graph = BlockingGraph::build(&bc);
        for scheme in WeightingScheme::ALL {
            let edges = graph.weighted_edges(scheme);
            prop_assert_eq!(edges.len(), superset.len());
            for e in &edges {
                prop_assert!(e.weight.is_finite() && e.weight >= 0.0,
                    "{:?} weight {}", scheme, e.weight);
            }
            for pruning in PruningAlgorithm::ALL {
                let kept = graph.prune(&edges, pruning);
                prop_assert!(kept.len() <= superset.len());
                for p in kept.iter() {
                    prop_assert!(superset.contains(p));
                }
            }
        }
    }

    /// Reciprocal pruning variants are subsets of their one-sided forms.
    #[test]
    fn reciprocal_subset(bc in arb_collection()) {
        let graph = BlockingGraph::build(&bc);
        let edges = graph.weighted_edges(WeightingScheme::Js);
        let wnp = graph.prune(&edges, PruningAlgorithm::Wnp);
        for p in graph.prune(&edges, PruningAlgorithm::Rwnp).iter() {
            prop_assert!(wnp.contains(p));
        }
        let cnp = graph.prune(&edges, PruningAlgorithm::Cnp);
        for p in graph.prune(&edges, PruningAlgorithm::Rcnp).iter() {
            prop_assert!(cnp.contains(p));
        }
    }

    /// Builders are deterministic and their blocks only contain valid ids.
    #[test]
    fn builders_deterministic_and_in_bounds(view in arb_view()) {
        for builder in [
            BlockBuilder::Standard,
            BlockBuilder::QGrams { q: 2 },
            BlockBuilder::SuffixArrays { l_min: 2, b_max: 50 },
        ] {
            let a = builder.build(&view);
            let b = builder.build(&view);
            prop_assert_eq!(&a.blocks, &b.blocks);
            for block in &a.blocks {
                prop_assert!(block.left.iter().all(|&e| (e as usize) < view.e1.len()));
                prop_assert!(block.right.iter().all(|&e| (e as usize) < view.e2.len()));
            }
        }
    }

    /// Identical texts always end up in a common block under Standard
    /// Blocking (recall guarantee for exact duplicates).
    #[test]
    fn standard_blocking_catches_exact_duplicates(text in "[a-d]{1,6}( [a-d]{1,6}){0,2}") {
        let view = TextView::new(vec![text.clone()], vec![text]);
        let blocks = BlockBuilder::Standard.build(&view);
        let c = comparison_propagation(&blocks);
        prop_assert!(c.contains(er_core::candidates::Pair::new(0, 0)));
    }
}
