//! Meta-blocking (paper §IV-B; Papadakis et al., TKDE 2014; Simonini et
//! al., VLDB 2016 for BLAST).
//!
//! Meta-blocking restructures a block collection by building the *blocking
//! graph*: one node per entity, one edge per non-redundant candidate pair,
//! weighted by co-occurrence evidence. A weighting scheme scores each edge
//! (the more and the smaller the blocks two entities share, the likelier
//! they match) and a pruning algorithm keeps the strong edges, discarding
//! redundant *and* superfluous comparisons.

use crate::blocks::BlockCollection;
use er_core::candidates::{CandidateSet, Pair};
use er_core::hash::{FastMap, FastSet};
use er_core::parallel::{self, Threads};

/// Edge weighting schemes (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightingScheme {
    /// Aggregate Reciprocal Comparisons: `Σ_{b ∈ Bᵢ∩Bⱼ} 1/‖b‖` — promotes
    /// pairs sharing smaller blocks.
    Arcs,
    /// Common Blocks Scheme: `|Bᵢ ∩ Bⱼ|`.
    Cbs,
    /// Enhanced CBS: CBS discounted by per-entity block participation,
    /// `CBS · ln(|B|/|Bᵢ|) · ln(|B|/|Bⱼ|)`.
    Ecbs,
    /// Jaccard Scheme over block-id lists.
    Js,
    /// Enhanced JS: JS discounted by node degree,
    /// `JS · ln(|V|/vᵢ) · ln(|V|/vⱼ)`.
    Ejs,
    /// Pearson χ² test of independence of the entities' block appearances.
    ChiSquared,
}

impl WeightingScheme {
    /// All six schemes, in the paper's order.
    pub const ALL: [WeightingScheme; 6] = [
        WeightingScheme::Arcs,
        WeightingScheme::Cbs,
        WeightingScheme::Ecbs,
        WeightingScheme::Js,
        WeightingScheme::Ejs,
        WeightingScheme::ChiSquared,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            WeightingScheme::Arcs => "ARCS",
            WeightingScheme::Cbs => "CBS",
            WeightingScheme::Ecbs => "ECBS",
            WeightingScheme::Js => "JS",
            WeightingScheme::Ejs => "EJS",
            WeightingScheme::ChiSquared => "X2",
        }
    }
}

/// Pruning algorithms (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruningAlgorithm {
    /// Keep an edge if its weight reaches a fraction
    /// [`BLAST_RATIO`] of the average of its endpoints' maximum weights.
    Blast,
    /// Cardinality Edge Pruning: keep the global top-K edges,
    /// `K = ⌊BC/2⌋` with `BC` the total block assignments.
    Cep,
    /// Cardinality Node Pruning: keep edges ranked in the top-k of either
    /// endpoint, `k = max(1, round(BC/|V|) − 1)`.
    Cnp,
    /// Reciprocal CNP: top-k of *both* endpoints.
    Rcnp,
    /// Weighted Edge Pruning: keep edges at or above the global mean weight.
    Wep,
    /// Weighted Node Pruning: at or above the mean of either endpoint's
    /// neighborhood.
    Wnp,
    /// Reciprocal WNP: at or above the mean of both endpoints.
    Rwnp,
}

impl PruningAlgorithm {
    /// All seven algorithms, in the paper's order.
    pub const ALL: [PruningAlgorithm; 7] = [
        PruningAlgorithm::Blast,
        PruningAlgorithm::Cep,
        PruningAlgorithm::Cnp,
        PruningAlgorithm::Rcnp,
        PruningAlgorithm::Wep,
        PruningAlgorithm::Wnp,
        PruningAlgorithm::Rwnp,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            PruningAlgorithm::Blast => "BLAST",
            PruningAlgorithm::Cep => "CEP",
            PruningAlgorithm::Cnp => "CNP",
            PruningAlgorithm::Rcnp => "RCNP",
            PruningAlgorithm::Wep => "WEP",
            PruningAlgorithm::Wnp => "WNP",
            PruningAlgorithm::Rwnp => "RWNP",
        }
    }
}

/// BLAST's weight-threshold ratio `c` in `w ≥ c · (maxᵢ + maxⱼ)/2`
/// (Simonini et al. use 0.35).
pub const BLAST_RATIO: f64 = 0.35;

/// A configured meta-blocking step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaBlocking {
    /// Edge weighting scheme.
    pub scheme: WeightingScheme,
    /// Edge pruning algorithm.
    pub pruning: PruningAlgorithm,
}

/// A weighted edge of the blocking graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// The candidate pair.
    pub pair: Pair,
    /// The matching-likelihood weight under some scheme.
    pub weight: f64,
}

/// The blocking graph: the deduplicated candidate pairs of a block
/// collection together with the per-pair and per-entity statistics every
/// weighting scheme reads.
///
/// Building the graph costs one pass over all (redundant) comparisons;
/// afterwards [`BlockingGraph::weighted_edges`] is a cheap map per scheme
/// and [`BlockingGraph::prune`] a cheap pass per pruning algorithm — so the
/// 42 Meta-blocking configurations of the Table III grid share one
/// accumulation pass.
#[derive(Debug, Clone)]
pub struct BlockingGraph {
    n1: usize,
    n2: usize,
    total_assignments: u64,
    /// Per-pair `(pair, CBS, ARCS)` sorted by pair key for determinism.
    pairs: Vec<(Pair, u32, f64)>,
    blocks_left: Vec<u32>,
    blocks_right: Vec<u32>,
    deg_left: Vec<u32>,
    deg_right: Vec<u32>,
    total_blocks: f64,
    total_entities: f64,
}

impl BlockingGraph {
    /// Accumulates the graph from a block collection.
    pub fn build(blocks: &BlockCollection) -> Self {
        #[derive(Default, Clone, Copy)]
        struct Acc {
            cbs: u32,
            arcs: f64,
        }
        let mut accs: FastMap<u64, Acc> = FastMap::default();
        for block in &blocks.blocks {
            let inv = 1.0 / block.comparisons() as f64;
            for &l in &block.left {
                for &r in &block.right {
                    let acc = accs.entry(Pair::new(l, r).key()).or_default();
                    acc.cbs += 1;
                    acc.arcs += inv;
                }
            }
        }

        // Per-entity block counts |Bi|.
        let mut blocks_left = vec![0u32; blocks.n1];
        let mut blocks_right = vec![0u32; blocks.n2];
        for block in &blocks.blocks {
            for &l in &block.left {
                blocks_left[l as usize] += 1;
            }
            for &r in &block.right {
                blocks_right[r as usize] += 1;
            }
        }

        let mut pairs: Vec<(Pair, u32, f64)> = accs
            .into_iter()
            .map(|(key, acc)| (Pair::from_key(key), acc.cbs, acc.arcs))
            .collect();
        pairs.sort_unstable_by_key(|(p, _, _)| p.key());

        // Node degrees vᵢ (distinct partners) for EJS.
        let mut deg_left = vec![0u32; blocks.n1];
        let mut deg_right = vec![0u32; blocks.n2];
        for &(p, _, _) in &pairs {
            deg_left[p.left as usize] += 1;
            deg_right[p.right as usize] += 1;
        }

        let participating = blocks_left.iter().filter(|&&c| c > 0).count()
            + blocks_right.iter().filter(|&&c| c > 0).count();
        Self {
            n1: blocks.n1,
            n2: blocks.n2,
            total_assignments: blocks.total_assignments(),
            pairs,
            blocks_left,
            blocks_right,
            deg_left,
            deg_right,
            total_blocks: blocks.len().max(1) as f64,
            total_entities: participating.max(1) as f64,
        }
    }

    /// True if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Weight of one `(pair, CBS, ARCS)` record under `scheme` — a pure
    /// function of the graph statistics, shared by the serial and
    /// parallel scoring paths.
    fn edge_weight(&self, pair: Pair, cbs_count: u32, arcs: f64, scheme: WeightingScheme) -> f64 {
        let bi = f64::from(self.blocks_left[pair.left as usize]);
        let bj = f64::from(self.blocks_right[pair.right as usize]);
        let cbs = f64::from(cbs_count);
        match scheme {
            WeightingScheme::Arcs => arcs,
            WeightingScheme::Cbs => cbs,
            WeightingScheme::Ecbs => {
                cbs * (self.total_blocks / bi).ln().max(0.0)
                    * (self.total_blocks / bj).ln().max(0.0)
            }
            WeightingScheme::Js => cbs / (bi + bj - cbs),
            WeightingScheme::Ejs => {
                let js = cbs / (bi + bj - cbs);
                let vi = f64::from(self.deg_left[pair.left as usize]).max(1.0);
                let vj = f64::from(self.deg_right[pair.right as usize]).max(1.0);
                js * (self.total_entities / vi).ln().max(0.0)
                    * (self.total_entities / vj).ln().max(0.0)
            }
            WeightingScheme::ChiSquared => chi_squared(cbs, bi, bj, self.total_blocks),
        }
    }

    /// Scores every edge under a weighting scheme (sorted by pair key),
    /// using the global [`Threads`] worker count.
    pub fn weighted_edges(&self, scheme: WeightingScheme) -> Vec<Edge> {
        self.weighted_edges_with(Threads::get(), scheme)
    }

    /// [`BlockingGraph::weighted_edges`] over an explicit worker count.
    ///
    /// Each edge's weight depends only on the shared graph statistics, so
    /// the pair-key-ordered partitions are scored independently and
    /// concatenated back in entity-id order: the output is identical for
    /// every `threads`.
    pub fn weighted_edges_with(&self, threads: usize, scheme: WeightingScheme) -> Vec<Edge> {
        parallel::par_map_with(threads, &self.pairs, |&(pair, cbs_count, arcs)| Edge {
            pair,
            weight: self.edge_weight(pair, cbs_count, arcs, scheme),
        })
    }

    /// Applies a pruning algorithm to scored edges, using the global
    /// [`Threads`] worker count.
    pub fn prune(&self, edges: &[Edge], pruning: PruningAlgorithm) -> CandidateSet {
        self.prune_with(Threads::get(), edges, pruning)
    }

    /// [`BlockingGraph::prune`] over an explicit worker count.
    ///
    /// Thresholds (global or per-node means, maxima, top-k ranks) are
    /// reduced with fixed chunk layouts and fixed merge order, and the
    /// keep/drop filter runs over pair-key-ordered partitions merged in
    /// entity-id order — the retained candidate set is identical for
    /// every `threads`.
    pub fn prune_with(
        &self,
        threads: usize,
        edges: &[Edge],
        pruning: PruningAlgorithm,
    ) -> CandidateSet {
        if edges.is_empty() {
            return CandidateSet::new();
        }
        match pruning {
            PruningAlgorithm::Wep => prune_wep(threads, edges),
            PruningAlgorithm::Cep => prune_cep(threads, edges, self.total_assignments),
            PruningAlgorithm::Blast => {
                prune_node_weight(threads, edges, self.n1, self.n2, NodeRule::Blast)
            }
            PruningAlgorithm::Wnp => {
                prune_node_weight(threads, edges, self.n1, self.n2, NodeRule::MeanAny)
            }
            PruningAlgorithm::Rwnp => {
                prune_node_weight(threads, edges, self.n1, self.n2, NodeRule::MeanBoth)
            }
            PruningAlgorithm::Cnp => prune_node_topk(
                threads,
                edges,
                self.n1,
                self.n2,
                self.total_assignments,
                false,
            ),
            PruningAlgorithm::Rcnp => prune_node_topk(
                threads,
                edges,
                self.n1,
                self.n2,
                self.total_assignments,
                true,
            ),
        }
    }
}

impl MetaBlocking {
    /// Restructures `blocks` and returns the retained candidate pairs.
    pub fn clean(&self, blocks: &BlockCollection) -> CandidateSet {
        let graph = BlockingGraph::build(blocks);
        let edges = graph.weighted_edges(self.scheme);
        graph.prune(&edges, self.pruning)
    }
}

/// Pearson χ² statistic of the 2×2 contingency table of two entities'
/// appearances across `n` blocks: `n11 = CBS`, margins `|Bᵢ|` and `|Bⱼ|`.
fn chi_squared(n11: f64, bi: f64, bj: f64, n: f64) -> f64 {
    let n10 = bi - n11;
    let n01 = bj - n11;
    let n00 = n - bi - bj + n11;
    let denom = bi * bj * (n - bi) * (n - bj);
    if denom <= 0.0 {
        // An entity appearing in every block carries no signal.
        return 0.0;
    }
    let num = n11 * n00 - n10 * n01;
    (n * num * num / denom).max(0.0)
}

/// Parallel keep/drop filter over pair-key-ordered edge partitions; the
/// per-chunk survivors are concatenated in chunk (= entity-id) order, so
/// the result is independent of the worker count.
fn collect_filtered(
    threads: usize,
    edges: &[Edge],
    keep: impl Fn(usize, &Edge) -> bool + Sync,
) -> CandidateSet {
    let chunk = parallel::chunk_len(edges.len());
    let kept = parallel::par_map_chunks_with(threads, edges, chunk, |offset, part| {
        part.iter()
            .enumerate()
            .filter(|&(j, e)| keep(offset + j, e))
            .map(|(_, e)| e.pair)
            .collect::<Vec<Pair>>()
    });
    kept.into_iter().flatten().collect()
}

fn prune_wep(threads: usize, edges: &[Edge]) -> CandidateSet {
    // Fixed chunk layout + left-to-right merge keep the f64 mean
    // bit-identical for every thread count.
    let sum = parallel::par_reduce_with(threads, edges, || 0.0, |a, e| a + e.weight, |a, b| a + b);
    let mean = sum / edges.len() as f64;
    collect_filtered(threads, edges, |_, e| e.weight >= mean)
}

fn prune_cep(threads: usize, edges: &[Edge], total_assignments: u64) -> CandidateSet {
    let k = ((total_assignments / 2) as usize).max(1);
    if edges.len() <= k {
        return edges.iter().map(|e| e.pair).collect();
    }
    let mut order: Vec<usize> = (0..edges.len()).collect();
    // Descending weight; ties by pair key for determinism.
    order.sort_unstable_by(|&a, &b| {
        edges[b]
            .weight
            .partial_cmp(&edges[a].weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| edges[a].pair.key().cmp(&edges[b].pair.key()))
    });
    order.truncate(k);
    parallel::par_map_with(threads, &order, |&i| edges[i].pair)
        .into_iter()
        .collect()
}

/// Node-neighborhood threshold rules shared by BLAST / WNP / RWNP.
#[derive(Clone, Copy)]
enum NodeRule {
    Blast,
    MeanAny,
    MeanBoth,
}

fn prune_node_weight(
    threads: usize,
    edges: &[Edge],
    n1: usize,
    n2: usize,
    rule: NodeRule,
) -> CandidateSet {
    // Per-entity accumulation stays serial — it is one cheap O(E) pass and
    // keeping the edge-order accumulation makes the thresholds trivially
    // thread-count-independent. The keep/drop pass parallelizes.
    let mut sum_l = vec![0.0f64; n1];
    let mut cnt_l = vec![0u32; n1];
    let mut max_l = vec![0.0f64; n1];
    let mut sum_r = vec![0.0f64; n2];
    let mut cnt_r = vec![0u32; n2];
    let mut max_r = vec![0.0f64; n2];
    for e in edges {
        let l = e.pair.left as usize;
        let r = e.pair.right as usize;
        sum_l[l] += e.weight;
        cnt_l[l] += 1;
        max_l[l] = max_l[l].max(e.weight);
        sum_r[r] += e.weight;
        cnt_r[r] += 1;
        max_r[r] = max_r[r].max(e.weight);
    }
    collect_filtered(threads, edges, |_, e| {
        let l = e.pair.left as usize;
        let r = e.pair.right as usize;
        let mean_l = sum_l[l] / f64::from(cnt_l[l].max(1));
        let mean_r = sum_r[r] / f64::from(cnt_r[r].max(1));
        match rule {
            NodeRule::Blast => e.weight >= BLAST_RATIO * (max_l[l] + max_r[r]) / 2.0,
            NodeRule::MeanAny => e.weight >= mean_l || e.weight >= mean_r,
            NodeRule::MeanBoth => e.weight >= mean_l && e.weight >= mean_r,
        }
    })
}

fn prune_node_topk(
    threads: usize,
    edges: &[Edge],
    n1: usize,
    n2: usize,
    total_assignments: u64,
    reciprocal: bool,
) -> CandidateSet {
    let bc = total_assignments as f64;
    let v = (n1 + n2).max(1) as f64;
    let k = (((bc / v).round() as i64) - 1).max(1) as usize;

    // Group edge indices per node.
    let mut by_left: Vec<Vec<u32>> = vec![Vec::new(); n1];
    let mut by_right: Vec<Vec<u32>> = vec![Vec::new(); n2];
    for (i, e) in edges.iter().enumerate() {
        by_left[e.pair.left as usize].push(i as u32);
        by_right[e.pair.right as usize].push(i as u32);
    }

    // Each node's neighborhood ranks independently; nodes are processed
    // in parallel and the survivors merged in node order.
    let top_k = |groups: Vec<Vec<u32>>| -> FastSet<u32> {
        let ranked = parallel::par_map_with(threads, &groups, |group| {
            if group.len() <= k {
                return group.clone();
            }
            let mut group = group.clone();
            group.sort_unstable_by(|&a, &b| {
                edges[b as usize]
                    .weight
                    .partial_cmp(&edges[a as usize].weight)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        edges[a as usize]
                            .pair
                            .key()
                            .cmp(&edges[b as usize].pair.key())
                    })
            });
            group.truncate(k);
            group
        });
        let mut kept = FastSet::default();
        for group in ranked {
            kept.extend(group);
        }
        kept
    };
    let kept_left = top_k(by_left);
    let kept_right = top_k(by_right);

    collect_filtered(threads, edges, |i, _| {
        let i = i as u32;
        if reciprocal {
            kept_left.contains(&i) && kept_right.contains(&i)
        } else {
            kept_left.contains(&i) || kept_right.contains(&i)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::Block;

    /// Two blocks: {0,1} x {0} and {0} x {0,1}. Pair (0,0) co-occurs twice.
    fn two_blocks() -> BlockCollection {
        BlockCollection::from_blocks(
            [
                Block {
                    left: vec![0, 1],
                    right: vec![0],
                },
                Block {
                    left: vec![0],
                    right: vec![0, 1],
                },
            ],
            2,
            2,
        )
    }

    fn weights(scheme: WeightingScheme, blocks: &BlockCollection) -> FastMap<u64, f64> {
        BlockingGraph::build(blocks)
            .weighted_edges(scheme)
            .into_iter()
            .map(|e| (e.pair.key(), e.weight))
            .collect()
    }

    #[test]
    fn cbs_counts_common_blocks() {
        let w = weights(WeightingScheme::Cbs, &two_blocks());
        assert_eq!(w[&Pair::new(0, 0).key()], 2.0);
        assert_eq!(w[&Pair::new(1, 0).key()], 1.0);
        assert_eq!(w[&Pair::new(0, 1).key()], 1.0);
    }

    #[test]
    fn arcs_sums_reciprocal_block_sizes() {
        // Both blocks have 2 comparisons -> ARCS(0,0) = 1/2 + 1/2 = 1.
        let w = weights(WeightingScheme::Arcs, &two_blocks());
        assert!((w[&Pair::new(0, 0).key()] - 1.0).abs() < 1e-12);
        assert!((w[&Pair::new(1, 0).key()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn js_is_jaccard_of_block_lists() {
        // |B0_left| = 2, |B0_right| = 2, common = 2 -> JS = 2/(2+2-2) = 1.
        let w = weights(WeightingScheme::Js, &two_blocks());
        assert!((w[&Pair::new(0, 0).key()] - 1.0).abs() < 1e-12);
        // (1,0): |B1_left| = 1, |B0_right| = 2, common = 1 -> 1/2.
        assert!((w[&Pair::new(1, 0).key()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ecbs_discounts_promiscuous_entities() {
        // Add many blocks containing left entity 1 so its ECBS drops.
        let mut blocks = two_blocks().blocks;
        for extra_right in 2..8u32 {
            blocks.push(Block {
                left: vec![1],
                right: vec![extra_right],
            });
        }
        let bc = BlockCollection::from_blocks(blocks, 2, 8);
        let w = weights(WeightingScheme::Ecbs, &bc);
        // (0,0) has CBS 2 and rare endpoints; (1,0) has CBS 1 and a
        // promiscuous left endpoint -> strictly smaller weight.
        assert!(w[&Pair::new(0, 0).key()] > w[&Pair::new(1, 0).key()]);
    }

    #[test]
    fn chi_squared_zero_for_full_coverage() {
        // Entity in every block -> no signal.
        assert_eq!(chi_squared(2.0, 2.0, 2.0, 2.0), 0.0);
        // Independence: n11 * n00 == n10 * n01 -> 0.
        assert_eq!(chi_squared(1.0, 2.0, 2.0, 4.0), 0.0);
        // Strong positive association.
        assert!(chi_squared(2.0, 2.0, 2.0, 10.0) > 0.0);
    }

    #[test]
    fn ejs_weights_finite_and_positive() {
        let w = weights(WeightingScheme::Ejs, &two_blocks());
        for (_, v) in w {
            assert!(v.is_finite() && v >= 0.0);
        }
    }

    #[test]
    fn wep_keeps_above_mean() {
        let mb = MetaBlocking {
            scheme: WeightingScheme::Cbs,
            pruning: PruningAlgorithm::Wep,
        };
        let c = mb.clean(&two_blocks());
        // Weights: 2, 1, 1 -> mean 4/3 -> only (0,0) survives.
        assert_eq!(c.len(), 1);
        assert!(c.contains(Pair::new(0, 0)));
    }

    #[test]
    fn reciprocal_variants_are_subsets() {
        let bc = two_blocks();
        for scheme in WeightingScheme::ALL {
            let wnp = MetaBlocking {
                scheme,
                pruning: PruningAlgorithm::Wnp,
            }
            .clean(&bc);
            let rwnp = MetaBlocking {
                scheme,
                pruning: PruningAlgorithm::Rwnp,
            }
            .clean(&bc);
            for p in rwnp.iter() {
                assert!(wnp.contains(p), "{scheme:?}: RWNP ⊄ WNP");
            }
            let cnp = MetaBlocking {
                scheme,
                pruning: PruningAlgorithm::Cnp,
            }
            .clean(&bc);
            let rcnp = MetaBlocking {
                scheme,
                pruning: PruningAlgorithm::Rcnp,
            }
            .clean(&bc);
            for p in rcnp.iter() {
                assert!(cnp.contains(p), "{scheme:?}: RCNP ⊄ CNP");
            }
        }
    }

    #[test]
    fn cep_keeps_global_top_k() {
        // BC = 6 -> K = 3; all three edges fit.
        let mb = MetaBlocking {
            scheme: WeightingScheme::Cbs,
            pruning: PruningAlgorithm::Cep,
        };
        assert_eq!(mb.clean(&two_blocks()).len(), 3);
        // With a larger graph, K caps the output.
        let mut blocks = Vec::new();
        for i in 0..10u32 {
            blocks.push(Block {
                left: vec![i],
                right: (0..10).collect(),
            });
        }
        let bc = BlockCollection::from_blocks(blocks, 10, 10);
        let out = mb.clean(&bc);
        let k = (bc.total_assignments() / 2) as usize;
        assert_eq!(out.len(), k.min(100));
    }

    #[test]
    fn output_is_redundancy_free_and_subset() {
        let bc = two_blocks();
        let all = crate::propagation::comparison_propagation(&bc);
        for scheme in WeightingScheme::ALL {
            for pruning in PruningAlgorithm::ALL {
                let out = MetaBlocking { scheme, pruning }.clean(&bc);
                assert!(
                    out.len() <= all.len(),
                    "{scheme:?}/{pruning:?} grew candidates"
                );
                for p in out.iter() {
                    assert!(all.contains(p), "{scheme:?}/{pruning:?} invented a pair");
                }
            }
        }
    }

    #[test]
    fn empty_blocks_yield_empty_candidates() {
        let bc = BlockCollection::from_blocks([], 3, 3);
        let mb = MetaBlocking {
            scheme: WeightingScheme::Arcs,
            pruning: PruningAlgorithm::Blast,
        };
        assert!(mb.clean(&bc).is_empty());
    }

    #[test]
    fn weighting_and_pruning_are_thread_count_invariant() {
        // A few hundred edges so the work actually spans multiple chunks.
        let mut blocks = Vec::new();
        for i in 0..40u32 {
            blocks.push(Block {
                left: (i..(i + 5).min(40)).collect(),
                right: ((i / 2)..((i / 2) + 7).min(40)).collect(),
            });
        }
        let bc = BlockCollection::from_blocks(blocks, 40, 40);
        let graph = BlockingGraph::build(&bc);
        for scheme in WeightingScheme::ALL {
            let serial_edges = graph.weighted_edges_with(1, scheme);
            for threads in [2, 3, 8] {
                let par_edges = graph.weighted_edges_with(threads, scheme);
                assert_eq!(serial_edges.len(), par_edges.len());
                for (a, b) in serial_edges.iter().zip(&par_edges) {
                    assert_eq!(a.pair, b.pair, "{scheme:?} order differs");
                    assert_eq!(
                        a.weight.to_bits(),
                        b.weight.to_bits(),
                        "{scheme:?} weight differs at {:?}",
                        a.pair
                    );
                }
            }
            for pruning in PruningAlgorithm::ALL {
                let serial = graph.prune_with(1, &serial_edges, pruning).to_sorted_vec();
                for threads in [2, 3, 8] {
                    let par = graph
                        .prune_with(threads, &serial_edges, pruning)
                        .to_sorted_vec();
                    assert_eq!(
                        serial, par,
                        "{scheme:?}/{pruning:?} differs at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn cleaning_is_deterministic() {
        let bc = two_blocks();
        for scheme in WeightingScheme::ALL {
            for pruning in PruningAlgorithm::ALL {
                let a = MetaBlocking { scheme, pruning }.clean(&bc).to_sorted_vec();
                let b = MetaBlocking { scheme, pruning }.clean(&bc).to_sorted_vec();
                assert_eq!(a, b, "{scheme:?}/{pruning:?} nondeterministic");
            }
        }
    }
}
