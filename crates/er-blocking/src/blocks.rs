//! Block collections for Clean-Clean ER.
//!
//! A block groups entities sharing a signature. In Clean-Clean ER a block
//! has two sides — the `E1` members and the `E2` members — and contributes
//! only *cross* comparisons: `‖b‖ = |b ∩ E1| · |b ∩ E2|`. Blocks with an
//! empty side yield no comparisons and are dropped at construction.

/// One block: the `E1` and `E2` entities sharing a signature.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Block {
    /// Indices into `E1`.
    pub left: Vec<u32>,
    /// Indices into `E2`.
    pub right: Vec<u32>,
}

impl Block {
    /// Number of cross comparisons `‖b‖` the block contributes.
    #[inline]
    pub fn comparisons(&self) -> u64 {
        self.left.len() as u64 * self.right.len() as u64
    }

    /// Total entity participations (block "assignments") of this block.
    #[inline]
    pub fn assignments(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// True if the block yields at least one comparison.
    #[inline]
    pub fn is_valid(&self) -> bool {
        !self.left.is_empty() && !self.right.is_empty()
    }
}

/// An ordered collection of valid blocks.
///
/// Block ids are positions in [`BlockCollection::blocks`]; Comparison
/// Propagation's "least common block id" rule relies on this ordering being
/// stable across the pipeline.
#[derive(Debug, Clone, Default)]
pub struct BlockCollection {
    /// The blocks, all [`Block::is_valid`].
    pub blocks: Vec<Block>,
    /// Number of entities in `E1` (fixed by the input collections).
    pub n1: usize,
    /// Number of entities in `E2`.
    pub n2: usize,
}

impl BlockCollection {
    /// Creates a collection from raw blocks, dropping invalid ones.
    pub fn from_blocks(blocks: impl IntoIterator<Item = Block>, n1: usize, n2: usize) -> Self {
        Self {
            blocks: blocks.into_iter().filter(Block::is_valid).collect(),
            n1,
            n2,
        }
    }

    /// Number of blocks `|B|`.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks remain.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Aggregate (possibly redundant) comparisons `Σ_b ‖b‖`.
    pub fn total_comparisons(&self) -> u64 {
        self.blocks.iter().map(Block::comparisons).sum()
    }

    /// Aggregate block assignments `BC = Σ_b (|b∩E1| + |b∩E2|)`.
    pub fn total_assignments(&self) -> u64 {
        self.blocks.iter().map(|b| b.assignments() as u64).sum()
    }

    /// Per-entity block lists: `(blocks_of_e1[i], blocks_of_e2[j])`, each a
    /// list of block ids in ascending order.
    pub fn entity_index(&self) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let mut left = vec![Vec::new(); self.n1];
        let mut right = vec![Vec::new(); self.n2];
        for (bid, block) in self.blocks.iter().enumerate() {
            let bid = bid as u32;
            for &e in &block.left {
                left[e as usize].push(bid);
            }
            for &e in &block.right {
                right[e as usize].push(bid);
            }
        }
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(left: &[u32], right: &[u32]) -> Block {
        Block {
            left: left.to_vec(),
            right: right.to_vec(),
        }
    }

    #[test]
    fn comparisons_are_cross_products() {
        assert_eq!(block(&[0, 1], &[0, 1, 2]).comparisons(), 6);
        assert_eq!(block(&[0], &[]).comparisons(), 0);
    }

    #[test]
    fn invalid_blocks_dropped_at_construction() {
        let bc = BlockCollection::from_blocks(
            [block(&[0], &[1]), block(&[2], &[]), block(&[], &[3])],
            3,
            4,
        );
        assert_eq!(bc.len(), 1);
        assert_eq!(bc.total_comparisons(), 1);
    }

    #[test]
    fn totals_accumulate() {
        let bc = BlockCollection::from_blocks([block(&[0, 1], &[0]), block(&[1], &[1, 2])], 2, 3);
        assert_eq!(bc.total_comparisons(), 2 + 2);
        assert_eq!(bc.total_assignments(), 3 + 3);
    }

    #[test]
    fn entity_index_maps_blocks() {
        let bc = BlockCollection::from_blocks([block(&[0, 1], &[0]), block(&[1], &[0, 2])], 2, 3);
        let (left, right) = bc.entity_index();
        assert_eq!(left[0], vec![0]);
        assert_eq!(left[1], vec![0, 1]);
        assert_eq!(right[0], vec![0, 1]);
        assert!(right[1].is_empty());
        assert_eq!(right[2], vec![1]);
    }
}
