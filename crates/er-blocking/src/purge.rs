//! Block Purging (paper §IV-B; Papadakis et al., TKDE 2013).
//!
//! A parameter-free block-cleaning step: the larger a block is, the less
//! likely it is to convey matching pairs that share no other block — huge
//! blocks emanate from stop-word-like signatures. Purging removes the
//! largest blocks to raise precision at negligible recall cost.
//!
//! The threshold is derived from the data. Scanning distinct block
//! cardinalities in ascending order we track the cumulative comparisons `CC`
//! and cumulative block assignments `BC`; the ratio `CC/BC` (comparisons
//! bought per entity participation) stays nearly flat while blocks are
//! informative and jumps when oversized blocks start dominating. The purging
//! threshold is the last cardinality before the first jump beyond a
//! smoothing factor. A guard additionally drops any block covering at least
//! half of either input collection (the paper's illustrative criterion).

use crate::blocks::BlockCollection;

/// Multiplicative tolerance on the `CC/BC` ratio increase; jumps beyond it
/// mark the purging threshold. Matches the smoothing JedAI applies.
const SMOOTHING: f64 = 1.025;

/// Applies Block Purging, returning the retained collection.
pub fn block_purging(input: &BlockCollection) -> BlockCollection {
    if input.blocks.len() < 2 {
        return input.clone();
    }

    // Distinct cardinalities ascending with cumulative stats.
    let mut sizes: Vec<(u64, u64)> = input
        .blocks
        .iter()
        .map(|b| (b.comparisons(), b.assignments() as u64))
        .collect();
    sizes.sort_unstable();

    let mut levels: Vec<(u64, f64)> = Vec::new(); // (cardinality, CC/BC)
    let mut cc = 0u64;
    let mut bc = 0u64;
    let mut i = 0;
    while i < sizes.len() {
        let cardinality = sizes[i].0;
        while i < sizes.len() && sizes[i].0 == cardinality {
            cc += sizes[i].0;
            bc += sizes[i].1;
            i += 1;
        }
        levels.push((cardinality, cc as f64 / bc as f64));
    }

    // Scan from the largest cardinality down: a top level is purged when
    // including it inflates the cumulative comparisons-per-assignment
    // ratio by more than the smoothing factor — i.e. the level buys
    // disproportionately many comparisons. Uniform collections purge
    // nothing; a stop-word block inflates the ratio massively and goes.
    let mut cut = levels.len() - 1;
    while cut > 0 {
        let (_, ratio_with) = levels[cut];
        let (_, ratio_without) = levels[cut - 1];
        if ratio_with <= SMOOTHING * ratio_without {
            break;
        }
        cut -= 1;
    }
    let max_comparisons = levels[cut].0;

    // Guard: a block covering half of either collection is a stop-word
    // block regardless of the ratio curve.
    let half1 = (input.n1 / 2).max(1);
    let half2 = (input.n2 / 2).max(1);

    let retained = input.blocks.iter().filter(|b| {
        b.comparisons() <= max_comparisons
            && b.left.len() < half1.max(2)
            && b.right.len() < half2.max(2)
    });
    BlockCollection::from_blocks(retained.cloned(), input.n1, input.n2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::Block;

    fn block(l: u32, r: u32) -> Block {
        Block {
            left: (0..l).collect(),
            right: (0..r).collect(),
        }
    }

    #[test]
    fn purging_drops_stopword_block() {
        // Many small blocks plus one covering most of both collections.
        let mut blocks: Vec<Block> = (0..20).map(|_| block(2, 2)).collect();
        blocks.push(block(90, 90));
        let bc = BlockCollection::from_blocks(blocks, 100, 100);
        let purged = block_purging(&bc);
        assert_eq!(purged.len(), 20, "only the giant block should go");
        assert!(purged.total_comparisons() < bc.total_comparisons());
    }

    #[test]
    fn uniform_blocks_survive() {
        let blocks: Vec<Block> = (0..10).map(|_| block(3, 3)).collect();
        let bc = BlockCollection::from_blocks(blocks, 100, 100);
        assert_eq!(block_purging(&bc).len(), 10);
    }

    #[test]
    fn half_collection_guard_fires() {
        // A block with >= half of E2, even if the ratio curve is flat.
        let blocks = vec![block(2, 60), block(2, 60)];
        let bc = BlockCollection::from_blocks(blocks, 100, 100);
        assert!(block_purging(&bc).is_empty());
    }

    #[test]
    fn tiny_collections_pass_through() {
        let bc = BlockCollection::from_blocks([block(1, 1)], 10, 10);
        assert_eq!(block_purging(&bc).len(), 1);
        let empty = BlockCollection::from_blocks([], 10, 10);
        assert!(block_purging(&empty).is_empty());
    }

    #[test]
    fn purging_never_increases_comparisons() {
        let blocks: Vec<Block> = (1..15).map(|i| block(i, i)).collect();
        let bc = BlockCollection::from_blocks(blocks, 40, 40);
        let purged = block_purging(&bc);
        assert!(purged.total_comparisons() <= bc.total_comparisons());
        assert!(purged.len() <= bc.len());
    }
}
