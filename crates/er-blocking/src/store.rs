//! Persistent-store codec for the blocking artifact.
//!
//! The prepare-stage artifact of every blocking workflow is the raw
//! [`BlockCollection`] (purging, filtering and comparison cleaning are
//! query-stage). On disk it is CSR-flattened: one offsets/members pair per
//! side, so a collection of any block count costs four flat arrays.
//! Decode re-validates the offsets and that every member id is inside its
//! collection, then recomputes heap bytes with the same formula the
//! prepare path uses — byte-identical cache budgeting either way.

use crate::blocks::{Block, BlockCollection};
use crate::workflow::block_bytes;
use er_store::{ArtifactCodec, SectionCursor, Sections, StoreError, StoreFile};
use std::any::Any;
use std::sync::Arc;

/// Codec id stamped into blocking artifact files.
pub const BLOCKING_CODEC_ID: u32 = 2;

/// (De)serializes [`BlockCollection`].
pub struct BlockingCodec;

fn push_side(s: &mut Sections, blocks: &[Block], side: impl Fn(&Block) -> &[u32]) {
    let mut offsets = Vec::with_capacity(blocks.len() + 1);
    offsets.push(0u32);
    let mut members = Vec::new();
    for b in blocks {
        members.extend_from_slice(side(b));
        offsets.push(members.len() as u32);
    }
    s.u32s(&offsets);
    s.u32s(&members);
}

fn read_side(
    what: &str,
    cur: &mut SectionCursor<'_>,
    rows: usize,
    bound: usize,
) -> er_store::Result<Vec<Vec<u32>>> {
    let offsets = cur.u32s()?;
    let members = cur.u32s()?;
    let ok = offsets.len() == rows + 1
        && offsets.first() == Some(&0)
        && offsets.last().copied() == Some(members.len() as u32)
        && offsets.windows(2).all(|w| w[0] <= w[1]);
    if !ok {
        return Err(StoreError::Malformed(format!("{what}: broken CSR offsets")));
    }
    if !members.iter().all(|&e| (e as usize) < bound) {
        return Err(StoreError::Malformed(format!(
            "{what}: entity out of range"
        )));
    }
    Ok(offsets
        .windows(2)
        .map(|w| members[w[0] as usize..w[1] as usize].to_vec())
        .collect())
}

impl ArtifactCodec for BlockingCodec {
    fn id(&self) -> u32 {
        BLOCKING_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "blocks"
    }

    fn encode(&self, artifact: &(dyn Any + Send + Sync)) -> Option<Sections> {
        let bc = artifact.downcast_ref::<BlockCollection>()?;
        let mut s = Sections::new();
        s.scalar(bc.n1 as u64);
        s.scalar(bc.n2 as u64);
        s.scalar(bc.blocks.len() as u64);
        push_side(&mut s, &bc.blocks, |b| &b.left);
        push_side(&mut s, &bc.blocks, |b| &b.right);
        Some(s)
    }

    fn decode(&self, file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
        let mut cur = file.cursor()?;
        let n1 = cur.scalar_usize()?;
        let n2 = cur.scalar_usize()?;
        let rows = cur.scalar_usize()?;
        let lefts = read_side("left side", &mut cur, rows, n1)?;
        let rights = read_side("right side", &mut cur, rows, n2)?;
        cur.finish()?;
        let blocks: Vec<Block> = lefts
            .into_iter()
            .zip(rights)
            .map(|(left, right)| Block { left, right })
            .collect();
        if !blocks.iter().all(Block::is_valid) {
            // The collection invariant: every stored block contributes at
            // least one comparison.
            return Err(StoreError::Malformed("empty-sided block".to_owned()));
        }
        let bc = BlockCollection { blocks, n1, n2 };
        let heap_bytes = block_bytes(&bc);
        Ok((Arc::new(bc), heap_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::BlockingWorkflow;
    use er_core::artifacts::{ArtifactKey, DiskTier, TierLoad};
    use er_core::filter::Filter;
    use er_core::schema::TextView;
    use er_store::ArtifactStore;

    fn store_in(name: &str) -> (ArtifactStore, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("er_blocking_store_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir, vec![Box::new(BlockingCodec)]).expect("open");
        (store, dir)
    }

    fn view() -> TextView {
        TextView::new(
            (0..10)
                .map(|i| format!("entity {} group {}", i, i % 4))
                .collect::<Vec<_>>(),
            (0..8)
                .map(|i| format!("entity {} group {}", i + 2, i % 4))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn roundtrip_preserves_blocks_and_heap_bytes() {
        let (store, dir) = store_in("roundtrip");
        let wf = BlockingWorkflow::pbw();
        let fresh = wf.prepare(&view());
        let key = ArtifactKey::new(3, wf.repr_key());
        assert!(store.store(&key, &fresh).expect("store"));
        let TierLoad::Hit { prepared, saved } = store.load(&key) else {
            panic!("expected hit");
        };
        assert_eq!(prepared.bytes(), fresh.bytes(), "heap bytes parity");
        assert_eq!(saved, fresh.breakdown().prepare_total());
        let a = fresh.downcast::<BlockCollection>();
        let b = prepared.downcast::<BlockCollection>();
        assert_eq!((a.n1, a.n2), (b.n1, b.n2));
        assert_eq!(a.blocks, b.blocks);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_collection_roundtrips() {
        let (store, dir) = store_in("empty");
        let bc = BlockCollection::from_blocks([], 5, 6);
        let fresh = er_core::filter::Prepared::new(bc, 0, er_core::timing::PhaseBreakdown::new());
        let key = ArtifactKey::new(4, "blocks:none");
        assert!(store.store(&key, &fresh).expect("store"));
        let TierLoad::Hit { prepared, .. } = store.load(&key) else {
            panic!("expected hit");
        };
        let back = prepared.downcast::<BlockCollection>();
        assert!(back.is_empty());
        assert_eq!((back.n1, back.n2), (5, 6));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
