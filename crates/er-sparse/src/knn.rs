//! The k-nearest-neighbor join (paper §IV-C).
//!
//! For every query entity, keep all indexed entities whose similarity ties
//! one of the `k` highest *distinct* similarity values — a query may yield
//! more than `k` pairs when candidates are equidistant (the semantics of the
//! Cone algorithm [Kocher & Augsten, SIGMOD 2019], here adapted to a
//! ScanCount backend). The join is not commutative, so the `RVS` parameter
//! controls which input is indexed and which one queries.

use crate::artifact::TokenSetsArtifact;
use crate::representation::RepresentationModel;
use crate::scancount::ScanCountScratch;
use crate::similarity::SimilarityMeasure;
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::parallel::{self, Threads};
use er_core::schema::TextView;

/// A configured kNN-Join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnJoin {
    /// Apply stop-word removal + stemming first (`CL`).
    pub cleaning: bool,
    /// Representation model (`RM`).
    pub model: RepresentationModel,
    /// Similarity measure (`SM`).
    pub measure: SimilarityMeasure,
    /// Neighbors per query entity (`K`), counting distinct similarities.
    pub k: usize,
    /// Reverse datasets (`RVS`): index `E2` and query with `E1`.
    pub reversed: bool,
}

impl KnnJoin {
    /// One-line configuration description for Table IX-style reports.
    pub fn describe(&self) -> String {
        format!(
            "CL={} RVS={} RM={} SM={} K={}",
            if self.cleaning { "y" } else { "-" },
            if self.reversed { "y" } else { "-" },
            self.model.name(),
            self.measure.name(),
            self.k
        )
    }

    /// Selects, from `(entity, similarity)` candidates, those tying one of
    /// the `k` highest distinct similarity values. Zero similarities never
    /// qualify.
    fn select_top_k(k: usize, scored: &mut Vec<(u32, f64)>) -> usize {
        if scored.is_empty() || k == 0 {
            scored.clear();
            return 0;
        }
        // Descending similarity, ascending id for determinism.
        scored.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut distinct = 0usize;
        let mut last = f64::NAN;
        let mut cut = scored.len();
        for (i, &(_, sim)) in scored.iter().enumerate() {
            if sim != last {
                distinct += 1;
                last = sim;
                if distinct > k {
                    cut = i;
                    break;
                }
            }
        }
        scored.truncate(cut);
        cut
    }
}

impl KnnJoin {
    /// Computes per-query similarity rankings, keeping at most
    /// `max_neighbors` entries per query (similarity descending, ties by
    /// ascending id).
    ///
    /// The optimizer's K-sweep then derives the candidate set of any
    /// `K` whose distinct-similarity cut falls inside `max_neighbors`; use
    /// a margin over the largest K of interest so ties are not truncated.
    pub fn rankings(&self, view: &TextView, max_neighbors: usize) -> er_core::QueryRankings {
        let prepared = self.prepare(view);
        self.rankings_from(prepared.downcast::<TokenSetsArtifact>(), max_neighbors)
    }

    /// [`KnnJoin::rankings`] on a shared prepare-stage artifact: the
    /// tokenization and index are reused, only the scoring runs.
    pub fn rankings_from(
        &self,
        artifact: &TokenSetsArtifact,
        max_neighbors: usize,
    ) -> er_core::QueryRankings {
        let index = &artifact.index;
        let query_sets = &artifact.query_sets;
        let chunk = parallel::query_chunk_len(query_sets.len());
        let per_chunk =
            parallel::par_map_chunks_with(Threads::get(), query_sets, chunk, |_, part| {
                let mut scratch = ScanCountScratch::default();
                let mut hits: Vec<(u32, u32)> = Vec::new();
                part.iter()
                    .map(|query| {
                        let qlen = query.len();
                        index.query_with(&mut scratch, query, &mut hits);
                        let mut scored: Vec<(u32, f64)> = hits
                            .iter()
                            .filter_map(|&(i, overlap)| {
                                let sim =
                                    self.measure
                                        .compute(overlap as usize, index.set_size(i), qlen);
                                (sim > 0.0).then_some((i, sim))
                            })
                            .collect();
                        scored.sort_unstable_by(|a, b| {
                            b.1.partial_cmp(&a.1)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.0.cmp(&b.0))
                        });
                        scored.truncate(max_neighbors);
                        scored
                    })
                    .collect::<Vec<_>>()
            });
        let neighbors = per_chunk.into_iter().flatten().collect();
        er_core::QueryRankings {
            neighbors,
            reversed: self.reversed,
        }
    }
}

impl Filter for KnnJoin {
    fn name(&self) -> String {
        "kNN-Join".to_owned()
    }

    fn repr_key(&self) -> String {
        TokenSetsArtifact::repr_key(self.cleaning, self.model, self.reversed)
    }

    /// With RVS, index E2 and query with E1; pairs keep the canonical
    /// (E1, E2) orientation either way.
    fn prepare(&self, view: &TextView) -> Prepared {
        TokenSetsArtifact::prepare(view, self.cleaning, self.model, self.reversed)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        let art = prepared.downcast::<TokenSetsArtifact>();
        let index = &art.index;
        let mut out = FilterOutput::default();
        out.breakdown.time("query", || {
            // Score + top-k select per query in parallel (each query is
            // independent), then insert serially in query order so the
            // candidate set is built exactly as the serial loop did.
            let chunk = parallel::query_chunk_len(art.query_sets.len());
            let per_chunk =
                parallel::par_map_chunks_with(Threads::get(), &art.query_sets, chunk, |_, part| {
                    let mut scratch = ScanCountScratch::default();
                    let mut hits: Vec<(u32, u32)> = Vec::new();
                    part.iter()
                        .map(|query| {
                            let qlen = query.len();
                            index.query_with(&mut scratch, query, &mut hits);
                            let mut scored: Vec<(u32, f64)> = hits
                                .iter()
                                .filter_map(|&(i, overlap)| {
                                    let sim = self.measure.compute(
                                        overlap as usize,
                                        index.set_size(i),
                                        qlen,
                                    );
                                    (sim > 0.0).then_some((i, sim))
                                })
                                .collect();
                            Self::select_top_k(self.k, &mut scored);
                            scored
                        })
                        .collect::<Vec<_>>()
                });
            for (q, scored) in per_chunk.into_iter().flatten().enumerate() {
                for (i, _) in scored {
                    if self.reversed {
                        out.candidates.insert_raw(q as u32, i);
                    } else {
                        out.candidates.insert_raw(i, q as u32);
                    }
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::candidates::Pair;

    fn join(k: usize, reversed: bool) -> KnnJoin {
        KnnJoin {
            cleaning: false,
            model: RepresentationModel::parse("T1G").expect("model"),
            measure: SimilarityMeasure::Jaccard,
            k,
            reversed,
        }
    }

    fn view() -> TextView {
        TextView {
            e1: vec![
                "apple iphone black".into(),
                "apple iphone".into(),
                "samsung galaxy".into(),
            ]
            .into(),
            e2: vec!["apple iphone black".into()].into(),
        }
    }

    #[test]
    fn k1_keeps_single_best_per_query() {
        let out = join(1, false).run(&view());
        assert_eq!(out.candidates.len(), 1);
        assert!(out.candidates.contains(Pair::new(0, 0)));
    }

    #[test]
    fn k2_adds_second_distinct_similarity() {
        let out = join(2, false).run(&view());
        assert_eq!(out.candidates.len(), 2);
        assert!(out.candidates.contains(Pair::new(1, 0)));
    }

    #[test]
    fn ties_expand_beyond_k() {
        // Two indexed entities with identical similarity to the query.
        let v = TextView {
            e1: vec![
                "alpha beta".into(),
                "alpha gamma".into(),
                "unrelated".into(),
            ]
            .into(),
            e2: vec!["alpha".into()].into(),
        };
        let out = join(1, false).run(&v);
        assert_eq!(out.candidates.len(), 2, "equidistant pair included");
    }

    #[test]
    fn zero_similarity_never_paired() {
        let v = TextView {
            e1: vec!["xyz".into()].into(),
            e2: vec!["abc".into()].into(),
        };
        assert!(join(5, false).run(&v).candidates.is_empty());
    }

    #[test]
    fn reversal_preserves_pair_orientation() {
        let out = join(1, true).run(&view());
        // Query side is E1 (3 queries); each pairs with the single E2
        // entity when they overlap.
        assert!(out.candidates.contains(Pair::new(0, 0)));
        assert!(out.candidates.contains(Pair::new(1, 0)));
        for p in out.candidates.iter() {
            assert!((p.left as usize) < 3 && (p.right as usize) < 1);
        }
    }

    #[test]
    fn candidate_count_grows_with_k() {
        let v = TextView {
            e1: (0..6).map(|i| format!("common token{i}")).collect(),
            e2: vec!["common probe".into()].into(),
        };
        let mut prev = 0;
        for k in 1..=6 {
            let n = join(k, false).run(&v).candidates.len();
            assert!(n >= prev, "k={k}");
            prev = n;
        }
    }

    #[test]
    fn shared_artifact_matches_cold_runs_across_k() {
        let v = view();
        let prepared = join(1, false).prepare(&v);
        for k in 1..=3 {
            let cold = join(k, false).run(&v);
            let warm = join(k, false).query(&v, &prepared);
            assert_eq!(
                warm.candidates.to_sorted_vec(),
                cold.candidates.to_sorted_vec(),
                "k={k}"
            );
        }
        // Orientation is part of the representation key, so reversed
        // configs cannot share the forward artifact.
        assert_ne!(join(1, false).repr_key(), join(1, true).repr_key());
        assert_eq!(join(1, false).repr_key(), join(5, false).repr_key());
    }

    #[test]
    fn select_top_k_distinct_semantics() {
        let mut scored = vec![(1, 0.9), (2, 0.9), (3, 0.5), (4, 0.4)];
        KnnJoin::select_top_k(2, &mut scored);
        // Top-2 distinct similarities {0.9, 0.5} -> 3 survivors.
        assert_eq!(
            scored.iter().map(|s| s.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );

        let mut empty: Vec<(u32, f64)> = Vec::new();
        assert_eq!(KnnJoin::select_top_k(3, &mut empty), 0);

        let mut zero_k = vec![(1, 0.5)];
        KnnJoin::select_top_k(0, &mut zero_k);
        assert!(zero_k.is_empty());
    }
}
