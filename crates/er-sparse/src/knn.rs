//! The k-nearest-neighbor join (paper §IV-C).
//!
//! For every query entity, keep all indexed entities whose similarity ties
//! one of the `k` highest *distinct* similarity values — a query may yield
//! more than `k` pairs when candidates are equidistant (the semantics of the
//! Cone algorithm [Kocher & Augsten, SIGMOD 2019], here adapted to a
//! ScanCount backend). The join is not commutative, so the `RVS` parameter
//! controls which input is indexed and which one queries.

use crate::artifact::TokenSetsArtifact;
use crate::representation::RepresentationModel;
use crate::scancount::ScanCountScratch;
use crate::similarity::SimilarityMeasure;
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::parallel::{self, Threads};
use er_core::schema::TextView;

/// A configured kNN-Join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnJoin {
    /// Apply stop-word removal + stemming first (`CL`).
    pub cleaning: bool,
    /// Representation model (`RM`).
    pub model: RepresentationModel,
    /// Similarity measure (`SM`).
    pub measure: SimilarityMeasure,
    /// Neighbors per query entity (`K`), counting distinct similarities.
    pub k: usize,
    /// Reverse datasets (`RVS`): index `E2` and query with `E1`.
    pub reversed: bool,
}

/// Tracks the `k` highest *distinct* similarity values seen so far for one
/// query. Its floor (the k-th value once `k` distinct values exist) is
/// non-decreasing as candidates stream in, so any candidate whose
/// size-bounded maximum similarity falls strictly below the current floor
/// is also strictly below the *final* k-th distinct value — skipping it is
/// exact under the distinct-similarity (Cone) semantics.
struct DistinctFloor {
    k: usize,
    /// Distinct similarities, descending, at most `k` entries.
    sims: Vec<f64>,
}

impl DistinctFloor {
    fn new(k: usize) -> Self {
        Self {
            k,
            sims: Vec::with_capacity(k.min(64)),
        }
    }

    /// Records a (positive) similarity; returns `true` when the floor
    /// changed, i.e. when the derived size bounds must be recomputed.
    fn observe(&mut self, sim: f64) -> bool {
        let pos = self.sims.partition_point(|&s| s > sim);
        if self.sims.get(pos).copied() == Some(sim) {
            return false; // already tracked
        }
        if self.sims.len() == self.k && pos >= self.k {
            return false; // below the floor of a full tracker
        }
        let before = self.floor();
        self.sims.insert(pos, sim);
        self.sims.truncate(self.k);
        self.floor() != before
    }

    /// The k-th highest distinct similarity, once `k` distinct values have
    /// been seen.
    fn floor(&self) -> Option<f64> {
        (self.sims.len() == self.k).then(|| self.sims[self.k - 1])
    }
}

impl KnnJoin {
    /// One-line configuration description for Table IX-style reports.
    pub fn describe(&self) -> String {
        format!(
            "CL={} RVS={} RM={} SM={} K={}",
            if self.cleaning { "y" } else { "-" },
            if self.reversed { "y" } else { "-" },
            self.model.name(),
            self.measure.name(),
            self.k
        )
    }

    /// Selects, from `(entity, similarity)` candidates, those tying one of
    /// the `k` highest distinct similarity values. Zero similarities never
    /// qualify. Public because the multi-process merge proxy applies the
    /// same global cut over per-child scored answers that
    /// `ShardedCursor::knn_row` applies over per-shard ones — the sort is
    /// descending similarity, ascending id, so the result is independent
    /// of concatenation order.
    pub fn select_top_k(k: usize, scored: &mut Vec<(u32, f64)>) -> usize {
        if scored.is_empty() || k == 0 {
            scored.clear();
            return 0;
        }
        // Descending similarity, ascending id for determinism.
        scored.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut distinct = 0usize;
        let mut last = f64::NAN;
        let mut cut = scored.len();
        for (i, &(_, sim)) in scored.iter().enumerate() {
            if sim != last {
                distinct += 1;
                last = sim;
                if distinct > k {
                    cut = i;
                    break;
                }
            }
        }
        scored.truncate(cut);
        cut
    }

    /// Scores one query row against the index: every positive-similarity
    /// candidate surviving the distinct-floor length filter, unsorted.
    ///
    /// With `k = None` the length filter is off and the result is the full
    /// positive-similarity candidate list (the rankings path).
    pub(crate) fn score_query(
        &self,
        art: &TokenSetsArtifact,
        j: usize,
        k: Option<usize>,
        scratch: &mut ScanCountScratch,
        hits: &mut Vec<(u32, u32)>,
    ) -> Vec<(u32, f64)> {
        let qlen = art.query_sets.set_size(j);
        art.index.query_row_with(scratch, &art.query_sets, j, hits);
        let mut floor = k.map(DistinctFloor::new);
        let mut bounds: Option<(usize, usize)> = None;
        let mut scored: Vec<(u32, f64)> = Vec::with_capacity(hits.len());
        for &(i, overlap) in hits.iter() {
            let ilen = art.index.set_size(i);
            if let Some((lo, hi)) = bounds {
                if ilen < lo || ilen > hi {
                    continue; // similarity provably below the k-th distinct
                }
            }
            let sim = self.measure.compute(overlap as usize, ilen, qlen);
            if sim <= 0.0 {
                continue;
            }
            scored.push((i, sim));
            if let Some(floor) = floor.as_mut() {
                if floor.observe(sim) {
                    bounds = floor.floor().map(|f| self.measure.size_bounds(qlen, f));
                }
            }
        }
        scored
    }

    /// The selected neighbors of one query row — scoring plus the
    /// distinct-top-K cut, exactly what the batch [`Filter::query`] path
    /// computes for that row (which calls this), so an online lookup
    /// served from a store-loaded artifact is byte-identical to the
    /// offline sweep by construction. Entries are `(indexed id,
    /// similarity)` sorted by descending similarity then ascending id;
    /// with `RVS` the ids are still the indexed side's (E2 forward, E1
    /// reversed) — orientation is the caller's concern.
    pub fn query_row(
        &self,
        art: &TokenSetsArtifact,
        j: usize,
        scratch: &mut ScanCountScratch,
        hits: &mut Vec<(u32, u32)>,
    ) -> Vec<(u32, f64)> {
        let mut scored = self.score_query(art, j, Some(self.k), scratch, hits);
        Self::select_top_k(self.k, &mut scored);
        scored
    }
}

impl KnnJoin {
    /// Computes per-query similarity rankings, keeping at most
    /// `max_neighbors` entries per query (similarity descending, ties by
    /// ascending id).
    ///
    /// The optimizer's K-sweep then derives the candidate set of any
    /// `K` whose distinct-similarity cut falls inside `max_neighbors`; use
    /// a margin over the largest K of interest so ties are not truncated.
    pub fn rankings(&self, view: &TextView, max_neighbors: usize) -> er_core::QueryRankings {
        let prepared = self.prepare(view);
        self.rankings_from(prepared.downcast::<TokenSetsArtifact>(), max_neighbors)
    }

    /// [`KnnJoin::rankings`] on a shared prepare-stage artifact: the
    /// tokenization and index are reused, only the scoring runs.
    pub fn rankings_from(
        &self,
        artifact: &TokenSetsArtifact,
        max_neighbors: usize,
    ) -> er_core::QueryRankings {
        // Chunk over the per-row cardinality slice: one element per query
        // row, so `offset + local` is the row index.
        let rows = artifact.query_sets.set_sizes();
        let chunk = parallel::query_chunk_len(rows.len());
        let per_chunk =
            parallel::par_map_chunks_with(Threads::get(), rows, chunk, |offset, part| {
                let mut scratch = ScanCountScratch::default();
                let mut hits: Vec<(u32, u32)> = Vec::new();
                (0..part.len())
                    .map(|local| {
                        let mut scored = self.score_query(
                            artifact,
                            offset + local,
                            None,
                            &mut scratch,
                            &mut hits,
                        );
                        scored.sort_unstable_by(|a, b| {
                            b.1.partial_cmp(&a.1)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.0.cmp(&b.0))
                        });
                        scored.truncate(max_neighbors);
                        scored
                    })
                    .collect::<Vec<_>>()
            });
        let neighbors = per_chunk.into_iter().flatten().collect();
        er_core::QueryRankings {
            neighbors,
            reversed: self.reversed,
        }
    }
}

impl Filter for KnnJoin {
    fn name(&self) -> String {
        "kNN-Join".to_owned()
    }

    fn repr_key(&self) -> String {
        TokenSetsArtifact::repr_key(self.cleaning, self.model, self.reversed)
    }

    /// With RVS, index E2 and query with E1; pairs keep the canonical
    /// (E1, E2) orientation either way.
    fn prepare(&self, view: &TextView) -> Prepared {
        TokenSetsArtifact::prepare(view, self.cleaning, self.model, self.reversed)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        self.query_art(prepared.downcast::<TokenSetsArtifact>(), Threads::get())
    }
}

impl KnnJoin {
    /// The query stage with an explicit worker count — the tests use it to
    /// check thread-count invariance without mutating the global
    /// [`Threads`] override.
    pub(crate) fn query_art(&self, art: &TokenSetsArtifact, threads: usize) -> FilterOutput {
        let mut out = FilterOutput::default();
        out.breakdown.time("query", || {
            // Score + top-k select per query in parallel (each query is
            // independent), then insert serially in query order so the
            // candidate set is built exactly as the serial loop did.
            let rows = art.query_sets.set_sizes();
            let chunk = parallel::query_chunk_len(rows.len());
            let per_chunk = parallel::par_map_chunks_with(threads, rows, chunk, |offset, part| {
                let mut scratch = ScanCountScratch::default();
                let mut hits: Vec<(u32, u32)> = Vec::new();
                (0..part.len())
                    .map(|local| self.query_row(art, offset + local, &mut scratch, &mut hits))
                    .collect::<Vec<_>>()
            });
            for (q, scored) in per_chunk.into_iter().flatten().enumerate() {
                for (i, _) in scored {
                    if self.reversed {
                        out.candidates.insert_raw(q as u32, i);
                    } else {
                        out.candidates.insert_raw(i, q as u32);
                    }
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::candidates::Pair;

    fn join(k: usize, reversed: bool) -> KnnJoin {
        KnnJoin {
            cleaning: false,
            model: RepresentationModel::parse("T1G").expect("model"),
            measure: SimilarityMeasure::Jaccard,
            k,
            reversed,
        }
    }

    fn view() -> TextView {
        TextView {
            e1: vec![
                "apple iphone black".into(),
                "apple iphone".into(),
                "samsung galaxy".into(),
            ]
            .into(),
            e2: vec!["apple iphone black".into()].into(),
        }
    }

    #[test]
    fn k1_keeps_single_best_per_query() {
        let out = join(1, false).run(&view());
        assert_eq!(out.candidates.len(), 1);
        assert!(out.candidates.contains(Pair::new(0, 0)));
    }

    #[test]
    fn k2_adds_second_distinct_similarity() {
        let out = join(2, false).run(&view());
        assert_eq!(out.candidates.len(), 2);
        assert!(out.candidates.contains(Pair::new(1, 0)));
    }

    #[test]
    fn ties_expand_beyond_k() {
        // Two indexed entities with identical similarity to the query.
        let v = TextView {
            e1: vec![
                "alpha beta".into(),
                "alpha gamma".into(),
                "unrelated".into(),
            ]
            .into(),
            e2: vec!["alpha".into()].into(),
        };
        let out = join(1, false).run(&v);
        assert_eq!(out.candidates.len(), 2, "equidistant pair included");
    }

    #[test]
    fn zero_similarity_never_paired() {
        let v = TextView {
            e1: vec!["xyz".into()].into(),
            e2: vec!["abc".into()].into(),
        };
        assert!(join(5, false).run(&v).candidates.is_empty());
    }

    #[test]
    fn reversal_preserves_pair_orientation() {
        let out = join(1, true).run(&view());
        // Query side is E1 (3 queries); each pairs with the single E2
        // entity when they overlap.
        assert!(out.candidates.contains(Pair::new(0, 0)));
        assert!(out.candidates.contains(Pair::new(1, 0)));
        for p in out.candidates.iter() {
            assert!((p.left as usize) < 3 && (p.right as usize) < 1);
        }
    }

    #[test]
    fn candidate_count_grows_with_k() {
        let v = TextView {
            e1: (0..6).map(|i| format!("common token{i}")).collect(),
            e2: vec!["common probe".into()].into(),
        };
        let mut prev = 0;
        for k in 1..=6 {
            let n = join(k, false).run(&v).candidates.len();
            assert!(n >= prev, "k={k}");
            prev = n;
        }
    }

    #[test]
    fn shared_artifact_matches_cold_runs_across_k() {
        let v = view();
        let prepared = join(1, false).prepare(&v);
        for k in 1..=3 {
            let cold = join(k, false).run(&v);
            let warm = join(k, false).query(&v, &prepared);
            assert_eq!(
                warm.candidates.to_sorted_vec(),
                cold.candidates.to_sorted_vec(),
                "k={k}"
            );
        }
        // Orientation is part of the representation key, so reversed
        // configs cannot share the forward artifact.
        assert_ne!(join(1, false).repr_key(), join(1, true).repr_key());
        assert_eq!(join(1, false).repr_key(), join(5, false).repr_key());
    }

    #[test]
    fn select_top_k_distinct_semantics() {
        let mut scored = vec![(1, 0.9), (2, 0.9), (3, 0.5), (4, 0.4)];
        KnnJoin::select_top_k(2, &mut scored);
        // Top-2 distinct similarities {0.9, 0.5} -> 3 survivors.
        assert_eq!(
            scored.iter().map(|s| s.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );

        let mut empty: Vec<(u32, f64)> = Vec::new();
        assert_eq!(KnnJoin::select_top_k(3, &mut empty), 0);

        let mut zero_k = vec![(1, 0.5)];
        KnnJoin::select_top_k(0, &mut zero_k);
        assert!(zero_k.is_empty());
    }

    #[test]
    fn distinct_floor_tracks_kth_value() {
        let mut f = DistinctFloor::new(2);
        assert_eq!(f.floor(), None);
        assert!(!f.observe(0.5), "first value: no floor yet");
        assert!(f.observe(0.9), "second distinct value sets the floor");
        assert_eq!(f.floor(), Some(0.5));
        assert!(!f.observe(0.9), "duplicate changes nothing");
        assert!(!f.observe(0.1), "below a full floor changes nothing");
        assert_eq!(f.floor(), Some(0.5));
        assert!(f.observe(0.7), "mid insertion raises the floor");
        assert_eq!(f.floor(), Some(0.7));
        assert!(f.observe(0.8));
        assert_eq!(f.floor(), Some(0.8));
    }

    #[test]
    fn length_filter_is_candidate_set_exact() {
        // Queries with wildly varying candidate cardinalities: the
        // filtered path must reproduce the unfiltered scoring exactly.
        let e1: Vec<String> = (0..30)
            .map(|i| {
                (0..=(i % 7))
                    .map(|t| format!("w{}", (i + t * 3) % 11))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        let e2: Vec<String> = (0..10)
            .map(|j| {
                (0..=(j % 5))
                    .map(|t| format!("w{}", (j + t) % 11))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        let v = TextView::new(e1, e2);
        for measure in SimilarityMeasure::ALL {
            for k in [1, 2, 5] {
                let join = KnnJoin {
                    cleaning: false,
                    model: RepresentationModel::parse("T1G").expect("model"),
                    measure,
                    k,
                    reversed: false,
                };
                let prepared = join.prepare(&v);
                let art = prepared.downcast::<TokenSetsArtifact>();
                let mut scratch = ScanCountScratch::default();
                let mut hits = Vec::new();
                for j in 0..art.query_sets.len() {
                    let mut filtered = join.score_query(art, j, Some(k), &mut scratch, &mut hits);
                    let mut unfiltered = join.score_query(art, j, None, &mut scratch, &mut hits);
                    KnnJoin::select_top_k(k, &mut filtered);
                    KnnJoin::select_top_k(k, &mut unfiltered);
                    assert_eq!(filtered, unfiltered, "{} k={k} j={j}", measure.name());
                }
            }
        }
    }
}
