//! Contiguous (CSR) token-set layouts behind a token interner.
//!
//! The sparse hot paths used to carry token sets as `Vec<Vec<u64>>` and
//! postings as `FastMap<u64, Vec<u32>>` — one heap allocation per entity
//! (or token) and a hash probe per posting-list lookup. This module
//! replaces both with flat arrays:
//!
//! * [`TokenInterner`] maps each distinct 64-bit token hash to a dense
//!   `u32` id in first-encounter order. Tokenization output order is
//!   deterministic, so the id assignment is too.
//! * [`CsrTokenSets`] stores all token-id rows back to back as
//!   delta-encoded, bitpacked [`PackedRows`] — exact byte accounting at a
//!   fraction of the plain-CSR footprint. Rows are unpacked on demand
//!   into a caller-owned scratch buffer ([`CsrTokenSets::row_into`]);
//!   query loops reuse one buffer for a whole batch.
//!
//! CSR invariants (upheld by the builders in [`crate::scancount`], relied
//! upon by every query path): row boundaries start at 0 and are
//! non-decreasing; each row holds the interned ids of a duplicate-free
//! token set in tokenization order (interned ids are assigned globally by
//! first encounter, so a row is *not* necessarily ascending — the zigzag
//! delta coding in [`PackedRows`] is order-agnostic).

use crate::packed::PackedRows;
use er_core::hash::FastMap;

/// Interns 64-bit token hashes to dense `u32` ids (first encounter wins).
#[derive(Debug, Clone, Default)]
pub struct TokenInterner {
    ids: FastMap<u64, u32>,
}

impl TokenInterner {
    /// The dense id of `token`, allocating the next id on first sight.
    #[inline]
    pub fn intern(&mut self, token: u64) -> u32 {
        let next = self.ids.len() as u32;
        *self.ids.entry(token).or_insert(next)
    }

    /// The dense id of `token`, or `None` if it was never interned.
    #[inline]
    pub fn get(&self, token: u64) -> Option<u32> {
        self.ids.get(&token).copied()
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Heap footprint estimate: 12 payload bytes per entry plus hash-table
    /// slack (the map keeps its load factor below ~⅞, estimated here as
    /// 8/7 of the payload). This is the only non-exact term in the CSR
    /// artifact byte accounting.
    pub fn heap_bytes(&self) -> usize {
        self.ids.len() * (8 + 4) * 8 / 7
    }

    /// The interned token hashes laid out by dense id (hash of id `i` at
    /// position `i`) — the interner's serialized form for the persistent
    /// store.
    pub(crate) fn tokens_by_id(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.ids.len()];
        for (&token, &id) in &self.ids {
            out[id as usize] = token;
        }
        out
    }

    /// Rebuilds an interner from [`Self::tokens_by_id`] output. In-order
    /// re-insertion reassigns the identical ids, and `heap_bytes` depends
    /// only on the entry count, so the rebuilt interner is byte-equivalent.
    pub(crate) fn from_tokens_by_id(tokens: &[u64]) -> Self {
        let mut interner = Self::default();
        for &token in tokens {
            interner.intern(token);
        }
        interner
    }
}

/// Token-id sets of one entity collection, bitpacked (see module docs).
#[derive(Debug, Clone, Default)]
pub struct CsrTokenSets {
    /// Bitpacked rows of interned token ids.
    rows: PackedRows,
    /// Original token-set cardinality per row. Query-side rows drop
    /// tokens unknown to the index (they cannot match anything), so a
    /// row may be shorter than `set_size(i)`; similarity formulas must
    /// use the true cardinality recorded here.
    set_sizes: Vec<u32>,
}

impl CsrTokenSets {
    /// Packs plain CSR parts; `debug_assert`s the boundary invariants.
    pub(crate) fn from_parts(offsets: Vec<u32>, tokens: Vec<u32>, set_sizes: Vec<u32>) -> Self {
        debug_assert_eq!(offsets.len(), set_sizes.len() + 1);
        Self {
            rows: PackedRows::from_rows(offsets, &tokens),
            set_sizes,
        }
    }

    /// Wraps already-packed rows (the persistent store's decode path; the
    /// codec has validated the packed invariants and the id range).
    pub(crate) fn from_packed(rows: PackedRows, set_sizes: Vec<u32>) -> Self {
        debug_assert_eq!(rows.len(), set_sizes.len());
        Self { rows, set_sizes }
    }

    /// Number of rows (entities).
    pub fn len(&self) -> usize {
        self.set_sizes.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.set_sizes.is_empty()
    }

    /// Unpacks row `i`'s interned token ids into `buf` and returns them.
    #[inline]
    pub fn row_into<'a>(&'a self, i: usize, buf: &'a mut Vec<u32>) -> &'a [u32] {
        self.rows.decode_row_into(i, buf)
    }

    /// Row `i` as a fresh allocation — convenience for tests and cold
    /// paths; hot loops should reuse a buffer via [`CsrTokenSets::row_into`].
    pub fn row_vec(&self, i: usize) -> Vec<u32> {
        let mut buf = Vec::new();
        self.rows.decode_row_into(i, &mut buf).to_vec()
    }

    /// The original token-set cardinality of row `i` (see field docs).
    #[inline]
    pub fn set_size(&self, i: usize) -> usize {
        self.set_sizes[i] as usize
    }

    /// All row cardinalities; doubles as the slice the parallel layer
    /// chunks over (one element per row, so chunk boundaries line up with
    /// row indices).
    pub fn set_sizes(&self) -> &[u32] {
        &self.set_sizes
    }

    /// Exact heap payload in bytes: the packed rows plus one `u32` array.
    pub fn heap_bytes(&self) -> usize {
        self.rows.heap_bytes() + self.set_sizes.len() * 4
    }

    /// The packed row storage, for the persistent store's serializer and
    /// compression-ratio reporting.
    pub(crate) fn packed(&self) -> &PackedRows {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_assigns_first_encounter_order() {
        let mut it = TokenInterner::default();
        assert_eq!(it.intern(42), 0);
        assert_eq!(it.intern(7), 1);
        assert_eq!(it.intern(42), 0, "repeat keeps its id");
        assert_eq!(it.get(7), Some(1));
        assert_eq!(it.get(999), None);
        assert_eq!(it.len(), 2);
        assert!(!it.is_empty());
        assert!(it.heap_bytes() >= 2 * 12);
    }

    #[test]
    fn csr_rows_round_trip() {
        let sets = CsrTokenSets::from_parts(vec![0, 2, 2, 5], vec![3, 9, 1, 4, 8], vec![2, 0, 3]);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets.row_vec(0), &[3, 9]);
        assert_eq!(sets.row_vec(1), &[] as &[u32]);
        assert_eq!(sets.row_vec(2), &[1, 4, 8]);
        assert_eq!(sets.set_size(2), 3);
        assert_eq!(sets.set_sizes(), &[2, 0, 3]);
        let mut buf = Vec::new();
        assert_eq!(sets.row_into(2, &mut buf), &[1, 4, 8]);
        assert_eq!(sets.row_into(1, &mut buf), &[] as &[u32]);
    }

    #[test]
    fn packed_heap_beats_plain_csr_on_real_shapes() {
        // 200 rows of small ascending id runs — the common token-set shape.
        let mut offsets = vec![0u32];
        let mut tokens = Vec::new();
        let mut sizes = Vec::new();
        for i in 0..200u32 {
            for t in 0..(i % 9) {
                tokens.push((i + t * 3) % 1500);
            }
            offsets.push(tokens.len() as u32);
            sizes.push(i % 9);
        }
        let sets = CsrTokenSets::from_parts(offsets.clone(), tokens.clone(), sizes);
        let plain = (offsets.len() + tokens.len()) * 4;
        assert!(
            sets.heap_bytes() < plain,
            "{} vs plain {plain}",
            sets.heap_bytes()
        );
    }

    #[test]
    fn empty_csr() {
        let sets = CsrTokenSets::from_parts(vec![0], Vec::new(), Vec::new());
        assert!(sets.is_empty());
        assert_eq!(sets.len(), 0);
        assert_eq!(sets.heap_bytes(), sets.packed().heap_bytes());
    }
}
