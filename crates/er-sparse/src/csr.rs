//! Contiguous (CSR) token-set layouts behind a token interner.
//!
//! The sparse hot paths used to carry token sets as `Vec<Vec<u64>>` and
//! postings as `FastMap<u64, Vec<u32>>` — one heap allocation per entity
//! (or token) and a hash probe per posting-list lookup. This module
//! replaces both with flat arrays:
//!
//! * [`TokenInterner`] maps each distinct 64-bit token hash to a dense
//!   `u32` id in first-encounter order. Tokenization output order is
//!   deterministic, so the id assignment is too.
//! * [`CsrTokenSets`] stores all token-id rows back to back
//!   (`offsets[i]..offsets[i + 1]` indexes row `i` inside one flat
//!   `tokens` array) — two allocations total, exact byte accounting, and
//!   cache-friendly sequential scans.
//!
//! CSR invariants (upheld by the builders in [`crate::scancount`], relied
//! upon by every query path): `offsets` has `len + 1` entries, starts at
//! 0, is non-decreasing, and ends at `tokens.len()`; each row holds
//! strictly ascending interned ids of a duplicate-free token set.

use er_core::hash::FastMap;

/// Interns 64-bit token hashes to dense `u32` ids (first encounter wins).
#[derive(Debug, Clone, Default)]
pub struct TokenInterner {
    ids: FastMap<u64, u32>,
}

impl TokenInterner {
    /// The dense id of `token`, allocating the next id on first sight.
    #[inline]
    pub fn intern(&mut self, token: u64) -> u32 {
        let next = self.ids.len() as u32;
        *self.ids.entry(token).or_insert(next)
    }

    /// The dense id of `token`, or `None` if it was never interned.
    #[inline]
    pub fn get(&self, token: u64) -> Option<u32> {
        self.ids.get(&token).copied()
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Heap footprint estimate: 12 payload bytes per entry plus hash-table
    /// slack (the map keeps its load factor below ~⅞, estimated here as
    /// 8/7 of the payload). This is the only non-exact term in the CSR
    /// artifact byte accounting.
    pub fn heap_bytes(&self) -> usize {
        self.ids.len() * (8 + 4) * 8 / 7
    }

    /// The interned token hashes laid out by dense id (hash of id `i` at
    /// position `i`) — the interner's serialized form for the persistent
    /// store.
    pub(crate) fn tokens_by_id(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.ids.len()];
        for (&token, &id) in &self.ids {
            out[id as usize] = token;
        }
        out
    }

    /// Rebuilds an interner from [`Self::tokens_by_id`] output. In-order
    /// re-insertion reassigns the identical ids, and `heap_bytes` depends
    /// only on the entry count, so the rebuilt interner is byte-equivalent.
    pub(crate) fn from_tokens_by_id(tokens: &[u64]) -> Self {
        let mut interner = Self::default();
        for &token in tokens {
            interner.intern(token);
        }
        interner
    }
}

/// Token-id sets of one entity collection in CSR layout.
#[derive(Debug, Clone, Default)]
pub struct CsrTokenSets {
    /// Row boundaries: row `i` is `tokens[offsets[i] as usize..offsets[i + 1] as usize]`.
    offsets: Vec<u32>,
    /// All rows' interned token ids, flattened.
    tokens: Vec<u32>,
    /// Original token-set cardinality per row. Query-side rows drop
    /// tokens unknown to the index (they cannot match anything), so
    /// `row(i).len()` may be smaller than `set_size(i)`; similarity
    /// formulas must use the true cardinality recorded here.
    set_sizes: Vec<u32>,
}

impl CsrTokenSets {
    /// Builds the CSR directly from parts; `debug_assert`s the invariants.
    pub(crate) fn from_parts(offsets: Vec<u32>, tokens: Vec<u32>, set_sizes: Vec<u32>) -> Self {
        debug_assert_eq!(offsets.len(), set_sizes.len() + 1);
        debug_assert_eq!(offsets.first().copied(), Some(0));
        debug_assert_eq!(offsets.last().copied(), Some(tokens.len() as u32));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self {
            offsets,
            tokens,
            set_sizes,
        }
    }

    /// Number of rows (entities).
    pub fn len(&self) -> usize {
        self.set_sizes.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.set_sizes.is_empty()
    }

    /// The interned token ids of row `i`, strictly ascending.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.tokens[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The original token-set cardinality of row `i` (see field docs).
    #[inline]
    pub fn set_size(&self, i: usize) -> usize {
        self.set_sizes[i] as usize
    }

    /// All row cardinalities; doubles as the slice the parallel layer
    /// chunks over (one element per row, so chunk boundaries line up with
    /// row indices).
    pub fn set_sizes(&self) -> &[u32] {
        &self.set_sizes
    }

    /// Exact heap payload in bytes: three `u32` arrays, no guessing.
    pub fn heap_bytes(&self) -> usize {
        (self.offsets.len() + self.tokens.len() + self.set_sizes.len()) * 4
    }

    /// The three flat arrays `(offsets, tokens, set_sizes)`, for the
    /// persistent store's serializer.
    pub(crate) fn raw_parts(&self) -> (&[u32], &[u32], &[u32]) {
        (&self.offsets, &self.tokens, &self.set_sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_assigns_first_encounter_order() {
        let mut it = TokenInterner::default();
        assert_eq!(it.intern(42), 0);
        assert_eq!(it.intern(7), 1);
        assert_eq!(it.intern(42), 0, "repeat keeps its id");
        assert_eq!(it.get(7), Some(1));
        assert_eq!(it.get(999), None);
        assert_eq!(it.len(), 2);
        assert!(!it.is_empty());
        assert!(it.heap_bytes() >= 2 * 12);
    }

    #[test]
    fn csr_rows_round_trip() {
        let sets = CsrTokenSets::from_parts(vec![0, 2, 2, 5], vec![3, 9, 1, 4, 8], vec![2, 0, 3]);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets.row(0), &[3, 9]);
        assert_eq!(sets.row(1), &[] as &[u32]);
        assert_eq!(sets.row(2), &[1, 4, 8]);
        assert_eq!(sets.set_size(2), 3);
        assert_eq!(sets.set_sizes(), &[2, 0, 3]);
        assert_eq!(sets.heap_bytes(), (4 + 5 + 3) * 4);
    }

    #[test]
    fn empty_csr() {
        let sets = CsrTokenSets::from_parts(vec![0], Vec::new(), Vec::new());
        assert!(sets.is_empty());
        assert_eq!(sets.len(), 0);
        assert_eq!(sets.heap_bytes(), 4);
    }
}
