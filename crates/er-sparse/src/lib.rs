//! Sparse vector-based nearest-neighbor filtering (paper §IV-C).
//!
//! These methods are set-based similarity joins: each entity becomes a set
//! of tokens (whitespace tokens or character n-grams, set or multiset
//! semantics) and pairs are formed by similarity of token sets.
//!
//! * [`representation`] — the 10 representation models (`T1G(M)`,
//!   `C2G(M)`…`C5G(M)`),
//! * [`similarity`] — Cosine, Dice and Jaccard over set overlaps,
//! * [`csr`] — the token interner and contiguous CSR token-set layout
//!   shared by every sparse hot path,
//! * [`packed`] — delta-encoded, bitpacked CSR rows backing both the
//!   token sets and the posting lists,
//! * [`scancount`] — the ScanCount inverted-list merge-count algorithm
//!   [Li et al., ICDE 2008], suited to the low thresholds ER needs, over
//!   packed CSR posting lists (AVX2 merge kernel behind the `simd`
//!   feature),
//! * [`reference`] — frozen naive implementations the property tests use
//!   as an oracle for the optimized layouts,
//! * [`epsilon`] — the range join (ε-Join),
//! * [`knn`] — the k-nearest-neighbor join with distinct-similarity
//!   semantics (Cone-style [Kocher & Augsten, SIGMOD 2019] adapted to
//!   ScanCount) and the `RVS` dataset-reversal parameter,
//! * [`grid`] — the Table IV configuration grids and the DkNN baseline,
//! * [`segmented`] — the LSM-style incremental index: immutable
//!   segments + mutable delta with tombstones, merged queries
//!   bitwise-equal to a full rebuild, background-plannable compaction,
//!   and manifest-based persistence,
//! * [`sharded`] — the out-of-core fan-out layer: one segmented index
//!   per deterministic shard, per-shard store files, queries k-way
//!   merged in shard order so results are byte-identical at any shard
//!   count × thread count.

pub mod artifact;
pub mod csr;
pub mod epsilon;
pub mod grid;
pub mod knn;
pub mod packed;
pub mod reference;
pub mod representation;
pub mod scancount;
pub mod segmented;
pub mod sharded;
#[cfg(feature = "simd")]
mod simd;
pub mod similarity;
pub mod store;
pub mod topk;

pub use artifact::TokenSetsArtifact;
pub use csr::{CsrTokenSets, TokenInterner};
pub use epsilon::EpsilonJoin;
pub use grid::{dknn_baseline, epsilon_grid, knn_grid, SparseGridResolution};
pub use knn::KnnJoin;
pub use packed::PackedRows;
pub use representation::RepresentationModel;
pub use scancount::{ScanCountIndex, ScanCountScratch};
pub use segmented::{
    MergeCursor, MergeScratch, PendingCompaction, PersistReport, SegmentedTokenSets,
    SparseManifest, SparseSegment,
};
pub use sharded::{ShardedCursor, ShardedIndex};
pub use similarity::SimilarityMeasure;
pub use store::{SparseCodec, SparseManifestCodec, SparsePackedCodec, SparseSegmentCodec};
pub use topk::TopKJoin;

#[cfg(test)]
mod proptests;
