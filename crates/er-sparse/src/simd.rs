//! Explicit-width kernels for the ScanCount merge loop.
//!
//! The merge loop is pure integer arithmetic, so any reformulation that
//! preserves traversal order is exactly candidate-set-identical to the
//! scalar reference in [`crate::scancount`] — there is no floating-point
//! rounding to pin down. Two variants live here, both behind the `simd`
//! cargo feature:
//!
//! * [`merge_list_avx2`] (x86_64, runtime-detected): gathers eight
//!   counters per step with `vpgatherdd` and turns the "first touch"
//!   test into a movemask, so the append becomes a branch-free
//!   write-then-advance.
//! * [`merge_list_branchless`] (any arch): the same write-then-advance
//!   trick without intrinsics — the fallback when AVX2 is absent and the
//!   aarch64 path (NEON has no gather, so explicit vectors buy nothing
//!   over this form).
//!
//! # Safety contract (both variants)
//!
//! Every id in `list` must be `< counts.len()` and ids within `list` must
//! be distinct — the posting-list invariants, established at build time
//! and re-validated by the store codec on decode ([`crate::packed`]).
//! The AVX2 gather additionally relies on ids fitting in `i32`, implied
//! by `counts.len() <= i32::MAX as usize`.

/// Runtime AVX2 availability (cached by the standard library).
#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Eight-wide gather + movemask merge step (see module docs and safety
/// contract; additionally `counts.len() <= i32::MAX`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn merge_list_avx2(list: &[u32], counts: &mut [u32], out: &mut Vec<(u32, u32)>) {
    use std::arch::x86_64::*;
    out.reserve(list.len());
    let mut len = out.len();
    let base = out.as_mut_ptr();
    let n = list.len();
    let mut i = 0;
    while i + 8 <= n {
        let ids = _mm256_loadu_si256(list.as_ptr().add(i) as *const __m256i);
        let cnt = _mm256_i32gather_epi32::<4>(counts.as_ptr() as *const i32, ids);
        let zero = _mm256_cmpeq_epi32(cnt, _mm256_setzero_si256());
        let first_touch = _mm256_movemask_ps(_mm256_castsi256_ps(zero)) as u32;
        let inc = _mm256_add_epi32(cnt, _mm256_set1_epi32(1));
        let mut id_arr = [0u32; 8];
        let mut inc_arr = [0u32; 8];
        _mm256_storeu_si256(id_arr.as_mut_ptr() as *mut __m256i, ids);
        _mm256_storeu_si256(inc_arr.as_mut_ptr() as *mut __m256i, inc);
        for l in 0..8 {
            let e = id_arr[l];
            // Unconditionally write the candidate, advance only on first
            // touch: the next write overwrites a non-candidate slot.
            std::ptr::write(base.add(len), (e, 0));
            len += ((first_touch >> l) & 1) as usize;
            *counts.get_unchecked_mut(e as usize) = inc_arr[l];
        }
        i += 8;
    }
    out.set_len(len);
    merge_list_branchless(&list[i..], counts, out);
}

/// Branch-free scalar merge step (see module docs and safety contract).
#[inline]
pub(crate) unsafe fn merge_list_branchless(
    list: &[u32],
    counts: &mut [u32],
    out: &mut Vec<(u32, u32)>,
) {
    out.reserve(list.len());
    let mut len = out.len();
    let base = out.as_mut_ptr();
    for &e in list {
        let c = *counts.get_unchecked(e as usize);
        std::ptr::write(base.add(len), (e, 0));
        len += (c == 0) as usize;
        *counts.get_unchecked_mut(e as usize) = c + 1;
    }
    out.set_len(len);
}
