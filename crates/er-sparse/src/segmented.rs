//! LSM-style segmented incremental sparse index.
//!
//! The monolithic [`TokenSetsArtifact`] answers queries over a frozen
//! snapshot of the indexed collection; any change means a full re-prepare.
//! This module refactors that into a [`SegmentedTokenSets`]: a stack of
//! immutable [`SparseSegment`]s — each exactly today's packed-postings /
//! token-set layout over a subset of the rows — plus a small mutable
//! in-memory delta and a tombstone set:
//!
//! * **Upserts** land in the delta (a `BTreeMap` of raw token sets keyed
//!   by stable row id); **deletes** record a tombstone. Both fire the
//!   `delta/apply` fault site *before* mutating, so an injected panic is
//!   a structured failure on a still-consistent index.
//! * **Flush** folds the delta into a fresh immutable segment (built with
//!   [`ScanCountIndex::build_with_sets`], queries re-interned per
//!   segment), appended at the top of the stack.
//! * **Compaction** folds every segment plus the delta into one fresh
//!   segment. It is split into a pure planning step
//!   ([`SegmentedTokenSets::plan_compact`], safe to run off-thread on a
//!   snapshot) and an atomic apply ([`SegmentedTokenSets::apply_compact`])
//!   so a serving process keeps answering lookups while the fold runs.
//!   Planning fires the `compact/<base_repr>` fault site before reading
//!   anything.
//! * **Queries** merge per-segment results with the delta under an
//!   ownership map: each live stable id is owned by exactly one layer
//!   (the newest one holding it), so shadowed rows and tombstoned rows
//!   are suppressed and every candidate set is *bitwise identical* to a
//!   full rebuild over the net dataset (the property tests below check
//!   this at 1 and 8 threads, with and without a store round-trip).
//! * **Persistence** writes each segment as its own store file (codec 10)
//!   plus a [`SparseManifest`] (codec 11) holding the stack's seqs, the
//!   delta, the tombstones and the raw query sets. The manifest write is
//!   the atomic adoption point: segments written by an interrupted
//!   compaction are never referenced and `er store gc` collects them.
//!
//! ## kNN across segments
//!
//! Per-segment scoring runs with the distinct-floor pruning *disabled*
//! ([`KnnJoin::score_query`] with `k = None`): a shadowed or tombstoned
//! high-similarity candidate inside one segment could otherwise tighten
//! that segment's floor and prune a live candidate that belongs in the
//! global top-k. The merged, owner-filtered list then goes through the
//! same [`KnnJoin::select_top_k`] cut as the monolithic path. The ε-join
//! keeps its per-candidate length filter — that one is an absolute
//! threshold per candidate, exact under any partitioning.

use crate::artifact::TokenSetsArtifact;
use crate::epsilon::EpsilonJoin;
use crate::knn::KnnJoin;
use crate::scancount::{ScanCountIndex, ScanCountScratch};
use crate::store::{SparseManifestCodec, SPARSE_MANIFEST_CODEC_ID};
use er_core::artifacts::{ArtifactKey, DiskTier, TierLoad};
use er_core::faults;
use er_core::hash::FastMap;
use er_core::parallel;
use er_core::timing::PhaseBreakdown;
use er_store::store::ArtifactCodec;
use er_store::{ArtifactStore, OpenMode, StoreMeta};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The store repr key of the segment with sequence number `seq` under a
/// segmented index rooted at `base` (the monolithic artifact's repr key).
pub fn segment_repr(base: &str, seq: u64) -> String {
    format!("{base}#seg{seq:016x}")
}

/// The store repr key of the manifest of a segmented index rooted at `base`.
pub fn manifest_repr(base: &str) -> String {
    format!("{base}#manifest")
}

/// One immutable segment: a contiguous [`TokenSetsArtifact`] over a
/// subset of the rows, plus the stable row id of each artifact row.
///
/// `ids` is strictly ascending, so artifact-dense id `d` maps to stable
/// id `ids[d]` monotonically — candidate orderings by dense id and by
/// stable id coincide, which is what keeps merged results bitwise equal
/// to a full rebuild.
#[derive(Debug)]
pub struct SparseSegment {
    /// Sequence number, unique within one segmented index's lifetime.
    pub seq: u64,
    /// Stable row id of each artifact row, strictly ascending.
    pub ids: Vec<u32>,
    /// The segment's own packed index + token sets; `query_sets` is the
    /// shared raw query collection interned against *this* segment.
    pub art: TokenSetsArtifact,
}

impl SparseSegment {
    /// Builds a segment from `(stable id, raw token set)` rows (ascending
    /// ids) and the shared raw query sets. Public for the shard builders
    /// ([`crate::sharded`], the out-of-core sweep), which assemble one
    /// segment per shard without staging rows through a delta map.
    pub fn build(seq: u64, rows: Vec<(u32, Vec<u64>)>, query_raw: &[Vec<u64>]) -> Self {
        let ids: Vec<u32> = rows.iter().map(|(id, _)| *id).collect();
        let sets: Vec<Vec<u64>> = rows.into_iter().map(|(_, set)| set).collect();
        let (index, index_sets) = ScanCountIndex::build_with_sets(&sets);
        let query_sets = index.intern_queries(query_raw);
        SparseSegment {
            seq,
            ids,
            art: TokenSetsArtifact {
                index_sets,
                query_sets,
                index,
            },
        }
    }

    /// Number of rows in this segment.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Exact heap footprint: the artifact's three flat structures plus the
    /// stable-id column (see [`TokenSetsArtifact::prepare`] for the same
    /// three terms). Store round-trips reproduce this byte-exactly.
    pub fn heap_bytes(&self) -> usize {
        self.art.index_sets.heap_bytes()
            + self.art.query_sets.heap_bytes()
            + self.art.index.heap_bytes()
            + self.ids.len() * 4
    }

    /// The raw token hashes of segment row `row` (dense ids mapped back
    /// through the segment's interner), in original tokenization order.
    fn raw_row(&self, row: usize, tokens_by_id: &[u64]) -> Vec<u64> {
        self.art
            .index_sets
            .row_vec(row)
            .into_iter()
            .map(|d| tokens_by_id[d as usize])
            .collect()
    }
}

/// Which layer owns (i.e. answers for) a live stable id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Owner {
    /// The mutable delta holds the newest version of the row.
    Delta,
    /// The segment with this seq holds the newest version.
    Seg(u64),
}

/// A planned compaction: the folded segment plus the snapshots needed to
/// apply it atomically later. Produced by
/// [`SegmentedTokenSets::plan_compact`] (pure, `&self`), consumed by
/// [`SegmentedTokenSets::apply_compact`]. Upserts and deletes may land
/// between the two — apply reconciles against the snapshots — but a
/// *flush* must not (it would reuse the planned sequence number); the
/// serving layer runs flushes and compactions on the same single-flight
/// lane to uphold that.
#[derive(Debug)]
pub struct PendingCompaction {
    /// Seqs of the segments the fold consumed.
    folded_seqs: Vec<u64>,
    /// The delta rows as they were at plan time; apply drops a delta row
    /// only if it still holds exactly this value (anything newer shadows
    /// the folded segment).
    folded_delta: Vec<(u32, Vec<u64>)>,
    /// The replacement segment.
    segment: Arc<SparseSegment>,
}

impl PendingCompaction {
    /// Rows in the folded segment.
    pub fn rows(&self) -> usize {
        self.segment.len()
    }

    /// How many segments the fold consumed.
    pub fn folded_segments(&self) -> usize {
        self.folded_seqs.len()
    }
}

/// Outcome of one [`SegmentedTokenSets::persist`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistReport {
    /// Segment files written this call.
    pub segments_written: usize,
    /// Segment files already on disk and still valid (immutable, so a
    /// matching file never needs rewriting).
    pub segments_reused: usize,
    /// Superseded segment files (referenced by the previous manifest only)
    /// deleted after the manifest swap.
    pub removed: usize,
}

/// The serialized mutable state of a segmented index: everything except
/// the immutable segments themselves, which live in their own store files
/// keyed by [`segment_repr`]. Codec 11 round-trips this struct.
#[derive(Debug, Clone)]
pub struct SparseManifest {
    /// Next unused segment sequence number.
    pub next_seq: u64,
    /// The repr key of the monolithic artifact this index grew out of.
    pub base_repr: String,
    /// Segment seqs in stack order (oldest data first).
    pub segment_seqs: Vec<u64>,
    /// Tombstoned stable ids, ascending.
    pub tombstones: Vec<u32>,
    /// Delta rows `(stable id, raw token set)`, ascending ids.
    pub delta: Vec<(u32, Vec<u64>)>,
    /// Raw query-side token sets, one per query row.
    pub query_raw: Vec<Vec<u64>>,
}

impl SparseManifest {
    /// The repr keys of the segment files this manifest references.
    pub fn segment_reprs(&self) -> Vec<String> {
        self.segment_seqs
            .iter()
            .map(|&seq| segment_repr(&self.base_repr, seq))
            .collect()
    }

    /// Deterministic heap estimate (also the stored `heap_bytes`, so the
    /// codec keeps exact parity): string + flat arrays + per-row terms.
    pub fn heap_bytes(&self) -> usize {
        self.base_repr.len()
            + self.segment_seqs.len() * 8
            + self.tombstones.len() * 4
            + delta_heap_bytes(self.delta.iter().map(|(_, set)| set.len()))
            + query_heap_bytes(&self.query_raw)
    }
}

/// Heap estimate of delta rows: id + Vec header vs. 12 bytes flat, plus
/// the tokens.
fn delta_heap_bytes(lens: impl Iterator<Item = usize>) -> usize {
    lens.map(|len| 12 + len * 8).sum()
}

/// Heap estimate of the raw query sets: one Vec header per row plus the
/// tokens.
fn query_heap_bytes(query_raw: &[Vec<u64>]) -> usize {
    query_raw.iter().map(|set| 24 + set.len() * 8).sum()
}

/// The segmented incremental index (see module docs).
#[derive(Debug)]
pub struct SegmentedTokenSets {
    /// Repr key of the monolithic artifact this index answers for; the
    /// store keys of every segment and the manifest derive from it.
    base_repr: String,
    /// Immutable segments in stack order (oldest data first: flushes
    /// append, compaction replaces the folded prefix).
    segments: Vec<Arc<SparseSegment>>,
    /// Mutable rows not yet folded into a segment, by stable id.
    delta: BTreeMap<u32, Vec<u64>>,
    /// Deleted stable ids still present in some segment. Disjoint from
    /// the delta's keys by construction.
    tombstones: BTreeSet<u32>,
    /// Raw query-side token sets; every segment interns them on build.
    query_raw: Vec<Vec<u64>>,
    /// Next unused segment sequence number.
    next_seq: u64,
    /// Live stable id -> owning layer. Rebuilt after every structural
    /// change; queries consult it to suppress shadowed/tombstoned rows.
    owner: FastMap<u32, Owner>,
    /// Every stable id present in any segment (live or tombstoned); the
    /// set tombstones must stay within to remain meaningful.
    in_segments: BTreeSet<u32>,
}

impl SegmentedTokenSets {
    /// An empty segmented index for `base_repr` with the given raw query
    /// sets.
    pub fn new(base_repr: impl Into<String>, query_raw: Vec<Vec<u64>>) -> Self {
        SegmentedTokenSets {
            base_repr: base_repr.into(),
            segments: Vec::new(),
            delta: BTreeMap::new(),
            tombstones: BTreeSet::new(),
            query_raw,
            next_seq: 0,
            owner: FastMap::default(),
            in_segments: BTreeSet::new(),
        }
    }

    /// Wraps an existing monolithic artifact as segment 0 (stable ids are
    /// the artifact's dense ids). `query_raw` must be the raw token sets
    /// the artifact's `query_sets` were interned from — the serving layer
    /// re-tokenizes the view with the artifact's own model, which is
    /// deterministic.
    pub fn from_artifact(
        base_repr: impl Into<String>,
        art: Arc<TokenSetsArtifact>,
        query_raw: Vec<Vec<u64>>,
    ) -> Self {
        let ids: Vec<u32> = (0..art.index.len() as u32).collect();
        // The cache-loaded artifact is shared, not copied: segment 0
        // reuses its structures via the Arc, re-wrapped with the id
        // column. (TokenSetsArtifact is plain data; clone-by-rebuild
        // would double resident memory for the largest layer.)
        let art = Arc::try_unwrap(art).unwrap_or_else(|arc| TokenSetsArtifact {
            index_sets: arc.index_sets.clone(),
            query_sets: arc.query_sets.clone(),
            index: arc.index.clone(),
        });
        let segment = SparseSegment { seq: 0, ids, art };
        let mut this = Self::new(base_repr, query_raw);
        this.next_seq = 1;
        this.segments.push(Arc::new(segment));
        this.rebuild_owner();
        this
    }

    /// The repr key of the monolithic artifact this index answers for.
    pub fn base_repr(&self) -> &str {
        &self.base_repr
    }

    /// Number of immutable segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Rows currently in the mutable delta.
    pub fn delta_rows(&self) -> usize {
        self.delta.len()
    }

    /// Tombstoned ids currently tracked.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Live (query-visible) rows across all layers.
    pub fn live_rows(&self) -> usize {
        self.owner.len()
    }

    /// Query rows this index answers for.
    pub fn query_rows(&self) -> usize {
        self.query_raw.len()
    }

    /// The raw token set of query row `j`.
    pub fn query_raw(&self, j: usize) -> &[u64] {
        &self.query_raw[j]
    }

    /// Deterministic heap estimate for cache budgeting: exact segment
    /// footprints plus flat estimates of the delta, tombstones and raw
    /// queries. The derived ownership maps are rebuildable bookkeeping
    /// and deliberately excluded, keeping the figure a pure function of
    /// the persisted state (so a store round-trip budgets identically).
    pub fn heap_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.heap_bytes()).sum::<usize>()
            + delta_heap_bytes(self.delta.values().map(Vec::len))
            + self.tombstones.len() * 4
            + query_heap_bytes(&self.query_raw)
    }

    /// Fires the `compact/<base_repr>` fault site (the `enabled` guard
    /// skips the key formatting on the hot path).
    fn fire_compact(&self) {
        if faults::enabled() {
            faults::fire(&format!("compact/{}", self.base_repr));
        }
    }

    /// Inserts or replaces the row `id` with a raw (duplicate-free) token
    /// set. Fires `delta/apply` before mutating anything.
    pub fn upsert(&mut self, id: u32, tokens: Vec<u64>) {
        faults::fire("delta/apply");
        self.tombstones.remove(&id);
        self.delta.insert(id, tokens);
        self.owner.insert(id, Owner::Delta);
    }

    /// Deletes the row `id` (a no-op id is fine). Fires `delta/apply`
    /// before mutating anything.
    ///
    /// The tombstone is recorded even when the row currently lives only
    /// in the delta: a compaction planned before this delete may be about
    /// to install a segment that still contains the row, and only the
    /// tombstone keeps it suppressed through that apply. Tombstones with
    /// no segment backing are pruned on the next structural rebuild.
    pub fn delete(&mut self, id: u32) {
        faults::fire("delta/apply");
        self.delta.remove(&id);
        self.owner.remove(&id);
        self.tombstones.insert(id);
    }

    /// Recomputes `owner`/`in_segments` from scratch: segments in stack
    /// order (newer overwrite older), then the delta on top, then prunes
    /// tombstones that no longer suppress anything.
    fn rebuild_owner(&mut self) {
        self.owner.clear();
        self.in_segments.clear();
        for seg in &self.segments {
            for &id in &seg.ids {
                self.in_segments.insert(id);
                if !self.tombstones.contains(&id) {
                    self.owner.insert(id, Owner::Seg(seg.seq));
                }
            }
        }
        for &id in self.delta.keys() {
            self.owner.insert(id, Owner::Delta);
        }
        let in_segments = &self.in_segments;
        self.tombstones.retain(|id| in_segments.contains(id));
    }

    /// Folds the delta into a fresh immutable segment appended to the
    /// stack. Returns `false` when the delta is empty. Fires the
    /// `compact/<base_repr>` site before mutating.
    pub fn flush(&mut self) -> bool {
        if self.delta.is_empty() {
            return false;
        }
        self.fire_compact();
        let rows: Vec<(u32, Vec<u64>)> = std::mem::take(&mut self.delta).into_iter().collect();
        let segment = SparseSegment::build(self.next_seq, rows, &self.query_raw);
        self.next_seq += 1;
        self.segments.push(Arc::new(segment));
        self.rebuild_owner();
        true
    }

    /// Plans a full compaction: folds every live row (across all segments
    /// and the delta) into one fresh segment. Pure — `&self` — so a
    /// serving process runs it on a worker while lookups continue.
    /// Returns `None` when there is nothing to fold (at most one segment,
    /// empty delta, no tombstones). Fires `compact/<base_repr>` first.
    pub fn plan_compact(&self) -> Option<PendingCompaction> {
        if self.segments.len() <= 1 && self.delta.is_empty() && self.tombstones.is_empty() {
            return None;
        }
        self.fire_compact();
        let by_seq: FastMap<u64, usize> = self
            .segments
            .iter()
            .enumerate()
            .map(|(i, s)| (s.seq, i))
            .collect();
        // Interner hashes are recovered lazily, once per segment that
        // still owns at least one row.
        let mut tokens_cache: Vec<Option<Vec<u64>>> = vec![None; self.segments.len()];
        let mut live: Vec<u32> = self.owner.keys().copied().collect();
        live.sort_unstable();
        let rows: Vec<(u32, Vec<u64>)> = live
            .into_iter()
            .map(|id| {
                let set = match self.owner[&id] {
                    Owner::Delta => self.delta[&id].clone(),
                    Owner::Seg(seq) => {
                        let si = by_seq[&seq];
                        let seg = &self.segments[si];
                        let tokens =
                            tokens_cache[si].get_or_insert_with(|| seg.art.index.raw_parts().0);
                        let row = seg
                            .ids
                            .binary_search(&id)
                            .expect("owner points into segment");
                        seg.raw_row(row, tokens)
                    }
                };
                (id, set)
            })
            .collect();
        let folded_delta: Vec<(u32, Vec<u64>)> = self
            .delta
            .iter()
            .map(|(id, set)| (*id, set.clone()))
            .collect();
        Some(PendingCompaction {
            folded_seqs: self.segments.iter().map(|s| s.seq).collect(),
            folded_delta,
            segment: Arc::new(SparseSegment::build(self.next_seq, rows, &self.query_raw)),
        })
    }

    /// Installs a planned compaction: the folded segment replaces the
    /// segments it consumed (keeping any newer ones), and delta rows are
    /// dropped only where they still hold the exact value the plan
    /// folded — a newer upsert keeps shadowing, a delete's tombstone
    /// keeps suppressing.
    pub fn apply_compact(&mut self, pending: PendingCompaction) {
        let PendingCompaction {
            folded_seqs,
            folded_delta,
            segment,
        } = pending;
        self.next_seq = self.next_seq.max(segment.seq + 1);
        let mut stack = vec![segment];
        stack.extend(
            std::mem::take(&mut self.segments)
                .into_iter()
                .filter(|s| !folded_seqs.contains(&s.seq)),
        );
        self.segments = stack;
        for (id, set) in folded_delta {
            if self.delta.get(&id) == Some(&set) {
                self.delta.remove(&id);
            }
        }
        self.rebuild_owner();
    }

    /// Plan + apply in one step (the offline path). Returns `true` when a
    /// fold happened.
    pub fn compact(&mut self) -> bool {
        match self.plan_compact() {
            Some(pending) => {
                self.apply_compact(pending);
                true
            }
            None => false,
        }
    }

    /// A reusable query cursor over the current layers.
    pub fn cursor(&self) -> MergeCursor<'_> {
        self.cursor_with(MergeScratch::default())
    }

    /// A merge cursor reusing caller-held scratch — the serving path,
    /// where the index lives behind a lock but per-worker scratch should
    /// survive across lock acquisitions.
    pub fn cursor_with(&self, scratch: MergeScratch) -> MergeCursor<'_> {
        MergeCursor { seg: self, scratch }
    }

    /// ε-join candidates for every query row: one ascending stable-id
    /// list per row, chunked over `threads` workers (byte-identical for
    /// any worker count).
    pub fn epsilon_batch(&self, join: &EpsilonJoin, threads: usize) -> Vec<Vec<u32>> {
        let chunk = parallel::query_chunk_len(self.query_raw.len());
        let per_chunk =
            parallel::par_map_chunks_with(threads, &self.query_raw, chunk, |offset, part| {
                let mut cursor = self.cursor();
                (0..part.len())
                    .map(|local| cursor.epsilon_row(join, offset + local))
                    .collect::<Vec<_>>()
            });
        per_chunk.into_iter().flatten().collect()
    }

    /// kNN neighbors for every query row: `(stable id, similarity)`
    /// sorted by descending similarity then ascending id, chunked over
    /// `threads` workers (byte-identical for any worker count).
    pub fn knn_batch(&self, join: &KnnJoin, threads: usize) -> Vec<Vec<(u32, f64)>> {
        let chunk = parallel::query_chunk_len(self.query_raw.len());
        let per_chunk =
            parallel::par_map_chunks_with(threads, &self.query_raw, chunk, |offset, part| {
                let mut cursor = self.cursor();
                (0..part.len())
                    .map(|local| cursor.knn_row(join, offset + local))
                    .collect::<Vec<_>>()
            });
        per_chunk.into_iter().flatten().collect()
    }

    /// The manifest describing the current state (segments by reference).
    pub fn manifest(&self) -> SparseManifest {
        SparseManifest {
            next_seq: self.next_seq,
            base_repr: self.base_repr.clone(),
            segment_seqs: self.segments.iter().map(|s| s.seq).collect(),
            tombstones: self.tombstones.iter().copied().collect(),
            delta: self
                .delta
                .iter()
                .map(|(id, set)| (*id, set.clone()))
                .collect(),
            query_raw: self.query_raw.clone(),
        }
    }

    /// Persists the index: every segment as its own immutable store file
    /// (skipped when already on disk and valid), then the manifest via an
    /// atomic overwrite — the adoption point. Segment files the previous
    /// manifest referenced but the new one does not are deleted last; a
    /// crash anywhere leaves either the old or the new manifest fully
    /// consistent, plus at worst unreferenced segment files that
    /// `er store gc` collects.
    pub fn persist(&self, store: &ArtifactStore, dataset: u64) -> Result<PersistReport, String> {
        if store.mode() == OpenMode::ReadOnly {
            return Err("cannot persist into a read-only store".to_owned());
        }
        let manifest_key = ArtifactKey::new(dataset, manifest_repr(&self.base_repr));
        // The previous manifest's segment list, read before anything
        // changes: its no-longer-referenced segments are deleted after
        // the swap.
        let old_seqs: Vec<u64> = match store.load(&manifest_key) {
            TierLoad::Hit { prepared, .. } => {
                prepared.downcast::<SparseManifest>().segment_seqs.clone()
            }
            _ => Vec::new(),
        };
        let mut report = PersistReport::default();
        for seg in &self.segments {
            let key = ArtifactKey::new(dataset, segment_repr(&self.base_repr, seg.seq));
            let prepared = er_core::filter::Prepared::from_arc(
                Arc::clone(seg) as Arc<dyn std::any::Any + Send + Sync>,
                seg.heap_bytes(),
                PhaseBreakdown::new(),
            );
            match store.store(&key, &prepared)? {
                true => report.segments_written += 1,
                false => report.segments_reused += 1,
            }
        }
        let manifest = self.manifest();
        let sections = SparseManifestCodec
            .encode(&manifest)
            .expect("manifest always encodes");
        let meta = StoreMeta {
            codec_id: SPARSE_MANIFEST_CODEC_ID,
            dataset_fp: dataset,
            repr: manifest_key.repr.clone(),
            prepare_nanos: 0,
            heap_bytes: manifest.heap_bytes() as u64,
        };
        er_store::format::write_store(&store.file_path(&manifest_key), &meta, &sections)
            .map_err(|e| e.to_string())?;
        let current: BTreeSet<u64> = manifest.segment_seqs.iter().copied().collect();
        for seq in old_seqs {
            if !current.contains(&seq) {
                let key = ArtifactKey::new(dataset, segment_repr(&self.base_repr, seq));
                if std::fs::remove_file(store.file_path(&key)).is_ok() {
                    report.removed += 1;
                }
            }
        }
        Ok(report)
    }

    /// Restores a segmented index from its manifest plus segment files.
    /// `Ok(None)` when no manifest is stored under this key; a present
    /// but unreadable manifest, or a referenced segment that fails to
    /// load, is a structured error (callers fall back to a full rebuild).
    pub fn load(
        store: &ArtifactStore,
        dataset: u64,
        base_repr: &str,
    ) -> Result<Option<Self>, String> {
        let manifest_key = ArtifactKey::new(dataset, manifest_repr(base_repr));
        let manifest = match store.load(&manifest_key) {
            TierLoad::Miss => return Ok(None),
            TierLoad::Failed(msg) => return Err(msg),
            TierLoad::Hit { prepared, .. } => prepared.downcast::<SparseManifest>().clone(),
        };
        let mut segments = Vec::with_capacity(manifest.segment_seqs.len());
        for &seq in &manifest.segment_seqs {
            let key = ArtifactKey::new(dataset, segment_repr(base_repr, seq));
            let segment = match store.load(&key) {
                TierLoad::Hit { prepared, .. } => prepared
                    .arc()
                    .downcast::<SparseSegment>()
                    .map_err(|_| format!("segment {} decoded to a foreign type", key.repr))?,
                TierLoad::Miss => {
                    return Err(format!("manifest references missing segment {}", key.repr))
                }
                TierLoad::Failed(msg) => return Err(msg),
            };
            segments.push(segment);
        }
        Self::from_parts(manifest, segments).map(Some)
    }

    /// Assembles the index from a decoded manifest plus its segments, in
    /// manifest order — the shared tail of [`SegmentedTokenSets::load`]
    /// and cache-mediated restores (the serving daemon loads the manifest
    /// and segments through the artifact cache so its startup counters
    /// stay honest).
    pub fn from_parts(
        manifest: SparseManifest,
        segments: Vec<Arc<SparseSegment>>,
    ) -> Result<Self, String> {
        if segments.len() != manifest.segment_seqs.len() {
            return Err(format!(
                "manifest lists {} segment(s), got {}",
                manifest.segment_seqs.len(),
                segments.len(),
            ));
        }
        for (seg, &seq) in segments.iter().zip(&manifest.segment_seqs) {
            if seg.seq != seq {
                return Err(format!(
                    "segment seq {} does not match manifest order (expected {seq})",
                    seg.seq,
                ));
            }
        }
        let next_seq = manifest
            .segment_seqs
            .iter()
            .copied()
            .max()
            .map_or(manifest.next_seq, |m| manifest.next_seq.max(m + 1));
        let mut this = SegmentedTokenSets {
            base_repr: manifest.base_repr,
            segments,
            delta: manifest.delta.into_iter().collect(),
            tombstones: manifest.tombstones.into_iter().collect(),
            query_raw: manifest.query_raw,
            next_seq,
            owner: FastMap::default(),
            in_segments: BTreeSet::new(),
        };
        this.rebuild_owner();
        Ok(this)
    }
}

/// Per-worker scratch for merged queries: the ScanCount buffers plus the
/// sorted copy of the current query row the delta probes binary-search.
#[derive(Debug, Default)]
pub struct MergeScratch {
    scan: ScanCountScratch,
    hits: Vec<(u32, u32)>,
    sorted_query: Vec<u64>,
}

/// Answers ε/kNN queries across segments + delta with tombstone and
/// shadow suppression (see module docs). One cursor per worker; results
/// are bitwise identical to the monolithic query paths over a full
/// rebuild of the net dataset.
pub struct MergeCursor<'a> {
    seg: &'a SegmentedTokenSets,
    scratch: MergeScratch,
}

impl MergeCursor<'_> {
    /// Releases the cursor's scratch for reuse with a later cursor.
    pub fn into_scratch(self) -> MergeScratch {
        self.scratch
    }

    /// Sorts the raw tokens of query row `j` into the scratch for the
    /// delta's binary-search overlap counting.
    fn sort_query(&mut self, j: usize) {
        self.scratch.sorted_query.clear();
        self.scratch
            .sorted_query
            .extend_from_slice(&self.seg.query_raw[j]);
        self.scratch.sorted_query.sort_unstable();
    }

    /// Set overlap of a delta row with the (sorted) query tokens. Both
    /// sides are duplicate-free, so the count is exactly `|A ∩ B|` — the
    /// same integer ScanCount produces for this pair in a full rebuild.
    fn delta_overlap(tokens: &[u64], sorted_query: &[u64]) -> usize {
        tokens
            .iter()
            .filter(|t| sorted_query.binary_search(t).is_ok())
            .count()
    }

    /// ε-join candidates of query row `j`: live stable ids, ascending —
    /// bitwise what [`EpsilonJoin::query_row_into`] yields on a full
    /// rebuild (dense ids map monotonically to stable ids).
    pub fn epsilon_row(&mut self, join: &EpsilonJoin, j: usize) -> Vec<u32> {
        let mut out = Vec::new();
        let qlen = self.seg.query_raw[j].len();
        let (lo, hi) = join.measure.size_bounds(qlen, join.threshold);
        for seg in &self.seg.segments {
            seg.art.index.query_row_with(
                &mut self.scratch.scan,
                &seg.art.query_sets,
                j,
                &mut self.scratch.hits,
            );
            for &(i, overlap) in self.scratch.hits.iter() {
                let id = seg.ids[i as usize];
                if self.seg.owner.get(&id) != Some(&Owner::Seg(seg.seq)) {
                    continue; // shadowed by a newer layer, or tombstoned
                }
                let ilen = seg.art.index.set_size(i);
                if ilen < lo || ilen > hi {
                    continue;
                }
                let sim = join.measure.compute(overlap as usize, ilen, qlen);
                if sim >= join.threshold {
                    out.push(id);
                }
            }
        }
        if !self.seg.delta.is_empty() {
            self.sort_query(j);
            for (&id, tokens) in &self.seg.delta {
                let overlap = Self::delta_overlap(tokens, &self.scratch.sorted_query);
                if overlap == 0 {
                    continue; // ScanCount never surfaces disjoint pairs
                }
                let ilen = tokens.len();
                if ilen < lo || ilen > hi {
                    continue;
                }
                let sim = join.measure.compute(overlap, ilen, qlen);
                if sim >= join.threshold {
                    out.push(id);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// kNN neighbors of query row `j`: `(stable id, similarity)` after
    /// the global distinct-top-k cut — bitwise what [`KnnJoin::query_row`]
    /// yields on a full rebuild. Per-segment scoring disables the
    /// distinct-floor pruning (see module docs for why that is required
    /// for exactness under suppression).
    pub fn knn_row(&mut self, join: &KnnJoin, j: usize) -> Vec<(u32, f64)> {
        let mut merged: Vec<(u32, f64)> = Vec::new();
        for seg in &self.seg.segments {
            let scored = join.score_query(
                &seg.art,
                j,
                None,
                &mut self.scratch.scan,
                &mut self.scratch.hits,
            );
            for (i, sim) in scored {
                let id = seg.ids[i as usize];
                if self.seg.owner.get(&id) == Some(&Owner::Seg(seg.seq)) {
                    merged.push((id, sim));
                }
            }
        }
        if !self.seg.delta.is_empty() {
            let qlen = self.seg.query_raw[j].len();
            self.sort_query(j);
            for (&id, tokens) in &self.seg.delta {
                let overlap = Self::delta_overlap(tokens, &self.scratch.sorted_query);
                if overlap == 0 {
                    continue;
                }
                let sim = join.measure.compute(overlap, tokens.len(), qlen);
                if sim > 0.0 {
                    merged.push((id, sim));
                }
            }
        }
        KnnJoin::select_top_k(join.k, &mut merged);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representation::RepresentationModel;
    use crate::similarity::SimilarityMeasure;
    use crate::store::{SparseManifestCodec, SparsePackedCodec, SparseSegmentCodec};
    use er_text::Cleaner;
    use proptest::prelude::*;

    fn model() -> RepresentationModel {
        RepresentationModel::parse("T1G").expect("T1G")
    }

    fn toks(text: &str) -> Vec<u64> {
        model().token_set(text, &Cleaner::off())
    }

    fn queries() -> Vec<Vec<u64>> {
        ["alpha beta", "c d e", "alpha", "", "zz alpha d"]
            .iter()
            .map(|t| toks(t))
            .collect()
    }

    fn epsilon(threshold: f64, measure: SimilarityMeasure) -> EpsilonJoin {
        EpsilonJoin {
            cleaning: false,
            model: model(),
            measure,
            threshold,
        }
    }

    fn knn(k: usize, measure: SimilarityMeasure) -> KnnJoin {
        KnnJoin {
            cleaning: false,
            model: model(),
            measure,
            k,
            reversed: false,
        }
    }

    /// Full-rebuild oracle over the net rows: the monolithic artifact
    /// plus the ascending live-id column its dense ids map through.
    fn oracle(
        rows: &BTreeMap<u32, Vec<u64>>,
        query_raw: &[Vec<u64>],
    ) -> (TokenSetsArtifact, Vec<u32>) {
        let ids: Vec<u32> = rows.keys().copied().collect();
        let sets: Vec<Vec<u64>> = rows.values().cloned().collect();
        let (index, index_sets) = ScanCountIndex::build_with_sets(&sets);
        let query_sets = index.intern_queries(query_raw);
        (
            TokenSetsArtifact {
                index_sets,
                query_sets,
                index,
            },
            ids,
        )
    }

    fn oracle_epsilon(
        join: &EpsilonJoin,
        art: &TokenSetsArtifact,
        ids: &[u32],
        j: usize,
    ) -> Vec<u32> {
        let mut scratch = ScanCountScratch::default();
        let mut hits = Vec::new();
        let mut dense = Vec::new();
        join.query_row_into(art, j, &mut scratch, &mut hits, &mut dense);
        dense.into_iter().map(|d| ids[d as usize]).collect()
    }

    fn oracle_knn(
        join: &KnnJoin,
        art: &TokenSetsArtifact,
        ids: &[u32],
        j: usize,
    ) -> Vec<(u32, f64)> {
        let mut scratch = ScanCountScratch::default();
        let mut hits = Vec::new();
        join.query_row(art, j, &mut scratch, &mut hits)
            .into_iter()
            .map(|(d, s)| (ids[d as usize], s))
            .collect()
    }

    /// Asserts every query row of `seg` is bitwise equal to the oracle at
    /// 1 and 8 threads, for a spread of join configurations.
    fn assert_matches_oracle(seg: &SegmentedTokenSets, rows: &BTreeMap<u32, Vec<u64>>) {
        let query_raw: Vec<Vec<u64>> = (0..seg.query_rows())
            .map(|j| seg.query_raw(j).to_vec())
            .collect();
        let (art, ids) = oracle(rows, &query_raw);
        assert_eq!(seg.live_rows(), rows.len(), "live-row accounting");
        for join in [
            epsilon(0.0, SimilarityMeasure::Jaccard),
            epsilon(0.34, SimilarityMeasure::Cosine),
            epsilon(0.5, SimilarityMeasure::Dice),
            epsilon(1.0, SimilarityMeasure::Jaccard),
        ] {
            let want: Vec<Vec<u32>> = (0..query_raw.len())
                .map(|j| oracle_epsilon(&join, &art, &ids, j))
                .collect();
            for threads in [1, 8] {
                assert_eq!(
                    seg.epsilon_batch(&join, threads),
                    want,
                    "epsilon t={} threads={threads}",
                    join.threshold
                );
            }
        }
        for join in [
            knn(1, SimilarityMeasure::Cosine),
            knn(2, SimilarityMeasure::Jaccard),
        ] {
            let want: Vec<Vec<(u32, f64)>> = (0..query_raw.len())
                .map(|j| oracle_knn(&join, &art, &ids, j))
                .collect();
            for threads in [1, 8] {
                assert_eq!(
                    seg.knn_batch(&join, threads),
                    want,
                    "knn k={} threads={threads}",
                    join.k
                );
            }
        }
    }

    fn seeded() -> (SegmentedTokenSets, BTreeMap<u32, Vec<u64>>) {
        let mut seg = SegmentedTokenSets::new("sparse:test", queries());
        let mut net = BTreeMap::new();
        for (id, text) in [
            (0u32, "alpha beta c"),
            (3, "c d"),
            (5, "alpha"),
            (7, "d e zz"),
            (9, "beta beta alpha"),
        ] {
            seg.upsert(id, toks(text));
            net.insert(id, toks(text));
        }
        (seg, net)
    }

    #[test]
    fn delta_only_index_matches_rebuild() {
        let (seg, net) = seeded();
        assert_eq!(seg.segment_count(), 0);
        assert_eq!(seg.delta_rows(), 5);
        assert_matches_oracle(&seg, &net);
    }

    #[test]
    fn flush_and_mixed_layers_match_rebuild() {
        let (mut seg, mut net) = seeded();
        assert!(seg.flush());
        assert!(!seg.flush(), "empty delta flush is a no-op");
        assert_eq!((seg.segment_count(), seg.delta_rows()), (1, 0));
        // Overwrite one segment row, add a new delta row, delete one
        // segment row: all three suppression paths active at once.
        seg.upsert(3, toks("changed entirely"));
        net.insert(3, toks("changed entirely"));
        seg.upsert(11, toks("alpha d"));
        net.insert(11, toks("alpha d"));
        seg.delete(7);
        net.remove(&7);
        assert_eq!(seg.tombstone_count(), 1);
        assert_matches_oracle(&seg, &net);
        // A second flush stacks a second segment; still exact.
        assert!(seg.flush());
        assert_eq!(seg.segment_count(), 2);
        assert_matches_oracle(&seg, &net);
        // Compaction folds to one segment and drops the tombstone.
        assert!(seg.compact());
        assert_eq!(
            (seg.segment_count(), seg.delta_rows(), seg.tombstone_count()),
            (1, 0, 0)
        );
        assert_matches_oracle(&seg, &net);
        assert!(!seg.compact(), "fully folded index has nothing to compact");
    }

    #[test]
    fn delete_then_reinsert_same_row_matches_scratch_prepare() {
        let (mut seg, mut net) = seeded();
        seg.flush();
        seg.delete(5);
        seg.upsert(5, toks("resurrected text"));
        net.insert(5, toks("resurrected text"));
        assert_eq!(seg.tombstone_count(), 0, "reinsert clears the tombstone");
        assert_matches_oracle(&seg, &net);
        // And when the resurrection is flushed on top of the old segment.
        seg.flush();
        assert_matches_oracle(&seg, &net);
    }

    #[test]
    fn delete_of_delta_only_row_matches_scratch_prepare() {
        let (mut seg, mut net) = seeded();
        seg.flush();
        seg.upsert(20, toks("short lived"));
        seg.delete(20); // never reached a segment
        net.remove(&20);
        assert_eq!(seg.delta_rows(), 0);
        assert_matches_oracle(&seg, &net);
        // The unbacked tombstone is pruned at the next structural change.
        seg.upsert(21, toks("alpha"));
        net.insert(21, toks("alpha"));
        seg.flush();
        assert!(!seg.tombstones.contains(&20));
        assert_matches_oracle(&seg, &net);
    }

    #[test]
    fn delete_all_yields_empty_candidate_sets() {
        let (mut seg, mut net) = seeded();
        seg.flush();
        for id in [0u32, 3, 5, 7, 9] {
            seg.delete(id);
            net.remove(&id);
        }
        assert_eq!(seg.live_rows(), 0);
        let join = epsilon(0.0, SimilarityMeasure::Jaccard);
        for row in seg.epsilon_batch(&join, 1) {
            assert!(row.is_empty());
        }
        for row in seg.knn_batch(&knn(3, SimilarityMeasure::Cosine), 1) {
            assert!(row.is_empty());
        }
        assert_matches_oracle(&seg, &net);
        // Compacting the empty net state folds to one empty segment.
        assert!(seg.compact());
        assert_eq!(seg.tombstone_count(), 0);
        assert_matches_oracle(&seg, &net);
    }

    #[test]
    fn from_artifact_wraps_the_monolith_as_segment_zero() {
        let view = er_core::schema::TextView::new(
            vec!["alpha beta c".into(), "c d".into(), "alpha".into()],
            vec![
                "alpha beta".into(),
                "c d e".into(),
                "alpha".into(),
                "".into(),
                "zz alpha d".into(),
            ],
        );
        let prepared = TokenSetsArtifact::prepare(&view, false, model(), false);
        let art = prepared
            .arc()
            .downcast::<TokenSetsArtifact>()
            .expect("sparse artifact");
        let mut seg = SegmentedTokenSets::from_artifact("sparse:test", art, queries());
        let mut net: BTreeMap<u32, Vec<u64>> = [
            (0u32, toks("alpha beta c")),
            (1, toks("c d")),
            (2, toks("alpha")),
        ]
        .into_iter()
        .collect();
        assert_eq!((seg.segment_count(), seg.live_rows()), (1, 3));
        assert_matches_oracle(&seg, &net);
        seg.upsert(1, toks("c d brand new"));
        net.insert(1, toks("c d brand new"));
        seg.delete(0);
        net.remove(&0);
        assert_matches_oracle(&seg, &net);
    }

    #[test]
    fn injected_delta_fault_leaves_state_unchanged() {
        let (mut seg, net) = seeded();
        seg.flush();
        let before = seg.heap_bytes();
        let plan = faults::FaultPlan::parse("panic@delta/apply").expect("plan");
        faults::with_plan(plan, || {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                seg.upsert(99, toks("never lands"));
            }))
            .expect_err("fault fires");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("injected fault"), "{msg}");
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                seg.delete(0);
            }))
            .expect_err("fault fires");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("injected fault"), "{msg}");
        });
        assert_eq!(seg.heap_bytes(), before);
        assert_matches_oracle(&seg, &net);
    }

    #[test]
    fn injected_compact_fault_leaves_state_unchanged() {
        let (mut seg, mut net) = seeded();
        seg.flush();
        seg.upsert(12, toks("alpha zz"));
        net.insert(12, toks("alpha zz"));
        let before = (seg.segment_count(), seg.delta_rows(), seg.heap_bytes());
        // Repr keys contain ':' (reserved by the spec grammar for
        // options), so the site is addressed with a trailing wildcard.
        let plan = faults::FaultPlan::parse("panic@compact/sparse*").expect("plan");
        faults::with_plan(plan, || {
            for op in ["flush", "compact"] {
                let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match op {
                    "flush" => seg.flush(),
                    _ => seg.compact(),
                }))
                .expect_err("fault fires");
                let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
                assert!(msg.contains("injected fault"), "{op}: {msg}");
            }
        });
        assert_eq!(
            (seg.segment_count(), seg.delta_rows(), seg.heap_bytes()),
            before
        );
        assert_matches_oracle(&seg, &net);
        // Once the plan is cleared the same operations succeed.
        assert!(seg.flush());
        assert!(seg.compact());
        assert_matches_oracle(&seg, &net);
    }

    #[test]
    fn delete_between_plan_and_apply_stays_deleted() {
        let (mut seg, mut net) = seeded();
        seg.flush();
        seg.upsert(13, toks("transient alpha"));
        let pending = seg.plan_compact().expect("something to fold");
        // Concurrent mutations while the "worker" folds: a delete of a
        // planned delta row, and an upsert newer than the folded value.
        seg.delete(13);
        seg.upsert(3, toks("newer than the fold"));
        net.insert(3, toks("newer than the fold"));
        seg.apply_compact(pending);
        assert_matches_oracle(&seg, &net);
        assert!(seg.delta.contains_key(&3), "newer upsert still shadowing");
    }

    fn store_in(name: &str) -> (ArtifactStore, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("er_segmented_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(
            &dir,
            vec![
                Box::new(SparsePackedCodec),
                Box::new(SparseSegmentCodec),
                Box::new(SparseManifestCodec),
            ],
        )
        .expect("open");
        (store, dir)
    }

    #[test]
    fn persist_load_roundtrip_and_segment_reuse() {
        let (store, dir) = store_in("roundtrip");
        let (mut seg, mut net) = seeded();
        seg.flush();
        seg.upsert(30, toks("delta survives restart"));
        net.insert(30, toks("delta survives restart"));
        seg.delete(7);
        net.remove(&7);
        let report = seg.persist(&store, 42).expect("persist");
        assert_eq!(
            (
                report.segments_written,
                report.segments_reused,
                report.removed
            ),
            (1, 0, 0)
        );
        let loaded = SegmentedTokenSets::load(&store, 42, "sparse:test")
            .expect("load")
            .expect("manifest present");
        assert_eq!(loaded.segment_count(), 1);
        assert_eq!(loaded.delta_rows(), 1);
        assert_eq!(loaded.tombstone_count(), 1);
        assert_eq!(loaded.heap_bytes(), seg.heap_bytes());
        assert_matches_oracle(&loaded, &net);
        // Re-persisting reuses the immutable segment file.
        let again = seg.persist(&store, 42).expect("persist again");
        assert_eq!((again.segments_written, again.segments_reused), (0, 1));
        // Wrong key: no manifest.
        assert!(SegmentedTokenSets::load(&store, 42, "sparse:other")
            .expect("load")
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_persist_drops_superseded_segments_and_gc_agrees() {
        let (store, dir) = store_in("supersede");
        let (mut seg, net) = seeded();
        seg.flush();
        seg.upsert(31, toks("second segment"));
        seg.flush();
        seg.delete(31);
        seg.persist(&store, 7).expect("persist two segments");
        assert_eq!(
            store.files().expect("files").len(),
            3,
            "2 segments + manifest"
        );
        // Everything referenced: gc keeps all files.
        let report = store.gc().expect("gc");
        assert_eq!((report.removed, report.orphaned), (0, 0));
        // Compact and persist: the folded segment replaces both, and the
        // superseded files are deleted by the persist itself.
        assert!(seg.compact());
        let report = seg.persist(&store, 7).expect("persist folded");
        assert_eq!((report.segments_written, report.removed), (1, 2));
        assert_eq!(
            store.files().expect("files").len(),
            2,
            "1 segment + manifest"
        );
        let loaded = SegmentedTokenSets::load(&store, 7, "sparse:test")
            .expect("load")
            .expect("present");
        assert_matches_oracle(&loaded, &net);
        // Simulated interrupted compaction: a segment written without its
        // manifest swap. Deleting the manifest orphans the segments.
        std::fs::remove_file(store.file_path(&ArtifactKey::new(7, manifest_repr("sparse:test"))))
            .expect("drop manifest");
        let report = store.gc().expect("gc orphans");
        assert_eq!(report.orphaned, 1, "{report:?}");
        assert!(store.files().expect("files").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn apply_ops(ops: &[(u8, u32, String)]) -> (SegmentedTokenSets, BTreeMap<u32, Vec<u64>>) {
        let mut seg = SegmentedTokenSets::new("sparse:test", queries());
        let mut net = BTreeMap::new();
        for (op, id, text) in ops {
            match op % 4 {
                0 | 1 => {
                    seg.upsert(*id, toks(text));
                    net.insert(*id, toks(text));
                }
                2 => {
                    seg.delete(*id);
                    net.remove(id);
                }
                _ => {
                    if *id % 2 == 0 {
                        seg.flush();
                    } else {
                        seg.compact();
                    }
                }
            }
        }
        (seg, net)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Acceptance property: any interleaving of upserts, deletes,
        /// flushes and compactions yields candidate sets bitwise
        /// identical to a full re-prepare of the net dataset, at 1 and 8
        /// threads (inside the oracle comparison), with and without a
        /// store round-trip standing in for a process restart.
        #[test]
        fn any_op_interleaving_matches_full_rebuild(
            ops in proptest::collection::vec((0u8..4, 0u32..24, "[a-e ]{0,12}"), 1..40),
            restart in any::<bool>(),
        ) {
            let (seg, net) = apply_ops(&ops);
            assert_matches_oracle(&seg, &net);
            if restart {
                let dir = std::env::temp_dir().join(format!(
                    "er_segmented_prop_{}_{}", std::process::id(), ops.len()
                ));
                let _ = std::fs::remove_dir_all(&dir);
                let store = ArtifactStore::open(
                    &dir,
                    vec![Box::new(SparseSegmentCodec), Box::new(SparseManifestCodec)],
                ).expect("open");
                seg.persist(&store, 1).expect("persist");
                let loaded = SegmentedTokenSets::load(&store, 1, "sparse:test")
                    .expect("load").expect("present");
                assert_matches_oracle(&loaded, &net);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}
