//! Set-overlap similarity measures (paper §IV-C), all normalized to
//! `[0, 1]`:
//!
//! * Cosine  `C(A,B) = |A∩B| / √(|A|·|B|)`
//! * Dice    `D(A,B) = 2·|A∩B| / (|A| + |B|)`
//! * Jaccard `J(A,B) = |A∩B| / |A∪B|`

/// A set-similarity measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimilarityMeasure {
    /// Cosine similarity.
    Cosine,
    /// Dice similarity.
    Dice,
    /// Jaccard coefficient.
    Jaccard,
}

impl SimilarityMeasure {
    /// The three measures in the paper's order.
    pub const ALL: [SimilarityMeasure; 3] = [
        SimilarityMeasure::Cosine,
        SimilarityMeasure::Dice,
        SimilarityMeasure::Jaccard,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SimilarityMeasure::Cosine => "Cosine",
            SimilarityMeasure::Dice => "Dice",
            SimilarityMeasure::Jaccard => "Jaccard",
        }
    }

    /// Computes the similarity from the overlap `|A∩B|` and set sizes.
    ///
    /// Empty sets have similarity 0 by convention.
    #[inline]
    pub fn compute(&self, overlap: usize, len_a: usize, len_b: usize) -> f64 {
        if len_a == 0 || len_b == 0 {
            return 0.0;
        }
        let o = overlap as f64;
        match self {
            SimilarityMeasure::Cosine => o / ((len_a as f64) * (len_b as f64)).sqrt(),
            SimilarityMeasure::Dice => 2.0 * o / (len_a + len_b) as f64,
            SimilarityMeasure::Jaccard => o / (len_a + len_b - overlap) as f64,
        }
    }

    /// The exact length filter: the inclusive range of candidate-set
    /// cardinalities `|A|` that can still reach `threshold` against a set
    /// of cardinality `len_b`.
    ///
    /// Because overlap is bounded by `min(|A|, |B|)`, each measure's
    /// maximum over the sizes is a closed form of the size ratio, giving
    /// (for `t = threshold`, `b = len_b`):
    ///
    /// * Jaccard: `a ∈ [t·b, b/t]`
    /// * Cosine:  `a ∈ [t²·b, b/t²]`
    /// * Dice:    `a ∈ [t·b/(2−t), b·(2−t)/t]`
    ///
    /// The bounds are widened by a relative `1e-9` slack before rounding
    /// to integers, so floating-point error can only *keep* a borderline
    /// candidate (which the exact similarity check then decides) — never
    /// drop one. Skipping sizes outside the range is therefore
    /// candidate-set-exact. Thresholds `≤ 0` disable the filter.
    #[inline]
    pub fn size_bounds(&self, len_b: usize, threshold: f64) -> (usize, usize) {
        if threshold <= 0.0 || len_b == 0 {
            return (0, usize::MAX);
        }
        let t = threshold.min(1.0);
        let b = len_b as f64;
        let (lo, hi) = match self {
            SimilarityMeasure::Cosine => (t * t * b, b / (t * t)),
            SimilarityMeasure::Dice => (t * b / (2.0 - t), b * (2.0 - t) / t),
            SimilarityMeasure::Jaccard => (t * b, b / t),
        };
        let lo = (lo * (1.0 - 1e-9)).ceil().max(0.0) as usize;
        let hi_f = (hi * (1.0 + 1e-9)).floor();
        let hi = if hi_f >= usize::MAX as f64 {
            usize::MAX
        } else {
            hi_f as usize
        };
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_score_one() {
        for m in SimilarityMeasure::ALL {
            assert!((m.compute(4, 4, 4) - 1.0).abs() < 1e-12, "{}", m.name());
        }
    }

    #[test]
    fn disjoint_sets_score_zero() {
        for m in SimilarityMeasure::ALL {
            assert_eq!(m.compute(0, 3, 5), 0.0);
        }
    }

    #[test]
    fn empty_sets_score_zero() {
        for m in SimilarityMeasure::ALL {
            assert_eq!(m.compute(0, 0, 0), 0.0);
            assert_eq!(m.compute(0, 0, 5), 0.0);
        }
    }

    #[test]
    fn reference_values() {
        // A = {a,b,c}, B = {b,c,d,e}: overlap 2.
        assert!((SimilarityMeasure::Cosine.compute(2, 3, 4) - 2.0 / 12f64.sqrt()).abs() < 1e-12);
        assert!((SimilarityMeasure::Dice.compute(2, 3, 4) - 4.0 / 7.0).abs() < 1e-12);
        assert!((SimilarityMeasure::Jaccard.compute(2, 3, 4) - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn measures_bounded_and_monotone_in_overlap() {
        for m in SimilarityMeasure::ALL {
            let mut prev = -1.0;
            for overlap in 0..=5 {
                let s = m.compute(overlap, 5, 7);
                assert!((0.0..=1.0).contains(&s), "{} out of range", m.name());
                assert!(s >= prev, "{} not monotone", m.name());
                prev = s;
            }
        }
    }

    #[test]
    fn size_bounds_are_sound_and_tight() {
        // Soundness: any (a, b, overlap) reaching the threshold must have
        // `a` inside the bounds.
        for m in SimilarityMeasure::ALL {
            for b in 1usize..=12 {
                for t10 in 1..=10u32 {
                    let t = f64::from(t10) / 10.0;
                    let (lo, hi) = m.size_bounds(b, t);
                    for a in 1usize..=24 {
                        let best = m.compute(a.min(b), a, b);
                        if best >= t {
                            assert!(
                                (lo..=hi).contains(&a),
                                "{} t={t} b={b} a={a} best={best} not in [{lo},{hi}]",
                                m.name()
                            );
                        }
                    }
                }
            }
        }
        // Tightness at t = 1: only equal sizes survive.
        for m in SimilarityMeasure::ALL {
            assert_eq!(m.size_bounds(5, 1.0), (5, 5), "{}", m.name());
        }
        // Thresholds <= 0 disable the filter.
        assert_eq!(
            SimilarityMeasure::Jaccard.size_bounds(5, 0.0),
            (0, usize::MAX)
        );
        assert_eq!(
            SimilarityMeasure::Cosine.size_bounds(0, 0.5),
            (0, usize::MAX)
        );
    }

    #[test]
    fn jaccard_lower_than_dice_lower_than_cosine_on_partial_overlap() {
        // Standard ordering for |A| = |B| and partial overlap.
        let (o, a, b) = (2, 4, 4);
        let j = SimilarityMeasure::Jaccard.compute(o, a, b);
        let d = SimilarityMeasure::Dice.compute(o, a, b);
        let c = SimilarityMeasure::Cosine.compute(o, a, b);
        assert!(j < d);
        assert!(d <= c);
    }
}
