//! Set-overlap similarity measures (paper §IV-C), all normalized to
//! `[0, 1]`:
//!
//! * Cosine  `C(A,B) = |A∩B| / √(|A|·|B|)`
//! * Dice    `D(A,B) = 2·|A∩B| / (|A| + |B|)`
//! * Jaccard `J(A,B) = |A∩B| / |A∪B|`

/// A set-similarity measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimilarityMeasure {
    /// Cosine similarity.
    Cosine,
    /// Dice similarity.
    Dice,
    /// Jaccard coefficient.
    Jaccard,
}

impl SimilarityMeasure {
    /// The three measures in the paper's order.
    pub const ALL: [SimilarityMeasure; 3] = [
        SimilarityMeasure::Cosine,
        SimilarityMeasure::Dice,
        SimilarityMeasure::Jaccard,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SimilarityMeasure::Cosine => "Cosine",
            SimilarityMeasure::Dice => "Dice",
            SimilarityMeasure::Jaccard => "Jaccard",
        }
    }

    /// Computes the similarity from the overlap `|A∩B|` and set sizes.
    ///
    /// Empty sets have similarity 0 by convention.
    #[inline]
    pub fn compute(&self, overlap: usize, len_a: usize, len_b: usize) -> f64 {
        if len_a == 0 || len_b == 0 {
            return 0.0;
        }
        let o = overlap as f64;
        match self {
            SimilarityMeasure::Cosine => o / ((len_a as f64) * (len_b as f64)).sqrt(),
            SimilarityMeasure::Dice => 2.0 * o / (len_a + len_b) as f64,
            SimilarityMeasure::Jaccard => o / (len_a + len_b - overlap) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_score_one() {
        for m in SimilarityMeasure::ALL {
            assert!((m.compute(4, 4, 4) - 1.0).abs() < 1e-12, "{}", m.name());
        }
    }

    #[test]
    fn disjoint_sets_score_zero() {
        for m in SimilarityMeasure::ALL {
            assert_eq!(m.compute(0, 3, 5), 0.0);
        }
    }

    #[test]
    fn empty_sets_score_zero() {
        for m in SimilarityMeasure::ALL {
            assert_eq!(m.compute(0, 0, 0), 0.0);
            assert_eq!(m.compute(0, 0, 5), 0.0);
        }
    }

    #[test]
    fn reference_values() {
        // A = {a,b,c}, B = {b,c,d,e}: overlap 2.
        assert!((SimilarityMeasure::Cosine.compute(2, 3, 4) - 2.0 / 12f64.sqrt()).abs() < 1e-12);
        assert!((SimilarityMeasure::Dice.compute(2, 3, 4) - 4.0 / 7.0).abs() < 1e-12);
        assert!((SimilarityMeasure::Jaccard.compute(2, 3, 4) - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn measures_bounded_and_monotone_in_overlap() {
        for m in SimilarityMeasure::ALL {
            let mut prev = -1.0;
            for overlap in 0..=5 {
                let s = m.compute(overlap, 5, 7);
                assert!((0.0..=1.0).contains(&s), "{} out of range", m.name());
                assert!(s >= prev, "{} not monotone", m.name());
                prev = s;
            }
        }
    }

    #[test]
    fn jaccard_lower_than_dice_lower_than_cosine_on_partial_overlap() {
        // Standard ordering for |A| = |B| and partial overlap.
        let (o, a, b) = (2, 4, 4);
        let j = SimilarityMeasure::Jaccard.compute(o, a, b);
        let d = SimilarityMeasure::Dice.compute(o, a, b);
        let c = SimilarityMeasure::Cosine.compute(o, a, b);
        assert!(j < d);
        assert!(d <= c);
    }
}
