//! Naive reference implementations of the sparse joins, frozen at the
//! pre-CSR semantics.
//!
//! The hot paths ([`crate::scancount`], [`crate::epsilon`], [`crate::knn`],
//! [`crate::topk`]) moved to interned CSR layouts with exact length
//! filters. This module keeps the original hash-map-of-token-lists
//! formulation — no interner, no CSR, no length filter — as an independent
//! oracle: the property tests assert the optimized pipeline produces
//! bitwise-identical candidate sets against it. It is test/benchmark
//! support code, deliberately simple and unoptimized.

use crate::representation::RepresentationModel;
use crate::similarity::SimilarityMeasure;
use er_core::hash::FastMap;
use er_core::schema::TextView;
use er_core::Pair;
use er_text::Cleaner;

/// The original ScanCount index: raw `u64` token hashes mapped to posting
/// lists, one heap allocation per token.
#[derive(Debug, Default)]
pub struct NaiveScanCountIndex {
    postings: FastMap<u64, Vec<u32>>,
    set_sizes: Vec<u32>,
}

impl NaiveScanCountIndex {
    /// Builds the index over deduplicated token sets.
    pub fn build(sets: &[Vec<u64>]) -> Self {
        let mut postings: FastMap<u64, Vec<u32>> = FastMap::default();
        let mut set_sizes = Vec::with_capacity(sets.len());
        for (entity, set) in sets.iter().enumerate() {
            set_sizes.push(set.len() as u32);
            for &token in set {
                postings.entry(token).or_default().push(entity as u32);
            }
        }
        Self {
            postings,
            set_sizes,
        }
    }

    /// The indexed cardinality of entity `i`.
    pub fn set_size(&self, i: u32) -> usize {
        self.set_sizes[i as usize] as usize
    }

    /// Merge-counts one query: `(entity, overlap)` ascending by entity id,
    /// only entities sharing at least one token.
    pub fn query(&self, query: &[u64]) -> Vec<(u32, u32)> {
        let mut counts: FastMap<u32, u32> = FastMap::default();
        for token in query {
            if let Some(list) = self.postings.get(token) {
                for &entity in list {
                    *counts.entry(entity).or_insert(0) += 1;
                }
            }
        }
        let mut hits: Vec<(u32, u32)> = counts.into_iter().collect();
        hits.sort_unstable_by_key(|&(entity, _)| entity);
        hits
    }
}

/// Tokenizes both sides exactly as [`crate::artifact::TokenSetsArtifact`]
/// does, without interning.
pub fn tokenize(
    view: &TextView,
    cleaning: bool,
    model: RepresentationModel,
    reversed: bool,
) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    let cleaner = if cleaning {
        Cleaner::on()
    } else {
        Cleaner::off()
    };
    let (index_texts, query_texts) = if reversed {
        (&view.e2, &view.e1)
    } else {
        (&view.e1, &view.e2)
    };
    let index_sets = index_texts
        .iter()
        .map(|t| model.token_set(t, &cleaner))
        .collect();
    let query_sets = query_texts
        .iter()
        .map(|t| model.token_set(t, &cleaner))
        .collect();
    (index_sets, query_sets)
}

/// The ε-Join without any length filter: every overlapping pair is scored
/// and kept when `sim ≥ threshold`. Returns sorted pairs.
pub fn naive_epsilon(
    view: &TextView,
    cleaning: bool,
    model: RepresentationModel,
    measure: SimilarityMeasure,
    threshold: f64,
) -> Vec<Pair> {
    let (index_sets, query_sets) = tokenize(view, cleaning, model, false);
    let index = NaiveScanCountIndex::build(&index_sets);
    let mut out = Vec::new();
    for (j, query) in query_sets.iter().enumerate() {
        for (i, overlap) in index.query(query) {
            let sim = measure.compute(overlap as usize, index.set_size(i), query.len());
            if sim >= threshold {
                out.push(Pair::new(i, j as u32));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Frozen copy of the kNN distinct-top-k selection: keep candidates tying
/// one of the `k` highest distinct similarities.
pub fn naive_select_top_k(k: usize, scored: &mut Vec<(u32, f64)>) {
    if scored.is_empty() || k == 0 {
        scored.clear();
        return;
    }
    scored.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let mut distinct = 0usize;
    let mut last = f64::NAN;
    let mut cut = scored.len();
    for (i, &(_, sim)) in scored.iter().enumerate() {
        if sim != last {
            distinct += 1;
            last = sim;
            if distinct > k {
                cut = i;
                break;
            }
        }
    }
    scored.truncate(cut);
}

/// The kNN-Join without the distinct-floor length filter. Returns sorted
/// pairs in the canonical (E1, E2) orientation.
pub fn naive_knn(
    view: &TextView,
    cleaning: bool,
    model: RepresentationModel,
    measure: SimilarityMeasure,
    k: usize,
    reversed: bool,
) -> Vec<Pair> {
    let (index_sets, query_sets) = tokenize(view, cleaning, model, reversed);
    let index = NaiveScanCountIndex::build(&index_sets);
    let mut out = Vec::new();
    for (j, query) in query_sets.iter().enumerate() {
        let mut scored: Vec<(u32, f64)> = Vec::new();
        for (i, overlap) in index.query(query) {
            let sim = measure.compute(overlap as usize, index.set_size(i), query.len());
            if sim > 0.0 {
                scored.push((i, sim));
            }
        }
        naive_select_top_k(k, &mut scored);
        for (i, _) in scored {
            if reversed {
                out.push(Pair::new(j as u32, i));
            } else {
                out.push(Pair::new(i, j as u32));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The global top-k join by exhaustive scoring: the `k` best pairs by
/// (similarity descending, pair key ascending). Returns sorted pairs.
pub fn naive_topk(
    view: &TextView,
    model: RepresentationModel,
    measure: SimilarityMeasure,
    k: usize,
) -> Vec<Pair> {
    let (index_sets, query_sets) = tokenize(view, false, model, false);
    let index = NaiveScanCountIndex::build(&index_sets);
    let mut scored: Vec<(f64, u64)> = Vec::new();
    for (j, query) in query_sets.iter().enumerate() {
        for (i, overlap) in index.query(query) {
            let sim = measure.compute(overlap as usize, index.set_size(i), query.len());
            if sim > 0.0 {
                scored.push((sim, Pair::new(i, j as u32).key()));
            }
        }
    }
    scored.sort_unstable_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    scored.truncate(k);
    let mut out: Vec<Pair> = scored
        .into_iter()
        .map(|(_, key)| Pair::from_key(key))
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_index_counts_overlaps() {
        let sets = vec![vec![1, 2, 3], vec![2, 3], vec![9]];
        let index = NaiveScanCountIndex::build(&sets);
        assert_eq!(index.query(&[2, 3]), vec![(0, 2), (1, 2)]);
        assert_eq!(index.query(&[9]), vec![(2, 1)]);
        assert!(index.query(&[42]).is_empty());
        assert_eq!(index.set_size(0), 3);
    }

    #[test]
    fn naive_epsilon_scores_all_overlapping_pairs() {
        let v = TextView::new(
            vec!["alpha beta".to_owned(), "gamma".to_owned()],
            vec!["alpha beta".to_owned()],
        );
        let model = RepresentationModel::parse("T1G").expect("T1G");
        let pairs = naive_epsilon(&v, false, model, SimilarityMeasure::Jaccard, 0.5);
        assert_eq!(pairs, vec![Pair::new(0, 0)]);
    }
}
