//! The ScanCount algorithm [Li, Lu & Lu, ICDE 2008] (paper §IV-C).
//!
//! ScanCount builds an inverted list over all tokens of the indexed
//! collection; a query merges the posting lists of its tokens, counting how
//! often each indexed entity appears — that count *is* the set overlap
//! `|A∩B|`. Unlike prefix-filter joins it has no similarity-threshold
//! assumptions, which makes it suitable for the low thresholds ER needs.

use er_core::hash::FastMap;

/// An inverted index over the token sets of one entity collection.
#[derive(Debug, Clone, Default)]
pub struct ScanCountIndex {
    /// token id → posting list of entity indices (ascending).
    postings: FastMap<u64, Vec<u32>>,
    /// Token-set cardinality `|A|` per indexed entity.
    set_sizes: Vec<u32>,
    /// Scratch: overlap count per indexed entity.
    counts: Vec<u32>,
}

impl ScanCountIndex {
    /// Builds the index from per-entity token-id sets (each set must be
    /// duplicate-free; [`crate::RepresentationModel::token_set`] guarantees
    /// that).
    pub fn build(token_sets: &[Vec<u64>]) -> Self {
        let mut postings: FastMap<u64, Vec<u32>> = FastMap::default();
        let mut set_sizes = Vec::with_capacity(token_sets.len());
        for (i, set) in token_sets.iter().enumerate() {
            set_sizes.push(set.len() as u32);
            for &token in set {
                postings.entry(token).or_default().push(i as u32);
            }
        }
        let counts = vec![0; token_sets.len()];
        Self { postings, set_sizes, counts }
    }

    /// Number of indexed entities.
    pub fn len(&self) -> usize {
        self.set_sizes.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.set_sizes.is_empty()
    }

    /// The token-set cardinality of indexed entity `i`.
    #[inline]
    pub fn set_size(&self, i: u32) -> usize {
        self.set_sizes[i as usize] as usize
    }

    /// Merge-counts the posting lists of `query`'s tokens, appending
    /// `(entity, overlap)` to `out` for every indexed entity sharing at
    /// least one token.
    ///
    /// `query` must be duplicate-free. `out` is cleared first and filled in
    /// ascending entity order, making downstream consumers deterministic;
    /// reusing the same buffer across queries avoids per-query allocation.
    pub fn query_into(&mut self, query: &[u64], out: &mut Vec<(u32, u32)>) {
        out.clear();
        // `counts` is a workhorse buffer: only touched entries are reset.
        for token in query {
            if let Some(list) = self.postings.get(token) {
                for &e in list {
                    if self.counts[e as usize] == 0 {
                        out.push((e, 0));
                    }
                    self.counts[e as usize] += 1;
                }
            }
        }
        out.sort_unstable_by_key(|&(e, _)| e);
        for entry in out.iter_mut() {
            entry.1 = self.counts[entry.0 as usize];
            self.counts[entry.0 as usize] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> ScanCountIndex {
        // Entity 0: {1,2,3}; entity 1: {3,4}; entity 2: {5}.
        ScanCountIndex::build(&[vec![1, 2, 3], vec![3, 4], vec![5]])
    }

    fn collect(idx: &mut ScanCountIndex, q: &[u64]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        idx.query_into(q, &mut out);
        out
    }

    #[test]
    fn overlap_counts_are_exact() {
        let mut idx = index();
        // Query {2,3,4}: entity 0 overlaps {2,3}=2, entity 1 {3,4}=2.
        assert_eq!(collect(&mut idx, &[2, 3, 4]), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn non_overlapping_entities_not_visited() {
        let mut idx = index();
        assert_eq!(collect(&mut idx, &[1]), vec![(0, 1)]);
        assert!(collect(&mut idx, &[99]).is_empty());
        assert!(collect(&mut idx, &[]).is_empty());
    }

    #[test]
    fn counts_reset_between_queries() {
        let mut idx = index();
        let first = collect(&mut idx, &[3]);
        let second = collect(&mut idx, &[3]);
        assert_eq!(first, second);
        assert_eq!(first, vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn set_sizes_recorded() {
        let idx = index();
        assert_eq!(idx.set_size(0), 3);
        assert_eq!(idx.set_size(2), 1);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn empty_index() {
        let mut idx = ScanCountIndex::build(&[]);
        assert!(idx.is_empty());
        assert!(collect(&mut idx, &[1, 2]).is_empty());
    }

    #[test]
    fn overlap_never_exceeds_set_sizes() {
        let sets: Vec<Vec<u64>> = vec![vec![1, 2, 3, 4], vec![2, 4, 6], vec![7]];
        let mut idx = ScanCountIndex::build(&sets);
        let q = vec![1, 2, 4, 6, 8];
        let mut out = Vec::new();
        idx.query_into(&q, &mut out);
        for &(e, o) in &out {
            assert!(o as usize <= sets[e as usize].len());
            assert!(o as usize <= q.len());
        }
    }
}
