//! The ScanCount algorithm [Li, Lu & Lu, ICDE 2008] (paper §IV-C).
//!
//! ScanCount builds an inverted list over all tokens of the indexed
//! collection; a query merges the posting lists of its tokens, counting how
//! often each indexed entity appears — that count *is* the set overlap
//! `|A∩B|`. Unlike prefix-filter joins it has no similarity-threshold
//! assumptions, which makes it suitable for the low thresholds ER needs.
//!
//! The index stores its postings as bitpacked CSR rows behind a
//! [`TokenInterner`]: token id `t`'s posting list is packed row `t` of a
//! [`PackedRows`], unpacked per token into a reusable scratch buffer.
//! Queries that arrive pre-interned ([`ScanCountIndex::query_ids_with`])
//! skip the hash lookup entirely. The merge loop itself dispatches to an
//! AVX2 gather kernel at runtime when the `simd` feature is enabled (see
//! [`crate::simd`]); [`merge_list_scalar`] is the always-available,
//! always-tested reference, and every variant is exactly
//! candidate-set-identical because the loop is pure integer arithmetic.

use crate::csr::{CsrTokenSets, TokenInterner};
use crate::packed::PackedRows;
use er_core::parallel::{self, Threads};

/// Per-caller scratch for ScanCount queries: the overlap-count workhorse
/// buffer plus the posting-list and query-row unpack buffers.
///
/// Splitting the scratch out of the index lets queries run on `&self`, so
/// parallel workers share one read-only index while each owns a scratch
/// (see [`ScanCountIndex::query_batch`]). A default-constructed scratch is
/// lazily sized on first use.
#[derive(Debug, Clone, Default)]
pub struct ScanCountScratch {
    /// Overlap count per indexed entity; zero except while a query runs.
    counts: Vec<u32>,
    /// Unpack target for one posting list at a time.
    list_buf: Vec<u32>,
    /// Unpack target for a packed query row ([`ScanCountIndex::query_row_with`]).
    query_buf: Vec<u32>,
}

/// An inverted index over the token sets of one entity collection, with
/// bitpacked posting lists (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ScanCountIndex {
    /// Token hash → dense token id; shared with the query side so probes
    /// can be pre-interned once per artifact.
    interner: TokenInterner,
    /// Bitpacked posting lists, one row per token id: ascending entity
    /// indices, delta-encoded (see [`crate::packed`]).
    postings: PackedRows,
    /// Token-set cardinality `|A|` per indexed entity.
    set_sizes: Vec<u32>,
}

impl ScanCountIndex {
    /// Builds the index from per-entity token-id sets (each set must be
    /// duplicate-free; [`crate::RepresentationModel::token_set`] guarantees
    /// that).
    pub fn build(token_sets: &[Vec<u64>]) -> Self {
        Self::build_with_sets(token_sets).0
    }

    /// [`ScanCountIndex::build`] also returning the indexed collection's
    /// token sets re-expressed in the index's interned CSR layout (row
    /// order and per-row token order preserved).
    pub fn build_with_sets(token_sets: &[Vec<u64>]) -> (Self, CsrTokenSets) {
        // Pass 1: intern every token in encounter order while flattening
        // the rows into CSR, counting each token's posting-list length.
        let mut interner = TokenInterner::default();
        let mut row_offsets = Vec::with_capacity(token_sets.len() + 1);
        row_offsets.push(0u32);
        let mut row_tokens = Vec::new();
        let mut set_sizes = Vec::with_capacity(token_sets.len());
        for set in token_sets {
            set_sizes.push(set.len() as u32);
            for &token in set {
                row_tokens.push(interner.intern(token));
            }
            row_offsets.push(row_tokens.len() as u32);
        }

        // Pass 2: prefix-sum the posting counts into CSR offsets and fill
        // the lists by walking the rows in entity order, which leaves each
        // posting list in ascending entity order. The plain lists are then
        // bitpacked; ascending ids with small gaps pack a few bits each.
        let tokens = interner.len();
        let mut counts = vec![0u32; tokens];
        for &id in &row_tokens {
            counts[id as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(tokens + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor = offsets[..tokens].to_vec();
        let mut postings = vec![0u32; row_tokens.len()];
        for (i, w) in row_offsets.windows(2).enumerate() {
            for &id in &row_tokens[w[0] as usize..w[1] as usize] {
                postings[cursor[id as usize] as usize] = i as u32;
                cursor[id as usize] += 1;
            }
        }

        let index_sets = CsrTokenSets::from_parts(row_offsets, row_tokens, set_sizes.clone());
        (
            Self {
                interner,
                postings: PackedRows::from_rows(offsets, &postings),
                set_sizes,
            },
            index_sets,
        )
    }

    /// Re-expresses query-side token sets in the index's interned CSR
    /// layout. Tokens the index never saw are dropped from the rows (they
    /// cannot contribute overlap) while `set_size` keeps the original
    /// cardinality, so similarity formulas stay exact.
    pub fn intern_queries(&self, token_sets: &[Vec<u64>]) -> CsrTokenSets {
        let mut offsets = Vec::with_capacity(token_sets.len() + 1);
        offsets.push(0u32);
        let mut tokens = Vec::new();
        let mut set_sizes = Vec::with_capacity(token_sets.len());
        for set in token_sets {
            set_sizes.push(set.len() as u32);
            tokens.extend(set.iter().filter_map(|&t| self.interner.get(t)));
            offsets.push(tokens.len() as u32);
        }
        CsrTokenSets::from_parts(offsets, tokens, set_sizes)
    }

    /// The dense id the index's interner assigned to `token`, if any.
    #[inline]
    pub fn token_id(&self, token: u64) -> Option<u32> {
        self.interner.get(token)
    }

    /// Number of indexed entities.
    pub fn len(&self) -> usize {
        self.set_sizes.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.set_sizes.is_empty()
    }

    /// The token-set cardinality of indexed entity `i`.
    #[inline]
    pub fn set_size(&self, i: u32) -> usize {
        self.set_sizes[i as usize] as usize
    }

    /// Heap footprint in bytes for artifact-cache budgeting: the packed
    /// postings and the `set_sizes` array are exact; only the interner
    /// term is an estimate (see [`TokenInterner::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.postings.heap_bytes() + self.set_sizes.len() * 4 + self.interner.heap_bytes()
    }

    /// The bitpacked posting lists (compression-ratio reporting and the
    /// kernel benchmarks unpack them from here).
    pub fn postings(&self) -> &PackedRows {
        &self.postings
    }

    /// The serialized form for the persistent store: the interner's token
    /// hashes in dense-id order, the packed posting rows and the entity
    /// cardinalities.
    pub(crate) fn raw_parts(&self) -> (Vec<u64>, &PackedRows, &[u32]) {
        (
            self.interner.tokens_by_id(),
            &self.postings,
            &self.set_sizes,
        )
    }

    /// Rebuilds an index from [`Self::raw_parts`] output. The caller (the
    /// store codec) has validated the packed invariants and the entity-id
    /// range; the interner rebuild reassigns identical dense ids, so
    /// queries against the rebuilt index are byte-identical to the
    /// original's.
    pub(crate) fn from_raw_parts(
        interner_tokens: &[u64],
        postings: PackedRows,
        set_sizes: Vec<u32>,
    ) -> Self {
        Self {
            interner: TokenInterner::from_tokens_by_id(interner_tokens),
            postings,
            set_sizes,
        }
    }

    /// Merge-counts the posting lists of `query`'s raw token hashes,
    /// appending `(entity, overlap)` to `out` for every indexed entity
    /// sharing at least one token.
    ///
    /// `query` must be duplicate-free. `out` is cleared first and filled in
    /// ascending entity order, making downstream consumers deterministic;
    /// reusing the same buffer across queries avoids per-query allocation.
    /// Callers holding pre-interned rows should use
    /// [`ScanCountIndex::query_ids_with`] instead, which skips the
    /// per-token hash lookups.
    pub fn query_with(
        &self,
        scratch: &mut ScanCountScratch,
        query: &[u64],
        out: &mut Vec<(u32, u32)>,
    ) {
        out.clear();
        let ScanCountScratch {
            counts, list_buf, ..
        } = scratch;
        let counts = Self::sized(counts, self.set_sizes.len());
        for &token in query {
            if let Some(id) = self.interner.get(token) {
                let list = self.postings.decode_row_into(id as usize, list_buf);
                merge_list(list, counts, out);
            }
        }
        Self::finish(counts, out);
    }

    /// [`ScanCountIndex::query_with`] for a query row already interned by
    /// this index (see [`ScanCountIndex::intern_queries`]) — the hot path:
    /// no hashing, just packed-row walks.
    pub fn query_ids_with(
        &self,
        scratch: &mut ScanCountScratch,
        query_ids: &[u32],
        out: &mut Vec<(u32, u32)>,
    ) {
        out.clear();
        let ScanCountScratch {
            counts, list_buf, ..
        } = scratch;
        let counts = Self::sized(counts, self.set_sizes.len());
        for &id in query_ids {
            let list = self.postings.decode_row_into(id as usize, list_buf);
            merge_list(list, counts, out);
        }
        Self::finish(counts, out);
    }

    /// [`ScanCountIndex::query_ids_with`] for row `j` of a packed query
    /// CSR, unpacking it through the scratch's query buffer.
    pub fn query_row_with(
        &self,
        scratch: &mut ScanCountScratch,
        queries: &CsrTokenSets,
        j: usize,
        out: &mut Vec<(u32, u32)>,
    ) {
        out.clear();
        let ScanCountScratch {
            counts,
            list_buf,
            query_buf,
        } = scratch;
        let counts = Self::sized(counts, self.set_sizes.len());
        for &id in queries.row_into(j, query_buf) {
            let list = self.postings.decode_row_into(id as usize, list_buf);
            merge_list(list, counts, out);
        }
        Self::finish(counts, out);
    }

    /// Sizes the count buffer to the index and hands it out.
    #[inline]
    fn sized(counts: &mut Vec<u32>, len: usize) -> &mut Vec<u32> {
        if counts.len() < len {
            counts.resize(len, 0);
        }
        counts
    }

    /// Sorts the touched entities, records their overlaps and resets the
    /// touched counters.
    #[inline]
    fn finish(counts: &mut [u32], out: &mut [(u32, u32)]) {
        out.sort_unstable_by_key(|&(e, _)| e);
        for entry in out.iter_mut() {
            entry.1 = counts[entry.0 as usize];
            counts[entry.0 as usize] = 0;
        }
    }

    /// Batch query fan-out over the global [`Threads`] worker count: one
    /// `(entity, overlap)` list per query, each exactly what
    /// [`ScanCountIndex::query_with`] would produce.
    pub fn query_batch(&self, queries: &[Vec<u64>]) -> Vec<Vec<(u32, u32)>> {
        self.query_batch_with(Threads::get(), queries)
    }

    /// [`ScanCountIndex::query_batch`] over an explicit worker count.
    pub fn query_batch_with(&self, threads: usize, queries: &[Vec<u64>]) -> Vec<Vec<(u32, u32)>> {
        let chunk = parallel::query_chunk_len(queries.len());
        let per_chunk = parallel::par_map_chunks_with(threads, queries, chunk, |_, part| {
            let mut scratch = ScanCountScratch::default();
            part.iter()
                .map(|q| {
                    let mut out = Vec::new();
                    self.query_with(&mut scratch, q, &mut out);
                    out
                })
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// The reference merge step: count a transition to overlap 1 as a new
/// candidate. Safe, branchy, always compiled — the oracle every
/// dispatched variant is tested against. With `simd` on it is only
/// reached from tests, hence the conditional `dead_code` allowance.
#[inline]
#[cfg_attr(feature = "simd", allow(dead_code))]
pub(crate) fn merge_list_scalar(list: &[u32], counts: &mut [u32], out: &mut Vec<(u32, u32)>) {
    for &e in list {
        if counts[e as usize] == 0 {
            out.push((e, 0));
        }
        counts[e as usize] += 1;
    }
}

/// Merge-counts one posting list into `counts`/`out`, dispatching to the
/// widest kernel the host supports. `counts` is a workhorse buffer: only
/// touched entries are ever reset. All variants walk `list` in order and
/// perform identical integer updates, so the candidate set is exactly
/// that of [`merge_list_scalar`].
#[inline]
fn merge_list(list: &[u32], counts: &mut [u32], out: &mut Vec<(u32, u32)>) {
    // SAFETY (simd variants): posting lists hold distinct entity ids
    // `< counts.len()`, by construction in `build_with_sets` and by
    // `PackedRows::validate` on every store decode.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if crate::simd::avx2() {
            unsafe { crate::simd::merge_list_avx2(list, counts, out) };
            return;
        }
    }
    #[cfg(feature = "simd")]
    {
        unsafe { crate::simd::merge_list_branchless(list, counts, out) }
    }
    #[cfg(not(feature = "simd"))]
    merge_list_scalar(list, counts, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> ScanCountIndex {
        // Entity 0: {1,2,3}; entity 1: {3,4}; entity 2: {5}.
        ScanCountIndex::build(&[vec![1, 2, 3], vec![3, 4], vec![5]])
    }

    fn collect(idx: &ScanCountIndex, q: &[u64]) -> Vec<(u32, u32)> {
        let mut scratch = ScanCountScratch::default();
        let mut out = Vec::new();
        idx.query_with(&mut scratch, q, &mut out);
        out
    }

    #[test]
    fn overlap_counts_are_exact() {
        let idx = index();
        // Query {2,3,4}: entity 0 overlaps {2,3}=2, entity 1 {3,4}=2.
        assert_eq!(collect(&idx, &[2, 3, 4]), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn non_overlapping_entities_not_visited() {
        let idx = index();
        assert_eq!(collect(&idx, &[1]), vec![(0, 1)]);
        assert!(collect(&idx, &[99]).is_empty());
        assert!(collect(&idx, &[]).is_empty());
    }

    #[test]
    fn counts_reset_between_queries() {
        let idx = index();
        let first = collect(&idx, &[3]);
        let second = collect(&idx, &[3]);
        assert_eq!(first, second);
        assert_eq!(first, vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn set_sizes_recorded() {
        let idx = index();
        assert_eq!(idx.set_size(0), 3);
        assert_eq!(idx.set_size(2), 1);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn empty_index() {
        let idx = ScanCountIndex::build(&[]);
        assert!(idx.is_empty());
        assert!(collect(&idx, &[1, 2]).is_empty());
    }

    #[test]
    fn build_with_sets_preserves_rows_interned() {
        let sets = vec![vec![10, 20, 30], vec![30, 40], vec![], vec![50]];
        let (idx, csr) = ScanCountIndex::build_with_sets(&sets);
        assert_eq!(csr.len(), 4);
        // First-encounter interning: 10→0, 20→1, 30→2, 40→3, 50→4.
        assert_eq!(csr.row_vec(0), &[0, 1, 2]);
        assert_eq!(csr.row_vec(1), &[2, 3]);
        assert_eq!(csr.row_vec(2), &[] as &[u32]);
        assert_eq!(csr.row_vec(3), &[4]);
        assert_eq!(csr.set_size(0), 3);
        assert_eq!(idx.token_id(30), Some(2));
        assert_eq!(idx.token_id(99), None);
    }

    #[test]
    fn interned_queries_match_raw_queries() {
        let sets: Vec<Vec<u64>> = (0..40u64)
            .map(|i| (0..=(i % 5)).map(|t| (i + 3 * t) % 23).collect())
            .collect();
        let (idx, _) = ScanCountIndex::build_with_sets(&sets);
        // Query rows include unknown tokens (100, 101) that interning drops.
        let queries: Vec<Vec<u64>> = vec![vec![0, 4, 100], vec![101], vec![], vec![1, 2, 3, 7]];
        let csr = idx.intern_queries(&queries);
        assert_eq!(csr.set_size(0), 3, "unknown tokens keep the cardinality");
        assert!(csr.row_vec(1).is_empty(), "all-unknown row is empty");
        let mut scratch = ScanCountScratch::default();
        for (j, q) in queries.iter().enumerate() {
            let mut raw = Vec::new();
            idx.query_with(&mut scratch, q, &mut raw);
            let mut interned = Vec::new();
            idx.query_ids_with(&mut scratch, &csr.row_vec(j), &mut interned);
            assert_eq!(raw, interned, "query {j} (ids)");
            let mut by_row = Vec::new();
            idx.query_row_with(&mut scratch, &csr, j, &mut by_row);
            assert_eq!(raw, by_row, "query {j} (packed row)");
        }
    }

    #[test]
    fn merge_variants_match_scalar_reference() {
        // Dense-overlap lists (every entity shared) plus sparse tails that
        // exercise the 8-wide kernel's remainder handling.
        let sets: Vec<Vec<u64>> = (0..83u64)
            .map(|i| (0..=(i % 9)).map(|t| (i + t) % 13).collect())
            .collect();
        let idx = ScanCountIndex::build(&sets);
        let mut counts = vec![0u32; idx.len()];
        let mut buf = Vec::new();
        for t in 0..idx.postings().len() {
            let list = idx.postings().decode_row_into(t, &mut buf).to_vec();
            let mut reference = Vec::new();
            merge_list_scalar(&list, &mut counts, &mut reference);
            for &(e, _) in &reference {
                counts[e as usize] = 0;
            }
            let mut dispatched = Vec::new();
            merge_list(&list, &mut counts, &mut dispatched);
            for &(e, _) in &dispatched {
                counts[e as usize] = 0;
            }
            assert_eq!(reference, dispatched, "token {t}");
        }
    }

    #[test]
    fn batch_matches_serial_for_any_thread_count() {
        // ~60 sets with heavy token reuse, plus empty and no-hit queries.
        let sets: Vec<Vec<u64>> = (0..60u64)
            .map(|i| (0..=(i % 7)).map(|t| (i + t) % 19).collect())
            .collect();
        let idx = ScanCountIndex::build(&sets);
        let mut queries = sets[..25].to_vec();
        queries.push(Vec::new());
        queries.push(vec![999]);
        let serial: Vec<Vec<(u32, u32)>> = queries.iter().map(|q| collect(&idx, q)).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                idx.query_batch_with(threads, &queries),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn default_scratch_resizes_lazily() {
        let idx = index();
        let mut scratch = ScanCountScratch::default();
        let mut out = Vec::new();
        idx.query_with(&mut scratch, &[2, 3, 4], &mut out);
        assert_eq!(out, vec![(0, 2), (1, 2)]);
        // Reuse: counts must have been reset.
        idx.query_with(&mut scratch, &[2, 3, 4], &mut out);
        assert_eq!(out, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn overlap_never_exceeds_set_sizes() {
        let sets: Vec<Vec<u64>> = vec![vec![1, 2, 3, 4], vec![2, 4, 6], vec![7]];
        let idx = ScanCountIndex::build(&sets);
        let q = vec![1, 2, 4, 6, 8];
        let out = collect(&idx, &q);
        for &(e, o) in &out {
            assert!(o as usize <= sets[e as usize].len());
            assert!(o as usize <= q.len());
        }
    }

    #[test]
    fn postings_pack_below_plain_csr() {
        let sets: Vec<Vec<u64>> = (0..500u64)
            .map(|i| (0..=(i % 6)).map(|t| (i + t) % 37).collect())
            .collect();
        let idx = ScanCountIndex::build(&sets);
        assert!(
            idx.postings().heap_bytes() < idx.postings().plain_bytes(),
            "{} vs {}",
            idx.postings().heap_bytes(),
            idx.postings().plain_bytes()
        );
    }
}
