//! The ScanCount algorithm [Li, Lu & Lu, ICDE 2008] (paper §IV-C).
//!
//! ScanCount builds an inverted list over all tokens of the indexed
//! collection; a query merges the posting lists of its tokens, counting how
//! often each indexed entity appears — that count *is* the set overlap
//! `|A∩B|`. Unlike prefix-filter joins it has no similarity-threshold
//! assumptions, which makes it suitable for the low thresholds ER needs.

use er_core::hash::FastMap;
use er_core::parallel::{self, Threads};

/// Per-caller scratch for ScanCount queries: the overlap-count workhorse
/// buffer, one slot per indexed entity.
///
/// Splitting the scratch out of the index lets queries run on `&self`, so
/// parallel workers share one read-only index while each owns a scratch
/// (see [`ScanCountIndex::query_batch`]). A default-constructed scratch is
/// lazily sized on first use.
#[derive(Debug, Clone, Default)]
pub struct ScanCountScratch {
    /// Overlap count per indexed entity; zero except while a query runs.
    counts: Vec<u32>,
}

/// An inverted index over the token sets of one entity collection.
#[derive(Debug, Clone, Default)]
pub struct ScanCountIndex {
    /// token id → posting list of entity indices (ascending).
    postings: FastMap<u64, Vec<u32>>,
    /// Token-set cardinality `|A|` per indexed entity.
    set_sizes: Vec<u32>,
    /// Scratch backing the legacy `&mut self` query path.
    scratch: ScanCountScratch,
}

impl ScanCountIndex {
    /// Builds the index from per-entity token-id sets (each set must be
    /// duplicate-free; [`crate::RepresentationModel::token_set`] guarantees
    /// that).
    pub fn build(token_sets: &[Vec<u64>]) -> Self {
        let mut postings: FastMap<u64, Vec<u32>> = FastMap::default();
        let mut set_sizes = Vec::with_capacity(token_sets.len());
        for (i, set) in token_sets.iter().enumerate() {
            set_sizes.push(set.len() as u32);
            for &token in set {
                postings.entry(token).or_default().push(i as u32);
            }
        }
        let scratch = ScanCountScratch {
            counts: vec![0; token_sets.len()],
        };
        Self {
            postings,
            set_sizes,
            scratch,
        }
    }

    /// Number of indexed entities.
    pub fn len(&self) -> usize {
        self.set_sizes.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.set_sizes.is_empty()
    }

    /// The token-set cardinality of indexed entity `i`.
    #[inline]
    pub fn set_size(&self, i: u32) -> usize {
        self.set_sizes[i as usize] as usize
    }

    /// Estimated heap footprint in bytes, for artifact-cache budgeting.
    pub fn heap_bytes(&self) -> usize {
        let postings: usize = self
            .postings
            .values()
            .map(|list| {
                std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>() + list.len() * 4
            })
            .sum();
        postings + self.set_sizes.len() * 4 + self.scratch.counts.len() * 4
    }

    /// Merge-counts the posting lists of `query`'s tokens, appending
    /// `(entity, overlap)` to `out` for every indexed entity sharing at
    /// least one token.
    ///
    /// `query` must be duplicate-free. `out` is cleared first and filled in
    /// ascending entity order, making downstream consumers deterministic;
    /// reusing the same buffer across queries avoids per-query allocation.
    pub fn query_into(&mut self, query: &[u64], out: &mut Vec<(u32, u32)>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.query_with(&mut scratch, query, out);
        self.scratch = scratch;
    }

    /// [`ScanCountIndex::query_into`] on a shared index: the caller owns
    /// the scratch, so any number of workers can query one index
    /// concurrently, each with its own [`ScanCountScratch`].
    pub fn query_with(
        &self,
        scratch: &mut ScanCountScratch,
        query: &[u64],
        out: &mut Vec<(u32, u32)>,
    ) {
        out.clear();
        let counts = &mut scratch.counts;
        if counts.len() < self.set_sizes.len() {
            counts.resize(self.set_sizes.len(), 0);
        }
        // `counts` is a workhorse buffer: only touched entries are reset.
        for token in query {
            if let Some(list) = self.postings.get(token) {
                for &e in list {
                    if counts[e as usize] == 0 {
                        out.push((e, 0));
                    }
                    counts[e as usize] += 1;
                }
            }
        }
        out.sort_unstable_by_key(|&(e, _)| e);
        for entry in out.iter_mut() {
            entry.1 = counts[entry.0 as usize];
            counts[entry.0 as usize] = 0;
        }
    }

    /// Batch query fan-out over the global [`Threads`] worker count: one
    /// `(entity, overlap)` list per query, each exactly what
    /// [`ScanCountIndex::query_into`] would produce.
    pub fn query_batch(&self, queries: &[Vec<u64>]) -> Vec<Vec<(u32, u32)>> {
        self.query_batch_with(Threads::get(), queries)
    }

    /// [`ScanCountIndex::query_batch`] over an explicit worker count.
    pub fn query_batch_with(&self, threads: usize, queries: &[Vec<u64>]) -> Vec<Vec<(u32, u32)>> {
        let chunk = parallel::query_chunk_len(queries.len());
        let per_chunk = parallel::par_map_chunks_with(threads, queries, chunk, |_, part| {
            let mut scratch = ScanCountScratch::default();
            part.iter()
                .map(|q| {
                    let mut out = Vec::new();
                    self.query_with(&mut scratch, q, &mut out);
                    out
                })
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> ScanCountIndex {
        // Entity 0: {1,2,3}; entity 1: {3,4}; entity 2: {5}.
        ScanCountIndex::build(&[vec![1, 2, 3], vec![3, 4], vec![5]])
    }

    fn collect(idx: &mut ScanCountIndex, q: &[u64]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        idx.query_into(q, &mut out);
        out
    }

    #[test]
    fn overlap_counts_are_exact() {
        let mut idx = index();
        // Query {2,3,4}: entity 0 overlaps {2,3}=2, entity 1 {3,4}=2.
        assert_eq!(collect(&mut idx, &[2, 3, 4]), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn non_overlapping_entities_not_visited() {
        let mut idx = index();
        assert_eq!(collect(&mut idx, &[1]), vec![(0, 1)]);
        assert!(collect(&mut idx, &[99]).is_empty());
        assert!(collect(&mut idx, &[]).is_empty());
    }

    #[test]
    fn counts_reset_between_queries() {
        let mut idx = index();
        let first = collect(&mut idx, &[3]);
        let second = collect(&mut idx, &[3]);
        assert_eq!(first, second);
        assert_eq!(first, vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn set_sizes_recorded() {
        let idx = index();
        assert_eq!(idx.set_size(0), 3);
        assert_eq!(idx.set_size(2), 1);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn empty_index() {
        let mut idx = ScanCountIndex::build(&[]);
        assert!(idx.is_empty());
        assert!(collect(&mut idx, &[1, 2]).is_empty());
    }

    #[test]
    fn batch_matches_serial_for_any_thread_count() {
        // ~60 sets with heavy token reuse, plus empty and no-hit queries.
        let sets: Vec<Vec<u64>> = (0..60u64)
            .map(|i| (0..=(i % 7)).map(|t| (i + t) % 19).collect())
            .collect();
        let mut idx = ScanCountIndex::build(&sets);
        let mut queries = sets[..25].to_vec();
        queries.push(Vec::new());
        queries.push(vec![999]);
        let serial: Vec<Vec<(u32, u32)>> = queries
            .iter()
            .map(|q| {
                let mut out = Vec::new();
                idx.query_into(q, &mut out);
                out
            })
            .collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                idx.query_batch_with(threads, &queries),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn default_scratch_resizes_lazily() {
        let idx = index();
        let mut scratch = ScanCountScratch::default();
        let mut out = Vec::new();
        idx.query_with(&mut scratch, &[2, 3, 4], &mut out);
        assert_eq!(out, vec![(0, 2), (1, 2)]);
        // Reuse: counts must have been reset.
        idx.query_with(&mut scratch, &[2, 3, 4], &mut out);
        assert_eq!(out, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn overlap_never_exceeds_set_sizes() {
        let sets: Vec<Vec<u64>> = vec![vec![1, 2, 3, 4], vec![2, 4, 6], vec![7]];
        let mut idx = ScanCountIndex::build(&sets);
        let q = vec![1, 2, 4, 6, 8];
        let mut out = Vec::new();
        idx.query_into(&q, &mut out);
        for &(e, o) in &out {
            assert!(o as usize <= sets[e as usize].len());
            assert!(o as usize <= q.len());
        }
    }
}
