//! The range join (ε-Join, paper §IV-C): pair all entities whose token-set
//! similarity is at least a user-defined threshold ε.
//!
//! Built on ScanCount: index `E1`'s token sets, probe with every `E2`
//! entity, convert overlaps to similarities and keep those `≥ ε`. All exact
//! ε-join algorithms produce the same candidate set; ScanCount is chosen
//! because ER-optimal thresholds are low (paper: mostly below 0.5), where
//! prefix-filter techniques lose their advantage.

use crate::representation::RepresentationModel;
use crate::scancount::ScanCountIndex;
use crate::similarity::SimilarityMeasure;
use er_core::filter::{Filter, FilterOutput};
use er_core::schema::TextView;
use er_text::Cleaner;

/// A configured ε-Join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonJoin {
    /// Apply stop-word removal + stemming first (`CL`).
    pub cleaning: bool,
    /// Representation model (`RM`).
    pub model: RepresentationModel,
    /// Similarity measure (`SM`).
    pub measure: SimilarityMeasure,
    /// Similarity threshold ε (`t` in Table IV), in `[0, 1]`.
    pub threshold: f64,
}

impl EpsilonJoin {
    /// One-line configuration description for Table IX-style reports.
    pub fn describe(&self) -> String {
        format!(
            "CL={} RM={} SM={} t={:.2}",
            if self.cleaning { "y" } else { "-" },
            self.model.name(),
            self.measure.name(),
            self.threshold
        )
    }
}

impl Filter for EpsilonJoin {
    fn name(&self) -> String {
        "e-Join".to_owned()
    }

    fn run(&self, view: &TextView) -> FilterOutput {
        let mut out = FilterOutput::default();
        let cleaner = if self.cleaning {
            Cleaner::on()
        } else {
            Cleaner::off()
        };

        let (sets1, sets2) = out.breakdown.time("preprocess", || {
            let s1: Vec<Vec<u64>> = view
                .e1
                .iter()
                .map(|t| self.model.token_set(t, &cleaner))
                .collect();
            let s2: Vec<Vec<u64>> = view
                .e2
                .iter()
                .map(|t| self.model.token_set(t, &cleaner))
                .collect();
            (s1, s2)
        });

        let mut index = out
            .breakdown
            .time("index", || ScanCountIndex::build(&sets1));

        out.breakdown.time("query", || {
            let mut hits: Vec<(u32, u32)> = Vec::new();
            for (j, query) in sets2.iter().enumerate() {
                let qlen = query.len();
                index.query_into(query, &mut hits);
                for &(i, overlap) in &hits {
                    let sim = self
                        .measure
                        .compute(overlap as usize, index.set_size(i), qlen);
                    if sim >= self.threshold {
                        out.candidates.insert_raw(i, j as u32);
                    }
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::candidates::Pair;

    fn join(threshold: f64) -> EpsilonJoin {
        EpsilonJoin {
            cleaning: false,
            model: RepresentationModel::parse("T1G").expect("model"),
            measure: SimilarityMeasure::Jaccard,
            threshold,
        }
    }

    fn view() -> TextView {
        TextView {
            e1: vec!["apple iphone black".into(), "samsung galaxy".into()],
            e2: vec![
                "apple iphone black case".into(), // J = 3/4 with e1[0]
                "galaxy phone".into(),            // J = 1/3 with e1[1]
                "nokia".into(),
            ],
        }
    }

    #[test]
    fn threshold_selects_pairs() {
        let out = join(0.5).run(&view());
        assert_eq!(out.candidates.len(), 1);
        assert!(out.candidates.contains(Pair::new(0, 0)));

        let out = join(0.3).run(&view());
        assert_eq!(out.candidates.len(), 2);
        assert!(out.candidates.contains(Pair::new(1, 1)));
    }

    #[test]
    fn threshold_zero_keeps_all_overlapping() {
        let out = join(0.0).run(&view());
        // Only token-sharing pairs appear (ScanCount never sees disjoint
        // pairs), so "nokia" stays unmatched even at ε = 0.
        assert_eq!(out.candidates.len(), 2);
    }

    #[test]
    fn candidates_shrink_monotonically_with_threshold() {
        let mut prev = usize::MAX;
        for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let n = join(t).run(&view()).candidates.len();
            assert!(n <= prev, "t={t}");
            prev = n;
        }
    }

    #[test]
    fn phases_are_recorded() {
        let out = join(0.5).run(&view());
        for phase in ["preprocess", "index", "query"] {
            assert!(out.breakdown.get(phase).is_some(), "{phase} missing");
        }
    }

    #[test]
    fn exact_duplicates_survive_threshold_one() {
        let v = TextView {
            e1: vec!["exact match text".into()],
            e2: vec!["exact match text".into(), "different".into()],
        };
        let out = join(1.0).run(&v);
        assert_eq!(out.candidates.len(), 1);
        assert!(out.candidates.contains(Pair::new(0, 0)));
    }
}
