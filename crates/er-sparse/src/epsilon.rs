//! The range join (ε-Join, paper §IV-C): pair all entities whose token-set
//! similarity is at least a user-defined threshold ε.
//!
//! Built on ScanCount: index `E1`'s token sets, probe with every `E2`
//! entity, convert overlaps to similarities and keep those `≥ ε`. All exact
//! ε-join algorithms produce the same candidate set; ScanCount is chosen
//! because ER-optimal thresholds are low (paper: mostly below 0.5), where
//! prefix-filter techniques lose their advantage.

use crate::artifact::TokenSetsArtifact;
use crate::representation::RepresentationModel;
use crate::scancount::ScanCountScratch;
use crate::similarity::SimilarityMeasure;
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::schema::TextView;

/// A configured ε-Join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonJoin {
    /// Apply stop-word removal + stemming first (`CL`).
    pub cleaning: bool,
    /// Representation model (`RM`).
    pub model: RepresentationModel,
    /// Similarity measure (`SM`).
    pub measure: SimilarityMeasure,
    /// Similarity threshold ε (`t` in Table IV), in `[0, 1]`.
    pub threshold: f64,
}

impl EpsilonJoin {
    /// One-line configuration description for Table IX-style reports.
    pub fn describe(&self) -> String {
        format!(
            "CL={} RM={} SM={} t={:.2}",
            if self.cleaning { "y" } else { "-" },
            self.model.name(),
            self.measure.name(),
            self.threshold
        )
    }

    /// Candidates of one query row, appended to `out` in index order —
    /// exactly what the batch [`Filter::query`] loop records for row `j`
    /// (which calls this), so an online lookup served from a store-loaded
    /// artifact is byte-identical to the offline sweep by construction.
    pub fn query_row_into(
        &self,
        art: &TokenSetsArtifact,
        j: usize,
        scratch: &mut ScanCountScratch,
        hits: &mut Vec<(u32, u32)>,
        out: &mut Vec<u32>,
    ) {
        let qlen = art.query_sets.set_size(j);
        // Exact length filter: candidates whose cardinality cannot
        // reach ε are skipped before the similarity is computed
        // (see `SimilarityMeasure::size_bounds` for the exactness
        // argument).
        let (lo, hi) = self.measure.size_bounds(qlen, self.threshold);
        art.index.query_row_with(scratch, &art.query_sets, j, hits);
        for &(i, overlap) in hits.iter() {
            let ilen = art.index.set_size(i);
            if ilen < lo || ilen > hi {
                continue;
            }
            let sim = self.measure.compute(overlap as usize, ilen, qlen);
            if sim >= self.threshold {
                out.push(i);
            }
        }
    }
}

impl Filter for EpsilonJoin {
    fn name(&self) -> String {
        "e-Join".to_owned()
    }

    fn repr_key(&self) -> String {
        TokenSetsArtifact::repr_key(self.cleaning, self.model, false)
    }

    fn prepare(&self, view: &TextView) -> Prepared {
        TokenSetsArtifact::prepare(view, self.cleaning, self.model, false)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        let art = prepared.downcast::<TokenSetsArtifact>();
        let mut out = FilterOutput::default();
        out.breakdown.time("query", || {
            let mut scratch = ScanCountScratch::default();
            let mut hits: Vec<(u32, u32)> = Vec::new();
            let mut row: Vec<u32> = Vec::new();
            for j in 0..art.query_sets.len() {
                row.clear();
                self.query_row_into(art, j, &mut scratch, &mut hits, &mut row);
                for &i in &row {
                    out.candidates.insert_raw(i, j as u32);
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::candidates::Pair;

    fn join(threshold: f64) -> EpsilonJoin {
        EpsilonJoin {
            cleaning: false,
            model: RepresentationModel::parse("T1G").expect("model"),
            measure: SimilarityMeasure::Jaccard,
            threshold,
        }
    }

    fn view() -> TextView {
        TextView {
            e1: vec!["apple iphone black".into(), "samsung galaxy".into()].into(),
            e2: vec![
                "apple iphone black case".into(), // J = 3/4 with e1[0]
                "galaxy phone".into(),            // J = 1/3 with e1[1]
                "nokia".into(),
            ]
            .into(),
        }
    }

    #[test]
    fn threshold_selects_pairs() {
        let out = join(0.5).run(&view());
        assert_eq!(out.candidates.len(), 1);
        assert!(out.candidates.contains(Pair::new(0, 0)));

        let out = join(0.3).run(&view());
        assert_eq!(out.candidates.len(), 2);
        assert!(out.candidates.contains(Pair::new(1, 1)));
    }

    #[test]
    fn threshold_zero_keeps_all_overlapping() {
        let out = join(0.0).run(&view());
        // Only token-sharing pairs appear (ScanCount never sees disjoint
        // pairs), so "nokia" stays unmatched even at ε = 0.
        assert_eq!(out.candidates.len(), 2);
    }

    #[test]
    fn candidates_shrink_monotonically_with_threshold() {
        let mut prev = usize::MAX;
        for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let n = join(t).run(&view()).candidates.len();
            assert!(n <= prev, "t={t}");
            prev = n;
        }
    }

    #[test]
    fn phases_are_recorded() {
        let out = join(0.5).run(&view());
        for phase in ["preprocess", "index", "query"] {
            assert!(out.breakdown.get(phase).is_some(), "{phase} missing");
        }
    }

    #[test]
    fn shared_artifact_matches_cold_runs() {
        // One prepare, many thresholds: every query must equal its
        // monolithic counterpart.
        let v = view();
        let prepared = join(0.0).prepare(&v);
        for t in [0.0, 0.3, 0.5, 1.0] {
            let cold = join(t).run(&v);
            let warm = join(t).query(&v, &prepared);
            assert_eq!(
                warm.candidates.to_sorted_vec(),
                cold.candidates.to_sorted_vec(),
                "t={t}"
            );
        }
    }

    #[test]
    fn exact_duplicates_survive_threshold_one() {
        let v = TextView {
            e1: vec!["exact match text".into()].into(),
            e2: vec!["exact match text".into(), "different".into()].into(),
        };
        let out = join(1.0).run(&v);
        assert_eq!(out.candidates.len(), 1);
        assert!(out.candidates.contains(Pair::new(0, 0)));
    }
}
