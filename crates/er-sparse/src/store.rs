//! Persistent-store codecs for the sparse artifacts.
//!
//! Four codecs share this module. [`SparsePackedCodec`] (id 8) is the
//! monolithic writer: it serializes [`TokenSetsArtifact`]'s bitpacked
//! rows ([`crate::packed`]) verbatim — store files shrink by the same
//! ratio as the in-memory postings — plus the token interner as its
//! hashes in dense-id order (rebuilding by in-order insertion reassigns
//! identical ids). [`SparseCodec`] (id 1) is the legacy plain-CSR layout
//! from before postings were packed; it decodes old files forever (codec
//! ids are append-only) but never encodes new ones, and is exempt from
//! the store's heap-parity tripwire because packing at load time changes
//! the in-memory footprint the old header recorded.
//!
//! The segmented incremental index ([`crate::segmented`]) adds two more.
//! [`SparseSegmentCodec`] (id 10) stores one immutable
//! [`SparseSegment`]: its sequence number, its stable-id column, and
//! exactly the packed artifact layout of id 8 (the shared
//! [`encode_token_sets_artifact`]/[`decode_token_sets_artifact`] pair).
//! [`SparseManifestCodec`] (id 11) stores the [`SparseManifest`] — the
//! segment stack's seqs plus the mutable state (delta rows, tombstones,
//! raw query sets) — and reports the segment repr keys it references so
//! `er store gc` can detect orphans and `er store inspect` can render
//! segment trees.
//!
//! Decode re-validates every invariant the query paths index by — a file
//! that passes its checksums but violates them (only possible under a
//! checksum collision) is a structured error, never a later out-of-bounds
//! access. For newly written files the decoded artifact reports
//! byte-identical `heap_bytes` to a freshly built one: the packed terms
//! are exact array sizes and the interner term depends only on its entry
//! count.

use crate::artifact::TokenSetsArtifact;
use crate::csr::CsrTokenSets;
use crate::packed::PackedRows;
use crate::scancount::ScanCountIndex;
use crate::segmented::{SparseManifest, SparseSegment};
use er_store::{ArtifactCodec, SectionRatio, Sections, StoreError, StoreFile};
use std::any::Any;
use std::sync::Arc;

/// Codec id of the legacy plain-CSR sparse layout (decode-only).
pub const SPARSE_CODEC_ID: u32 = 1;

/// Codec id of the bitpacked sparse layout (the writer).
pub const SPARSE_PACKED_CODEC_ID: u32 = 8;

/// Codec id of one immutable segment of a segmented sparse index.
pub const SPARSE_SEGMENT_CODEC_ID: u32 = 10;

/// Codec id of the segmented sparse index's manifest.
pub const SPARSE_MANIFEST_CODEC_ID: u32 = 11;

/// Decodes the legacy plain-CSR sparse layout (see module docs).
pub struct SparseCodec;

/// (De)serializes [`TokenSetsArtifact`] in the bitpacked layout.
pub struct SparsePackedCodec;

/// (De)serializes one [`SparseSegment`] (seq + stable ids + artifact).
pub struct SparseSegmentCodec;

/// (De)serializes the [`SparseManifest`] of a segmented sparse index.
pub struct SparseManifestCodec;

/// Checks the CSR invariants of an `(offsets, values)` pair: `offsets`
/// starts at 0, is non-decreasing, and ends at `values_len`.
fn check_offsets(what: &str, offsets: &[u32], values_len: usize) -> er_store::Result<()> {
    let ok = offsets.first() == Some(&0)
        && offsets.last().copied() == Some(values_len as u32)
        && offsets.windows(2).all(|w| w[0] <= w[1]);
    if ok {
        Ok(())
    } else {
        Err(StoreError::Malformed(format!("{what}: broken CSR offsets")))
    }
}

/// Checks every value in `ids` addresses an array of length `bound`.
fn check_ids(what: &str, ids: &[u32], bound: usize) -> er_store::Result<()> {
    if ids.iter().all(|&id| (id as usize) < bound) {
        Ok(())
    } else {
        Err(StoreError::Malformed(format!("{what}: id out of range")))
    }
}

/// Reads and validates one legacy plain-CSR `CsrTokenSets` (three
/// consecutive sections), packing the rows at load time.
fn decode_sets_plain(
    what: &str,
    cur: &mut er_store::SectionCursor<'_>,
    token_bound: usize,
) -> er_store::Result<CsrTokenSets> {
    let offsets = cur.u32s()?.to_vec();
    let tokens = cur.u32s()?.to_vec();
    let set_sizes = cur.u32s()?.to_vec();
    if offsets.len() != set_sizes.len() + 1 {
        return Err(StoreError::Malformed(format!(
            "{what}: offsets/rows mismatch"
        )));
    }
    check_offsets(what, &offsets, tokens.len())?;
    check_ids(what, &tokens, token_bound)?;
    Ok(CsrTokenSets::from_parts(offsets, tokens, set_sizes))
}

impl ArtifactCodec for SparseCodec {
    fn id(&self) -> u32 {
        SPARSE_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "sparse"
    }

    /// Legacy layout: decode-only. New files are written by
    /// [`SparsePackedCodec`].
    fn encode(&self, _artifact: &(dyn Any + Send + Sync)) -> Option<Sections> {
        None
    }

    /// The pre-packing layout stored smaller `heap_bytes` in its header
    /// than the packed in-memory artifact it now decodes into.
    fn exact_heap_parity(&self) -> bool {
        false
    }

    fn decode(&self, file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
        let mut cur = file.cursor()?;
        let interner_tokens = cur.u64s()?.to_vec();
        let offsets = cur.u32s()?.to_vec();
        let postings = cur.u32s()?.to_vec();
        let set_sizes = cur.u32s()?.to_vec();
        if offsets.len() != interner_tokens.len() + 1 {
            return Err(StoreError::Malformed(
                "scancount: offsets/interner mismatch".to_owned(),
            ));
        }
        check_offsets("scancount", &offsets, postings.len())?;
        check_ids("scancount postings", &postings, set_sizes.len())?;
        let token_bound = interner_tokens.len();
        let index = ScanCountIndex::from_raw_parts(
            &interner_tokens,
            PackedRows::from_rows(offsets, &postings),
            set_sizes,
        );
        let index_sets = decode_sets_plain("index_sets", &mut cur, token_bound)?;
        let query_sets = decode_sets_plain("query_sets", &mut cur, token_bound)?;
        cur.finish()?;
        if index_sets.len() != index.len() {
            return Err(StoreError::Malformed(
                "index_sets rows != indexed entities".to_owned(),
            ));
        }
        let heap_bytes = index_sets.heap_bytes() + query_sets.heap_bytes() + index.heap_bytes();
        Ok((
            Arc::new(TokenSetsArtifact {
                index_sets,
                query_sets,
                index,
            }),
            heap_bytes,
        ))
    }
}

/// Serializes one [`PackedRows`] as four consecutive sections.
fn push_packed(s: &mut Sections, rows: &PackedRows) {
    let (offsets, widths, block_bits, bits) = rows.raw_parts();
    s.u32s(offsets);
    s.bytes(widths);
    s.u64s(block_bits);
    s.u64s(bits);
}

/// Reads one [`PackedRows`], re-checking the structural invariants the
/// branchless unpacker indexes by.
fn read_packed(what: &str, cur: &mut er_store::SectionCursor<'_>) -> er_store::Result<PackedRows> {
    let offsets = cur.u32s()?.to_vec();
    let widths = cur.bytes()?.to_vec();
    let block_bits = cur.u64s()?.to_vec();
    let bits = cur.u64s()?.to_vec();
    if offsets.is_empty() {
        return Err(StoreError::Malformed(format!("{what}: empty offsets")));
    }
    PackedRows::from_raw(offsets, widths, block_bits, bits)
        .map_err(|e| StoreError::Malformed(format!("{what}: {e}")))
}

/// Reads one packed `CsrTokenSets`, range-checking the decoded token ids.
fn decode_sets_packed(
    what: &str,
    cur: &mut er_store::SectionCursor<'_>,
    token_bound: usize,
) -> er_store::Result<CsrTokenSets> {
    let rows = read_packed(what, cur)?;
    let set_sizes = cur.u32s()?.to_vec();
    if rows.len() != set_sizes.len() {
        return Err(StoreError::Malformed(format!(
            "{what}: offsets/rows mismatch"
        )));
    }
    rows.validate(token_bound as u32, false)
        .map_err(|e| StoreError::Malformed(format!("{what}: {e}")))?;
    Ok(CsrTokenSets::from_packed(rows, set_sizes))
}

/// Appends the bitpacked-artifact sections (the id-8 layout) to `s`:
/// interner hashes, packed postings + cardinalities, then both token-set
/// CSRs. Shared by the monolithic and the per-segment codec.
fn encode_token_sets_artifact(s: &mut Sections, art: &TokenSetsArtifact) {
    let (interner_tokens, postings, set_sizes) = art.index.raw_parts();
    s.u64s(&interner_tokens);
    push_packed(s, postings);
    s.u32s(set_sizes);
    for sets in [&art.index_sets, &art.query_sets] {
        push_packed(s, sets.packed());
        s.u32s(sets.set_sizes());
    }
}

/// Reads and re-validates one bitpacked artifact (the inverse of
/// [`encode_token_sets_artifact`]), returning it with its exact
/// `heap_bytes`.
fn decode_token_sets_artifact(
    cur: &mut er_store::SectionCursor<'_>,
) -> er_store::Result<(TokenSetsArtifact, usize)> {
    let interner_tokens = cur.u64s()?.to_vec();
    let postings = read_packed("scancount postings", cur)?;
    let set_sizes = cur.u32s()?.to_vec();
    if postings.len() != interner_tokens.len() {
        return Err(StoreError::Malformed(
            "scancount: postings/interner mismatch".to_owned(),
        ));
    }
    // Ascending entity ids per list: the invariant the SIMD merge
    // kernels rely on for distinctness and in-bounds counter access.
    postings
        .validate(set_sizes.len() as u32, true)
        .map_err(|e| StoreError::Malformed(format!("scancount postings: {e}")))?;
    let token_bound = interner_tokens.len();
    let index = ScanCountIndex::from_raw_parts(&interner_tokens, postings, set_sizes);
    let index_sets = decode_sets_packed("index_sets", cur, token_bound)?;
    let query_sets = decode_sets_packed("query_sets", cur, token_bound)?;
    if index_sets.len() != index.len() {
        return Err(StoreError::Malformed(
            "index_sets rows != indexed entities".to_owned(),
        ));
    }
    let heap_bytes = index_sets.heap_bytes() + query_sets.heap_bytes() + index.heap_bytes();
    Ok((
        TokenSetsArtifact {
            index_sets,
            query_sets,
            index,
        },
        heap_bytes,
    ))
}

/// Per-structure encoded (packed) vs decoded (plain CSR) byte sizes of
/// one bitpacked artifact, for `er store inspect`'s compression report.
/// `cur` must stand at the artifact's interner section.
fn artifact_section_ratios(
    cur: &mut er_store::SectionCursor<'_>,
) -> er_store::Result<Vec<SectionRatio>> {
    let _interner = cur.u64s()?;
    let mut out = Vec::new();
    for label in ["postings", "index_sets", "query_sets"] {
        let rows = read_packed(label, cur)?;
        out.push(SectionRatio {
            label: label.to_owned(),
            encoded_bytes: rows.heap_bytes() as u64,
            decoded_bytes: rows.plain_bytes() as u64,
        });
        let _set_sizes = cur.u32s()?;
    }
    Ok(out)
}

impl ArtifactCodec for SparsePackedCodec {
    fn id(&self) -> u32 {
        SPARSE_PACKED_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "sparse-packed"
    }

    fn encode(&self, artifact: &(dyn Any + Send + Sync)) -> Option<Sections> {
        let art = artifact.downcast_ref::<TokenSetsArtifact>()?;
        let mut s = Sections::new();
        encode_token_sets_artifact(&mut s, art);
        Some(s)
    }

    fn decode(&self, file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
        let mut cur = file.cursor()?;
        let (art, heap_bytes) = decode_token_sets_artifact(&mut cur)?;
        cur.finish()?;
        Ok((Arc::new(art), heap_bytes))
    }

    fn section_ratios(&self, file: &StoreFile) -> er_store::Result<Vec<SectionRatio>> {
        let mut cur = file.cursor()?;
        artifact_section_ratios(&mut cur)
    }
}

impl ArtifactCodec for SparseSegmentCodec {
    fn id(&self) -> u32 {
        SPARSE_SEGMENT_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "sparse-segment"
    }

    /// Segment files are only meaningful through a manifest: `er store gc`
    /// collects any it finds unreferenced.
    fn is_segment(&self) -> bool {
        true
    }

    fn encode(&self, artifact: &(dyn Any + Send + Sync)) -> Option<Sections> {
        let seg = artifact.downcast_ref::<SparseSegment>()?;
        let mut s = Sections::new();
        s.scalar(seg.seq);
        s.u32s(&seg.ids);
        encode_token_sets_artifact(&mut s, &seg.art);
        Some(s)
    }

    fn decode(&self, file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
        let mut cur = file.cursor()?;
        let seq = cur.scalar()?;
        let ids = cur.u32s()?.to_vec();
        if !ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(StoreError::Malformed(
                "segment: stable ids not strictly ascending".to_owned(),
            ));
        }
        let (art, art_heap) = decode_token_sets_artifact(&mut cur)?;
        cur.finish()?;
        if ids.len() != art.index.len() {
            return Err(StoreError::Malformed(
                "segment: stable ids != indexed rows".to_owned(),
            ));
        }
        let heap_bytes = art_heap + ids.len() * 4;
        Ok((Arc::new(SparseSegment { seq, ids, art }), heap_bytes))
    }

    fn section_ratios(&self, file: &StoreFile) -> er_store::Result<Vec<SectionRatio>> {
        let mut cur = file.cursor()?;
        let _ids = cur.u32s()?;
        artifact_section_ratios(&mut cur)
    }
}

/// Checks a `u32` array is strictly ascending.
fn check_ascending(what: &str, ids: &[u32]) -> er_store::Result<()> {
    if ids.windows(2).all(|w| w[0] < w[1]) {
        Ok(())
    } else {
        Err(StoreError::Malformed(format!(
            "{what}: not strictly ascending"
        )))
    }
}

impl ArtifactCodec for SparseManifestCodec {
    fn id(&self) -> u32 {
        SPARSE_MANIFEST_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "sparse-manifest"
    }

    fn encode(&self, artifact: &(dyn Any + Send + Sync)) -> Option<Sections> {
        let m = artifact.downcast_ref::<SparseManifest>()?;
        let mut s = Sections::new();
        s.scalar(m.next_seq);
        s.bytes(m.base_repr.as_bytes());
        s.u64s(&m.segment_seqs);
        s.u32s(&m.tombstones);
        let mut delta_ids = Vec::with_capacity(m.delta.len());
        let mut delta_offsets = vec![0u32];
        let mut delta_tokens = Vec::new();
        for (id, set) in &m.delta {
            delta_ids.push(*id);
            delta_tokens.extend_from_slice(set);
            delta_offsets.push(delta_tokens.len() as u32);
        }
        s.u32s(&delta_ids);
        s.u32s(&delta_offsets);
        s.u64s(&delta_tokens);
        let mut query_offsets = vec![0u32];
        let mut query_tokens = Vec::new();
        for set in &m.query_raw {
            query_tokens.extend_from_slice(set);
            query_offsets.push(query_tokens.len() as u32);
        }
        s.u32s(&query_offsets);
        s.u64s(&query_tokens);
        Some(s)
    }

    fn decode(&self, file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
        let mut cur = file.cursor()?;
        let next_seq = cur.scalar()?;
        let base_repr = std::str::from_utf8(cur.bytes()?)
            .map_err(|_| StoreError::Malformed("manifest: base repr not UTF-8".to_owned()))?
            .to_owned();
        let segment_seqs = cur.u64s()?.to_vec();
        if segment_seqs.iter().any(|&s| s >= next_seq) {
            return Err(StoreError::Malformed(
                "manifest: segment seq >= next_seq".to_owned(),
            ));
        }
        let distinct: std::collections::BTreeSet<u64> = segment_seqs.iter().copied().collect();
        if distinct.len() != segment_seqs.len() {
            return Err(StoreError::Malformed(
                "manifest: duplicate segment seq".to_owned(),
            ));
        }
        let tombstones = cur.u32s()?.to_vec();
        check_ascending("manifest tombstones", &tombstones)?;
        let delta_ids = cur.u32s()?.to_vec();
        check_ascending("manifest delta ids", &delta_ids)?;
        let delta_offsets = cur.u32s()?.to_vec();
        let delta_tokens = cur.u64s()?.to_vec();
        if delta_offsets.len() != delta_ids.len() + 1 {
            return Err(StoreError::Malformed(
                "manifest: delta offsets/ids mismatch".to_owned(),
            ));
        }
        check_offsets("manifest delta", &delta_offsets, delta_tokens.len())?;
        if delta_ids
            .iter()
            .any(|id| tombstones.binary_search(id).is_ok())
        {
            return Err(StoreError::Malformed(
                "manifest: delta id also tombstoned".to_owned(),
            ));
        }
        let query_offsets = cur.u32s()?.to_vec();
        let query_tokens = cur.u64s()?.to_vec();
        if query_offsets.is_empty() {
            return Err(StoreError::Malformed(
                "manifest: empty query offsets".to_owned(),
            ));
        }
        check_offsets("manifest queries", &query_offsets, query_tokens.len())?;
        cur.finish()?;
        let delta = delta_ids
            .iter()
            .zip(delta_offsets.windows(2))
            .map(|(&id, w)| (id, delta_tokens[w[0] as usize..w[1] as usize].to_vec()))
            .collect();
        let query_raw = query_offsets
            .windows(2)
            .map(|w| query_tokens[w[0] as usize..w[1] as usize].to_vec())
            .collect();
        let manifest = SparseManifest {
            next_seq,
            base_repr,
            segment_seqs,
            tombstones,
            delta,
            query_raw,
        };
        let heap_bytes = manifest.heap_bytes();
        Ok((Arc::new(manifest), heap_bytes))
    }

    /// The segment files this manifest pins; everything else under the
    /// same dataset wearing `is_segment` is an orphan. Only the first
    /// three sections are decoded — gc stays cheap on large manifests.
    fn referenced_reprs(&self, file: &StoreFile) -> er_store::Result<Vec<String>> {
        let mut cur = file.cursor()?;
        let _next_seq = cur.scalar()?;
        let base_repr = std::str::from_utf8(cur.bytes()?)
            .map_err(|_| StoreError::Malformed("manifest: base repr not UTF-8".to_owned()))?
            .to_owned();
        let segment_seqs = cur.u64s()?;
        Ok(segment_seqs
            .iter()
            .map(|&seq| crate::segmented::segment_repr(&base_repr, seq))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representation::RepresentationModel;
    use crate::scancount::ScanCountScratch;
    use er_core::artifacts::{ArtifactKey, DiskTier, TierLoad};
    use er_core::schema::TextView;
    use er_store::ArtifactStore;

    fn store_in(name: &str) -> (ArtifactStore, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("er_sparse_store_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(
            &dir,
            vec![Box::new(SparseCodec), Box::new(SparsePackedCodec)],
        )
        .expect("open");
        (store, dir)
    }

    fn view() -> TextView {
        TextView::new(
            (0..12)
                .map(|i| format!("record number {} alpha beta {}", i, i % 3))
                .collect::<Vec<_>>(),
            (0..7)
                .map(|i| format!("record {} beta", i * 2))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn roundtrip_preserves_queries_and_heap_bytes() {
        let (store, dir) = store_in("roundtrip");
        let model = RepresentationModel::parse("T1G").expect("T1G");
        let fresh = TokenSetsArtifact::prepare(&view(), true, model, false);
        let key = ArtifactKey::new(11, TokenSetsArtifact::repr_key(true, model, false));
        assert!(store.store(&key, &fresh).expect("store"));
        let TierLoad::Hit { prepared, saved } = store.load(&key) else {
            panic!("expected hit");
        };
        // heap_bytes parity: the store-loaded artifact budgets identically.
        assert_eq!(prepared.bytes(), fresh.bytes());
        assert_eq!(saved, fresh.breakdown().prepare_total());
        let a = fresh.downcast::<TokenSetsArtifact>();
        let b = prepared.downcast::<TokenSetsArtifact>();
        assert_eq!(
            a.index_sets.packed().raw_parts(),
            b.index_sets.packed().raw_parts()
        );
        assert_eq!(
            a.query_sets.packed().raw_parts(),
            b.query_sets.packed().raw_parts()
        );
        assert_eq!(a.index.raw_parts(), b.index.raw_parts());
        // Query equivalence through the rebuilt interner.
        let mut scratch = ScanCountScratch::default();
        for q in 0..a.query_sets.len() {
            let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
            a.index
                .query_row_with(&mut scratch, &a.query_sets, q, &mut out_a);
            b.index
                .query_row_with(&mut scratch, &b.query_sets, q, &mut out_b);
            assert_eq!(out_a, out_b, "query {q}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn new_files_use_the_packed_codec() {
        let (store, dir) = store_in("packed_id");
        let model = RepresentationModel::parse("C3G").expect("C3G");
        let fresh = TokenSetsArtifact::prepare(&view(), true, model, false);
        let key = ArtifactKey::new(5, TokenSetsArtifact::repr_key(true, model, false));
        assert!(store.store(&key, &fresh).expect("store"));
        let infos = store.inspect().expect("inspect");
        assert_eq!(infos.len(), 1);
        let info = infos[0].1.as_ref().expect("readable file");
        assert_eq!(info.codec_id, SPARSE_PACKED_CODEC_ID);
        assert_eq!(info.codec_name, Some("sparse-packed"));
        // The compression report covers the three packed structures.
        let ratios = &info.section_ratios;
        assert_eq!(ratios.len(), 3);
        assert!(ratios.iter().all(|r| r.encoded_bytes > 0));
        assert!(ratios.iter().any(|r| r.encoded_bytes < r.decoded_bytes));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_view_roundtrips() {
        let (store, dir) = store_in("empty");
        let model = RepresentationModel::parse("T1G").expect("T1G");
        let fresh = TokenSetsArtifact::prepare(&TextView::new(vec![], vec![]), false, model, false);
        let key = ArtifactKey::new(1, "sparse:empty");
        assert!(store.store(&key, &fresh).expect("store"));
        let TierLoad::Hit { prepared, .. } = store.load(&key) else {
            panic!("expected hit");
        };
        assert_eq!(prepared.bytes(), fresh.bytes());
        assert!(prepared.downcast::<TokenSetsArtifact>().index.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unrelated_artifacts_are_not_encoded() {
        assert!(SparsePackedCodec
            .encode(&("not a sparse artifact".to_owned()))
            .is_none());
        let model = RepresentationModel::parse("T1G").expect("T1G");
        let fresh = TokenSetsArtifact::prepare(&view(), true, model, false);
        let art = fresh.downcast::<TokenSetsArtifact>();
        assert!(
            SparseCodec
                .encode(art as &(dyn Any + Send + Sync))
                .is_none(),
            "legacy codec is decode-only"
        );
    }
}
