//! Persistent-store codec for the sparse artifact.
//!
//! [`TokenSetsArtifact`] is three CSR structures over flat `u32` arrays
//! plus the token interner, whose serialized form is its hashes in
//! dense-id order (rebuilding by in-order insertion reassigns identical
//! ids). Decode re-validates every CSR invariant the query paths index by
//! — a file that passes its checksums but violates them (only possible
//! under a checksum collision) is a structured error, never a later
//! out-of-bounds panic. The decoded artifact reports byte-identical
//! `heap_bytes` to a freshly prepared one: the CSR terms are exact array
//! sizes and the interner term depends only on its entry count.

use crate::artifact::TokenSetsArtifact;
use crate::csr::CsrTokenSets;
use crate::scancount::ScanCountIndex;
use er_store::{ArtifactCodec, Sections, StoreError, StoreFile};
use std::any::Any;
use std::sync::Arc;

/// Codec id stamped into sparse artifact files.
pub const SPARSE_CODEC_ID: u32 = 1;

/// (De)serializes [`TokenSetsArtifact`].
pub struct SparseCodec;

/// Checks the CSR invariants of an `(offsets, values)` pair: `offsets`
/// starts at 0, is non-decreasing, and ends at `values_len`.
fn check_offsets(what: &str, offsets: &[u32], values_len: usize) -> er_store::Result<()> {
    let ok = offsets.first() == Some(&0)
        && offsets.last().copied() == Some(values_len as u32)
        && offsets.windows(2).all(|w| w[0] <= w[1]);
    if ok {
        Ok(())
    } else {
        Err(StoreError::Malformed(format!("{what}: broken CSR offsets")))
    }
}

/// Checks every value in `ids` addresses an array of length `bound`.
fn check_ids(what: &str, ids: &[u32], bound: usize) -> er_store::Result<()> {
    if ids.iter().all(|&id| (id as usize) < bound) {
        Ok(())
    } else {
        Err(StoreError::Malformed(format!("{what}: id out of range")))
    }
}

/// Reads and validates one `CsrTokenSets` (three consecutive sections).
fn decode_sets(
    what: &str,
    cur: &mut er_store::SectionCursor<'_>,
    token_bound: usize,
) -> er_store::Result<CsrTokenSets> {
    let offsets = cur.u32s()?.to_vec();
    let tokens = cur.u32s()?.to_vec();
    let set_sizes = cur.u32s()?.to_vec();
    if offsets.len() != set_sizes.len() + 1 {
        return Err(StoreError::Malformed(format!(
            "{what}: offsets/rows mismatch"
        )));
    }
    check_offsets(what, &offsets, tokens.len())?;
    check_ids(what, &tokens, token_bound)?;
    Ok(CsrTokenSets::from_parts(offsets, tokens, set_sizes))
}

impl ArtifactCodec for SparseCodec {
    fn id(&self) -> u32 {
        SPARSE_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "sparse"
    }

    fn encode(&self, artifact: &(dyn Any + Send + Sync)) -> Option<Sections> {
        let art = artifact.downcast_ref::<TokenSetsArtifact>()?;
        let mut s = Sections::new();
        let (interner_tokens, offsets, postings, set_sizes) = art.index.raw_parts();
        s.u64s(&interner_tokens);
        s.u32s(offsets);
        s.u32s(postings);
        s.u32s(set_sizes);
        for sets in [&art.index_sets, &art.query_sets] {
            let (offsets, tokens, set_sizes) = sets.raw_parts();
            s.u32s(offsets);
            s.u32s(tokens);
            s.u32s(set_sizes);
        }
        Some(s)
    }

    fn decode(&self, file: &StoreFile) -> er_store::Result<(Arc<dyn Any + Send + Sync>, usize)> {
        let mut cur = file.cursor()?;
        let interner_tokens = cur.u64s()?.to_vec();
        let offsets = cur.u32s()?.to_vec();
        let postings = cur.u32s()?.to_vec();
        let set_sizes = cur.u32s()?.to_vec();
        if offsets.len() != interner_tokens.len() + 1 {
            return Err(StoreError::Malformed(
                "scancount: offsets/interner mismatch".to_owned(),
            ));
        }
        check_offsets("scancount", &offsets, postings.len())?;
        check_ids("scancount postings", &postings, set_sizes.len())?;
        let token_bound = interner_tokens.len();
        let index = ScanCountIndex::from_raw_parts(&interner_tokens, offsets, postings, set_sizes);
        let index_sets = decode_sets("index_sets", &mut cur, token_bound)?;
        let query_sets = decode_sets("query_sets", &mut cur, token_bound)?;
        cur.finish()?;
        if index_sets.len() != index.len() {
            return Err(StoreError::Malformed(
                "index_sets rows != indexed entities".to_owned(),
            ));
        }
        let heap_bytes = index_sets.heap_bytes() + query_sets.heap_bytes() + index.heap_bytes();
        Ok((
            Arc::new(TokenSetsArtifact {
                index_sets,
                query_sets,
                index,
            }),
            heap_bytes,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representation::RepresentationModel;
    use crate::scancount::ScanCountScratch;
    use er_core::artifacts::{ArtifactKey, DiskTier, TierLoad};
    use er_core::schema::TextView;
    use er_store::ArtifactStore;

    fn store_in(name: &str) -> (ArtifactStore, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("er_sparse_store_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir, vec![Box::new(SparseCodec)]).expect("open");
        (store, dir)
    }

    fn view() -> TextView {
        TextView::new(
            (0..12)
                .map(|i| format!("record number {} alpha beta {}", i, i % 3))
                .collect::<Vec<_>>(),
            (0..7)
                .map(|i| format!("record {} beta", i * 2))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn roundtrip_preserves_queries_and_heap_bytes() {
        let (store, dir) = store_in("roundtrip");
        let model = RepresentationModel::parse("T1G").expect("T1G");
        let fresh = TokenSetsArtifact::prepare(&view(), true, model, false);
        let key = ArtifactKey::new(11, TokenSetsArtifact::repr_key(true, model, false));
        assert!(store.store(&key, &fresh).expect("store"));
        let TierLoad::Hit { prepared, saved } = store.load(&key) else {
            panic!("expected hit");
        };
        // heap_bytes parity: the store-loaded artifact budgets identically.
        assert_eq!(prepared.bytes(), fresh.bytes());
        assert_eq!(saved, fresh.breakdown().prepare_total());
        let a = fresh.downcast::<TokenSetsArtifact>();
        let b = prepared.downcast::<TokenSetsArtifact>();
        assert_eq!(a.index_sets.raw_parts(), b.index_sets.raw_parts());
        assert_eq!(a.query_sets.raw_parts(), b.query_sets.raw_parts());
        assert_eq!(a.index.raw_parts(), b.index.raw_parts());
        // Query equivalence through the rebuilt interner.
        let mut scratch = ScanCountScratch::default();
        for q in 0..a.query_sets.len() {
            let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
            a.index
                .query_ids_with(&mut scratch, a.query_sets.row(q), &mut out_a);
            b.index
                .query_ids_with(&mut scratch, b.query_sets.row(q), &mut out_b);
            assert_eq!(out_a, out_b, "query {q}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_view_roundtrips() {
        let (store, dir) = store_in("empty");
        let model = RepresentationModel::parse("T1G").expect("T1G");
        let fresh = TokenSetsArtifact::prepare(&TextView::new(vec![], vec![]), false, model, false);
        let key = ArtifactKey::new(1, "sparse:empty");
        assert!(store.store(&key, &fresh).expect("store"));
        let TierLoad::Hit { prepared, .. } = store.load(&key) else {
            panic!("expected hit");
        };
        assert_eq!(prepared.bytes(), fresh.bytes());
        assert!(prepared.downcast::<TokenSetsArtifact>().index.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unrelated_artifacts_are_not_encoded() {
        let codec = SparseCodec;
        assert!(codec
            .encode(&("not a sparse artifact".to_owned()))
            .is_none());
    }
}
