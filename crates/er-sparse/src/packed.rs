//! Delta-encoded, bitpacked CSR rows.
//!
//! [`PackedRows`] stores the same logical content as a plain CSR pair
//! (`offsets` + flat `u32` values) at a fraction of the bytes: each row's
//! values are delta-encoded against their predecessor (the delta chain
//! restarts at every row), zigzag-mapped so descending rows cost no more
//! than ascending ones, and bitpacked in blocks of [`BLOCK`] elements with
//! one bit width per block. Posting lists are ascending entity ids with
//! small gaps, so most blocks need only a handful of bits per element.
//!
//! Layout invariants (upheld by [`PackedRows::from_rows`], re-validated by
//! [`PackedRows::from_raw`] when a persistent-store codec rebuilds rows
//! from disk):
//!
//! * `offsets` has `rows + 1` entries, starts at 0, is non-decreasing and
//!   ends at the element count.
//! * `widths` has one entry per block of [`BLOCK`] elements, each ≤ 33
//!   (a zigzag-mapped `u32` delta needs at most 33 bits).
//! * `block_bits[b]` is the bit offset of block `b`'s first element;
//!   every block reserves a uniform `BLOCK * widths[b]` bits (the final,
//!   possibly partial, block included) so element addressing is pure
//!   arithmetic.
//! * `bits` holds exactly `ceil(total_bits / 64) + 2` words — the trailing
//!   sentinel words let the unpacker read two words unconditionally, which
//!   keeps the per-element extraction branchless. Two words (not one)
//!   because a zero-width tail block addresses `pos == total_bits`, whose
//!   word index may already be one past the payload.
//!
//! Decoding goes through a caller-owned scratch buffer
//! ([`PackedRows::decode_row_into`]); the hot paths in
//! [`crate::scancount`] reuse one buffer across an entire query batch.
//!
//! ## Size-aware cutover
//!
//! Bitpacking always wins on bytes, but on *tiny* inputs the per-element
//! unpack arithmetic loses to a plain memcpy by several times (the smoke
//! benchmarks measured 0.21×). Below [`PLAIN_MIRROR_CUTOVER`] total
//! elements, both constructors therefore keep a decoded **plain mirror**
//! of the values alongside the packed bits, and
//! [`PackedRows::decode_row_into`] serves row slices straight from it —
//! the packed form remains the canonical (serialized, byte-budgeted)
//! representation, the mirror is a derived query-path cache bounded by
//! 4 MiB. Above the cutover the mirror is dropped and the bitpacked
//! decode runs as before: at that scale the resident-set savings are the
//! point (they are what the out-of-core sharded sweep banks on) and the
//! decode cost amortizes over long posting lists.

/// Elements per bitpacking block; one bit width is chosen per block.
pub const BLOCK: usize = 128;

/// Total-element threshold below which a decoded plain mirror of the
/// values is kept for the query path (≤ 4 MiB of `u32`s). A pure
/// function of the packed content, so a store round-trip reproduces the
/// same choice.
pub const PLAIN_MIRROR_CUTOVER: usize = 1 << 20;

/// The widest zigzag-mapped `u32`-to-`u32` delta: 33 bits.
const MAX_WIDTH: u8 = 33;

/// Bitpacked CSR rows (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedRows {
    /// Row boundaries in element space: row `i` spans elements
    /// `offsets[i]..offsets[i + 1]`.
    offsets: Vec<u32>,
    /// Bit width per block of [`BLOCK`] elements.
    widths: Vec<u8>,
    /// Bit offset of each block's first element plus a final total-bits
    /// entry (`widths.len() + 1` entries, uniform `BLOCK * width` stride).
    block_bits: Vec<u64>,
    /// The packed zigzag deltas plus two sentinel pad words.
    bits: Vec<u64>,
    /// Decoded values (flat, row-sliced through `offsets`) kept below
    /// [`PLAIN_MIRROR_CUTOVER`] elements; `None` above it. A pure
    /// function of the packed content, rebuilt identically by every
    /// constructor — and excluded from [`PackedRows::heap_bytes`] for
    /// the same reason segment ownership maps are: the budget figure
    /// stays a pure function of the persisted state.
    plain: Option<Vec<u32>>,
}

impl Default for PackedRows {
    fn default() -> Self {
        Self::from_rows(vec![0], &[])
    }
}

#[inline]
fn zigzag(delta: i64) -> u64 {
    ((delta << 1) ^ (delta >> 63)) as u64
}

#[inline]
fn unzigzag(zz: u64) -> i64 {
    ((zz >> 1) as i64) ^ -((zz & 1) as i64)
}

impl PackedRows {
    /// Packs plain CSR parts (`offsets` boundaries over flat `values`).
    /// Values may be arbitrary `u32`s — ascending rows pack smallest, but
    /// correctness does not depend on order.
    pub fn from_rows(offsets: Vec<u32>, values: &[u32]) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets.first().copied(), Some(0));
        debug_assert_eq!(offsets.last().copied(), Some(values.len() as u32));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));

        // Zigzag deltas with a restart at every row boundary.
        let mut zz = Vec::with_capacity(values.len());
        for w in offsets.windows(2) {
            let mut prev = 0i64;
            for &v in &values[w[0] as usize..w[1] as usize] {
                zz.push(zigzag(v as i64 - prev));
                prev = v as i64;
            }
        }

        // One width per block: enough bits for the block's widest delta.
        let mut widths = Vec::with_capacity(zz.len().div_ceil(BLOCK));
        let mut block_bits = Vec::with_capacity(widths.capacity() + 1);
        block_bits.push(0u64);
        for block in zz.chunks(BLOCK) {
            let max = block.iter().copied().max().unwrap_or(0);
            let w = (64 - max.leading_zeros()) as u8;
            debug_assert!(w <= MAX_WIDTH);
            widths.push(w);
            block_bits.push(block_bits.last().unwrap() + (BLOCK as u64) * w as u64);
        }

        let total_bits = *block_bits.last().unwrap();
        let mut bits = vec![0u64; (total_bits.div_ceil(64) + 2) as usize];
        for (j, &v) in zz.iter().enumerate() {
            let w = widths[j / BLOCK] as u64;
            if w == 0 {
                continue;
            }
            let pos = block_bits[j / BLOCK] + ((j % BLOCK) as u64) * w;
            let word = (pos >> 6) as usize;
            let sh = (pos & 63) as u32;
            bits[word] |= v << sh;
            if sh as u64 + w > 64 {
                bits[word + 1] |= v >> (64 - sh);
            }
        }

        let plain = (values.len() < PLAIN_MIRROR_CUTOVER).then(|| values.to_vec());
        Self {
            offsets,
            widths,
            block_bits,
            bits,
            plain,
        }
    }

    /// Rebuilds packed rows from their serialized arrays, re-checking every
    /// structural invariant the unpacker's unchecked indexing relies on.
    /// Row *values* are not ranged here — see [`PackedRows::validate`].
    pub fn from_raw(
        offsets: Vec<u32>,
        widths: Vec<u8>,
        block_bits: Vec<u64>,
        bits: Vec<u64>,
    ) -> Result<Self, String> {
        if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("packed rows: bad offsets".into());
        }
        let elems = *offsets.last().unwrap() as usize;
        if widths.len() != elems.div_ceil(BLOCK) {
            return Err("packed rows: width count mismatch".into());
        }
        if block_bits.len() != widths.len() + 1 || block_bits[0] != 0 {
            return Err("packed rows: bad block offsets".into());
        }
        for (b, &w) in widths.iter().enumerate() {
            if w > MAX_WIDTH {
                return Err(format!("packed rows: width {w} > {MAX_WIDTH}"));
            }
            if block_bits[b + 1] != block_bits[b] + (BLOCK as u64) * w as u64 {
                return Err("packed rows: block offset stride mismatch".into());
            }
        }
        let total_bits = *block_bits.last().unwrap();
        if bits.len() as u64 != total_bits.div_ceil(64) + 2 {
            return Err("packed rows: bit buffer length mismatch".into());
        }
        let mut this = Self {
            offsets,
            widths,
            block_bits,
            bits,
            plain: None,
        };
        if elems < PLAIN_MIRROR_CUTOVER {
            // Same cutover decision as `from_rows`: a store round-trip
            // reproduces the mirror byte-for-byte.
            let mut values = Vec::with_capacity(elems);
            let mut buf = Vec::new();
            for i in 0..this.len() {
                values.extend_from_slice(this.unpack_row_into(i, &mut buf));
            }
            this.plain = Some(values);
        }
        Ok(this)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total packed element count across all rows.
    pub fn elems(&self) -> usize {
        *self.offsets.last().unwrap() as usize
    }

    /// Element count of row `i`.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The row boundaries in element space.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Exact heap payload in bytes of the packed representation. The
    /// plain query-path mirror is derived, bounded data and deliberately
    /// excluded so the figure matches what the store serializes.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.widths.len() + (self.block_bits.len() + self.bits.len()) * 8
    }

    /// Bytes the same content occupies as plain CSR (`u32` offsets +
    /// `u32` values) — the denominator of the compression ratio reported
    /// by benchmarks and `er store inspect`.
    pub fn plain_bytes(&self) -> usize {
        (self.offsets.len() + self.elems()) * 4
    }

    /// The serialized arrays `(offsets, widths, block_bits, bits)`.
    pub fn raw_parts(&self) -> (&[u32], &[u8], &[u64], &[u64]) {
        (&self.offsets, &self.widths, &self.block_bits, &self.bits)
    }

    /// True when the plain query-path mirror is resident (below
    /// [`PLAIN_MIRROR_CUTOVER`] elements).
    pub fn has_plain_mirror(&self) -> bool {
        self.plain.is_some()
    }

    /// Row `i` for the query path: a slice of the plain mirror when it is
    /// resident (the small-input fast path), otherwise a bitpacked unpack
    /// through `buf`. Values are identical either way.
    #[inline]
    pub fn decode_row_into<'a>(&'a self, i: usize, buf: &'a mut Vec<u32>) -> &'a [u32] {
        if let Some(plain) = &self.plain {
            let start = self.offsets[i] as usize;
            let end = self.offsets[i + 1] as usize;
            return &plain[start..end];
        }
        self.unpack_row_into(i, buf)
    }

    /// Unpacks row `i` from the packed bits into `buf` (cleared first)
    /// and returns it as a slice, bypassing the plain mirror — the
    /// always-bitpacked reference path (and what the kernel benchmarks
    /// time as "packed"). Branchless per element: a uniform block stride
    /// turns addressing into arithmetic, and the sentinel pad word makes
    /// the two-word extraction unconditional.
    #[inline]
    pub fn unpack_row_into<'a>(&self, i: usize, buf: &'a mut Vec<u32>) -> &'a [u32] {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        buf.clear();
        buf.reserve(end - start);
        let mut prev = 0i64;
        // SAFETY: `j < elems` bounds `widths`/`block_bits` indexing by
        // construction (`from_rows`) or validation (`from_raw`), which also
        // guarantee `word + 1 < bits.len()` via the two sentinel pad words
        // (`pos <= total_bits` even for zero-width tail blocks), and `buf`
        // was reserved for `end - start` writes.
        unsafe {
            let dst = buf.as_mut_ptr();
            for (k, j) in (start..end).enumerate() {
                let b = j / BLOCK;
                let w = *self.widths.get_unchecked(b) as u64;
                let pos = *self.block_bits.get_unchecked(b) + ((j % BLOCK) as u64) * w;
                let word = (pos >> 6) as usize;
                let sh = (pos & 63) as u32;
                let lo = *self.bits.get_unchecked(word) >> sh;
                let hi = (*self.bits.get_unchecked(word + 1) << 1) << (63 - sh);
                let zz = (lo | hi) & ((1u64 << w) - 1);
                prev = prev.wrapping_add(unzigzag(zz));
                dst.add(k).write(prev as u32);
            }
            buf.set_len(end - start);
        }
        buf
    }

    /// Decodes every row back to plain CSR `(offsets, values)` — the
    /// inverse of [`PackedRows::from_rows`], for serialization-free
    /// consumers and tests.
    pub fn decode_all(&self) -> (Vec<u32>, Vec<u32>) {
        let mut values = Vec::with_capacity(self.elems());
        let mut buf = Vec::new();
        for i in 0..self.len() {
            values.extend_from_slice(self.decode_row_into(i, &mut buf));
        }
        (self.offsets.clone(), values)
    }

    /// Range-checks the decoded values: every element must be `< bound`
    /// (and each row strictly ascending when `ascending` is set, the
    /// posting-list invariant). Store codecs call this once at decode time
    /// so the query paths can index count buffers unchecked.
    pub fn validate(&self, bound: u32, ascending: bool) -> Result<(), String> {
        let mut buf = Vec::new();
        for i in 0..self.len() {
            let row = self.decode_row_into(i, &mut buf);
            for (k, &v) in row.iter().enumerate() {
                if v >= bound {
                    return Err(format!("packed rows: row {i} value {v} out of range"));
                }
                if ascending && k > 0 && row[k - 1] >= v {
                    return Err(format!("packed rows: row {i} not strictly ascending"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rows: &[Vec<u32>]) {
        let mut offsets = vec![0u32];
        let mut values = Vec::new();
        for r in rows {
            values.extend_from_slice(r);
            offsets.push(values.len() as u32);
        }
        let packed = PackedRows::from_rows(offsets.clone(), &values);
        assert_eq!(packed.len(), rows.len());
        assert_eq!(packed.elems(), values.len());
        let mut buf = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(packed.decode_row_into(i, &mut buf), &r[..], "row {i}");
            assert_eq!(packed.row_len(i), r.len());
        }
        assert_eq!(packed.decode_all(), (offsets, values));

        // Serialized form survives the structural re-validation.
        let (o, w, bb, bits) = packed.raw_parts();
        let rebuilt =
            PackedRows::from_raw(o.to_vec(), w.to_vec(), bb.to_vec(), bits.to_vec()).unwrap();
        assert_eq!(rebuilt.decode_all(), packed.decode_all());
    }

    #[test]
    fn round_trips_representative_shapes() {
        roundtrip(&[]);
        roundtrip(&[vec![]]);
        roundtrip(&[vec![7]]);
        roundtrip(&[vec![0, 1, 2, 3], vec![], vec![u32::MAX], vec![5, 5, 5]]);
        roundtrip(&[vec![u32::MAX, 0, u32::MAX, 1]]); // worst-case zigzag swings
        roundtrip(&[(0..1000).step_by(3).collect(), (500..600).collect()]);
    }

    #[test]
    fn block_boundaries_are_exercised() {
        // One row spanning several blocks with a width change per block.
        let row: Vec<u32> = (0..(3 * BLOCK as u32 + 17))
            .map(|i| i * (1 + (i / BLOCK as u32) * 1000))
            .collect();
        roundtrip(&[row]);
    }

    #[test]
    fn ascending_lists_pack_small() {
        let row: Vec<u32> = (0..10_000).map(|i| i * 2).collect();
        let packed = PackedRows::from_rows(vec![0, row.len() as u32], &row);
        assert!(
            packed.heap_bytes() * 2 < packed.plain_bytes(),
            "{} vs {}",
            packed.heap_bytes(),
            packed.plain_bytes()
        );
    }

    #[test]
    fn validate_catches_range_and_order() {
        let packed = PackedRows::from_rows(vec![0, 3], &[1, 5, 5]);
        assert!(packed.validate(6, false).is_ok());
        assert!(packed.validate(5, false).is_err(), "bound");
        assert!(packed.validate(6, true).is_err(), "non-ascending");
        let asc = PackedRows::from_rows(vec![0, 3], &[1, 5, 9]);
        assert!(asc.validate(10, true).is_ok());
    }

    #[test]
    fn from_raw_rejects_malformed_structure() {
        let packed = PackedRows::from_rows(vec![0, 2, 5], &[3, 1, 4, 1, 5]);
        let (o, w, bb, bits) = packed.raw_parts();
        let (o, w, bb, bits) = (o.to_vec(), w.to_vec(), bb.to_vec(), bits.to_vec());
        assert!(PackedRows::from_raw(vec![1, 2], w.clone(), bb.clone(), bits.clone()).is_err());
        assert!(PackedRows::from_raw(o.clone(), vec![], bb.clone(), bits.clone()).is_err());
        assert!(PackedRows::from_raw(o.clone(), vec![64], bb.clone(), bits.clone()).is_err());
        assert!(PackedRows::from_raw(o.clone(), w.clone(), vec![0], bits.clone()).is_err());
        assert!(PackedRows::from_raw(o.clone(), w.clone(), bb.clone(), vec![]).is_err());
        assert!(PackedRows::from_raw(o, w, bb, bits).is_ok());
    }

    #[test]
    fn plain_mirror_matches_bitpacked_decode() {
        let rows: Vec<Vec<u32>> = (0..40u32)
            .map(|i| (0..i % 9).map(|t| i * 31 + t * 7).collect())
            .collect();
        let mut offsets = vec![0u32];
        let mut values = Vec::new();
        for r in &rows {
            values.extend_from_slice(r);
            offsets.push(values.len() as u32);
        }
        let packed = PackedRows::from_rows(offsets, &values);
        assert!(packed.has_plain_mirror(), "small input keeps the mirror");
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..packed.len() {
            assert_eq!(
                packed.decode_row_into(i, &mut a).to_vec(),
                packed.unpack_row_into(i, &mut b).to_vec(),
                "row {i}"
            );
        }
    }

    #[test]
    fn mirror_cutover_drops_the_plain_copy_above_threshold() {
        // One row either side of the cutover; decode must agree with the
        // packed reference path in both regimes, and the heap figure must
        // not change with the mirror (it tracks the persisted form).
        let small: Vec<u32> = (0..64u32).collect();
        let below = PackedRows::from_rows(vec![0, small.len() as u32], &small);
        assert!(below.has_plain_mirror());

        let big: Vec<u32> = (0..PLAIN_MIRROR_CUTOVER as u32).map(|i| i * 2).collect();
        let above = PackedRows::from_rows(vec![0, big.len() as u32], &big);
        assert!(!above.has_plain_mirror(), "cutover must drop the mirror");
        let mut buf = Vec::new();
        assert_eq!(above.decode_row_into(0, &mut buf), &big[..]);

        // A store round-trip reproduces the same cutover decision.
        let (o, w, bb, bits) = above.raw_parts();
        let rebuilt =
            PackedRows::from_raw(o.to_vec(), w.to_vec(), bb.to_vec(), bits.to_vec()).unwrap();
        assert!(!rebuilt.has_plain_mirror());
        let (o, w, bb, bits) = below.raw_parts();
        let rebuilt =
            PackedRows::from_raw(o.to_vec(), w.to_vec(), bb.to_vec(), bits.to_vec()).unwrap();
        assert!(rebuilt.has_plain_mirror());
        let mut buf = Vec::new();
        assert_eq!(rebuilt.decode_row_into(0, &mut buf), &small[..]);
    }

    #[test]
    fn default_is_empty() {
        let p = PackedRows::default();
        assert!(p.is_empty());
        assert_eq!(p.elems(), 0);
        assert_eq!(p.heap_bytes(), 4 + 8 + 16); // offsets [0] + block_bits [0] + pad words
    }
}
