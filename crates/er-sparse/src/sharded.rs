//! Sharded composition of segmented sparse indexes — the query fan-out
//! layer of the out-of-core execution path.
//!
//! A [`ShardedIndex`] splits one logical collection across `n`
//! independent [`SegmentedTokenSets`], one per shard of a deterministic
//! [`ShardPlan`]: row `id` lives in shard `plan.shard_of(id)`, a pure
//! function of the stable id (and nothing else — not insertion order,
//! not thread count). Each shard is rooted at the shard-qualified repr
//! key [`er_core::shard::shard_repr`], so its segments and manifest are
//! independent store files that can be mapped in and dropped
//! individually by a residency-budgeted cache.
//!
//! ## Merge ordering guarantee
//!
//! Queries fan out to every shard and merge in **shard order**:
//!
//! * **ε-join** — each shard yields its live candidates in ascending
//!   stable-id order over a disjoint id set; the concatenation is sorted
//!   once, which reproduces exactly the single ascending list the
//!   monolithic index emits. (The shards interleave ids, so the final
//!   sort is a true k-way merge, just expressed as a sort.)
//! * **kNN** — each shard's [`MergeCursor::knn_row`] already applies the
//!   distinct-top-k cut *within the shard*. A candidate in the global
//!   top-k-distinct ranks at most k-distinct within its own shard (its
//!   shard's distinct similarity values are a subset of the global
//!   ones), so every global winner survives its shard cut; one final
//!   [`KnnJoin::select_top_k`] over the concatenation is then exact and
//!   deterministic (it sorts by descending similarity, ascending id —
//!   independent of concatenation order).
//!
//! Combined with the chunk-deterministic parallel layer, reports built
//! on these batches are byte-identical at any shard count × thread
//! count — the invariant the shard-invariance proptests pin down.
//!
//! Upserts and deletes route to the owning shard only; every other
//! shard's layers are untouched, which is what keeps incremental updates
//! cheap when only a slice of the collection is resident.

use crate::epsilon::EpsilonJoin;
use crate::knn::KnnJoin;
use crate::segmented::{
    MergeCursor, MergeScratch, PendingCompaction, PersistReport, SegmentedTokenSets,
    SparseManifest, SparseSegment,
};
use er_core::parallel;
use er_core::shard::{shard_repr, ShardPlan};
use er_store::ArtifactStore;
use std::sync::Arc;

/// One logical segmented index split across the shards of a
/// [`ShardPlan`] (see module docs).
#[derive(Debug)]
pub struct ShardedIndex {
    plan: ShardPlan,
    base_repr: String,
    shards: Vec<SegmentedTokenSets>,
}

impl ShardedIndex {
    /// Builds the index from `(stable id, raw token set)` rows, routing
    /// each row to its owning shard and folding every shard into one
    /// immutable segment. With `n_shards <= 1` the single shard keeps
    /// the unqualified `base_repr`, so its store files are
    /// indistinguishable from a monolithic [`SegmentedTokenSets`].
    pub fn build(
        base_repr: impl Into<String>,
        n_shards: u32,
        rows: impl IntoIterator<Item = (u32, Vec<u64>)>,
        query_raw: Vec<Vec<u64>>,
    ) -> Self {
        let base_repr = base_repr.into();
        let plan = ShardPlan::new(n_shards);
        let mut parts: Vec<Vec<(u32, Vec<u64>)>> = vec![Vec::new(); plan.n() as usize];
        for (id, set) in rows {
            parts[plan.shard_of(id) as usize].push((id, set));
        }
        let shards = parts
            .into_iter()
            .enumerate()
            .map(|(s, mut part)| {
                // Segment rows must be ascending by stable id; the
                // caller's emission order carries no meaning.
                part.sort_unstable_by_key(|(id, _)| *id);
                Self::shard_from_rows(&base_repr, &plan, s as u32, part, query_raw.clone())
            })
            .collect();
        ShardedIndex {
            plan,
            base_repr,
            shards,
        }
    }

    /// One shard as a fresh single-segment [`SegmentedTokenSets`] rooted
    /// at the shard-qualified repr.
    fn shard_from_rows(
        base_repr: &str,
        plan: &ShardPlan,
        shard: u32,
        rows: Vec<(u32, Vec<u64>)>,
        query_raw: Vec<Vec<u64>>,
    ) -> SegmentedTokenSets {
        let segment = SparseSegment::build(0, rows, &query_raw);
        SegmentedTokenSets::from_parts(
            SparseManifest {
                next_seq: 1,
                base_repr: shard_repr(base_repr, shard, plan.n()),
                segment_seqs: vec![0],
                tombstones: Vec::new(),
                delta: Vec::new(),
                query_raw,
            },
            vec![Arc::new(segment)],
        )
        .expect("fresh single-segment manifest is consistent")
    }

    /// Wraps already-assembled shards. The shard count must match the
    /// plan and every shard's `base_repr` must be its shard-qualified
    /// key — the invariants [`ShardedIndex::load`] restores.
    pub fn from_shards(
        base_repr: impl Into<String>,
        plan: ShardPlan,
        shards: Vec<SegmentedTokenSets>,
    ) -> Result<Self, String> {
        let base_repr = base_repr.into();
        if shards.len() != plan.n() as usize {
            return Err(format!(
                "plan has {} shard(s), got {}",
                plan.n(),
                shards.len()
            ));
        }
        for (s, shard) in shards.iter().enumerate() {
            let want = shard_repr(&base_repr, s as u32, plan.n());
            if shard.base_repr() != want {
                return Err(format!(
                    "shard {s} is rooted at {:?}, expected {want:?}",
                    shard.base_repr()
                ));
            }
        }
        Ok(ShardedIndex {
            plan,
            base_repr,
            shards,
        })
    }

    /// The shard plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn n_shards(&self) -> u32 {
        self.plan.n()
    }

    /// The unqualified repr key the shard keys derive from.
    pub fn base_repr(&self) -> &str {
        &self.base_repr
    }

    /// The per-shard indexes, in shard order.
    pub fn shards(&self) -> &[SegmentedTokenSets] {
        &self.shards
    }

    /// Live (query-visible) rows across all shards.
    pub fn live_rows(&self) -> usize {
        self.shards.iter().map(SegmentedTokenSets::live_rows).sum()
    }

    /// Immutable segments across all shards.
    pub fn segment_count(&self) -> usize {
        self.shards
            .iter()
            .map(SegmentedTokenSets::segment_count)
            .sum()
    }

    /// Mutable delta rows across all shards.
    pub fn delta_rows(&self) -> usize {
        self.shards.iter().map(SegmentedTokenSets::delta_rows).sum()
    }

    /// Backed tombstones across all shards.
    pub fn tombstone_count(&self) -> usize {
        self.shards
            .iter()
            .map(SegmentedTokenSets::tombstone_count)
            .sum()
    }

    /// Query rows (identical across shards — queries fan out to all).
    pub fn query_rows(&self) -> usize {
        self.shards
            .first()
            .map_or(0, SegmentedTokenSets::query_rows)
    }

    /// Deterministic heap estimate: the sum over shards.
    pub fn heap_bytes(&self) -> usize {
        self.shards.iter().map(SegmentedTokenSets::heap_bytes).sum()
    }

    /// Inserts or replaces row `id` in its owning shard; no other shard
    /// is touched.
    pub fn upsert(&mut self, id: u32, tokens: Vec<u64>) {
        self.shards[self.plan.shard_of(id) as usize].upsert(id, tokens);
    }

    /// Deletes row `id` from its owning shard; no other shard is touched.
    pub fn delete(&mut self, id: u32) {
        self.shards[self.plan.shard_of(id) as usize].delete(id);
    }

    /// Flushes every shard's delta; `true` if any shard folded one.
    pub fn flush(&mut self) -> bool {
        let mut any = false;
        for shard in &mut self.shards {
            any |= shard.flush();
        }
        any
    }

    /// Compacts every shard; `true` if any shard changed.
    pub fn compact(&mut self) -> bool {
        let mut any = false;
        for shard in &mut self.shards {
            any |= shard.compact();
        }
        any
    }

    /// Plans one compaction per shard that needs one, without mutating
    /// anything — the sharded form of
    /// [`SegmentedTokenSets::plan_compact`], so a serving layer can fold
    /// under a read lock. Empty means every shard is fully compacted.
    /// The per-shard no-flush-between-plan-and-apply contract applies.
    pub fn plan_compact(&self) -> Vec<(usize, PendingCompaction)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(s, shard)| shard.plan_compact().map(|p| (s, p)))
            .collect()
    }

    /// Applies compactions planned by [`ShardedIndex::plan_compact`];
    /// `true` if any shard folded.
    pub fn apply_compact(&mut self, pending: Vec<(usize, PendingCompaction)>) -> bool {
        let any = !pending.is_empty();
        for (s, p) in pending {
            self.shards[s].apply_compact(p);
        }
        any
    }

    /// Persists every shard (segments + manifest, see
    /// [`SegmentedTokenSets::persist`]) and sums the per-shard reports.
    pub fn persist(&self, store: &ArtifactStore, dataset: u64) -> Result<PersistReport, String> {
        let mut total = PersistReport::default();
        for shard in &self.shards {
            let r = shard.persist(store, dataset)?;
            total.segments_written += r.segments_written;
            total.segments_reused += r.segments_reused;
            total.removed += r.removed;
        }
        Ok(total)
    }

    /// Restores a sharded index from per-shard manifests. `Ok(None)`
    /// when *no* shard manifest exists; a partial set (some shards
    /// present, some missing) is a structured error — the store holds a
    /// torn state a caller must not silently rebuild over.
    pub fn load(
        store: &ArtifactStore,
        dataset: u64,
        base_repr: &str,
        n_shards: u32,
    ) -> Result<Option<Self>, String> {
        let plan = ShardPlan::new(n_shards);
        let mut shards = Vec::with_capacity(plan.n() as usize);
        let mut missing = 0usize;
        for s in 0..plan.n() {
            match SegmentedTokenSets::load(store, dataset, &shard_repr(base_repr, s, plan.n()))? {
                Some(shard) => shards.push(shard),
                None => missing += 1,
            }
        }
        if missing == plan.n() as usize {
            return Ok(None);
        }
        if missing > 0 {
            return Err(format!(
                "{missing} of {} shard manifest(s) missing for {base_repr:?}",
                plan.n()
            ));
        }
        Self::from_shards(base_repr, plan, shards).map(Some)
    }

    /// A fan-out query cursor holding one [`MergeCursor`] per shard.
    pub fn cursor(&self) -> ShardedCursor<'_> {
        self.cursor_with(Vec::new())
    }

    /// Like [`ShardedIndex::cursor`], reusing per-shard scratch returned
    /// by [`ShardedCursor::into_scratches`]. Fewer (or stale extra)
    /// entries than shards are fine — missing ones start fresh.
    pub fn cursor_with(&self, mut scratches: Vec<MergeScratch>) -> ShardedCursor<'_> {
        scratches.resize_with(self.shards.len(), MergeScratch::default);
        ShardedCursor {
            cursors: self
                .shards
                .iter()
                .zip(scratches)
                .map(|(shard, scratch)| shard.cursor_with(scratch))
                .collect(),
        }
    }

    /// ε-join candidates for every query row, fanned across shards and
    /// chunked over `threads` workers — byte-identical for any worker
    /// count *and any shard count* (see module docs).
    pub fn epsilon_batch(&self, join: &EpsilonJoin, threads: usize) -> Vec<Vec<u32>> {
        let rows = self.query_rows();
        let row_ids: Vec<usize> = (0..rows).collect();
        let chunk = parallel::query_chunk_len(rows);
        let per_chunk = parallel::par_map_chunks_with(threads, &row_ids, chunk, |_, part| {
            let mut cursor = self.cursor();
            part.iter()
                .map(|&j| cursor.epsilon_row(join, j))
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// kNN neighbors for every query row, fanned across shards and
    /// chunked over `threads` workers — byte-identical for any worker
    /// count and any shard count.
    pub fn knn_batch(&self, join: &KnnJoin, threads: usize) -> Vec<Vec<(u32, f64)>> {
        let rows = self.query_rows();
        let row_ids: Vec<usize> = (0..rows).collect();
        let chunk = parallel::query_chunk_len(rows);
        let per_chunk = parallel::par_map_chunks_with(threads, &row_ids, chunk, |_, part| {
            let mut cursor = self.cursor();
            part.iter()
                .map(|&j| cursor.knn_row(join, j))
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// Per-worker fan-out cursor: one merge cursor per shard, consulted in
/// shard order (see the module's merge ordering guarantee).
pub struct ShardedCursor<'a> {
    cursors: Vec<MergeCursor<'a>>,
}

impl ShardedCursor<'_> {
    /// ε-join candidates of query row `j`: ascending live stable ids,
    /// bitwise what the monolithic index yields for the same net rows.
    pub fn epsilon_row(&mut self, join: &EpsilonJoin, j: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for cursor in &mut self.cursors {
            out.extend(cursor.epsilon_row(join, j));
        }
        // Shards hold disjoint, interleaved id ranges; one sort over the
        // concatenation is the k-way merge.
        out.sort_unstable();
        out
    }

    /// kNN neighbors of query row `j` after the *global* distinct-top-k
    /// cut, bitwise what the monolithic index yields (exactness argument
    /// in the module docs).
    pub fn knn_row(&mut self, join: &KnnJoin, j: usize) -> Vec<(u32, f64)> {
        let mut merged = Vec::new();
        for cursor in &mut self.cursors {
            merged.extend(cursor.knn_row(join, j));
        }
        KnnJoin::select_top_k(join.k, &mut merged);
        merged
    }

    /// Recovers the per-shard scratch buffers for reuse by a later
    /// [`ShardedIndex::cursor_with`].
    pub fn into_scratches(self) -> Vec<MergeScratch> {
        self.cursors
            .into_iter()
            .map(MergeCursor::into_scratch)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representation::RepresentationModel;
    use crate::similarity::SimilarityMeasure;
    use er_text::Cleaner;

    fn toks(text: &str) -> Vec<u64> {
        RepresentationModel::parse("T1G")
            .expect("T1G")
            .token_set(text, &Cleaner::off())
    }

    fn queries() -> Vec<Vec<u64>> {
        ["alpha beta", "c d e", "gamma", "", "zz alpha d"]
            .iter()
            .map(|t| toks(t))
            .collect()
    }

    fn epsilon() -> EpsilonJoin {
        EpsilonJoin {
            cleaning: false,
            threshold: 0.2,
            model: RepresentationModel::parse("T1G").expect("T1G"),
            measure: SimilarityMeasure::Jaccard,
        }
    }

    fn knn(k: usize) -> KnnJoin {
        KnnJoin {
            cleaning: false,
            reversed: false,
            k,
            model: RepresentationModel::parse("T1G").expect("T1G"),
            measure: SimilarityMeasure::Cosine,
        }
    }

    /// Distinct ids with distinct sets, so ownership routing is visible.
    fn distinct_rows() -> Vec<(u32, Vec<u64>)> {
        (0..64u32)
            .map(|id| (id * 5 + 2, toks(&format!("alpha w{id} beta{}", id % 7))))
            .collect()
    }

    #[test]
    fn matches_monolithic_index_at_any_shard_count() {
        let query_raw = queries();
        let mono = ShardedIndex::build("base", 1, distinct_rows(), query_raw.clone());
        let eps = epsilon();
        let kn = knn(3);
        let want_eps = mono.epsilon_batch(&eps, 1);
        let want_knn = mono.knn_batch(&kn, 1);
        assert!(want_eps.iter().any(|r| !r.is_empty()), "fixture matches");
        for n in [2u32, 3, 8] {
            for threads in [1usize, 8] {
                let sharded = ShardedIndex::build("base", n, distinct_rows(), query_raw.clone());
                assert_eq!(sharded.n_shards(), n);
                assert_eq!(sharded.live_rows(), mono.live_rows());
                assert_eq!(
                    sharded.epsilon_batch(&eps, threads),
                    want_eps,
                    "epsilon shards={n} threads={threads}"
                );
                assert_eq!(
                    sharded.knn_batch(&kn, threads),
                    want_knn,
                    "knn shards={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn upserts_and_deletes_land_in_the_owning_shard_only() {
        let query_raw = queries();
        let mut idx = ShardedIndex::build("base", 4, distinct_rows(), query_raw.clone());
        let before: Vec<usize> = idx.shards().iter().map(|s| s.delta_rows()).collect();
        assert!(before.iter().all(|&d| d == 0));

        let id = 17u32;
        let owner = idx.plan().shard_of(id) as usize;
        idx.upsert(id, toks("alpha beta fresh"));
        for (s, shard) in idx.shards().iter().enumerate() {
            assert_eq!(shard.delta_rows(), usize::from(s == owner), "shard {s}");
        }
        idx.delete(id);
        for (s, shard) in idx.shards().iter().enumerate() {
            assert_eq!(shard.delta_rows(), 0, "shard {s}");
        }

        // And the merged view agrees with a monolithic index given the
        // same operation sequence.
        let mut mono = ShardedIndex::build("base", 1, distinct_rows(), query_raw);
        mono.upsert(id, toks("alpha beta fresh"));
        mono.delete(id);
        let eps = epsilon();
        assert_eq!(idx.epsilon_batch(&eps, 1), mono.epsilon_batch(&eps, 1));
    }

    #[test]
    fn single_shard_keeps_the_unqualified_repr() {
        let idx = ShardedIndex::build("ss/T1G", 1, distinct_rows(), queries());
        assert_eq!(idx.shards()[0].base_repr(), "ss/T1G");
        let idx = ShardedIndex::build("ss/T1G", 4, distinct_rows(), queries());
        assert_eq!(idx.shards()[2].base_repr(), "ss/T1G#shard2/4");
    }

    #[test]
    fn from_shards_rejects_mismatched_roots() {
        let ShardedIndex { shards, .. } =
            ShardedIndex::build("base", 2, distinct_rows(), queries());
        let mut shards = shards;
        shards.swap(0, 1);
        let err = ShardedIndex::from_shards("base", ShardPlan::new(2), shards)
            .expect_err("swapped shard roots must be rejected");
        assert!(err.contains("rooted at"), "{err}");
    }

    #[test]
    fn empty_shards_answer_queries() {
        // 3 rows over 8 shards: most shards are empty and must still
        // participate in the fan-out without panicking.
        let rows: Vec<(u32, Vec<u64>)> = (0..3u32).map(|id| (id, toks("alpha beta"))).collect();
        let idx = ShardedIndex::build("base", 8, rows, queries());
        let eps = epsilon();
        let got = idx.epsilon_batch(&eps, 1);
        assert_eq!(got[0], vec![0, 1, 2], "all three rows match 'alpha beta'");
    }

    #[test]
    fn persist_and_load_round_trip() {
        use crate::store::{SparseManifestCodec, SparsePackedCodec, SparseSegmentCodec};
        let dir = std::env::temp_dir().join(format!("er_sharded_rt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(
            &dir,
            vec![
                Box::new(SparsePackedCodec),
                Box::new(SparseSegmentCodec),
                Box::new(SparseManifestCodec),
            ],
        )
        .expect("open store");

        let query_raw = queries();
        let mut idx = ShardedIndex::build("rt/T1G", 3, distinct_rows(), query_raw.clone());
        idx.upsert(999, toks("alpha zz"));
        idx.flush();
        let report = idx.persist(&store, 42).expect("persist");
        assert!(report.segments_written >= 4, "3 base + 1 flushed");

        let back = ShardedIndex::load(&store, 42, "rt/T1G", 3)
            .expect("load")
            .expect("manifests present");
        assert_eq!(back.live_rows(), idx.live_rows());
        let eps = epsilon();
        let kn = knn(2);
        assert_eq!(back.epsilon_batch(&eps, 1), idx.epsilon_batch(&eps, 1));
        assert_eq!(back.knn_batch(&kn, 1), idx.knn_batch(&kn, 1));

        assert!(
            ShardedIndex::load(&store, 42, "other", 3)
                .expect("load")
                .is_none(),
            "unknown base is a clean miss"
        );

        // Deleting one shard's manifest leaves a torn state: load must
        // refuse it rather than resurrect a partial collection.
        let torn = er_core::artifacts::ArtifactKey::new(
            42,
            crate::segmented::manifest_repr(&shard_repr("rt/T1G", 1, 3)),
        );
        std::fs::remove_file(store.file_path(&torn)).expect("manifest file exists");
        let err = ShardedIndex::load(&store, 42, "rt/T1G", 3).expect_err("torn shard set");
        assert!(err.contains("missing"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
