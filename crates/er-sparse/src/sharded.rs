//! Sharded composition of segmented sparse indexes — the query fan-out
//! layer of the out-of-core execution path.
//!
//! A [`ShardedIndex`] splits one logical collection across `n`
//! independent [`SegmentedTokenSets`], one per shard of a deterministic
//! [`ShardPlan`]: row `id` lives in shard `plan.shard_of(id)`, a pure
//! function of the stable id (and nothing else — not insertion order,
//! not thread count). Each shard is rooted at the shard-qualified repr
//! key [`er_core::shard::shard_repr`], so its segments and manifest are
//! independent store files that can be mapped in and dropped
//! individually by a residency-budgeted cache.
//!
//! ## Merge ordering guarantee
//!
//! Queries fan out to every shard and merge in **shard order**:
//!
//! * **ε-join** — each shard yields its live candidates in ascending
//!   stable-id order over a disjoint id set; the concatenation is sorted
//!   once, which reproduces exactly the single ascending list the
//!   monolithic index emits. (The shards interleave ids, so the final
//!   sort is a true k-way merge, just expressed as a sort.)
//! * **kNN** — each shard's [`MergeCursor::knn_row`] already applies the
//!   distinct-top-k cut *within the shard*. A candidate in the global
//!   top-k-distinct ranks at most k-distinct within its own shard (its
//!   shard's distinct similarity values are a subset of the global
//!   ones), so every global winner survives its shard cut; one final
//!   [`KnnJoin::select_top_k`] over the concatenation is then exact and
//!   deterministic (it sorts by descending similarity, ascending id —
//!   independent of concatenation order).
//!
//! Combined with the chunk-deterministic parallel layer, reports built
//! on these batches are byte-identical at any shard count × thread
//! count — the invariant the shard-invariance proptests pin down.
//!
//! Upserts and deletes route to the owning shard only; every other
//! shard's layers are untouched, which is what keeps incremental updates
//! cheap when only a slice of the collection is resident.

use crate::epsilon::EpsilonJoin;
use crate::knn::KnnJoin;
use crate::segmented::{
    MergeCursor, MergeScratch, PendingCompaction, PersistReport, SegmentedTokenSets,
    SparseManifest, SparseSegment,
};
use er_core::parallel;
use er_core::shard::{shard_repr, ShardPlan, ShardSubset};
use er_store::ArtifactStore;
use std::sync::Arc;

/// One logical segmented index split across the shards of a
/// [`ShardPlan`] (see module docs).
///
/// An index normally holds *every* shard of its plan, but a
/// multi-process serving child opens only the [`ShardSubset`] it owns
/// (see [`ShardedIndex::load_subset`]): `shards[i]` is then the index of
/// shard `subset.members()[i]`, queries fan out over the owned shards
/// only, and updates for rows owned elsewhere are refused rather than
/// silently misplaced.
#[derive(Debug)]
pub struct ShardedIndex {
    subset: ShardSubset,
    base_repr: String,
    shards: Vec<SegmentedTokenSets>,
}

impl ShardedIndex {
    /// Builds the index from `(stable id, raw token set)` rows, routing
    /// each row to its owning shard and folding every shard into one
    /// immutable segment. With `n_shards <= 1` the single shard keeps
    /// the unqualified `base_repr`, so its store files are
    /// indistinguishable from a monolithic [`SegmentedTokenSets`].
    pub fn build(
        base_repr: impl Into<String>,
        n_shards: u32,
        rows: impl IntoIterator<Item = (u32, Vec<u64>)>,
        query_raw: Vec<Vec<u64>>,
    ) -> Self {
        let base_repr = base_repr.into();
        let plan = ShardPlan::new(n_shards);
        let mut parts: Vec<Vec<(u32, Vec<u64>)>> = vec![Vec::new(); plan.n() as usize];
        for (id, set) in rows {
            parts[plan.shard_of(id) as usize].push((id, set));
        }
        let shards = parts
            .into_iter()
            .enumerate()
            .map(|(s, mut part)| {
                // Segment rows must be ascending by stable id; the
                // caller's emission order carries no meaning.
                part.sort_unstable_by_key(|(id, _)| *id);
                Self::shard_from_rows(&base_repr, &plan, s as u32, part, query_raw.clone())
            })
            .collect();
        ShardedIndex {
            subset: ShardSubset::full(plan.n()),
            base_repr,
            shards,
        }
    }

    /// One shard as a fresh single-segment [`SegmentedTokenSets`] rooted
    /// at the shard-qualified repr.
    fn shard_from_rows(
        base_repr: &str,
        plan: &ShardPlan,
        shard: u32,
        rows: Vec<(u32, Vec<u64>)>,
        query_raw: Vec<Vec<u64>>,
    ) -> SegmentedTokenSets {
        let segment = SparseSegment::build(0, rows, &query_raw);
        SegmentedTokenSets::from_parts(
            SparseManifest {
                next_seq: 1,
                base_repr: shard_repr(base_repr, shard, plan.n()),
                segment_seqs: vec![0],
                tombstones: Vec::new(),
                delta: Vec::new(),
                query_raw,
            },
            vec![Arc::new(segment)],
        )
        .expect("fresh single-segment manifest is consistent")
    }

    /// Wraps already-assembled shards. The shard count must match the
    /// plan and every shard's `base_repr` must be its shard-qualified
    /// key — the invariants [`ShardedIndex::load`] restores.
    pub fn from_shards(
        base_repr: impl Into<String>,
        plan: ShardPlan,
        shards: Vec<SegmentedTokenSets>,
    ) -> Result<Self, String> {
        Self::from_owned_shards(base_repr, ShardSubset::full(plan.n()), shards)
    }

    /// Wraps already-assembled shards owned under `subset`: `shards[i]`
    /// must be rooted at the shard-qualified key of `subset.members()[i]`.
    pub fn from_owned_shards(
        base_repr: impl Into<String>,
        subset: ShardSubset,
        shards: Vec<SegmentedTokenSets>,
    ) -> Result<Self, String> {
        let base_repr = base_repr.into();
        if shards.len() != subset.members().len() {
            return Err(format!(
                "subset {subset} owns {} shard(s), got {}",
                subset.members().len(),
                shards.len()
            ));
        }
        for (&s, shard) in subset.members().iter().zip(&shards) {
            let want = shard_repr(&base_repr, s, subset.total());
            if shard.base_repr() != want {
                return Err(format!(
                    "shard {s} is rooted at {:?}, expected {want:?}",
                    shard.base_repr()
                ));
            }
        }
        Ok(ShardedIndex {
            subset,
            base_repr,
            shards,
        })
    }

    /// The shard plan (of the *full* collection — the plan is shared by
    /// every subset of it).
    pub fn plan(&self) -> ShardPlan {
        self.subset.plan()
    }

    /// The owned shard subset (full unless opened via
    /// [`ShardedIndex::load_subset`] / [`ShardedIndex::from_owned_shards`]).
    pub fn subset(&self) -> &ShardSubset {
        &self.subset
    }

    /// True when row `id`'s owning shard is in the owned subset.
    pub fn owns(&self, id: u32) -> bool {
        self.subset.contains(self.subset.plan().shard_of(id))
    }

    /// Number of shards in the full plan.
    pub fn n_shards(&self) -> u32 {
        self.subset.total()
    }

    /// Position of `shard` in the owned `shards` vector, if owned.
    fn pos_of(&self, shard: u32) -> Option<usize> {
        self.subset.members().binary_search(&shard).ok()
    }

    /// The unqualified repr key the shard keys derive from.
    pub fn base_repr(&self) -> &str {
        &self.base_repr
    }

    /// The per-shard indexes, in shard order.
    pub fn shards(&self) -> &[SegmentedTokenSets] {
        &self.shards
    }

    /// Live (query-visible) rows across all shards.
    pub fn live_rows(&self) -> usize {
        self.shards.iter().map(SegmentedTokenSets::live_rows).sum()
    }

    /// Immutable segments across all shards.
    pub fn segment_count(&self) -> usize {
        self.shards
            .iter()
            .map(SegmentedTokenSets::segment_count)
            .sum()
    }

    /// Mutable delta rows across all shards.
    pub fn delta_rows(&self) -> usize {
        self.shards.iter().map(SegmentedTokenSets::delta_rows).sum()
    }

    /// Backed tombstones across all shards.
    pub fn tombstone_count(&self) -> usize {
        self.shards
            .iter()
            .map(SegmentedTokenSets::tombstone_count)
            .sum()
    }

    /// Query rows (identical across shards — queries fan out to all).
    pub fn query_rows(&self) -> usize {
        self.shards
            .first()
            .map_or(0, SegmentedTokenSets::query_rows)
    }

    /// Deterministic heap estimate: the sum over shards.
    pub fn heap_bytes(&self) -> usize {
        self.shards.iter().map(SegmentedTokenSets::heap_bytes).sum()
    }

    /// Inserts or replaces row `id` in its owning shard; no other shard
    /// is touched. Returns `false` — and mutates nothing — when the
    /// owning shard is outside the owned subset; a subset-serving caller
    /// must refuse the update rather than misplace the row.
    pub fn upsert(&mut self, id: u32, tokens: Vec<u64>) -> bool {
        match self.pos_of(self.subset.plan().shard_of(id)) {
            Some(pos) => {
                self.shards[pos].upsert(id, tokens);
                true
            }
            None => false,
        }
    }

    /// Deletes row `id` from its owning shard; no other shard is
    /// touched. Returns `false` — and mutates nothing — when the owning
    /// shard is outside the owned subset.
    pub fn delete(&mut self, id: u32) -> bool {
        match self.pos_of(self.subset.plan().shard_of(id)) {
            Some(pos) => {
                self.shards[pos].delete(id);
                true
            }
            None => false,
        }
    }

    /// Flushes every shard's delta; `true` if any shard folded one.
    pub fn flush(&mut self) -> bool {
        let mut any = false;
        for shard in &mut self.shards {
            any |= shard.flush();
        }
        any
    }

    /// Compacts every shard; `true` if any shard changed.
    pub fn compact(&mut self) -> bool {
        let mut any = false;
        for shard in &mut self.shards {
            any |= shard.compact();
        }
        any
    }

    /// Plans one compaction per shard that needs one, without mutating
    /// anything — the sharded form of
    /// [`SegmentedTokenSets::plan_compact`], so a serving layer can fold
    /// under a read lock. Empty means every shard is fully compacted.
    /// The per-shard no-flush-between-plan-and-apply contract applies.
    pub fn plan_compact(&self) -> Vec<(usize, PendingCompaction)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(s, shard)| shard.plan_compact().map(|p| (s, p)))
            .collect()
    }

    /// Applies compactions planned by [`ShardedIndex::plan_compact`];
    /// `true` if any shard folded.
    pub fn apply_compact(&mut self, pending: Vec<(usize, PendingCompaction)>) -> bool {
        let any = !pending.is_empty();
        for (s, p) in pending {
            self.shards[s].apply_compact(p);
        }
        any
    }

    /// Persists every shard (segments + manifest, see
    /// [`SegmentedTokenSets::persist`]) and sums the per-shard reports.
    pub fn persist(&self, store: &ArtifactStore, dataset: u64) -> Result<PersistReport, String> {
        let mut total = PersistReport::default();
        for shard in &self.shards {
            let r = shard.persist(store, dataset)?;
            total.segments_written += r.segments_written;
            total.segments_reused += r.segments_reused;
            total.removed += r.removed;
        }
        Ok(total)
    }

    /// Restores a sharded index from per-shard manifests. `Ok(None)`
    /// when *no* shard manifest exists; a partial set (some shards
    /// present, some missing) is a structured error — the store holds a
    /// torn state a caller must not silently rebuild over.
    pub fn load(
        store: &ArtifactStore,
        dataset: u64,
        base_repr: &str,
        n_shards: u32,
    ) -> Result<Option<Self>, String> {
        Self::load_subset(store, dataset, base_repr, ShardSubset::full(n_shards))
    }

    /// Restores only the shards of `subset` from their per-shard
    /// manifests — the restore-only open a multi-process serving child
    /// uses. `Ok(None)` when *no* owned manifest exists (a clean miss);
    /// any partial set is a structured error naming the missing shards,
    /// never a silently smaller collection.
    pub fn load_subset(
        store: &ArtifactStore,
        dataset: u64,
        base_repr: &str,
        subset: ShardSubset,
    ) -> Result<Option<Self>, String> {
        let total = subset.total();
        let mut shards = Vec::with_capacity(subset.members().len());
        let mut missing: Vec<u32> = Vec::new();
        for &s in subset.members() {
            match SegmentedTokenSets::load(store, dataset, &shard_repr(base_repr, s, total))? {
                Some(shard) => shards.push(shard),
                None => missing.push(s),
            }
        }
        if missing.len() == subset.members().len() {
            return Ok(None);
        }
        if !missing.is_empty() {
            let names: Vec<String> = missing
                .iter()
                .map(|s| format!("shard{s}/{total}"))
                .collect();
            return Err(format!(
                "{} of {} shard manifest(s) missing for {base_repr:?}: {}",
                missing.len(),
                subset.members().len(),
                names.join(", ")
            ));
        }
        Self::from_owned_shards(base_repr, subset, shards).map(Some)
    }

    /// A fan-out query cursor holding one [`MergeCursor`] per shard.
    pub fn cursor(&self) -> ShardedCursor<'_> {
        self.cursor_with(Vec::new())
    }

    /// Like [`ShardedIndex::cursor`], reusing per-shard scratch returned
    /// by [`ShardedCursor::into_scratches`]. Fewer (or stale extra)
    /// entries than shards are fine — missing ones start fresh.
    pub fn cursor_with(&self, mut scratches: Vec<MergeScratch>) -> ShardedCursor<'_> {
        scratches.resize_with(self.shards.len(), MergeScratch::default);
        ShardedCursor {
            cursors: self
                .shards
                .iter()
                .zip(scratches)
                .map(|(shard, scratch)| shard.cursor_with(scratch))
                .collect(),
        }
    }

    /// ε-join candidates for every query row, fanned across shards and
    /// chunked over `threads` workers — byte-identical for any worker
    /// count *and any shard count* (see module docs).
    pub fn epsilon_batch(&self, join: &EpsilonJoin, threads: usize) -> Vec<Vec<u32>> {
        let rows = self.query_rows();
        let row_ids: Vec<usize> = (0..rows).collect();
        let chunk = parallel::query_chunk_len(rows);
        let per_chunk = parallel::par_map_chunks_with(threads, &row_ids, chunk, |_, part| {
            let mut cursor = self.cursor();
            part.iter()
                .map(|&j| cursor.epsilon_row(join, j))
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// kNN neighbors for every query row, fanned across shards and
    /// chunked over `threads` workers — byte-identical for any worker
    /// count and any shard count.
    pub fn knn_batch(&self, join: &KnnJoin, threads: usize) -> Vec<Vec<(u32, f64)>> {
        let rows = self.query_rows();
        let row_ids: Vec<usize> = (0..rows).collect();
        let chunk = parallel::query_chunk_len(rows);
        let per_chunk = parallel::par_map_chunks_with(threads, &row_ids, chunk, |_, part| {
            let mut cursor = self.cursor();
            part.iter()
                .map(|&j| cursor.knn_row(join, j))
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// Per-worker fan-out cursor: one merge cursor per shard, consulted in
/// shard order (see the module's merge ordering guarantee).
pub struct ShardedCursor<'a> {
    cursors: Vec<MergeCursor<'a>>,
}

impl ShardedCursor<'_> {
    /// ε-join candidates of query row `j`: ascending live stable ids,
    /// bitwise what the monolithic index yields for the same net rows.
    pub fn epsilon_row(&mut self, join: &EpsilonJoin, j: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for cursor in &mut self.cursors {
            out.extend(cursor.epsilon_row(join, j));
        }
        // Shards hold disjoint, interleaved id ranges; one sort over the
        // concatenation is the k-way merge.
        out.sort_unstable();
        out
    }

    /// kNN neighbors of query row `j` after the *global* distinct-top-k
    /// cut, bitwise what the monolithic index yields (exactness argument
    /// in the module docs).
    pub fn knn_row(&mut self, join: &KnnJoin, j: usize) -> Vec<(u32, f64)> {
        let mut merged = Vec::new();
        for cursor in &mut self.cursors {
            merged.extend(cursor.knn_row(join, j));
        }
        KnnJoin::select_top_k(join.k, &mut merged);
        merged
    }

    /// Recovers the per-shard scratch buffers for reuse by a later
    /// [`ShardedIndex::cursor_with`].
    pub fn into_scratches(self) -> Vec<MergeScratch> {
        self.cursors
            .into_iter()
            .map(MergeCursor::into_scratch)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representation::RepresentationModel;
    use crate::similarity::SimilarityMeasure;
    use er_text::Cleaner;

    fn toks(text: &str) -> Vec<u64> {
        RepresentationModel::parse("T1G")
            .expect("T1G")
            .token_set(text, &Cleaner::off())
    }

    fn queries() -> Vec<Vec<u64>> {
        ["alpha beta", "c d e", "gamma", "", "zz alpha d"]
            .iter()
            .map(|t| toks(t))
            .collect()
    }

    fn epsilon() -> EpsilonJoin {
        EpsilonJoin {
            cleaning: false,
            threshold: 0.2,
            model: RepresentationModel::parse("T1G").expect("T1G"),
            measure: SimilarityMeasure::Jaccard,
        }
    }

    fn knn(k: usize) -> KnnJoin {
        KnnJoin {
            cleaning: false,
            reversed: false,
            k,
            model: RepresentationModel::parse("T1G").expect("T1G"),
            measure: SimilarityMeasure::Cosine,
        }
    }

    /// Distinct ids with distinct sets, so ownership routing is visible.
    fn distinct_rows() -> Vec<(u32, Vec<u64>)> {
        (0..64u32)
            .map(|id| (id * 5 + 2, toks(&format!("alpha w{id} beta{}", id % 7))))
            .collect()
    }

    #[test]
    fn matches_monolithic_index_at_any_shard_count() {
        let query_raw = queries();
        let mono = ShardedIndex::build("base", 1, distinct_rows(), query_raw.clone());
        let eps = epsilon();
        let kn = knn(3);
        let want_eps = mono.epsilon_batch(&eps, 1);
        let want_knn = mono.knn_batch(&kn, 1);
        assert!(want_eps.iter().any(|r| !r.is_empty()), "fixture matches");
        for n in [2u32, 3, 8] {
            for threads in [1usize, 8] {
                let sharded = ShardedIndex::build("base", n, distinct_rows(), query_raw.clone());
                assert_eq!(sharded.n_shards(), n);
                assert_eq!(sharded.live_rows(), mono.live_rows());
                assert_eq!(
                    sharded.epsilon_batch(&eps, threads),
                    want_eps,
                    "epsilon shards={n} threads={threads}"
                );
                assert_eq!(
                    sharded.knn_batch(&kn, threads),
                    want_knn,
                    "knn shards={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn upserts_and_deletes_land_in_the_owning_shard_only() {
        let query_raw = queries();
        let mut idx = ShardedIndex::build("base", 4, distinct_rows(), query_raw.clone());
        let before: Vec<usize> = idx.shards().iter().map(|s| s.delta_rows()).collect();
        assert!(before.iter().all(|&d| d == 0));

        let id = 17u32;
        let owner = idx.plan().shard_of(id) as usize;
        idx.upsert(id, toks("alpha beta fresh"));
        for (s, shard) in idx.shards().iter().enumerate() {
            assert_eq!(shard.delta_rows(), usize::from(s == owner), "shard {s}");
        }
        idx.delete(id);
        for (s, shard) in idx.shards().iter().enumerate() {
            assert_eq!(shard.delta_rows(), 0, "shard {s}");
        }

        // And the merged view agrees with a monolithic index given the
        // same operation sequence.
        let mut mono = ShardedIndex::build("base", 1, distinct_rows(), query_raw);
        mono.upsert(id, toks("alpha beta fresh"));
        mono.delete(id);
        let eps = epsilon();
        assert_eq!(idx.epsilon_batch(&eps, 1), mono.epsilon_batch(&eps, 1));
    }

    #[test]
    fn single_shard_keeps_the_unqualified_repr() {
        let idx = ShardedIndex::build("ss/T1G", 1, distinct_rows(), queries());
        assert_eq!(idx.shards()[0].base_repr(), "ss/T1G");
        let idx = ShardedIndex::build("ss/T1G", 4, distinct_rows(), queries());
        assert_eq!(idx.shards()[2].base_repr(), "ss/T1G#shard2/4");
    }

    #[test]
    fn from_shards_rejects_mismatched_roots() {
        let ShardedIndex { shards, .. } =
            ShardedIndex::build("base", 2, distinct_rows(), queries());
        let mut shards = shards;
        shards.swap(0, 1);
        let err = ShardedIndex::from_shards("base", ShardPlan::new(2), shards)
            .expect_err("swapped shard roots must be rejected");
        assert!(err.contains("rooted at"), "{err}");
    }

    #[test]
    fn empty_shards_answer_queries() {
        // 3 rows over 8 shards: most shards are empty and must still
        // participate in the fan-out without panicking.
        let rows: Vec<(u32, Vec<u64>)> = (0..3u32).map(|id| (id, toks("alpha beta"))).collect();
        let idx = ShardedIndex::build("base", 8, rows, queries());
        let eps = epsilon();
        let got = idx.epsilon_batch(&eps, 1);
        assert_eq!(got[0], vec![0, 1, 2], "all three rows match 'alpha beta'");
    }

    #[test]
    fn persist_and_load_round_trip() {
        use crate::store::{SparseManifestCodec, SparsePackedCodec, SparseSegmentCodec};
        let dir = std::env::temp_dir().join(format!("er_sharded_rt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(
            &dir,
            vec![
                Box::new(SparsePackedCodec),
                Box::new(SparseSegmentCodec),
                Box::new(SparseManifestCodec),
            ],
        )
        .expect("open store");

        let query_raw = queries();
        let mut idx = ShardedIndex::build("rt/T1G", 3, distinct_rows(), query_raw.clone());
        idx.upsert(999, toks("alpha zz"));
        idx.flush();
        let report = idx.persist(&store, 42).expect("persist");
        assert!(report.segments_written >= 4, "3 base + 1 flushed");

        let back = ShardedIndex::load(&store, 42, "rt/T1G", 3)
            .expect("load")
            .expect("manifests present");
        assert_eq!(back.live_rows(), idx.live_rows());
        let eps = epsilon();
        let kn = knn(2);
        assert_eq!(back.epsilon_batch(&eps, 1), idx.epsilon_batch(&eps, 1));
        assert_eq!(back.knn_batch(&kn, 1), idx.knn_batch(&kn, 1));

        assert!(
            ShardedIndex::load(&store, 42, "other", 3)
                .expect("load")
                .is_none(),
            "unknown base is a clean miss"
        );

        // Deleting one shard's manifest leaves a torn state: load must
        // refuse it rather than resurrect a partial collection.
        let torn = er_core::artifacts::ArtifactKey::new(
            42,
            crate::segmented::manifest_repr(&shard_repr("rt/T1G", 1, 3)),
        );
        std::fs::remove_file(store.file_path(&torn)).expect("manifest file exists");
        let err = ShardedIndex::load(&store, 42, "rt/T1G", 3).expect_err("torn shard set");
        assert!(err.contains("missing"), "{err}");
        assert!(
            err.contains("shard1/3"),
            "torn error names the shard: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn subset_load_serves_owned_shards_and_refuses_foreign_updates() {
        use crate::store::{SparseManifestCodec, SparsePackedCodec, SparseSegmentCodec};
        let dir = std::env::temp_dir().join(format!("er_sharded_subset_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(
            &dir,
            vec![
                Box::new(SparsePackedCodec),
                Box::new(SparseSegmentCodec),
                Box::new(SparseManifestCodec),
            ],
        )
        .expect("open store");

        let query_raw = queries();
        let full = ShardedIndex::build("sub/T1G", 4, distinct_rows(), query_raw.clone());
        full.persist(&store, 7).expect("persist");

        // The two halves of the canonical 2-child layout, re-merged,
        // must reproduce the full index's answers exactly.
        let lo =
            ShardedIndex::load_subset(&store, 7, "sub/T1G", ShardSubset::parse("0,1/4").unwrap())
                .expect("load")
                .expect("manifests present");
        let hi =
            ShardedIndex::load_subset(&store, 7, "sub/T1G", ShardSubset::parse("2,3/4").unwrap())
                .expect("load")
                .expect("manifests present");
        assert_eq!(lo.live_rows() + hi.live_rows(), full.live_rows());
        assert_eq!(lo.n_shards(), 4, "subset keeps the full plan");
        let eps = epsilon();
        let kn = knn(3);
        let want_eps = full.epsilon_batch(&eps, 1);
        let lo_eps = lo.epsilon_batch(&eps, 1);
        let hi_eps = hi.epsilon_batch(&eps, 1);
        for (j, want) in want_eps.iter().enumerate() {
            let mut merged: Vec<u32> = lo_eps[j].iter().chain(&hi_eps[j]).copied().collect();
            merged.sort_unstable();
            assert_eq!(&merged, want, "epsilon row {j}");
        }
        let want_knn = full.knn_batch(&kn, 1);
        let lo_knn = lo.knn_batch(&kn, 1);
        let hi_knn = hi.knn_batch(&kn, 1);
        for (j, want) in want_knn.iter().enumerate() {
            let mut merged: Vec<(u32, f64)> = lo_knn[j].iter().chain(&hi_knn[j]).copied().collect();
            KnnJoin::select_top_k(kn.k, &mut merged);
            assert_eq!(&merged, want, "knn row {j}");
        }

        // Updates for rows owned by the other half are refused untouched.
        let mut lo = lo;
        let foreign = (0..1000u32)
            .find(|&id| !lo.owns(id))
            .expect("some id lands in shards 2,3");
        let owned = (0..1000u32).find(|&id| lo.owns(id)).expect("some owned id");
        assert!(!lo.upsert(foreign, toks("alpha")), "foreign upsert refused");
        assert!(!lo.delete(foreign), "foreign delete refused");
        assert_eq!(lo.delta_rows(), 0, "refusal mutates nothing");
        assert!(lo.upsert(owned, toks("alpha beta")), "owned upsert lands");
        assert_eq!(lo.delta_rows(), 1);

        // A torn subset (one owned manifest deleted) refuses to load,
        // naming the missing shard.
        let torn = er_core::artifacts::ArtifactKey::new(
            7,
            crate::segmented::manifest_repr(&shard_repr("sub/T1G", 3, 4)),
        );
        std::fs::remove_file(store.file_path(&torn)).expect("manifest file exists");
        let err =
            ShardedIndex::load_subset(&store, 7, "sub/T1G", ShardSubset::parse("2,3/4").unwrap())
                .expect_err("torn subset");
        assert!(err.contains("shard3/4"), "names the missing shard: {err}");
        // …while the untouched half still loads cleanly.
        assert!(ShardedIndex::load_subset(
            &store,
            7,
            "sub/T1G",
            ShardSubset::parse("0,1/4").unwrap()
        )
        .expect("load")
        .is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
