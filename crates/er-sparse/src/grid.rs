//! The Table IV configuration spaces of the sparse NN methods, plus the
//! DkNN baseline.
//!
//! Both methods share the `CL` (cleaning), `SM` (similarity measure) and
//! `RM` (representation model) parameters. The method-specific parameter is
//! swept in an order that makes the candidate volume non-decreasing — the
//! ε-Join threshold descending, kNN-Join's K ascending — so
//! [`er_core::Optimizer::first_feasible`] terminates the sweep at the
//! PQ-optimal feasible configuration, exactly as the paper's grid search
//! does.

use crate::epsilon::EpsilonJoin;
use crate::knn::KnnJoin;
use crate::representation::RepresentationModel;
use crate::similarity::SimilarityMeasure;
use er_core::optimize::GridResolution;

/// Alias kept for discoverability next to the blocking grid resolution.
pub type SparseGridResolution = GridResolution;

/// The shared `(CL, SM, RM)` combinations at a resolution.
fn common_combos(res: GridResolution) -> Vec<(bool, SimilarityMeasure, RepresentationModel)> {
    let (cleanings, measures, models): (&[bool], &[SimilarityMeasure], Vec<RepresentationModel>) =
        match res {
            GridResolution::Full => (
                &[false, true],
                &SimilarityMeasure::ALL,
                RepresentationModel::all(),
            ),
            GridResolution::Pruned => (
                &[false, true],
                &[SimilarityMeasure::Cosine, SimilarityMeasure::Jaccard],
                ["T1G", "C2G", "C3G", "C3GM", "C5GM"]
                    .iter()
                    .map(|n| RepresentationModel::parse(n).expect("model name"))
                    .collect(),
            ),
            GridResolution::Quick => (
                &[true],
                &[SimilarityMeasure::Cosine],
                ["T1G", "C3G"]
                    .iter()
                    .map(|n| RepresentationModel::parse(n).expect("model name"))
                    .collect(),
            ),
        };
    let mut out = Vec::new();
    for &cl in cleanings {
        for &sm in measures {
            for &rm in &models {
                out.push((cl, sm, rm));
            }
        }
    }
    out
}

/// ε-Join threshold sweep, descending (largest first, per the paper).
fn epsilon_thresholds(res: GridResolution) -> Vec<f64> {
    let steps = match res {
        GridResolution::Full => 100,
        GridResolution::Pruned => 20,
        GridResolution::Quick => 10,
    };
    (0..=steps).rev().map(|i| i as f64 / steps as f64).collect()
}

/// kNN-Join K sweep, ascending (smallest first, per the paper).
fn knn_ks(res: GridResolution) -> Vec<usize> {
    match res {
        GridResolution::Full => (1..=100).collect(),
        GridResolution::Pruned => {
            let mut ks: Vec<usize> = (1..=20).collect();
            ks.extend((25..=100).step_by(5));
            ks
        }
        GridResolution::Quick => vec![1, 2, 3, 5, 10],
    }
}

/// Enumerates ε-Join configurations grouped per `(CL, SM, RM)` combination;
/// within each group thresholds descend, so each inner vector can be fed to
/// `Optimizer::first_feasible` independently.
pub fn epsilon_grid(res: GridResolution) -> Vec<Vec<EpsilonJoin>> {
    let thresholds = epsilon_thresholds(res);
    common_combos(res)
        .into_iter()
        .map(|(cleaning, measure, model)| {
            thresholds
                .iter()
                .map(|&threshold| EpsilonJoin {
                    cleaning,
                    model,
                    measure,
                    threshold,
                })
                .collect()
        })
        .collect()
}

/// Enumerates kNN-Join configurations grouped per `(CL, SM, RM, RVS)`
/// combination; within each group K ascends.
pub fn knn_grid(res: GridResolution) -> Vec<Vec<KnnJoin>> {
    let ks = knn_ks(res);
    let rvs_options: &[bool] = if res == GridResolution::Quick {
        &[false]
    } else {
        &[false, true]
    };
    let mut out = Vec::new();
    for (cleaning, measure, model) in common_combos(res) {
        for &reversed in rvs_options {
            out.push(
                ks.iter()
                    .map(|&k| KnnJoin {
                        cleaning,
                        model,
                        measure,
                        k,
                        reversed,
                    })
                    .collect(),
            );
        }
    }
    out
}

/// The Default kNN-Join baseline (paper §VI): cosine similarity, cleaning
/// on, the `C5GM` representation, `K = 5`, and the smaller input collection
/// as the query set.
pub fn dknn_baseline(n1: usize, n2: usize) -> KnnJoin {
    KnnJoin {
        cleaning: true,
        model: RepresentationModel::parse("C5GM").expect("C5GM"),
        measure: SimilarityMeasure::Cosine,
        k: 5,
        // Default orientation queries with E2; reverse when E1 is smaller.
        reversed: n1 < n2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_counts_match_table4() {
        // ε-Join: 2 CL × 3 SM × 10 RM = 60 combos × up to 100+1 thresholds
        // ≈ the paper's 6,000 maximum configurations.
        let eps = epsilon_grid(GridResolution::Full);
        assert_eq!(eps.len(), 60);
        assert_eq!(eps[0].len(), 101);
        // kNN: × 2 RVS, × 100 K values = 12,000 maximum configurations.
        let knn = knn_grid(GridResolution::Full);
        assert_eq!(knn.len(), 120);
        assert_eq!(knn[0].len(), 100);
    }

    #[test]
    fn epsilon_thresholds_descend() {
        for res in [
            GridResolution::Full,
            GridResolution::Pruned,
            GridResolution::Quick,
        ] {
            let ts = epsilon_thresholds(res);
            assert!((ts[0] - 1.0).abs() < 1e-12);
            assert!(ts.windows(2).all(|w| w[0] > w[1]), "{res:?}");
            assert!(*ts.last().expect("nonempty") < 1e-12);
        }
    }

    #[test]
    fn knn_ks_ascend_from_one() {
        for res in [
            GridResolution::Full,
            GridResolution::Pruned,
            GridResolution::Quick,
        ] {
            let ks = knn_ks(res);
            assert_eq!(ks[0], 1);
            assert!(ks.windows(2).all(|w| w[0] < w[1]), "{res:?}");
        }
    }

    #[test]
    fn pruned_smaller_than_full() {
        assert!(epsilon_grid(GridResolution::Pruned).len() < 60);
        assert!(knn_grid(GridResolution::Quick).len() < knn_grid(GridResolution::Pruned).len());
    }

    #[test]
    fn dknn_matches_paper_defaults() {
        let d = dknn_baseline(100, 2000);
        assert!(d.cleaning);
        assert_eq!(d.model.name(), "C5GM");
        assert_eq!(d.measure, SimilarityMeasure::Cosine);
        assert_eq!(d.k, 5);
        assert!(d.reversed, "E1 smaller -> query with E1");
        assert!(!dknn_baseline(2000, 100).reversed);
    }
}
