//! Property-based tests of the sparse NN invariants: similarities,
//! representations, ScanCount exactness and the join semantics.

#![cfg(test)]

use crate::artifact::TokenSetsArtifact;
use crate::epsilon::EpsilonJoin;
use crate::knn::KnnJoin;
use crate::packed::PackedRows;
use crate::reference;
use crate::representation::RepresentationModel;
use crate::scancount::{ScanCountIndex, ScanCountScratch};
use crate::similarity::SimilarityMeasure;
use crate::topk::TopKJoin;
use er_core::filter::Filter;
use er_core::schema::TextView;
use er_text::Cleaner;
use proptest::prelude::*;

fn arb_texts(n: usize) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-d ]{0,16}", 1..n)
}

proptest! {
    /// All measures are symmetric in the set sizes except cosine/dice are;
    /// and every measure is bounded by min-containment.
    #[test]
    fn similarity_bounds(overlap in 0usize..10, extra_a in 0usize..10, extra_b in 0usize..10) {
        let len_a = overlap + extra_a;
        let len_b = overlap + extra_b;
        for m in SimilarityMeasure::ALL {
            let s = m.compute(overlap, len_a, len_b);
            prop_assert!((0.0..=1.0).contains(&s), "{} = {}", m.name(), s);
            let swapped = m.compute(overlap, len_b, len_a);
            prop_assert!((s - swapped).abs() < 1e-12, "{} asymmetric", m.name());
            if overlap == len_a && overlap == len_b && overlap > 0 {
                prop_assert!((s - 1.0).abs() < 1e-12);
            }
        }
    }

    /// Delta/bitpack round-trip identity on arbitrary rows — including
    /// empty, single-element and duplicate-heavy ones (`0u32..8` forces
    /// repeats), plus unsorted rows (the zigzag coding is order-agnostic)
    /// and full-range values.
    #[test]
    fn packed_rows_round_trip(
        rows in proptest::collection::vec(
            proptest::collection::vec(
                // Mix of a tiny alphabet (forces duplicates and runs of
                // zero deltas) and the full u32 range (forces 33-bit
                // zigzag deltas).
                any::<u32>().prop_map(|v| if v % 3 == 0 { v % 8 } else { v }),
                0..40),
            0..12),
    ) {
        let mut offsets = vec![0u32];
        let mut values = Vec::new();
        for r in &rows {
            values.extend_from_slice(r);
            offsets.push(values.len() as u32);
        }
        let packed = PackedRows::from_rows(offsets.clone(), &values);
        let mut buf = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(packed.decode_row_into(i, &mut buf), &r[..], "row {}", i);
        }
        prop_assert_eq!(packed.decode_all(), (offsets, values));
        // The serialized arrays survive structural re-validation and
        // decode identically.
        let (o, w, bb, bits) = packed.raw_parts();
        let rebuilt = PackedRows::from_raw(
            o.to_vec(), w.to_vec(), bb.to_vec(), bits.to_vec()).unwrap();
        prop_assert_eq!(rebuilt, packed);
    }

    /// ScanCount overlap counts equal brute-force set intersections.
    #[test]
    fn scancount_matches_bruteforce(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..30, 0..10), 1..8),
        query in proptest::collection::btree_set(0u64..30, 0..10),
    ) {
        let sets: Vec<Vec<u64>> = sets.into_iter().map(|s| s.into_iter().collect()).collect();
        let query: Vec<u64> = query.into_iter().collect();
        let index = ScanCountIndex::build(&sets);
        let mut scratch = ScanCountScratch::default();
        let mut out = Vec::new();
        index.query_with(&mut scratch, &query, &mut out);
        // Brute force reference.
        for (i, set) in sets.iter().enumerate() {
            let expected = set.iter().filter(|t| query.contains(t)).count() as u32;
            let got = out.iter().find(|&&(e, _)| e == i as u32).map_or(0, |&(_, o)| o);
            prop_assert_eq!(got, expected, "entity {}", i);
        }
        // Visited entities are exactly those with positive overlap.
        for &(e, o) in &out {
            prop_assert!(o > 0);
            prop_assert!((e as usize) < sets.len());
        }
    }

    /// Token sets are sorted, deduplicated, and multiset cardinality is at
    /// least the set cardinality.
    #[test]
    fn token_sets_well_formed(text in "[a-e ]{0,30}") {
        for m in RepresentationModel::all() {
            let ids = m.token_set(&text, &Cleaner::off());
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "{} unsorted/dup", m.name());
        }
        let set = RepresentationModel { ngram: None, multiset: false }
            .token_set(&text, &Cleaner::off());
        let mset = RepresentationModel { ngram: None, multiset: true }
            .token_set(&text, &Cleaner::off());
        prop_assert!(mset.len() >= set.len());
    }

    /// ε-Join candidates are monotone non-increasing in the threshold, and
    /// every returned pair really meets the threshold.
    #[test]
    fn epsilon_join_threshold_sound(e1 in arb_texts(6), e2 in arb_texts(6)) {
        let view = TextView::new(e1.clone(), e2.clone());
        let model = RepresentationModel { ngram: None, multiset: false };
        let join = |t: f64| EpsilonJoin {
            cleaning: false,
            model,
            measure: SimilarityMeasure::Jaccard,
            threshold: t,
        };
        let lo = join(0.3).run(&view).candidates;
        let hi = join(0.7).run(&view).candidates;
        for p in hi.iter() {
            prop_assert!(lo.contains(p), "higher threshold must be a subset");
        }
        // Soundness: verify each hi pair's actual Jaccard >= 0.7.
        for p in hi.iter() {
            let a = model.token_set(&e1[p.left as usize], &Cleaner::off());
            let b = model.token_set(&e2[p.right as usize], &Cleaner::off());
            let overlap = a.iter().filter(|t| b.contains(t)).count();
            let sim = SimilarityMeasure::Jaccard.compute(overlap, a.len(), b.len());
            prop_assert!(sim >= 0.7 - 1e-12, "pair {:?} has sim {}", p, sim);
        }
    }

    /// kNN-Join: every query contributes at most as many pairs as it has
    /// positive-similarity candidates, and k=inf degenerates to "all
    /// overlapping pairs".
    #[test]
    fn knn_join_bounded_by_overlaps(e1 in arb_texts(6), e2 in arb_texts(6)) {
        let view = TextView::new(e1, e2);
        let model = RepresentationModel { ngram: None, multiset: false };
        let knn = |k: usize| KnnJoin {
            cleaning: false,
            model,
            measure: SimilarityMeasure::Cosine,
            k,
            reversed: false,
        };
        let all = EpsilonJoin {
            cleaning: false,
            model,
            measure: SimilarityMeasure::Cosine,
            threshold: f64::MIN_POSITIVE,
        }
        .run(&view)
        .candidates;
        let huge_k = knn(10_000).run(&view).candidates;
        prop_assert_eq!(huge_k.to_sorted_vec(), all.to_sorted_vec());
        let k1 = knn(1).run(&view).candidates;
        for p in k1.iter() {
            prop_assert!(all.contains(p));
        }
    }

    /// The CSR/interned pipeline (with its exact length filters) produces
    /// candidate sets identical to the frozen naive reference — the
    /// tentpole correctness property. Thresholds 0.1 and 0.8 exercise the
    /// length-filter fast path when it keeps almost everything and when
    /// it prunes aggressively.
    #[test]
    fn csr_epsilon_matches_naive_reference(
        e1 in arb_texts(8),
        e2 in arb_texts(8),
        cleaning in any::<bool>(),
    ) {
        let view = TextView::new(e1, e2);
        let model = RepresentationModel { ngram: Some(2), multiset: false };
        for measure in SimilarityMeasure::ALL {
            for threshold in [0.1, 0.8] {
                let join = EpsilonJoin { cleaning, model, measure, threshold };
                let got = join.run(&view).candidates.to_sorted_vec();
                let want = reference::naive_epsilon(&view, cleaning, model, measure, threshold);
                prop_assert_eq!(got, want, "{} t={}", measure.name(), threshold);
            }
        }
    }

    /// kNN: CSR + distinct-floor filter equals the naive reference at 1
    /// and 8 worker threads (explicit counts, so the global thread
    /// override stays untouched).
    #[test]
    fn csr_knn_matches_naive_reference_across_threads(
        e1 in arb_texts(8),
        e2 in arb_texts(8),
        reversed in any::<bool>(),
    ) {
        let view = TextView::new(e1, e2);
        let model = RepresentationModel { ngram: None, multiset: false };
        for measure in SimilarityMeasure::ALL {
            for k in [1usize, 3] {
                let join = KnnJoin { cleaning: false, model, measure, k, reversed };
                let want = reference::naive_knn(&view, false, model, measure, k, reversed);
                let prepared = join.prepare(&view);
                let art = prepared.downcast::<TokenSetsArtifact>();
                for threads in [1usize, 8] {
                    let got = join.query_art(art, threads).candidates.to_sorted_vec();
                    prop_assert_eq!(
                        got.clone(), want.clone(),
                        "{} k={} threads={}", measure.name(), k, threads
                    );
                }
            }
        }
    }

    /// Shard invariance (the out-of-core fan-out's tentpole property):
    /// ε and kNN batches from a [`crate::sharded::ShardedIndex`] are
    /// bitwise identical across shard counts 1/3/8 × worker counts 1/8 —
    /// through the segmented-delta path too (a random tail of upserts
    /// and deletes is applied before querying, landing in the owning
    /// shard only), and again after every shard flushes its delta into
    /// a fresh segment.
    #[test]
    fn sharded_batches_identical_across_shard_and_thread_counts(
        rows in proptest::collection::vec(
            proptest::collection::btree_set(0u64..40, 0..8), 1..24),
        queries in proptest::collection::vec(
            proptest::collection::btree_set(0u64..40, 0..8), 1..10),
        edits in proptest::collection::vec(
            (0u32..40, any::<bool>(),
                proptest::collection::btree_set(0u64..40, 1..8)), 0..10),
    ) {
        use crate::sharded::ShardedIndex;
        let rows: Vec<(u32, Vec<u64>)> = rows
            .into_iter()
            .enumerate()
            // Spread ids out so shards interleave.
            .map(|(i, s)| (i as u32 * 3 + 1, s.into_iter().collect()))
            .collect();
        let query_raw: Vec<Vec<u64>> =
            queries.into_iter().map(|s| s.into_iter().collect()).collect();
        let eps = EpsilonJoin {
            cleaning: false,
            model: RepresentationModel { ngram: None, multiset: false },
            measure: SimilarityMeasure::Jaccard,
            threshold: 0.2,
        };
        let knn = KnnJoin {
            cleaning: false,
            model: RepresentationModel { ngram: None, multiset: false },
            measure: SimilarityMeasure::Cosine,
            k: 2,
            reversed: false,
        };
        let build = |n: u32, flush: bool| {
            let mut idx = ShardedIndex::build("prop", n, rows.clone(), query_raw.clone());
            for (id, is_upsert, set) in &edits {
                if *is_upsert {
                    idx.upsert(*id, set.iter().copied().collect());
                } else {
                    idx.delete(*id);
                }
            }
            if flush {
                idx.flush();
            }
            idx
        };
        for flush in [false, true] {
            let mono = build(1, flush);
            let want_eps = mono.epsilon_batch(&eps, 1);
            let want_knn = mono.knn_batch(&knn, 1);
            for n in [3u32, 8] {
                let idx = build(n, flush);
                prop_assert_eq!(idx.live_rows(), mono.live_rows());
                for threads in [1usize, 8] {
                    prop_assert_eq!(
                        &idx.epsilon_batch(&eps, threads), &want_eps,
                        "epsilon shards={} threads={} flush={}", n, threads, flush
                    );
                    let got = idx.knn_batch(&knn, threads);
                    prop_assert_eq!(got.len(), want_knn.len());
                    for (j, (a, b)) in got.iter().zip(&want_knn).enumerate() {
                        prop_assert_eq!(a.len(), b.len(), "row {} lens", j);
                        for ((ia, sa), (ib, sb)) in a.iter().zip(b) {
                            prop_assert_eq!(ia, ib, "row {}", j);
                            prop_assert_eq!(
                                sa.to_bits(), sb.to_bits(),
                                "knn sim bits shards={} threads={} flush={} row={}",
                                n, threads, flush, j
                            );
                        }
                    }
                }
            }
        }
    }

    /// Global top-k: the heap + floor filter equals exhaustive scoring.
    #[test]
    fn csr_topk_matches_naive_reference(e1 in arb_texts(8), e2 in arb_texts(8)) {
        let view = TextView::new(e1, e2);
        let model = RepresentationModel { ngram: None, multiset: false };
        for measure in SimilarityMeasure::ALL {
            for k in [1usize, 4] {
                let join = TopKJoin { cleaning: false, model, measure, k };
                let got = join.run(&view).candidates.to_sorted_vec();
                let want = reference::naive_topk(&view, model, measure, k);
                prop_assert_eq!(got, want, "{} k={}", measure.name(), k);
            }
        }
    }
}
