//! Property-based tests of the sparse NN invariants: similarities,
//! representations, ScanCount exactness and the join semantics.

#![cfg(test)]

use crate::epsilon::EpsilonJoin;
use crate::knn::KnnJoin;
use crate::representation::RepresentationModel;
use crate::scancount::ScanCountIndex;
use crate::similarity::SimilarityMeasure;
use er_core::filter::Filter;
use er_core::schema::TextView;
use er_text::Cleaner;
use proptest::prelude::*;

fn arb_texts(n: usize) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-d ]{0,16}", 1..n)
}

proptest! {
    /// All measures are symmetric in the set sizes except cosine/dice are;
    /// and every measure is bounded by min-containment.
    #[test]
    fn similarity_bounds(overlap in 0usize..10, extra_a in 0usize..10, extra_b in 0usize..10) {
        let len_a = overlap + extra_a;
        let len_b = overlap + extra_b;
        for m in SimilarityMeasure::ALL {
            let s = m.compute(overlap, len_a, len_b);
            prop_assert!((0.0..=1.0).contains(&s), "{} = {}", m.name(), s);
            let swapped = m.compute(overlap, len_b, len_a);
            prop_assert!((s - swapped).abs() < 1e-12, "{} asymmetric", m.name());
            if overlap == len_a && overlap == len_b && overlap > 0 {
                prop_assert!((s - 1.0).abs() < 1e-12);
            }
        }
    }

    /// ScanCount overlap counts equal brute-force set intersections.
    #[test]
    fn scancount_matches_bruteforce(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..30, 0..10), 1..8),
        query in proptest::collection::btree_set(0u64..30, 0..10),
    ) {
        let sets: Vec<Vec<u64>> = sets.into_iter().map(|s| s.into_iter().collect()).collect();
        let query: Vec<u64> = query.into_iter().collect();
        let mut index = ScanCountIndex::build(&sets);
        let mut out = Vec::new();
        index.query_into(&query, &mut out);
        // Brute force reference.
        for (i, set) in sets.iter().enumerate() {
            let expected = set.iter().filter(|t| query.contains(t)).count() as u32;
            let got = out.iter().find(|&&(e, _)| e == i as u32).map_or(0, |&(_, o)| o);
            prop_assert_eq!(got, expected, "entity {}", i);
        }
        // Visited entities are exactly those with positive overlap.
        for &(e, o) in &out {
            prop_assert!(o > 0);
            prop_assert!((e as usize) < sets.len());
        }
    }

    /// Token sets are sorted, deduplicated, and multiset cardinality is at
    /// least the set cardinality.
    #[test]
    fn token_sets_well_formed(text in "[a-e ]{0,30}") {
        for m in RepresentationModel::all() {
            let ids = m.token_set(&text, &Cleaner::off());
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "{} unsorted/dup", m.name());
        }
        let set = RepresentationModel { ngram: None, multiset: false }
            .token_set(&text, &Cleaner::off());
        let mset = RepresentationModel { ngram: None, multiset: true }
            .token_set(&text, &Cleaner::off());
        prop_assert!(mset.len() >= set.len());
    }

    /// ε-Join candidates are monotone non-increasing in the threshold, and
    /// every returned pair really meets the threshold.
    #[test]
    fn epsilon_join_threshold_sound(e1 in arb_texts(6), e2 in arb_texts(6)) {
        let view = TextView::new(e1.clone(), e2.clone());
        let model = RepresentationModel { ngram: None, multiset: false };
        let join = |t: f64| EpsilonJoin {
            cleaning: false,
            model,
            measure: SimilarityMeasure::Jaccard,
            threshold: t,
        };
        let lo = join(0.3).run(&view).candidates;
        let hi = join(0.7).run(&view).candidates;
        for p in hi.iter() {
            prop_assert!(lo.contains(p), "higher threshold must be a subset");
        }
        // Soundness: verify each hi pair's actual Jaccard >= 0.7.
        for p in hi.iter() {
            let a = model.token_set(&e1[p.left as usize], &Cleaner::off());
            let b = model.token_set(&e2[p.right as usize], &Cleaner::off());
            let overlap = a.iter().filter(|t| b.contains(t)).count();
            let sim = SimilarityMeasure::Jaccard.compute(overlap, a.len(), b.len());
            prop_assert!(sim >= 0.7 - 1e-12, "pair {:?} has sim {}", p, sim);
        }
    }

    /// kNN-Join: every query contributes at most as many pairs as it has
    /// positive-similarity candidates, and k=inf degenerates to "all
    /// overlapping pairs".
    #[test]
    fn knn_join_bounded_by_overlaps(e1 in arb_texts(6), e2 in arb_texts(6)) {
        let view = TextView::new(e1, e2);
        let model = RepresentationModel { ngram: None, multiset: false };
        let knn = |k: usize| KnnJoin {
            cleaning: false,
            model,
            measure: SimilarityMeasure::Cosine,
            k,
            reversed: false,
        };
        let all = EpsilonJoin {
            cleaning: false,
            model,
            measure: SimilarityMeasure::Cosine,
            threshold: f64::MIN_POSITIVE,
        }
        .run(&view)
        .candidates;
        let huge_k = knn(10_000).run(&view).candidates;
        prop_assert_eq!(huge_k.to_sorted_vec(), all.to_sorted_vec());
        let k1 = knn(1).run(&view).candidates;
        for p in k1.iter() {
            prop_assert!(all.contains(p));
        }
    }
}
