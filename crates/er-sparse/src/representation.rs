//! The representation models of the sparse NN methods (paper Table IV).
//!
//! `T1G` splits on whitespace (as in Standard Blocking); `CnG` with
//! `n ∈ {2..5}` extracts character n-grams from every token (as in Q-Grams
//! Blocking). Each model exists in set form and in multiset form (`…M`),
//! where duplicate tokens are de-duplicated by attaching a counter:
//! `{a, a, b} → {a₁, a₂, b₁}` — set algorithms then handle multiset overlap
//! (the overlap becomes Σ min counts) for free.

use er_core::hash::{hash_str, mix64, FastMap};
use er_text::{qgrams, Cleaner};

/// A representation model: tokenization scheme × set/multiset semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RepresentationModel {
    /// Character n-gram length; `None` means whitespace tokens (`T1G`).
    pub ngram: Option<usize>,
    /// Multiset semantics (the `M` suffix).
    pub multiset: bool,
}

impl RepresentationModel {
    /// The ten models of Table IV, in its order:
    /// T1G, T1GM, C2G, C2GM, …, C5G, C5GM.
    pub fn all() -> Vec<RepresentationModel> {
        let mut out = Vec::with_capacity(10);
        for ngram in [None, Some(2), Some(3), Some(4), Some(5)] {
            for multiset in [false, true] {
                out.push(RepresentationModel { ngram, multiset });
            }
        }
        out
    }

    /// The paper's model name, e.g. `"C5GM"`.
    pub fn name(&self) -> String {
        let base = match self.ngram {
            None => "T1G".to_owned(),
            Some(n) => format!("C{n}G"),
        };
        if self.multiset {
            format!("{base}M")
        } else {
            base
        }
    }

    /// Parses a model name (inverse of [`RepresentationModel::name`]).
    pub fn parse(name: &str) -> Option<RepresentationModel> {
        let (base, multiset) = match name.strip_suffix('M') {
            Some(b) => (b, true),
            None => (name, false),
        };
        let ngram = match base {
            "T1G" => None,
            _ => {
                let n: usize = base.strip_prefix('C')?.strip_suffix('G')?.parse().ok()?;
                if !(2..=9).contains(&n) {
                    return None;
                }
                Some(n)
            }
        };
        Some(RepresentationModel { ngram, multiset })
    }

    /// Converts one entity text into its token-id set.
    ///
    /// Returns a sorted, deduplicated vector of 64-bit token ids; with
    /// multiset semantics the k-th occurrence of a token gets a distinct id
    /// (token hash mixed with its occurrence counter), so the output is
    /// still a set and `|A|` is the multiset cardinality.
    pub fn token_set(&self, text: &str, cleaner: &Cleaner) -> Vec<u64> {
        let tokens = cleaner.clean_to_tokens(text);
        let mut raw: Vec<u64> = Vec::new();
        match self.ngram {
            None => raw.extend(tokens.iter().map(|t| hash_str(t))),
            Some(n) => {
                for token in &tokens {
                    raw.extend(qgrams(token, n).iter().map(|g| hash_str(g)));
                }
            }
        }
        let mut out: Vec<u64>;
        if self.multiset {
            let mut counts: FastMap<u64, u64> = FastMap::default();
            out = raw
                .into_iter()
                .map(|id| {
                    let c = counts.entry(id).or_insert(0);
                    *c += 1;
                    // Occurrence 1 keeps the raw id so sets and multisets
                    // agree on duplicate-free inputs' first occurrences.
                    if *c == 1 {
                        id
                    } else {
                        mix64(id ^ mix64(*c))
                    }
                })
                .collect();
        } else {
            out = raw;
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(model: &str, text: &str) -> Vec<u64> {
        RepresentationModel::parse(model)
            .expect("model")
            .token_set(text, &Cleaner::off())
    }

    #[test]
    fn all_models_match_table4() {
        let names: Vec<String> = RepresentationModel::all()
            .iter()
            .map(|m| m.name())
            .collect();
        assert_eq!(
            names,
            ["T1G", "T1GM", "C2G", "C2GM", "C3G", "C3GM", "C4G", "C4GM", "C5G", "C5GM"]
        );
    }

    #[test]
    fn parse_roundtrips() {
        for m in RepresentationModel::all() {
            assert_eq!(RepresentationModel::parse(&m.name()), Some(m));
        }
        assert_eq!(RepresentationModel::parse("bogus"), None);
        assert_eq!(RepresentationModel::parse("C1G"), None);
    }

    #[test]
    fn t1g_sets_ignore_repeats() {
        assert_eq!(set("T1G", "a a b").len(), 2);
        assert_eq!(set("T1GM", "a a b").len(), 3);
    }

    #[test]
    fn multiset_counts_min_overlap() {
        // {a,a,b} vs {a,b,b}: multiset overlap = min(2,1) + min(1,2) = 2.
        let x = set("T1GM", "a a b");
        let y = set("T1GM", "a b b");
        let overlap = x.iter().filter(|id| y.contains(id)).count();
        assert_eq!(overlap, 2);
    }

    #[test]
    fn cng_extracts_per_token() {
        // "ab cd" with 2-grams: grams of "ab" and "cd", no cross-token gram.
        let ids = set("C2G", "ab cd");
        assert_eq!(ids.len(), 2);
        let cross = RepresentationModel::parse("C2G")
            .expect("model")
            .token_set("abcd", &Cleaner::off());
        assert_eq!(cross.len(), 3); // ab, bc, cd
    }

    #[test]
    fn identical_texts_identical_sets() {
        for m in RepresentationModel::all() {
            let a = m.token_set("walmart tv 55in", &Cleaner::off());
            let b = m.token_set("walmart tv 55in", &Cleaner::off());
            assert_eq!(a, b, "{}", m.name());
            assert!(a.windows(2).all(|w| w[0] < w[1]), "{} unsorted", m.name());
        }
    }

    #[test]
    fn cleaning_changes_sets() {
        let raw = set("T1G", "the apple");
        let cleaned = RepresentationModel::parse("T1G")
            .expect("model")
            .token_set("the apple", &Cleaner::on());
        assert_eq!(raw.len(), 2);
        assert_eq!(cleaned.len(), 1, "stop-word removed");
    }

    #[test]
    fn empty_text_empty_set() {
        for m in RepresentationModel::all() {
            assert!(m.token_set("", &Cleaner::off()).is_empty());
        }
    }
}
