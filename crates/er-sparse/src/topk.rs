//! The global top-k set similarity join (paper §IV-C; Xiao et al., ICDE
//! 2009).
//!
//! Unlike the *local* kNN-Join (at least `k` pairs per query entity), the
//! top-k join returns the `k` highest-similarity pairs **globally** across
//! `E1 × E2`. The paper observes it is equivalent to an ε-Join whose
//! threshold equals the k-th pair's similarity — a property the tests and
//! the cross-crate suite verify — and evaluates the local join instead
//! because the global one cannot guarantee per-query coverage.

use crate::artifact::TokenSetsArtifact;
use crate::representation::RepresentationModel;
use crate::scancount::ScanCountScratch;
use crate::similarity::SimilarityMeasure;
use er_core::filter::{Filter, FilterOutput, Prepared};
use er_core::schema::TextView;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A configured global top-k join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKJoin {
    /// Apply stop-word removal + stemming (`CL`).
    pub cleaning: bool,
    /// Representation model (`RM`).
    pub model: RepresentationModel,
    /// Similarity measure (`SM`).
    pub measure: SimilarityMeasure,
    /// Number of pairs to keep globally.
    pub k: usize,
}

/// Max-heap entry holding the *worst* kept pair on top.
#[derive(PartialEq)]
struct Worst {
    sim: f64,
    key: u64,
}

impl Eq for Worst {}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse similarity: lowest similarity on top. Ties: larger key
        // on top so smaller keys are preferred deterministically.
        other
            .sim
            .partial_cmp(&self.sim)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.key.cmp(&other.key))
    }
}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl TopKJoin {
    /// One-line configuration description.
    pub fn describe(&self) -> String {
        format!(
            "CL={} RM={} SM={} K={}",
            if self.cleaning { "y" } else { "-" },
            self.model.name(),
            self.measure.name(),
            self.k
        )
    }

    /// The k-th (lowest kept) similarity of the last run would make the
    /// equivalent ε-Join threshold; exposed for the equivalence tests.
    pub fn run_with_threshold(&self, view: &TextView) -> (FilterOutput, f64) {
        let prepared = self.prepare(view);
        let (queried, threshold) = self.query_with_threshold(&prepared);
        let mut out = FilterOutput {
            candidates: queried.candidates,
            breakdown: prepared.breakdown().clone(),
        };
        out.breakdown.merge(&queried.breakdown);
        (out, threshold)
    }

    /// The query stage on a shared artifact, also returning the k-th
    /// similarity.
    fn query_with_threshold(&self, prepared: &Prepared) -> (FilterOutput, f64) {
        let art = prepared.downcast::<TokenSetsArtifact>();
        let mut out = FilterOutput::default();
        let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(self.k + 1);
        out.breakdown.time("query", || {
            let mut scratch = ScanCountScratch::default();
            let mut hits: Vec<(u32, u32)> = Vec::new();
            // Length-filter state: once the heap is full, its worst kept
            // similarity is a global floor — candidates whose cardinality
            // cannot reach it are provably strictly below every kept pair
            // and can never displace one. The bounds only depend on
            // (query length, floor), so they are cached across hits and
            // queries and recomputed on change.
            let mut cached: Option<(usize, f64, (usize, usize))> = None;
            for j in 0..art.query_sets.len() {
                let qlen = art.query_sets.set_size(j);
                art.index
                    .query_row_with(&mut scratch, &art.query_sets, j, &mut hits);
                for &(i, overlap) in &hits {
                    let ilen = art.index.set_size(i);
                    if heap.len() == self.k {
                        let floor = heap.peek().map_or(0.0, |w| w.sim);
                        let (lo, hi) = match cached {
                            Some((q, f, b)) if q == qlen && f == floor => b,
                            _ => {
                                let b = self.measure.size_bounds(qlen, floor);
                                cached = Some((qlen, floor, b));
                                b
                            }
                        };
                        if ilen < lo || ilen > hi {
                            continue;
                        }
                    }
                    let sim = self.measure.compute(overlap as usize, ilen, qlen);
                    if sim <= 0.0 {
                        continue;
                    }
                    let key = er_core::Pair::new(i, j as u32).key();
                    if heap.len() < self.k {
                        heap.push(Worst { sim, key });
                    } else if let Some(worst) = heap.peek() {
                        if sim > worst.sim || (sim == worst.sim && key < worst.key) {
                            heap.pop();
                            heap.push(Worst { sim, key });
                        }
                    }
                }
            }
        });
        let threshold = heap.peek().map_or(0.0, |w| w.sim);
        for w in heap {
            out.candidates.insert(er_core::Pair::from_key(w.key));
        }
        (out, threshold)
    }
}

impl Filter for TopKJoin {
    fn name(&self) -> String {
        "TopK-Join".to_owned()
    }

    fn repr_key(&self) -> String {
        TokenSetsArtifact::repr_key(self.cleaning, self.model, false)
    }

    fn prepare(&self, view: &TextView) -> Prepared {
        TokenSetsArtifact::prepare(view, self.cleaning, self.model, false)
    }

    fn query(&self, _view: &TextView, prepared: &Prepared) -> FilterOutput {
        self.query_with_threshold(prepared).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epsilon::EpsilonJoin;
    use er_core::Pair;

    fn join(k: usize) -> TopKJoin {
        TopKJoin {
            cleaning: false,
            model: RepresentationModel::parse("T1G").expect("T1G"),
            measure: SimilarityMeasure::Jaccard,
            k,
        }
    }

    fn view() -> TextView {
        TextView {
            e1: vec![
                "alpha beta gamma".into(),
                "delta epsilon".into(),
                "alpha beta".into(),
            ]
            .into(),
            e2: vec![
                "alpha beta gamma".into(), // J = 1.0 with e1[0]
                "delta zeta".into(),       // J = 1/3 with e1[1]
            ]
            .into(),
        }
    }

    #[test]
    fn returns_globally_best_pairs() {
        let out = join(1).run(&view());
        assert_eq!(out.candidates.len(), 1);
        assert!(out.candidates.contains(Pair::new(0, 0)));
        let out2 = join(2).run(&view());
        assert_eq!(out2.candidates.len(), 2);
        // Second best globally: e1[2] "alpha beta" vs e2[0] (J = 2/3).
        assert!(out2.candidates.contains(Pair::new(2, 0)));
    }

    #[test]
    fn k_larger_than_overlapping_pairs_returns_all() {
        let out = join(100).run(&view());
        // Only token-sharing pairs qualify.
        assert_eq!(out.candidates.len(), 3);
    }

    #[test]
    fn equivalent_to_epsilon_join_at_kth_similarity() {
        // Paper §IV-C: the top-k join equals the ε-Join whose ε is the
        // k-th pair's similarity (when no ties straddle the boundary).
        let v = view();
        let (out, threshold) = join(2).run_with_threshold(&v);
        let eps = EpsilonJoin {
            cleaning: false,
            model: RepresentationModel::parse("T1G").expect("T1G"),
            measure: SimilarityMeasure::Jaccard,
            threshold,
        };
        let eps_out = eps.run(&v);
        assert_eq!(
            out.candidates.to_sorted_vec(),
            eps_out.candidates.to_sorted_vec()
        );
    }

    #[test]
    fn global_join_can_starve_queries() {
        // The reason the paper prefers the local kNN-Join: a dominant
        // query can consume the whole global budget.
        let v = TextView {
            e1: vec!["x y z".into(), "a".into()].into(),
            e2: vec!["x y z".into(), "a b c d e".into()].into(),
        };
        let out = join(1).run(&v);
        // Query 1 gets no candidate at all.
        assert!(out.candidates.iter().all(|p| p.right == 0));
    }

    #[test]
    fn heap_floor_filter_matches_bruteforce() {
        // Varied cardinalities so the floor-derived length filter actually
        // skips candidates; the kept pairs must equal the brute-force
        // global top-k (with the same deterministic tie handling).
        let e1: Vec<String> = (0..24)
            .map(|i| {
                (0..=(i % 6))
                    .map(|t| format!("w{}", (i + t * 5) % 13))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        let e2: Vec<String> = (0..9)
            .map(|j| {
                (0..=(j % 4))
                    .map(|t| format!("w{}", (j * 2 + t) % 13))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        let v = TextView::new(e1, e2);
        for measure in SimilarityMeasure::ALL {
            for k in [1, 3, 7] {
                let tk = TopKJoin {
                    cleaning: false,
                    model: RepresentationModel::parse("T1G").expect("T1G"),
                    measure,
                    k,
                };
                let out = tk.run(&v);
                // Brute force: score every overlapping pair via the naive
                // reference, keep the k best (sim desc, key asc).
                let naive = crate::reference::naive_topk(&v, tk.model, measure, k);
                assert_eq!(
                    out.candidates.to_sorted_vec(),
                    naive,
                    "{} k={k}",
                    measure.name()
                );
            }
        }
    }

    #[test]
    fn deterministic_under_ties() {
        let v = TextView {
            e1: vec!["a b".into(), "a c".into(), "a d".into()].into(),
            e2: vec!["a".into()].into(),
        };
        let a = join(2).run(&v).candidates.to_sorted_vec();
        let b = join(2).run(&v).candidates.to_sorted_vec();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }
}
