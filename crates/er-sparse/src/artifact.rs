//! The shared prepare-stage artifact of the sparse joins.
//!
//! Every sparse method (ε-Join, kNN-Join, top-k join) starts the same way:
//! tokenize both collections under a representation model (`RM`) with
//! optional cleaning (`CL`), then build a ScanCount inverted index over
//! the indexed side. Only the *query* stage differs — similarity measure,
//! ε, k. This module packages that common preparation as one artifact so
//! a grid sweep shares a single tokenization + index across every
//! configuration that only varies query-stage parameters.
//!
//! Both sides are stored as interned [`CsrTokenSets`] (flat `u32` arrays,
//! see [`crate::csr`]): the query rows are pre-interned against the
//! index's token interner once here, so every query-stage pass walks
//! contiguous ids without hashing, and the cached byte estimate is exact
//! up to the interner's hash-table slack.

use crate::csr::CsrTokenSets;
use crate::representation::RepresentationModel;
use crate::scancount::ScanCountIndex;
use er_core::filter::Prepared;
use er_core::parallel;
use er_core::schema::TextView;
use er_core::timing::{PhaseBreakdown, Stage};
use er_text::Cleaner;

/// Token sets of both sides plus the ScanCount index over the indexed
/// side. `index_sets` row `i` backs `index`; `query_sets` rows are the
/// probes, pre-interned by the index.
#[derive(Debug)]
pub struct TokenSetsArtifact {
    /// Interned token sets of the indexed collection.
    pub index_sets: CsrTokenSets,
    /// Interned token sets of the querying collection (unknown tokens
    /// dropped from the rows, original cardinalities retained).
    pub query_sets: CsrTokenSets,
    /// ScanCount inverted index over `index_sets`.
    pub index: ScanCountIndex,
}

impl TokenSetsArtifact {
    /// The representation key of this artifact: filters with equal keys
    /// (on the same view) produce interchangeable artifacts. The
    /// similarity measure and the ε/k parameters are query-stage and
    /// deliberately absent.
    pub fn repr_key(cleaning: bool, model: RepresentationModel, reversed: bool) -> String {
        format!(
            "sparse:CL={}:RM={}:RVS={}",
            if cleaning { "y" } else { "-" },
            model.name(),
            if reversed { "y" } else { "-" }
        )
    }

    /// Tokenizes both sides and builds the ScanCount index, recording the
    /// `preprocess` and `index` phases in the prepare stage. With `reversed`
    /// (the kNN `RVS` parameter) `E2` is indexed and `E1` queries.
    pub fn prepare(
        view: &TextView,
        cleaning: bool,
        model: RepresentationModel,
        reversed: bool,
    ) -> Prepared {
        let cleaner = if cleaning {
            Cleaner::on()
        } else {
            Cleaner::off()
        };
        let (index_texts, query_texts) = if reversed {
            (&view.e2, &view.e1)
        } else {
            (&view.e1, &view.e2)
        };
        let mut breakdown = PhaseBreakdown::new();
        let (raw_index_sets, raw_query_sets) =
            breakdown.time_in(Stage::Prepare, "preprocess", || {
                let a: Vec<Vec<u64>> =
                    parallel::par_map(index_texts, |t| model.token_set(t, &cleaner));
                let b: Vec<Vec<u64>> =
                    parallel::par_map(query_texts, |t| model.token_set(t, &cleaner));
                (a, b)
            });
        let (index, index_sets, query_sets) = breakdown.time_in(Stage::Prepare, "index", || {
            let (index, index_sets) = ScanCountIndex::build_with_sets(&raw_index_sets);
            let query_sets = index.intern_queries(&raw_query_sets);
            (index, index_sets, query_sets)
        });
        let bytes = index_sets.heap_bytes() + query_sets.heap_bytes() + index.heap_bytes();
        Prepared::new(
            Self {
                index_sets,
                query_sets,
                index,
            },
            bytes,
            breakdown,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> TextView {
        TextView::new(
            vec!["alpha beta".to_owned(), "gamma".to_owned()],
            vec!["alpha".to_owned()],
        )
    }

    #[test]
    fn repr_key_separates_representations_not_measures() {
        let t1g = RepresentationModel::parse("T1G").expect("T1G");
        let c2g = RepresentationModel::parse("C2G").expect("C2G");
        assert_ne!(
            TokenSetsArtifact::repr_key(false, t1g, false),
            TokenSetsArtifact::repr_key(true, t1g, false)
        );
        assert_ne!(
            TokenSetsArtifact::repr_key(false, t1g, false),
            TokenSetsArtifact::repr_key(false, c2g, false)
        );
        assert_ne!(
            TokenSetsArtifact::repr_key(false, t1g, false),
            TokenSetsArtifact::repr_key(false, t1g, true)
        );
    }

    #[test]
    fn prepare_builds_sets_and_index_with_prepare_phases() {
        let t1g = RepresentationModel::parse("T1G").expect("T1G");
        let prepared = TokenSetsArtifact::prepare(&view(), false, t1g, false);
        let art = prepared.downcast::<TokenSetsArtifact>();
        assert_eq!(art.index_sets.len(), 2);
        assert_eq!(art.query_sets.len(), 1);
        assert_eq!(art.index.len(), 2);
        assert!(prepared.bytes() > 0);
        let b = prepared.breakdown();
        assert!(b.get("preprocess").is_some() && b.get("index").is_some());
        assert_eq!(b.prepare_total(), b.total(), "all phases are prepare-stage");
    }

    #[test]
    fn reversed_prepare_swaps_sides() {
        let t1g = RepresentationModel::parse("T1G").expect("T1G");
        let prepared = TokenSetsArtifact::prepare(&view(), false, t1g, true);
        let art = prepared.downcast::<TokenSetsArtifact>();
        assert_eq!(art.index_sets.len(), 1);
        assert_eq!(art.query_sets.len(), 2);
    }

    #[test]
    fn query_rows_are_interned_against_the_index() {
        let t1g = RepresentationModel::parse("T1G").expect("T1G");
        let prepared = TokenSetsArtifact::prepare(&view(), false, t1g, false);
        let art = prepared.downcast::<TokenSetsArtifact>();
        // "alpha" occurs on both sides, so the query row holds exactly the
        // id the index assigned to it.
        assert_eq!(art.query_sets.row_vec(0).len(), 1);
        assert_eq!(art.query_sets.set_size(0), 1);
        let mut all_index_ids: Vec<u32> = (0..art.index_sets.len())
            .flat_map(|i| art.index_sets.row_vec(i))
            .collect();
        all_index_ids.sort_unstable();
        assert!(all_index_ids.contains(&art.query_sets.row_vec(0)[0]));
    }
}
