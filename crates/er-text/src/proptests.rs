//! Property-based tests of the text substrate's invariants.

#![cfg(test)]

use crate::{
    clean_tokens, extended_qgram_keys, kshingles, normalize, porter_stem, qgrams,
    substrings_min_len, suffixes_min_len, tokenize,
};
use proptest::prelude::*;

proptest! {
    /// Normalization is idempotent.
    #[test]
    fn normalize_idempotent(s in ".{0,60}") {
        let once = normalize(&s);
        prop_assert_eq!(normalize(&once), once);
    }

    /// Tokens contain only alphanumeric characters and are non-empty.
    #[test]
    fn tokens_are_clean(s in ".{0,60}") {
        for t in tokenize(&s) {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(char::is_alphanumeric));
            // Lowercasing is a fixpoint (exotic chars without a lowercase
            // mapping, e.g. "𝐀", are left as-is by to_lowercase too).
            prop_assert_eq!(t.to_lowercase(), t.clone());
        }
    }

    /// Stemming never grows a word and never panics on arbitrary input.
    #[test]
    fn stemming_shrinks(word in "[a-z]{1,20}") {
        let stem = porter_stem(&word);
        prop_assert!(stem.len() <= word.len(), "{} -> {}", word, stem);
        prop_assert!(!stem.is_empty());
    }

    /// Every q-gram of a long-enough token has exactly length q, and their
    /// count is len - q + 1.
    #[test]
    fn qgram_shape(word in "[a-z]{1,24}", q in 1usize..6) {
        let grams = qgrams(&word, q);
        if word.chars().count() <= q {
            prop_assert_eq!(grams, vec![word.clone()]);
        } else {
            prop_assert_eq!(grams.len(), word.chars().count() - q + 1);
            for g in &grams {
                prop_assert_eq!(g.chars().count(), q);
            }
        }
    }

    /// Q-grams reassemble to the original word via overlaps.
    #[test]
    fn qgrams_cover_word(word in "[a-z]{3,20}") {
        let grams = qgrams(&word, 3);
        let mut rebuilt: String = grams[0].clone();
        for g in &grams[1..] {
            rebuilt.push(g.chars().last().expect("3-gram"));
        }
        prop_assert_eq!(rebuilt, word);
    }

    /// Suffixes are suffixes; substrings contain suffixes.
    #[test]
    fn suffix_substring_relations(word in "[a-z]{1,16}", l_min in 1usize..5) {
        let suffixes = suffixes_min_len(&word, l_min);
        for s in &suffixes {
            prop_assert!(word.ends_with(s.as_str()));
            prop_assert!(s.chars().count() >= l_min);
        }
        let substrings = substrings_min_len(&word, l_min);
        for s in &suffixes {
            prop_assert!(substrings.contains(s), "suffix {} not in substrings", s);
        }
        for s in &substrings {
            prop_assert!(word.contains(s.as_str()));
        }
    }

    /// Extended q-gram keys always include the full concatenation of all
    /// grams, and every key is built from the token's grams.
    #[test]
    fn extended_qgram_keys_valid(word in "[a-z]{1,12}", t in 0.0f64..0.99) {
        let keys = extended_qgram_keys(&word, 3, t);
        prop_assert!(!keys.is_empty());
        let grams = qgrams(&word, 3);
        let full = grams.join("_");
        prop_assert!(keys.contains(&full), "full key {} missing", full);
        for key in &keys {
            for part in key.split('_') {
                prop_assert!(grams.iter().any(|g| g == part));
            }
        }
    }

    /// Cleaning = drop stop-words, then stem the survivors, in order.
    #[test]
    fn cleaning_equals_filter_then_stem(s in "[a-z ]{0,60}") {
        let tokens = tokenize(&s);
        let expected: Vec<String> = tokens
            .iter()
            .filter(|t| !crate::is_stopword(t))
            .map(|t| porter_stem(t))
            .collect();
        prop_assert_eq!(clean_tokens(tokens), expected);
    }

    /// k-shingles have length k and their count matches.
    #[test]
    fn shingle_shape(s in "[a-z ]{1,40}", k in 1usize..6) {
        let shingles = kshingles(&s, k);
        let n = s.chars().count();
        if n <= k {
            prop_assert_eq!(shingles.len(), 1);
        } else {
            prop_assert_eq!(shingles.len(), n - k + 1);
            for sh in &shingles {
                prop_assert_eq!(sh.chars().count(), k);
            }
        }
    }
}
