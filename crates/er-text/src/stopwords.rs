//! Embedded English stop-word list.
//!
//! The benchmark's optional cleaning step removes stop-words before indexing
//! (the paper uses nltk's list). We embed the standard 127-word Snowball /
//! nltk-style English list plus a handful of corpus-neutral additions; the
//! lookup is a binary search over a sorted static table, so `is_stopword`
//! costs O(log n) with zero allocation.

/// Sorted list of English stop-words. Kept sorted so [`is_stopword`] can
/// binary-search; a unit test asserts the ordering.
pub static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "couldn",
    "did",
    "didn",
    "do",
    "does",
    "doesn",
    "doing",
    "don",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn",
    "has",
    "hasn",
    "have",
    "haven",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "isn",
    "it",
    "its",
    "itself",
    "just",
    "ll",
    "me",
    "more",
    "most",
    "mustn",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "re",
    "s",
    "same",
    "shan",
    "she",
    "should",
    "shouldn",
    "so",
    "some",
    "such",
    "t",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "ve",
    "very",
    "was",
    "wasn",
    "we",
    "were",
    "weren",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "won",
    "would",
    "wouldn",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Returns true if `word` (assumed lowercase) is an English stop-word.
///
/// ```
/// assert!(er_text::is_stopword("the"));
/// assert!(!er_text::is_stopword("walmart"));
/// ```
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_unique() {
        for pair in STOPWORDS.windows(2) {
            assert!(pair[0] < pair[1], "{:?} >= {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn common_stopwords_detected() {
        for w in ["the", "and", "of", "is", "a", "with", "for"] {
            assert!(is_stopword(w), "{w} should be a stop-word");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["walmart", "camera", "database", "resolution", "biden", ""] {
            assert!(!is_stopword(w), "{w} should not be a stop-word");
        }
    }
}
