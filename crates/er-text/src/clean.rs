//! The optional "cleaning" pre-processing step (paper §IV-A, Fig. 2):
//! stop-word removal followed by stemming.
//!
//! Cleaning applies to both input collections of an NN method before
//! indexing/querying; the paper reports it reduces vocabulary size by ~12%
//! and character length by ~13.5% on average.

use crate::stem::porter_stem;
use crate::stopwords::is_stopword;
use crate::tokens::tokenize_into;

/// Removes stop-words from `tokens` and stems the survivors in place.
///
/// ```
/// let toks = vec!["the".to_string(), "blocks".to_string()];
/// assert_eq!(er_text::clean_tokens(toks), vec!["block"]);
/// ```
pub fn clean_tokens(tokens: Vec<String>) -> Vec<String> {
    tokens
        .into_iter()
        .filter(|t| !is_stopword(t))
        .map(|t| porter_stem(&t))
        .collect()
}

/// A reusable cleaning pipeline: tokenize, drop stop-words, stem, re-join.
///
/// `Cleaner` exposes both a token-level API ([`Cleaner::clean_to_tokens`])
/// for methods that consume token sets and a string-level API
/// ([`Cleaner::clean_to_string`]) for methods that re-tokenize with their
/// own representation model (e.g. character n-grams over the cleaned text).
#[derive(Debug, Default, Clone, Copy)]
pub struct Cleaner {
    /// When false, the cleaner is a no-op passthrough. This models the `CL`
    /// configuration parameter shared by all NN methods.
    pub enabled: bool,
}

impl Cleaner {
    /// A cleaner that removes stop-words and stems.
    pub fn on() -> Self {
        Self { enabled: true }
    }

    /// A passthrough cleaner (the `CL = -` configuration).
    pub fn off() -> Self {
        Self { enabled: false }
    }

    /// Tokenizes `text` and, if enabled, removes stop-words and stems.
    pub fn clean_to_tokens(&self, text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        tokenize_into(text, &mut tokens);
        if self.enabled {
            clean_tokens(tokens)
        } else {
            tokens
        }
    }

    /// Returns the cleaned text as a single space-joined string.
    pub fn clean_to_string(&self, text: &str) -> String {
        self.clean_to_tokens(text).join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_removes_stopwords_and_stems() {
        let toks: Vec<String> = ["the", "running", "databases", "of", "walmart"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(clean_tokens(toks), vec!["run", "databas", "walmart"]);
    }

    #[test]
    fn cleaner_off_is_passthrough() {
        let c = Cleaner::off();
        assert_eq!(c.clean_to_tokens("The Blocks"), vec!["the", "blocks"]);
        assert_eq!(c.clean_to_string("The Blocks"), "the blocks");
    }

    #[test]
    fn cleaner_on_applies_pipeline() {
        let c = Cleaner::on();
        assert_eq!(c.clean_to_string("The Blocks of Data"), "block data");
    }

    #[test]
    fn cleaning_shrinks_or_preserves_length() {
        let c = Cleaner::on();
        for text in ["a movie about the sea", "digital camera with zoom lens", ""] {
            assert!(c.clean_to_string(text).len() <= text.len());
        }
    }
}
