//! Text-processing substrate for entity-resolution filtering.
//!
//! This crate implements every textual primitive the filtering techniques of
//! the ICDE 2023 benchmark rely on:
//!
//! * [`tokens`] — normalization and whitespace tokenization (the signatures of
//!   Standard Blocking and the `T1G` representation model),
//! * [`ngrams`] — character q-grams, extended q-gram combinations, token
//!   suffixes, token substrings and k-shingles (the signatures of the
//!   remaining block-building methods and of MinHash LSH),
//! * [`stem`] — the Porter (1980) stemming algorithm,
//! * [`stopwords`] — an embedded English stop-word list,
//! * [`clean`] — the optional "cleaning" pre-processing step of the paper
//!   (stop-word removal followed by stemming).
//!
//! All functions are deterministic and allocation-conscious: the hot paths
//! accept an output `Vec` to append into so callers can reuse buffers.

pub mod clean;
pub mod ngrams;
pub mod stem;
pub mod stopwords;
pub mod tokens;

pub use clean::{clean_tokens, Cleaner};
pub use ngrams::{extended_qgram_keys, kshingles, qgrams, substrings_min_len, suffixes_min_len};
pub use stem::porter_stem;
pub use stopwords::is_stopword;
pub use tokens::{normalize, tokenize, tokenize_into};

mod proptests;
