//! The Porter stemming algorithm (M. F. Porter, "An algorithm for suffix
//! stripping", *Program* 14(3), 1980).
//!
//! The benchmark's optional "cleaning" pre-processing step reduces every
//! word to its base form (the paper uses nltk, whose default stemmer is
//! Porter's). This is a faithful from-scratch implementation of the original
//! algorithm: steps 1a–1c, 2, 3, 4, 5a and 5b over lowercase ASCII words.
//! Words shorter than three characters or containing non-ASCII-alphabetic
//! characters are returned unchanged, mirroring common practice.

/// Stems a single lowercase word with the Porter algorithm.
///
/// ```
/// assert_eq!(er_text::porter_stem("blocks"), "block");
/// assert_eq!(er_text::porter_stem("relational"), "relat");
/// assert_eq!(er_text::porter_stem("caresses"), "caress");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_owned();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    // Safety: we only ever shrink or substitute ASCII bytes.
    String::from_utf8(s.b).expect("stemmer output is ASCII")
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    /// True if the character at `i` is a consonant in Porter's sense
    /// (`y` counts as a consonant only when not preceded by a consonant).
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => i == 0 || !self.is_consonant(i - 1),
            _ => true,
        }
    }

    /// Porter's measure m of the stem `b[..end]`: the number of VC
    /// sequences in the form `[C](VC)^m[V]`.
    fn measure(&self, end: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip the optional initial consonant run.
        while i < end && self.is_consonant(i) {
            i += 1;
        }
        loop {
            // Vowel run.
            while i < end && !self.is_consonant(i) {
                i += 1;
            }
            if i >= end {
                return m;
            }
            // Consonant run: completes one VC.
            while i < end && self.is_consonant(i) {
                i += 1;
            }
            m += 1;
        }
    }

    /// True if the stem `b[..end]` contains a vowel.
    fn has_vowel(&self, end: usize) -> bool {
        (0..end).any(|i| !self.is_consonant(i))
    }

    /// True if the stem ends in a double consonant (`*d`).
    fn ends_double_consonant(&self, end: usize) -> bool {
        end >= 2 && self.b[end - 1] == self.b[end - 2] && self.is_consonant(end - 1)
    }

    /// True if the stem ends consonant-vowel-consonant where the final
    /// consonant is not `w`, `x` or `y` (`*o`).
    fn ends_cvc(&self, end: usize) -> bool {
        if end < 3 {
            return false;
        }
        let c = self.b[end - 1];
        self.is_consonant(end - 3)
            && !self.is_consonant(end - 2)
            && self.is_consonant(end - 1)
            && c != b'w'
            && c != b'x'
            && c != b'y'
    }

    fn ends_with(&self, suffix: &[u8]) -> bool {
        self.b.len() >= suffix.len() && &self.b[self.b.len() - suffix.len()..] == suffix
    }

    /// Length of the stem left after removing `suffix` (caller must have
    /// checked `ends_with`).
    fn stem_len(&self, suffix: &[u8]) -> usize {
        self.b.len() - suffix.len()
    }

    /// Replaces a verified suffix with `replacement`.
    fn replace(&mut self, suffix: &[u8], replacement: &[u8]) {
        let keep = self.b.len() - suffix.len();
        self.b.truncate(keep);
        self.b.extend_from_slice(replacement);
    }

    /// If the word ends with `suffix` and the remaining stem has measure
    /// greater than `min_m`, substitute `replacement` and return true.
    fn try_rule(&mut self, suffix: &[u8], replacement: &[u8], min_m: usize) -> bool {
        if self.ends_with(suffix) {
            let end = self.stem_len(suffix);
            if self.measure(end) > min_m {
                self.replace(suffix, replacement);
            }
            // Porter's rule lists stop at the first matching suffix even if
            // the condition fails.
            return true;
        }
        false
    }

    fn step1a(&mut self) {
        if self.ends_with(b"sses") {
            self.replace(b"sses", b"ss");
        } else if self.ends_with(b"ies") {
            self.replace(b"ies", b"i");
        } else if self.ends_with(b"ss") {
            // Leave unchanged.
        } else if self.ends_with(b"s") {
            self.replace(b"s", b"");
        }
    }

    fn step1b(&mut self) {
        if self.ends_with(b"eed") {
            if self.measure(self.stem_len(b"eed")) > 0 {
                self.replace(b"eed", b"ee");
            }
            return;
        }
        let stripped = if self.ends_with(b"ed") && self.has_vowel(self.stem_len(b"ed")) {
            self.replace(b"ed", b"");
            true
        } else if self.ends_with(b"ing") && self.has_vowel(self.stem_len(b"ing")) {
            self.replace(b"ing", b"");
            true
        } else {
            false
        };
        if !stripped {
            return;
        }
        if self.ends_with(b"at") {
            self.replace(b"at", b"ate");
        } else if self.ends_with(b"bl") {
            self.replace(b"bl", b"ble");
        } else if self.ends_with(b"iz") {
            self.replace(b"iz", b"ize");
        } else if self.ends_double_consonant(self.b.len()) {
            let last = self.b[self.b.len() - 1];
            if last != b'l' && last != b's' && last != b'z' {
                self.b.pop();
            }
        } else if self.measure(self.b.len()) == 1 && self.ends_cvc(self.b.len()) {
            self.b.push(b'e');
        }
    }

    fn step1c(&mut self) {
        if self.ends_with(b"y") && self.has_vowel(self.stem_len(b"y")) {
            let n = self.b.len();
            self.b[n - 1] = b'i';
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"ational", b"ate"),
            (b"tional", b"tion"),
            (b"enci", b"ence"),
            (b"anci", b"ance"),
            (b"izer", b"ize"),
            (b"abli", b"able"),
            (b"alli", b"al"),
            (b"entli", b"ent"),
            (b"eli", b"e"),
            (b"ousli", b"ous"),
            (b"ization", b"ize"),
            (b"ation", b"ate"),
            (b"ator", b"ate"),
            (b"alism", b"al"),
            (b"iveness", b"ive"),
            (b"fulness", b"ful"),
            (b"ousness", b"ous"),
            (b"aliti", b"al"),
            (b"iviti", b"ive"),
            (b"biliti", b"ble"),
        ];
        for (suffix, replacement) in RULES {
            if self.try_rule(suffix, replacement, 0) {
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"icate", b"ic"),
            (b"ative", b""),
            (b"alize", b"al"),
            (b"iciti", b"ic"),
            (b"ical", b"ic"),
            (b"ful", b""),
            (b"ness", b""),
        ];
        for (suffix, replacement) in RULES {
            if self.try_rule(suffix, replacement, 0) {
                return;
            }
        }
    }

    fn step4(&mut self) {
        const RULES: &[&[u8]] = &[
            b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment",
            b"ent", b"ion", b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
        ];
        for suffix in RULES {
            if self.ends_with(suffix) {
                let end = self.stem_len(suffix);
                if self.measure(end) > 1 {
                    // "ion" additionally requires the stem to end in s or t.
                    if *suffix == b"ion"
                        && !(end > 0 && (self.b[end - 1] == b's' || self.b[end - 1] == b't'))
                    {
                        return;
                    }
                    self.replace(suffix, b"");
                }
                return;
            }
        }
    }

    fn step5a(&mut self) {
        if self.ends_with(b"e") {
            let end = self.stem_len(b"e");
            let m = self.measure(end);
            if m > 1 || (m == 1 && !self.ends_cvc(end)) {
                self.replace(b"e", b"");
            }
        }
    }

    fn step5b(&mut self) {
        let n = self.b.len();
        if n >= 2 && self.b[n - 1] == b'l' && self.ends_double_consonant(n) && self.measure(n) > 1 {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic vocabulary/expected pairs from Porter's paper and the
    /// reference implementation's sample output.
    #[test]
    fn porter_reference_cases() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (word, expected) in cases {
            assert_eq!(porter_stem(word), expected, "stem({word})");
        }
    }

    #[test]
    fn paper_example_blocks_becomes_block() {
        assert_eq!(porter_stem("blocks"), "block");
    }

    #[test]
    fn short_and_nonascii_words_pass_through() {
        assert_eq!(porter_stem("as"), "as");
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("café"), "café");
        assert_eq!(porter_stem("R2D2"), "R2D2");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for word in ["connection", "running", "movies", "entities"] {
            let once = porter_stem(word);
            let twice = porter_stem(&once);
            // Porter is not idempotent in general, but is for these stems.
            assert_eq!(once, twice, "{word} -> {once} -> {twice}");
        }
    }
}
