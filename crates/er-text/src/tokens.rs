//! Normalization and whitespace tokenization.
//!
//! The benchmark treats attribute values as free text. Standard Blocking and
//! the `T1G` representation model split values into tokens on whitespace and
//! punctuation after lowercasing; every downstream signature scheme (q-grams,
//! suffixes, …) operates on these tokens.

/// Lowercases `text` and replaces every non-alphanumeric character with a
/// single space, collapsing runs of separators.
///
/// This is the shared normalization applied before any token extraction, so
/// that `"Joe   BIDEN,"` and `"joe biden"` produce identical signatures.
///
/// ```
/// assert_eq!(er_text::normalize("Joe   BIDEN,"), "joe biden");
/// ```
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut pending_space = false;
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
        } else {
            pending_space = true;
        }
    }
    out
}

/// Splits `text` into lowercase alphanumeric tokens.
///
/// Equivalent to `normalize(text).split(' ')` but avoids the intermediate
/// string. Empty inputs yield no tokens.
///
/// ```
/// assert_eq!(er_text::tokenize("Abt CD-330!"), vec!["abt", "cd", "330"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    tokenize_into(text, &mut out);
    out
}

/// Appends the tokens of `text` to `out`, reusing its allocation.
///
/// This is the buffer-reusing form of [`tokenize`] for hot loops that
/// tokenize many attribute values.
pub fn tokenize_into(text: &str, out: &mut Vec<String>) {
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_collapses() {
        assert_eq!(normalize("Joe   BIDEN,"), "joe biden");
        assert_eq!(normalize("  a--b  "), "a b");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("!!!"), "");
    }

    #[test]
    fn tokenize_splits_on_punctuation() {
        assert_eq!(tokenize("Abt CD-330!"), vec!["abt", "cd", "330"]);
        assert_eq!(tokenize("one"), vec!["one"]);
        assert!(tokenize("").is_empty());
        assert!(tokenize(" ,;- ").is_empty());
    }

    #[test]
    fn tokenize_handles_unicode() {
        assert_eq!(tokenize("Café Überfall"), vec!["café", "überfall"]);
    }

    #[test]
    fn tokenize_into_reuses_buffer() {
        let mut buf = Vec::with_capacity(8);
        tokenize_into("a b", &mut buf);
        tokenize_into("c", &mut buf);
        assert_eq!(buf, vec!["a", "b", "c"]);
    }

    #[test]
    fn tokenize_matches_normalize_split() {
        for text in ["Joe BIDEN", "x-1 2_3", "  padded  ", "ümlaut Ärger"] {
            let via_norm: Vec<String> = normalize(text)
                .split(' ')
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect();
            assert_eq!(tokenize(text), via_norm, "mismatch for {text:?}");
        }
    }
}
