//! Character-level signature extraction: q-grams, extended q-gram
//! combinations, suffixes, substrings and k-shingles.
//!
//! These functions produce the blocking keys of Q-Grams, Extended Q-Grams,
//! Suffix Arrays and Extended Suffix Arrays Blocking (paper §IV-B), the
//! `CnG`/`CnGM` representation models of the sparse NN methods (§IV-C) and
//! the k-shingles of MinHash LSH (§IV-D). All operate on characters, not
//! bytes, so multi-byte UTF-8 input is handled correctly.

/// Maximum number of q-grams per token considered by
/// [`extended_qgram_keys`]; longer tokens are truncated to bound the
/// combinatorial blow-up of the subset enumeration (JedAI applies the same
/// kind of guard).
pub const MAX_QGRAMS_PER_TOKEN: usize = 15;

/// Returns the sliding-window character q-grams of `s`.
///
/// A string shorter than `q` yields itself as its only "gram", matching the
/// behaviour of Q-Grams Blocking on short tokens (a key is always produced).
///
/// ```
/// assert_eq!(er_text::qgrams("biden", 3), vec!["bid", "ide", "den"]);
/// assert_eq!(er_text::qgrams("jo", 3), vec!["jo"]);
/// ```
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q-gram length must be at least 1");
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= q {
        return vec![s.to_owned()];
    }
    let mut out = Vec::with_capacity(chars.len() - q + 1);
    for window in chars.windows(q) {
        out.push(window.iter().collect());
    }
    out
}

/// Returns the Extended Q-Grams Blocking keys of a token: every
/// positional-order combination of at least `L` of its q-grams, concatenated
/// with `_`, where `L = max(1, floor(k * t))` and `k` is the number of
/// q-grams extracted from the token.
///
/// Reproduces the paper's example: for `"Biden"`, `q = 3`, `t = 0.9` the
/// keys are `bid_ide_den`, `bid_ide`, `bid_den`, `ide_den` (the paper shows
/// them in original case; we normalize earlier in the pipeline).
///
/// The q-gram list is truncated to [`MAX_QGRAMS_PER_TOKEN`] entries to keep
/// the subset enumeration bounded for pathological tokens.
pub fn extended_qgram_keys(token: &str, q: usize, t: f64) -> Vec<String> {
    assert!((0.0..1.0).contains(&t), "threshold t must be in [0, 1)");
    let mut grams = qgrams(token, q);
    grams.truncate(MAX_QGRAMS_PER_TOKEN);
    let k = grams.len();
    if k == 0 {
        return Vec::new();
    }
    if k == 1 {
        return grams;
    }
    let l = ((k as f64 * t).floor() as usize).max(1);
    // Enumerate subsets with popcount >= l preserving positional order.
    let mut keys = Vec::new();
    let full: u32 = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };
    for mask in 1..=full {
        if (mask.count_ones() as usize) < l {
            continue;
        }
        let mut key = String::new();
        for (i, gram) in grams.iter().enumerate() {
            if mask & (1 << i) != 0 {
                if !key.is_empty() {
                    key.push('_');
                }
                key.push_str(gram);
            }
        }
        keys.push(key);
    }
    keys
}

/// Returns the suffixes of `s` with at least `min_len` characters, including
/// `s` itself (Suffix Arrays Blocking keys, before the `b_max` frequency
/// constraint that the blocking layer applies).
///
/// ```
/// assert_eq!(er_text::suffixes_min_len("biden", 3), vec!["biden", "iden", "den"]);
/// ```
pub fn suffixes_min_len(s: &str, min_len: usize) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    let n = chars.len();
    if n < min_len || min_len == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n - min_len + 1);
    for start in 0..=(n - min_len) {
        out.push(chars[start..].iter().collect());
    }
    out
}

/// Returns every substring of `s` with at least `min_len` characters
/// (Extended Suffix Arrays Blocking keys, before the frequency constraint).
///
/// The paper's example: `"Biden"` with `l_min = 3` yields
/// `{biden, bide, iden, bid, ide, den}` (plus `joe` from the other token).
pub fn substrings_min_len(s: &str, min_len: usize) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    let n = chars.len();
    if n < min_len || min_len == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for len in (min_len..=n).rev() {
        for start in 0..=(n - len) {
            out.push(chars[start..start + len].iter().collect());
        }
    }
    out
}

/// Returns the character k-shingles of a whole string (used by MinHash LSH).
///
/// Unlike [`qgrams`], shingling treats the entire value — spaces included —
/// as the character sequence, which is the standard construction for
/// document resemblance [Broder 1997]. Strings shorter than `k` yield the
/// string itself.
pub fn kshingles(s: &str, k: usize) -> Vec<String> {
    assert!(k >= 1, "shingle length must be at least 1");
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= k {
        return vec![s.to_owned()];
    }
    let mut out = Vec::with_capacity(chars.len() - k + 1);
    for window in chars.windows(k) {
        out.push(window.iter().collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn qgrams_paper_example() {
        // "Joe Biden", q = 3 -> {Joe, Bid, ide, den} across the two tokens.
        let mut keys: Vec<String> = qgrams("joe", 3);
        keys.extend(qgrams("biden", 3));
        assert_eq!(keys, vec!["joe", "bid", "ide", "den"]);
    }

    #[test]
    fn qgrams_short_and_empty() {
        assert_eq!(qgrams("ab", 2), vec!["ab"]);
        assert_eq!(qgrams("a", 2), vec!["a"]);
        assert!(qgrams("", 2).is_empty());
    }

    #[test]
    fn qgrams_unicode_counts_chars() {
        assert_eq!(qgrams("čaña", 2), vec!["ča", "añ", "ña"]);
    }

    #[test]
    fn extended_qgrams_paper_example() {
        // "Biden" with q=3, T=0.9: k=3, L=max(1, floor(2.7))=2.
        let keys: BTreeSet<String> = extended_qgram_keys("biden", 3, 0.9).into_iter().collect();
        let expected: BTreeSet<String> = ["bid_ide_den", "bid_ide", "bid_den", "ide_den"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(keys, expected);
        // "Joe": a single q-gram -> the token itself.
        assert_eq!(extended_qgram_keys("joe", 3, 0.9), vec!["joe"]);
    }

    #[test]
    fn extended_qgrams_low_threshold_includes_singletons() {
        // t close to 0 -> L = 1 -> every non-empty subset.
        let keys = extended_qgram_keys("abcd", 3, 0.0);
        // k = 2 grams ("abc", "bcd") -> 3 subsets.
        assert_eq!(keys.len(), 3);
    }

    #[test]
    fn extended_qgrams_truncates_pathological_tokens() {
        let long: String = "a".repeat(64);
        // Must terminate and produce a bounded number of keys.
        let keys = extended_qgram_keys(&long, 2, 0.95);
        assert!(!keys.is_empty());
        assert!(keys.len() < 1 << MAX_QGRAMS_PER_TOKEN);
    }

    #[test]
    fn suffixes_paper_example() {
        // "Biden" with l_min = 3 -> {Biden, iden, den}; "Joe" -> {joe}.
        assert_eq!(suffixes_min_len("biden", 3), vec!["biden", "iden", "den"]);
        assert_eq!(suffixes_min_len("joe", 3), vec!["joe"]);
        assert!(suffixes_min_len("ab", 3).is_empty());
    }

    #[test]
    fn substrings_paper_example() {
        let got: BTreeSet<String> = substrings_min_len("biden", 3).into_iter().collect();
        let expected: BTreeSet<String> = ["biden", "bide", "iden", "bid", "ide", "den"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn substrings_superset_of_suffixes() {
        for word in ["walmart", "a", "ab", "restaurant"] {
            let subs: BTreeSet<String> = substrings_min_len(word, 2).into_iter().collect();
            for suf in suffixes_min_len(word, 2) {
                assert!(
                    subs.contains(&suf),
                    "{suf} missing from substrings of {word}"
                );
            }
        }
    }

    #[test]
    fn kshingles_spans_spaces() {
        assert_eq!(kshingles("a b", 2), vec!["a ", " b"]);
        assert_eq!(kshingles("ab", 5), vec!["ab"]);
        assert!(kshingles("", 3).is_empty());
    }
}
