//! The checkpointed, resumable streaming-ingest benchmark behind
//! `er sweep --stream`.
//!
//! The first selected column's indexed side is replayed as an *insert
//! log* against a [`SegmentedTokenSets`]: the rows arrive in batches,
//! each batch is sealed into an immutable segment, deterministic deletes
//! thin out earlier batches, and the midpoint batch triggers a
//! compaction — the full lifecycle of the incremental index. After every
//! batch the merged epsilon candidates over all query rows are reduced
//! to a count and an order-sensitive hash, giving one compact report row
//! per batch.
//!
//! Report rows carry no wall-clock fields, so a run interrupted after
//! any batch and resumed via `--resume` produces a byte-identical final
//! report: checkpointed batches replay their recorded rows (the index
//! state is rebuilt by re-applying the cheap insert/delete log, skipping
//! only the expensive query pass), and fresh batches append to the same
//! checkpoint. The checkpoint header is fingerprinted with the sweep
//! settings plus a `+stream` tag so sweep and stream checkpoints can
//! never be confused for one another.
//!
//! The run ends with the invariant the whole subsystem is built on: the
//! merged candidates of the final state must be bitwise identical to a
//! from-scratch prepare over the net surviving rows. With `--store-dir`
//! the final segment stack is also persisted through the manifest codec.

use crate::jsonl::Json;
use crate::settings::Settings;
use crate::sweep::column_specs;
use er::core::parallel::Threads;
use er::core::schema::text_view;
use er::core::timing::format_runtime;
use er::datagen::generate;
use er::sparse::{
    EpsilonJoin, RepresentationModel, ScanCountIndex, ScanCountScratch, SegmentedTokenSets,
    SimilarityMeasure, TokenSetsArtifact,
};
use er::text::Cleaner;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

/// Number of insert batches the log is split into.
const BATCHES: usize = 8;
/// Checkpoint format version.
const VERSION: f64 = 1.0;

/// One completed batch of the stream, as checkpointed and reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRow {
    /// Batch index, `0..BATCHES`.
    pub batch: usize,
    /// Rows inserted by this batch.
    pub upserts: usize,
    /// Rows deleted before this batch's queries ran.
    pub deletes: usize,
    /// Net live rows after the batch.
    pub live_rows: usize,
    /// Sealed segments after the batch.
    pub segments: usize,
    /// Mutable delta rows after the batch.
    pub delta_rows: usize,
    /// Total merged epsilon candidates over all query rows.
    pub candidates_total: u64,
    /// Order-sensitive FNV-1a hash of every candidate list.
    pub cand_hash: u64,
}

impl BatchRow {
    fn encode(&self) -> Json {
        Json::Obj(vec![
            ("batch".to_owned(), Json::Num(self.batch as f64)),
            ("upserts".to_owned(), Json::Num(self.upserts as f64)),
            ("deletes".to_owned(), Json::Num(self.deletes as f64)),
            ("live_rows".to_owned(), Json::Num(self.live_rows as f64)),
            ("segments".to_owned(), Json::Num(self.segments as f64)),
            ("delta_rows".to_owned(), Json::Num(self.delta_rows as f64)),
            (
                "candidates_total".to_owned(),
                Json::Num(self.candidates_total as f64),
            ),
            // 64-bit hashes overflow an f64 mantissa; hex keeps them exact.
            (
                "cand_hash".to_owned(),
                Json::Str(format!("{:016x}", self.cand_hash)),
            ),
        ])
    }

    fn decode(line: &str) -> Result<BatchRow, String> {
        let v = Json::parse(line)?;
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let hash = v
            .get("cand_hash")
            .and_then(Json::as_str)
            .ok_or("missing string field \"cand_hash\"")?;
        Ok(BatchRow {
            batch: num("batch")? as usize,
            upserts: num("upserts")? as usize,
            deletes: num("deletes")? as usize,
            live_rows: num("live_rows")? as usize,
            segments: num("segments")? as usize,
            delta_rows: num("delta_rows")? as usize,
            candidates_total: num("candidates_total")? as u64,
            cand_hash: u64::from_str_radix(hash, 16)
                .map_err(|_| format!("bad cand_hash {hash:?}"))?,
        })
    }
}

/// Loads a stream checkpoint: batches recorded by a previous (possibly
/// interrupted) run, in batch order. Missing file = nothing completed.
/// A torn final line — the signature of a mid-write kill — is dropped;
/// any other malformed line, fingerprint mismatch, or out-of-order batch
/// is an error rather than silently-ignored data.
fn load_checkpoint(path: &Path, fingerprint: &str) -> io::Result<Vec<BatchRow>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let bad = |line: usize, msg: String| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}:{line}: {msg}", path.display()),
        )
    };
    let mut lines = BufReader::new(file).lines();
    let header = match lines.next() {
        None => return Ok(Vec::new()),
        Some(line) => line?,
    };
    let header =
        Json::parse(&header).map_err(|e| bad(1, format!("bad stream checkpoint header: {e}")))?;
    if header.get("v").and_then(Json::as_f64) != Some(VERSION) {
        return Err(bad(1, "unsupported stream checkpoint version".to_owned()));
    }
    match header.get("fingerprint").and_then(Json::as_str) {
        Some(fp) if fp == fingerprint => {}
        Some(fp) => {
            return Err(bad(
                1,
                format!(
                    "stream checkpoint was written with different settings \
                     (fingerprint {fp:?}, current {fingerprint:?})"
                ),
            ))
        }
        None => {
            return Err(bad(
                1,
                "stream checkpoint header has no fingerprint".to_owned(),
            ))
        }
    }
    let mut rows: Vec<BatchRow> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if let Some((n, e)) = pending.take() {
            return Err(bad(n, e));
        }
        match BatchRow::decode(&line) {
            Ok(row) => {
                if row.batch != rows.len() {
                    return Err(bad(
                        i + 2,
                        format!("batch {} out of order (expected {})", row.batch, rows.len()),
                    ));
                }
                rows.push(row);
            }
            Err(e) => pending = Some((i + 2, e)),
        }
    }
    Ok(rows)
}

/// Opens a stream checkpoint for appending, writing the header first on
/// a fresh (or empty) file.
fn open_checkpoint(path: &Path, fingerprint: &str) -> io::Result<File> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    if file.metadata()?.len() == 0 {
        let header = Json::Obj(vec![
            ("v".to_owned(), Json::Num(VERSION)),
            ("fingerprint".to_owned(), Json::Str(fingerprint.to_owned())),
        ]);
        writeln!(file, "{}", header.encode())?;
        file.flush()?;
    }
    Ok(file)
}

/// FNV-1a over every candidate list, order- and row-sensitive, so any
/// divergence in any row's candidate set changes the hash.
fn candidate_hash(merged: &[Vec<u32>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for (j, row) in merged.iter().enumerate() {
        eat(j as u64);
        eat(row.len() as u64);
        for &id in row {
            eat(id as u64);
        }
    }
    h
}

/// The fixed join the stream benchmarks — same configuration as the
/// segmented pass of `--bench-prepare`, so the two reports are directly
/// comparable.
fn stream_join(model: RepresentationModel) -> EpsilonJoin {
    EpsilonJoin {
        cleaning: false,
        model,
        measure: SimilarityMeasure::Jaccard,
        threshold: 0.3,
    }
}

/// Ids deleted before batch `i` runs its queries: a deterministic thin
/// of the rows inserted by *earlier* batches (batch 0 deletes nothing).
fn delete_schedule(i: usize, inserted_below: usize, net: &BTreeMap<u32, Vec<u64>>) -> Vec<u32> {
    if i == 0 {
        return Vec::new();
    }
    net.keys()
        .copied()
        .filter(|&id| (id as usize) < inserted_below && id as usize % 7 == i % 7)
        .collect()
}

/// Runs the streaming-ingest benchmark and writes the final JSON report
/// to `path`. Checkpointing/resume follow the settings exactly as the
/// sweep does; see the module docs for the replay semantics.
pub fn run_stream(settings: &Settings, path: &Path, verbose: bool) -> io::Result<()> {
    let spec = column_specs(settings).into_iter().next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "stream: no datasets selected")
    })?;
    let fingerprint = format!("{}+stream", settings.fingerprint());
    let completed = match settings.resume.as_deref() {
        Some(p) => {
            let rows = load_checkpoint(Path::new(p), &fingerprint)?;
            if verbose && !rows.is_empty() {
                eprintln!(
                    "stream: resuming, {} batch(es) checkpointed in {p}",
                    rows.len()
                );
            }
            rows
        }
        None => Vec::new(),
    };
    let mut writer = match settings.checkpoint_path() {
        Some(p) => {
            if settings.resume.is_none() {
                match std::fs::remove_file(p) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
            Some(open_checkpoint(Path::new(p), &fingerprint)?)
        }
        None => None,
    };

    let ds = generate(spec.profile, settings.scale, settings.seed);
    let view = text_view(&ds, &spec.mode);
    let model = RepresentationModel::parse("T1G").expect("T1G parses");
    let cleaner = Cleaner::off();
    let rows: Vec<Vec<u64>> = view
        .e1
        .iter()
        .map(|t| model.token_set(t, &cleaner))
        .collect();
    let query_raw: Vec<Vec<u64>> = view
        .e2
        .iter()
        .map(|t| model.token_set(t, &cleaner))
        .collect();
    let join = stream_join(model);
    let threads = Threads::get();
    let per = rows.len().div_ceil(BATCHES).max(1);

    let mut seg = SegmentedTokenSets::new("stream/sparse", query_raw.clone());
    let mut net: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut report_rows: Vec<BatchRow> = Vec::with_capacity(BATCHES);
    let sw = er::core::Stopwatch::start();
    for i in 0..BATCHES {
        let start = i * per;
        if start >= rows.len() && i > 0 {
            break; // tiny datasets fill fewer than BATCHES batches
        }
        let end = rows.len().min(start + per);
        // Replay the log: inserts for this batch, then the deterministic
        // deletes thinning earlier batches. This runs even for
        // checkpointed batches — state must advance for later ones.
        for (id, toks) in rows.iter().enumerate().take(end).skip(start) {
            seg.upsert(id as u32, toks.clone());
            net.insert(id as u32, toks.clone());
        }
        let deletes = delete_schedule(i, start, &net);
        for &id in &deletes {
            seg.delete(id);
            net.remove(&id);
        }
        if i + 1 < BATCHES && end < rows.len() {
            seg.flush();
        }
        if i == BATCHES / 2 {
            seg.compact();
        }

        if let Some(row) = completed.get(i) {
            report_rows.push(row.clone());
            if verbose {
                eprintln!(
                    "stream [{}] batch {i}: +{} -{} rows (checkpointed)",
                    spec.label, row.upserts, row.deletes,
                );
            }
            continue;
        }
        let merged = seg.epsilon_batch(&join, threads);
        let row = BatchRow {
            batch: i,
            upserts: end - start,
            deletes: deletes.len(),
            live_rows: seg.live_rows(),
            segments: seg.segment_count(),
            delta_rows: seg.delta_rows(),
            candidates_total: merged.iter().map(|r| r.len() as u64).sum(),
            cand_hash: candidate_hash(&merged),
        };
        if let Some(w) = writer.as_mut() {
            writeln!(w, "{}", row.encode().encode())?;
            w.flush()?;
        }
        if verbose {
            eprintln!(
                "stream [{}] batch {i}: +{} -{} rows | {} live / {} segments / {} delta | \
                 {} candidates ({})",
                spec.label,
                row.upserts,
                row.deletes,
                row.live_rows,
                row.segments,
                row.delta_rows,
                row.candidates_total,
                format_runtime(sw.elapsed()),
            );
        }
        report_rows.push(row);
    }

    // Final invariant: the merged view over segments + delta, after all
    // the interleaved inserts, deletes and the midpoint compaction, must
    // be bitwise identical to a from-scratch prepare of the net rows.
    let merged = seg.epsilon_batch(&join, threads);
    let ids: Vec<u32> = net.keys().copied().collect();
    let sets: Vec<Vec<u64>> = net.values().cloned().collect();
    let (index, index_sets) = ScanCountIndex::build_with_sets(&sets);
    let query_sets = index.intern_queries(&query_raw);
    let art = TokenSetsArtifact {
        index_sets,
        query_sets,
        index,
    };
    let mut scratch = ScanCountScratch::default();
    let mut hits = Vec::new();
    let merge_matches_rebuild = (0..query_raw.len()).all(|j| {
        let mut out = Vec::new();
        join.query_row_into(&art, j, &mut scratch, &mut hits, &mut out);
        let out: Vec<u32> = out.into_iter().map(|d| ids[d as usize]).collect();
        out == merged[j]
    });

    let mut doc = vec![
        ("column".to_owned(), Json::Str(spec.label.clone())),
        ("fingerprint".to_owned(), Json::Str(fingerprint)),
        (
            "batches".to_owned(),
            Json::Arr(report_rows.iter().map(BatchRow::encode).collect()),
        ),
        ("live_rows".to_owned(), Json::Num(seg.live_rows() as f64)),
        ("segments".to_owned(), Json::Num(seg.segment_count() as f64)),
        ("delta_rows".to_owned(), Json::Num(seg.delta_rows() as f64)),
        (
            "merge_matches_rebuild".to_owned(),
            Json::Bool(merge_matches_rebuild),
        ),
    ];
    if let Some(dir) = &settings.store_dir {
        let store = crate::store::open_store(Path::new(dir))?;
        let report = seg
            .persist(&store, view.fingerprint())
            .map_err(io::Error::other)?;
        if verbose {
            eprintln!(
                "stream [{}] persisted to {dir}: {} segment(s) written, {} reused, {} removed",
                spec.label, report.segments_written, report.segments_reused, report.removed,
            );
        }
        doc.push((
            "persist".to_owned(),
            Json::Obj(vec![
                (
                    "segments_written".to_owned(),
                    Json::Num(report.segments_written as f64),
                ),
                (
                    "segments_reused".to_owned(),
                    Json::Num(report.segments_reused as f64),
                ),
                ("removed".to_owned(), Json::Num(report.removed as f64)),
            ]),
        ));
    }
    if verbose {
        eprintln!(
            "stream [{}] done in {}: {} live rows / {} segments / {} delta | merge {}",
            spec.label,
            format_runtime(sw.elapsed()),
            seg.live_rows(),
            seg.segment_count(),
            seg.delta_rows(),
            if merge_matches_rebuild {
                "ok"
            } else {
                "MISMATCH"
            },
        );
    }
    std::fs::write(path, Json::Obj(doc).encode() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("er-stream-{name}-{}", std::process::id()))
    }

    fn settings() -> Settings {
        Settings::parse(
            ["--datasets", "D1", "--scale", "0.01", "--grid", "quick"]
                .iter()
                .map(|s| s.to_string()),
        )
    }

    #[test]
    fn batch_rows_roundtrip_through_jsonl() {
        let row = BatchRow {
            batch: 3,
            upserts: 120,
            deletes: 17,
            live_rows: 430,
            segments: 4,
            delta_rows: 120,
            candidates_total: 98765,
            cand_hash: 0xdead_beef_cafe_f00d,
        };
        let line = row.encode().encode();
        assert_eq!(BatchRow::decode(&line).expect("decode"), row);
    }

    #[test]
    fn stream_report_verifies_and_is_resume_identical() {
        let out_a = temp("full.json");
        let out_b = temp("resumed.json");
        let ck = temp("ck.jsonl");
        for p in [&out_a, &out_b, &ck] {
            let _ = std::fs::remove_file(p);
        }

        // Uninterrupted run, checkpointing as it goes.
        let mut s = settings();
        s.checkpoint = Some(ck.display().to_string());
        run_stream(&s, &out_a, false).expect("full run");
        let full = std::fs::read_to_string(&out_a).expect("report");
        assert!(full.contains("\"merge_matches_rebuild\":true"), "{full}");

        // Truncate the checkpoint to its header + first three batches —
        // an interrupted run — and resume: byte-identical report.
        let lines: Vec<String> = std::fs::read_to_string(&ck)
            .expect("checkpoint")
            .lines()
            .map(str::to_owned)
            .collect();
        assert!(lines.len() > 4, "expected several checkpointed batches");
        std::fs::write(&ck, lines[..4].join("\n") + "\n").expect("truncate");
        let mut s = settings();
        s.resume = Some(ck.display().to_string());
        run_stream(&s, &out_b, false).expect("resumed run");
        let resumed = std::fs::read_to_string(&out_b).expect("report");
        assert_eq!(full, resumed, "resumed report must be byte-identical");

        // The resumed run completed the checkpoint back to full length.
        let rows = load_checkpoint(&ck, &format!("{}+stream", s.fingerprint())).expect("load");
        assert_eq!(rows.len(), lines.len() - 1);

        for p in [&out_a, &out_b, &ck] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn checkpoint_rejects_fingerprint_mismatch_and_tolerates_torn_tail() {
        let ck = temp("torn.jsonl");
        let _ = std::fs::remove_file(&ck);
        let mut file = open_checkpoint(&ck, "fp+stream").expect("open");
        let row = BatchRow {
            batch: 0,
            upserts: 10,
            deletes: 0,
            live_rows: 10,
            segments: 1,
            delta_rows: 0,
            candidates_total: 5,
            cand_hash: 7,
        };
        writeln!(file, "{}", row.encode().encode()).expect("write");
        write!(file, "{{\"batch\":1,\"upser").expect("torn tail");
        drop(file);
        let rows = load_checkpoint(&ck, "fp+stream").expect("torn tail tolerated");
        assert_eq!(rows.len(), 1);
        let err = load_checkpoint(&ck, "other+stream").expect_err("mismatch");
        assert!(err.to_string().contains("different settings"), "{err}");
        let _ = std::fs::remove_file(&ck);
    }
}
