//! The fault-isolated, resumable Table VII sweep driver.
//!
//! One *grid point* is one `(column, method)` pair — a column being a
//! (dataset, schema-setting) — and the driver runs every grid point under
//! the settings' guard limits: a panic, blown deadline or candidate
//! budget becomes a structured failure row while the rest of the sweep
//! continues. With a checkpoint path configured, each completed grid
//! point is appended (and flushed) to a JSONL checkpoint as it finishes;
//! resuming replays the recorded outcomes and computes only the missing
//! points, so the final report is byte-identical to an uninterrupted
//! run's.

use crate::checkpoint::{Checkpoint, CheckpointWriter};
use crate::harness::{run_all_methods, run_method, Context, MethodId, MethodOutcome};
use crate::jsonl::Json;
use crate::settings::Settings;
use er::core::artifacts::{ArtifactCache, CacheStats};
use er::core::optimize::Optimizer;
use er::core::parallel;
use er::core::schema::{text_view, SchemaMode};
use er::core::timing::format_runtime;
use er::datagen::{generate, DatasetProfile};
use er::dense::EmbeddingConfig;
use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

/// One evaluated column of Table VII.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column label, e.g. `"Da2"` (dataset D2, schema-agnostic).
    pub label: String,
    /// `|E1| * |E2|` of the column's dataset.
    pub cartesian: u64,
    /// Per-method outcomes in [`MethodId::ALL`] order.
    pub outcomes: Vec<MethodOutcome>,
    /// Final counters of the column's artifact cache (all-zero when the
    /// column was served entirely from a checkpoint).
    pub stats: CacheStats,
}

/// One column to evaluate.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// The dataset profile.
    pub profile: &'static DatasetProfile,
    /// The schema setting.
    pub mode: SchemaMode,
    /// Column label, e.g. `"Db2"`.
    pub label: String,
}

/// Enumerates the sweep's columns: schema-agnostic for every selected
/// dataset, then schema-based for the viable ones.
pub fn column_specs(settings: &Settings) -> Vec<ColumnSpec> {
    let mut specs = Vec::new();
    for mode_label in ["a", "b"] {
        for profile in &settings.datasets {
            if mode_label == "b" && !profile.schema_based_viable {
                continue;
            }
            let mode = if mode_label == "a" {
                SchemaMode::Agnostic
            } else {
                profile.schema_based_mode()
            };
            specs.push(ColumnSpec {
                profile,
                mode,
                label: format!("D{}{}", mode_label, &profile.id[1..]),
            });
        }
    }
    specs
}

fn report_done(label: &str, o: &MethodOutcome, elapsed: std::time::Duration, cached: bool) {
    let suffix = if cached { " [checkpointed]" } else { "" };
    if let Some(err) = &o.error {
        eprintln!(
            "   [{label}] {:<12} FAILED after {}: {err}{suffix}",
            o.method,
            format_runtime(o.runtime),
        );
    } else {
        eprintln!(
            "   [{label}] {:<12} pc={:.3} pq={:.4} |C|={:>9.0} rt={:<9} ({} cfgs in {}) {}{suffix}",
            o.method,
            o.pc,
            o.pq,
            o.candidates,
            format_runtime(o.runtime),
            o.evaluated,
            format_runtime(elapsed),
            if o.feasible { "" } else { " [below target]" },
        );
    }
}

/// Evaluates one column, reusing checkpointed grid points and recording
/// freshly-computed ones. A column whose 17 grid points are all
/// checkpointed is reported without regenerating its dataset.
fn evaluate_column(
    spec: &ColumnSpec,
    settings: &Settings,
    verbose: bool,
    completed: &Checkpoint,
    writer: Option<&Mutex<CheckpointWriter>>,
) -> io::Result<Column> {
    let label = &spec.label;
    let cached: Vec<Option<MethodOutcome>> = MethodId::ALL
        .iter()
        .map(|id| {
            completed
                .lookup(label, id.name())
                .map(|row| row.outcome.clone())
        })
        .collect();
    if cached.iter().all(Option::is_some) {
        let cartesian = completed
            .lookup(label, MethodId::ALL[0].name())
            .map(|row| row.cartesian)
            .unwrap_or(0);
        let outcomes: Vec<MethodOutcome> = cached.into_iter().flatten().collect();
        if verbose {
            for o in &outcomes {
                report_done(label, o, std::time::Duration::ZERO, true);
            }
        }
        return Ok(Column {
            label: label.clone(),
            cartesian,
            outcomes,
            stats: CacheStats::default(),
        });
    }

    let ds = generate(spec.profile, settings.scale, settings.seed);
    let view = text_view(&ds, &spec.mode);
    let cartesian = ds.cartesian();
    // One artifact cache per column: artifact keys carry the dataset
    // fingerprint, so nothing is shared across columns anyway, and a
    // per-column cache keeps every mutation on this column's worker —
    // preserving deterministic eviction at any `column_workers` count.
    let cache = ArtifactCache::new();
    cache.set_budget(settings.cache_budget);
    if let Some(dir) = &settings.store_dir {
        cache.set_store(Some(std::sync::Arc::new(crate::store::open_store(
            Path::new(dir),
        )?)));
    }
    let ctx = Context {
        optimizer: Optimizer::new(settings.target_pc).with_limits(settings.limits()),
        resolution: settings.resolution,
        embedding: EmbeddingConfig {
            dim: settings.dim,
            ..Default::default()
        },
        seed: settings.seed,
        reps: settings.reps,
        label: label.clone(),
        ..Context::new(&view, &ds.groundtruth, &cache)
    };
    let mut outcomes = Vec::with_capacity(MethodId::ALL.len());
    for (id, cached) in MethodId::ALL.into_iter().zip(cached) {
        let (o, elapsed, was_cached) = match cached {
            Some(o) => (o, std::time::Duration::ZERO, true),
            None => {
                let sw = er::core::Stopwatch::start();
                let o = run_method(&ctx, id);
                let elapsed = sw.elapsed();
                if let Some(writer) = writer {
                    writer
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .record(label, cartesian, &o)?;
                }
                (o, elapsed, false)
            }
        };
        if verbose {
            report_done(label, &o, elapsed, was_cached);
        }
        outcomes.push(o);
    }
    // Persist everything the budget never evicted, so a later process
    // starts fully warm (evictions already spilled their victims).
    cache.flush_store();
    if verbose {
        let s = cache.stats();
        eprintln!(
            "   [{label}] cache: {} hits / {} misses / {} evictions / {} poisoned / \
             {} KiB resident / prepare {} spent, {} saved",
            s.hits,
            s.misses,
            s.evictions,
            s.poisoned,
            s.bytes.div_ceil(1024),
            format_runtime(s.prepare_wall),
            format_runtime(s.prepare_saved),
        );
        if settings.store_dir.is_some() {
            eprintln!(
                "   [{label}] store: {} hits / {} spills / {} corrupt",
                s.store_hits, s.spills, s.corrupt,
            );
        }
    }
    Ok(Column {
        label: label.clone(),
        cartesian,
        outcomes,
        stats: cache.stats(),
    })
}

/// Runs the full sweep described by `settings` over `column_workers`
/// parallel columns (1 = serial, with per-method progress when
/// `verbose`). Handles checkpoint loading/appending per the settings;
/// fault plans are *not* installed here — callers decide the injection
/// scope (see `er::core::faults::configure`).
pub fn run_sweep(
    settings: &Settings,
    column_workers: usize,
    verbose: bool,
) -> io::Result<Vec<Column>> {
    let fingerprint = settings.fingerprint();
    let completed = match settings.resume.as_deref() {
        Some(path) => {
            let cp = Checkpoint::load(Path::new(path), &fingerprint)?;
            if verbose && !cp.is_empty() {
                eprintln!("resuming: {} grid points checkpointed in {path}", cp.len());
            }
            cp
        }
        None => Checkpoint::default(),
    };
    let writer = match settings.checkpoint_path() {
        Some(path) => {
            if settings.resume.is_none() {
                // A fresh `--checkpoint` starts over; only `--resume`
                // keeps previously-recorded grid points.
                match std::fs::remove_file(path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
            Some(Mutex::new(CheckpointWriter::open(
                Path::new(path),
                &fingerprint,
            )?))
        }
        None => None,
    };
    let specs = column_specs(settings);
    let columns: Vec<io::Result<Column>> = if column_workers <= 1 {
        specs
            .iter()
            .map(|spec| {
                if verbose {
                    eprintln!("== {} ({} / {:?})", spec.label, spec.profile.id, spec.mode);
                }
                evaluate_column(spec, settings, verbose, &completed, writer.as_ref())
            })
            .collect()
    } else {
        // One chunk per column through the shared parallel layer: columns
        // are work-stolen but merged in spec order, so output ordering is
        // identical to the serial path.
        parallel::par_map_chunks_with(column_workers, &specs, 1, |_, part| {
            let spec = &part[0];
            if verbose {
                eprintln!("== {} ({} / {:?})", spec.label, spec.profile.id, spec.mode);
            }
            let column = evaluate_column(spec, settings, false, &completed, writer.as_ref());
            if verbose {
                eprintln!("== {} done", spec.label);
            }
            column
        })
    };
    columns.into_iter().collect()
}

/// The deterministic report columns of an outcome — everything the final
/// table prints except wall-clock runtimes, which legitimately differ
/// between passes.
fn stable_row(o: &MethodOutcome) -> String {
    format!(
        "{}|pc={}|pq={}|cand={}|cfg={}|feasible={}|evaluated={}|err={:?}",
        o.method, o.pc, o.pq, o.candidates, o.config, o.feasible, o.evaluated, o.error
    )
}

fn stats_delta_obj(wall: Duration, before: &CacheStats, after: &CacheStats) -> Json {
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    let lookups = hits + misses;
    let prepare = after.prepare_wall - before.prepare_wall;
    Json::Obj(vec![
        ("wall_s".to_owned(), Json::Num(wall.as_secs_f64())),
        ("prepare_s".to_owned(), Json::Num(prepare.as_secs_f64())),
        ("hits".to_owned(), Json::Num(hits as f64)),
        ("misses".to_owned(), Json::Num(misses as f64)),
        (
            "hit_rate".to_owned(),
            Json::Num(if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            }),
        ),
        (
            "store_hits".to_owned(),
            Json::Num((after.store_hits - before.store_hits) as f64),
        ),
        (
            "store_corrupt".to_owned(),
            Json::Num((after.corrupt - before.corrupt) as f64),
        ),
    ])
}

/// Runs the sweep's first column three times — cold, warm-memory and
/// warm-disk — and writes a one-line JSON summary of the prepare-stage
/// savings to `path`.
///
/// The cold and warm passes share one artifact cache (the warm pass
/// measures memory-tier reuse). The disk pass then starts a *fresh* cache
/// over a scratch store directory the cold pass flushed into — the
/// cross-process scenario of `--store-dir` — so its prepare time counts
/// only what the persistent tier failed to serve. The scratch directory
/// lives next to `path` and is wiped before and after, keeping the cold
/// pass honestly cold regardless of earlier runs.
///
/// `prepare_s` counts wall time spent inside cache-managed prepare
/// stages. A warm pass that did no prepare work has no meaningful ratio,
/// so `prepare_speedup` is `null` whenever the warm pass spent under 1µs
/// preparing (a cold ÷ ~0 ratio would be meaningless noise); the absolute
/// `prepare_cold_s` / `prepare_warm_s` / `prepare_disk_s` fields always
/// carry the raw seconds. `reports_identical` asserts neither cache tier
/// ever changes results: all three passes must agree on every
/// deterministic report column (pc / pq / candidates / config /
/// feasibility / error).
pub fn bench_prepare(settings: &Settings, path: &Path, verbose: bool) -> io::Result<()> {
    let spec = column_specs(settings).into_iter().next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "bench-prepare: no datasets selected",
        )
    })?;
    let store_dir = path.with_extension("store.tmp");
    match std::fs::remove_dir_all(&store_dir) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let ds = generate(spec.profile, settings.scale, settings.seed);
    let view = text_view(&ds, &spec.mode);

    let run_pass = |cache: &ArtifactCache, name: &str| {
        let ctx = Context {
            optimizer: Optimizer::new(settings.target_pc).with_limits(settings.limits()),
            resolution: settings.resolution,
            embedding: EmbeddingConfig {
                dim: settings.dim,
                ..Default::default()
            },
            seed: settings.seed,
            reps: settings.reps,
            label: spec.label.clone(),
            ..Context::new(&view, &ds.groundtruth, cache)
        };
        let before = cache.stats();
        let sw = er::core::Stopwatch::start();
        let outcomes = run_all_methods(&ctx);
        let wall = sw.elapsed();
        let after = cache.stats();
        if verbose {
            eprintln!(
                "bench-prepare [{}] {name}: wall {} / prepare {} / {} hits / {} misses / \
                 {} store hits",
                spec.label,
                format_runtime(wall),
                format_runtime(after.prepare_wall - before.prepare_wall),
                after.hits - before.hits,
                after.misses - before.misses,
                after.store_hits - before.store_hits,
            );
        }
        (outcomes, wall, before, after)
    };

    let warm_cache = ArtifactCache::new();
    warm_cache.set_budget(settings.cache_budget);
    warm_cache.set_store(Some(std::sync::Arc::new(crate::store::open_store(
        &store_dir,
    )?)));
    let (cold, cold_wall, cold_before, cold_after) = run_pass(&warm_cache, "cold");
    let (warm, warm_wall, warm_before, warm_after) = run_pass(&warm_cache, "warm");
    warm_cache.flush_store();

    // Fresh cache over the now-populated store: the cross-process restart.
    let disk_cache = ArtifactCache::new();
    disk_cache.set_budget(settings.cache_budget);
    disk_cache.set_store(Some(std::sync::Arc::new(crate::store::open_store(
        &store_dir,
    )?)));
    let (disk, disk_wall, disk_before, disk_after) = run_pass(&disk_cache, "disk");
    let _ = std::fs::remove_dir_all(&store_dir);

    // Segmented warm pass (streaming-ingest scenario): replay the indexed
    // side as an insert log in four batches, sealing a segment after each
    // batch but the last so the merged query path crosses real segment
    // boundaries *and* a live delta. The merged epsilon candidates are
    // then checked bitwise against a from-scratch prepare of the same
    // rows — the invariant `er sweep --stream` and `er serve` rely on.
    let model = er::sparse::RepresentationModel::parse("T1G").expect("T1G parses");
    let cleaner = er::text::Cleaner::off();
    let tokenize = |texts: &[String]| -> Vec<Vec<u64>> {
        texts.iter().map(|t| model.token_set(t, &cleaner)).collect()
    };
    let rows = tokenize(&view.e1);
    let query_raw = tokenize(&view.e2);
    let join = er::sparse::EpsilonJoin {
        cleaning: false,
        model,
        measure: er::sparse::SimilarityMeasure::Jaccard,
        threshold: 0.3,
    };
    let threads = parallel::Threads::get();
    let seg_sw = er::core::Stopwatch::start();
    let mut seg = er::sparse::SegmentedTokenSets::new("bench/segmented", query_raw.clone());
    let batch = rows.len().div_ceil(4).max(1);
    for (i, chunk) in rows.chunks(batch).enumerate() {
        for (off, tokens) in chunk.iter().enumerate() {
            seg.upsert((i * batch + off) as u32, tokens.clone());
        }
        if (i + 1) * batch < rows.len() {
            seg.flush();
        }
    }
    let merged = seg.epsilon_batch(&join, threads);
    let seg_wall = seg_sw.elapsed();
    let (segments, delta_rows) = (seg.segment_count(), seg.delta_rows());

    // Full-rebuild oracle: with ids 0..n and no deletes, dense positions
    // *are* the stable ids, so the artifact's rows compare directly.
    let (index, index_sets) = er::sparse::ScanCountIndex::build_with_sets(&rows);
    let query_sets = index.intern_queries(&query_raw);
    let art = er::sparse::TokenSetsArtifact {
        index_sets,
        query_sets,
        index,
    };
    let mut scratch = er::sparse::ScanCountScratch::default();
    let mut hits = Vec::new();
    let merge_matches_rebuild = (0..query_raw.len()).all(|j| {
        let mut out = Vec::new();
        join.query_row_into(&art, j, &mut scratch, &mut hits, &mut out);
        out == merged[j]
    });
    if verbose {
        eprintln!(
            "bench-prepare [{}] segmented: wall {} / {} segments / {} delta rows / merge {}",
            spec.label,
            format_runtime(seg_wall),
            segments,
            delta_rows,
            if merge_matches_rebuild {
                "ok"
            } else {
                "MISMATCH"
            },
        );
    }

    let identical = [&warm, &disk].iter().all(|pass| {
        cold.len() == pass.len()
            && cold
                .iter()
                .zip(pass.iter())
                .all(|(a, b)| stable_row(a) == stable_row(b))
    });
    let cold_prepare = (cold_after.prepare_wall - cold_before.prepare_wall).as_secs_f64();
    let warm_prepare = (warm_after.prepare_wall - warm_before.prepare_wall).as_secs_f64();
    let disk_prepare = (disk_after.prepare_wall - disk_before.prepare_wall).as_secs_f64();
    // A warm pass that did no measurable prepare work has no meaningful
    // ratio — report null rather than a floored-denominator artifact.
    let speedup = if warm_prepare < 1e-6 {
        Json::Null
    } else {
        Json::Num(cold_prepare / warm_prepare)
    };

    let doc = Json::Obj(vec![
        ("column".to_owned(), Json::Str(spec.label.clone())),
        ("fingerprint".to_owned(), Json::Str(settings.fingerprint())),
        (
            "cold".to_owned(),
            stats_delta_obj(cold_wall, &cold_before, &cold_after),
        ),
        (
            "warm".to_owned(),
            stats_delta_obj(warm_wall, &warm_before, &warm_after),
        ),
        (
            "disk".to_owned(),
            stats_delta_obj(disk_wall, &disk_before, &disk_after),
        ),
        ("prepare_cold_s".to_owned(), Json::Num(cold_prepare)),
        ("prepare_warm_s".to_owned(), Json::Num(warm_prepare)),
        ("prepare_disk_s".to_owned(), Json::Num(disk_prepare)),
        ("prepare_speedup".to_owned(), speedup),
        ("reports_identical".to_owned(), Json::Bool(identical)),
        (
            "segmented".to_owned(),
            Json::Obj(vec![
                ("wall_s".to_owned(), Json::Num(seg_wall.as_secs_f64())),
                ("segments".to_owned(), Json::Num(segments as f64)),
                ("delta_rows".to_owned(), Json::Num(delta_rows as f64)),
                (
                    "merge_matches_rebuild".to_owned(),
                    Json::Bool(merge_matches_rebuild),
                ),
            ]),
        ),
    ]);
    std::fs::write(path, doc.encode() + "\n")
}
