//! The out-of-core streamed shard sweep (`er sweep --shards N`).
//!
//! Unlike the profile-based Table VII sweep, which materializes whole
//! datasets, this driver targets collections that do not fit in memory
//! (the 10M-row regime): rows come from the constant-memory
//! [`StreamGen`] and the collection is split into deterministic shards
//! by [`ShardPlan`] — shard membership is a pure function of the stable
//! row id, so any process at any shard count agrees on the partition.
//!
//! The sweep is **shard-major**: one shard at a time is fetched through
//! the [`ArtifactCache`] (prepared from the stream on a cold miss,
//! loaded from the `.erst` store file on a warm one), all queries run
//! against it via [`EpsilonJoin::query_row_into`] on the deterministic
//! parallel layer, and the shard is released before the next one is
//! touched. Under a `--cache-budget` below the total artifact footprint
//! the cache *unmaps* cold shards (drops the resident copy of an entry
//! the disk tier already holds) instead of re-preparing them — peak
//! memory is a handful of shards, never the collection.
//!
//! Per-shard candidate lists are merged in shard order. Shards own
//! disjoint stable-id sets and each per-shard list is ascending, so the
//! final per-query sort reproduces the monolithic ascending candidate
//! list exactly — the *report is byte-identical at any shard count and
//! any thread count*. Everything that legitimately varies (shard count,
//! timings, peak RSS, cache traffic) goes to the separate
//! `BENCH_shard.json` document instead.

use crate::jsonl::Json;
use crate::settings::Settings;
use er::core::artifacts::{ArtifactCache, ArtifactKey};
use er::core::hash::mix64;
use er::core::shard::{shard_repr, ShardPlan};
use er::core::timing::Stage;
use er::core::{parallel, PhaseBreakdown, Prepared, Stopwatch, Threads};
use er::datagen::{StreamGen, StreamSpec};
use er::sparse::segmented::segment_repr;
use er::sparse::{
    EpsilonJoin, RepresentationModel, ScanCountScratch, SimilarityMeasure, SparseSegment,
};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// The unqualified repr-key base of the streamed collection's shard
/// artifacts; shard `s` of `n` lives under `shard_repr(BASE_REPR, s, n)`.
pub const BASE_REPR: &str = "stream/eps";

/// Everything one shard sweep produced.
#[derive(Debug)]
pub struct ShardSweepOutcome {
    /// The deterministic report: byte-identical at any shard count ×
    /// thread count (CI `cmp`s it across runs). Carries the workload
    /// spec, aggregate candidate statistics and the candidate digest —
    /// never timings, shard counts or host state.
    pub report: String,
    /// The per-run metrics document (`BENCH_shard.json`): throughput,
    /// peak RSS, shard count, cache counters including `unmaps`.
    pub bench: Json,
}

/// The streamed workload a [`Settings`] describes: `--rows`, `--queries`
/// and `--seed` pin the collection, everything else keeps the skewed
/// defaults of [`StreamSpec`]. The vocabulary scales with the row count
/// so token selectivity stays roughly constant across scales.
pub fn stream_spec(settings: &Settings) -> StreamSpec {
    let rows = settings.rows.unwrap_or(20_000);
    let queries = settings
        .queries
        .unwrap_or_else(|| (rows / 20).clamp(1, 2_000));
    StreamSpec {
        seed: settings.seed,
        rows,
        queries,
        vocab: (rows as u64).saturating_mul(5).max(1_000),
        ..StreamSpec::default()
    }
}

/// Runs the out-of-core streamed shard sweep described by `settings`
/// (shard count from `--shards`, workload from `--rows`/`--queries`/
/// `--seed`/`--threshold`, residency from `--cache-budget`, persistence
/// from `--store-dir`).
pub fn run_shard_sweep(settings: &Settings, verbose: bool) -> io::Result<ShardSweepOutcome> {
    let spec = stream_spec(settings);
    let gen = StreamGen::new(spec);
    let dataset_fp = gen.fingerprint();
    let plan = ShardPlan::new(settings.shards.unwrap_or(1));
    let threshold = settings.threshold.unwrap_or(0.4);
    let threads = if settings.threads == 0 {
        Threads::get()
    } else {
        settings.threads
    };
    let join = EpsilonJoin {
        cleaning: false,
        model: RepresentationModel::parse("T1G").expect("T1G"),
        measure: SimilarityMeasure::Cosine,
        threshold,
    };

    let cache = ArtifactCache::new();
    cache.set_budget(settings.cache_budget);
    if let Some(dir) = &settings.store_dir {
        cache.set_store(Some(Arc::new(crate::store::open_store(Path::new(dir))?)));
    }

    // The query side is small and shared by every shard; it stays
    // resident for the whole sweep.
    let query_raw = gen.query_rows();
    let n_queries = query_raw.len();
    let sw_total = Stopwatch::start();
    let mut query_wall = std::time::Duration::ZERO;
    let mut results: Vec<Vec<u32>> = vec![Vec::new(); n_queries];
    let js: Vec<usize> = (0..n_queries).collect();
    let chunk = parallel::query_chunk_len(n_queries);

    for s in 0..plan.n() {
        let repr = segment_repr(&shard_repr(BASE_REPR, s, plan.n()), 0);
        let key = ArtifactKey::new(dataset_fp, repr);
        let prepared = cache
            .get_or_prepare(&key, || {
                let mut breakdown = PhaseBreakdown::new();
                let segment = breakdown.time_in(Stage::Prepare, "shard-build", || {
                    // One regenerating pass over the stream: rows arrive
                    // in ascending id order, exactly what the segment
                    // builder expects, and nothing outside this shard is
                    // ever materialized.
                    let rows: Vec<(u32, Vec<u64>)> = gen
                        .shard_rows(&plan, s)
                        .map(|row| (row.id, row.tokens))
                        .collect();
                    SparseSegment::build(0, rows, &query_raw)
                });
                let bytes = segment.heap_bytes();
                Prepared::from_arc(Arc::new(segment), bytes, breakdown)
            })
            .map_err(io::Error::other)?;
        let segment: &SparseSegment = prepared.downcast();

        // All queries against this one resident shard, parallelized over
        // deterministic chunks — per-chunk outputs merge in chunk order,
        // so the candidate lists are independent of the thread count.
        let sw = Stopwatch::start();
        let per_chunk: Vec<Vec<Vec<u32>>> =
            parallel::par_map_chunks_with(threads, &js, chunk, |_, chunk_js| {
                let mut scratch = ScanCountScratch::default();
                let mut hits: Vec<(u32, u32)> = Vec::new();
                let mut dense: Vec<u32> = Vec::new();
                chunk_js
                    .iter()
                    .map(|&j| {
                        dense.clear();
                        join.query_row_into(&segment.art, j, &mut scratch, &mut hits, &mut dense);
                        // Dense ids map to stable ids through the
                        // segment's ascending id column; sort so each
                        // per-shard list is ascending no matter what
                        // order the merge loop emitted hits in.
                        let mut stable: Vec<u32> =
                            dense.iter().map(|&d| segment.ids[d as usize]).collect();
                        stable.sort_unstable();
                        stable
                    })
                    .collect()
            });
        for (j, list) in per_chunk.into_iter().flatten().enumerate() {
            results[j].extend(list);
        }
        query_wall += sw.elapsed();
        if verbose {
            eprintln!(
                "   [shard {s}/{}] {} rows, query pass {}",
                plan.n(),
                segment.len(),
                er::core::timing::format_runtime(sw.elapsed()),
            );
        }
    }
    cache.flush_store();

    // Concatenation in shard order + one final sort reproduces the
    // monolithic ascending candidate list (shards partition the stable
    // ids). Strict ascent doubles as the merge self-check: a duplicate
    // would mean two shards answered for one row.
    let mut merge_ok = true;
    for list in &mut results {
        list.sort_unstable();
        merge_ok &= list.windows(2).all(|w| w[0] < w[1]);
    }

    let total_candidates: u64 = results.iter().map(|l| l.len() as u64).sum();
    let matched = results.iter().filter(|l| !l.is_empty()).count();
    let digest = candidate_digest(&results);
    let stats = cache.stats();
    let total_s = sw_total.elapsed().as_secs_f64();
    let build_s = stats.prepare_wall.as_secs_f64();
    let query_s = query_wall.as_secs_f64();

    let report = render_report(
        &spec,
        threshold,
        matched,
        total_candidates,
        digest,
        &results,
    );
    let bench = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("shard_sweep".to_owned())),
        (
            "workload".to_owned(),
            Json::Obj(vec![
                ("rows".to_owned(), Json::Num(spec.rows as f64)),
                ("queries".to_owned(), Json::Num(spec.queries as f64)),
                ("vocab".to_owned(), Json::Num(spec.vocab as f64)),
                ("zipf".to_owned(), Json::Num(spec.zipf)),
                ("dirtiness".to_owned(), Json::Num(spec.dirtiness)),
                ("seed".to_owned(), Json::Num(spec.seed as f64)),
                ("threshold".to_owned(), Json::Num(threshold)),
            ]),
        ),
        ("shards".to_owned(), Json::Num(plan.n() as f64)),
        ("threads".to_owned(), Json::Num(threads as f64)),
        ("candidate_sets_identical".to_owned(), Json::Bool(merge_ok)),
        (
            "report_digest".to_owned(),
            Json::Str(format!("{digest:016x}")),
        ),
        ("candidates".to_owned(), Json::Num(total_candidates as f64)),
        ("build_s".to_owned(), Json::Num(build_s)),
        ("query_s".to_owned(), Json::Num(query_s)),
        ("total_s".to_owned(), Json::Num(total_s)),
        (
            "throughput".to_owned(),
            Json::Obj(vec![(
                "rows_per_s".to_owned(),
                Json::Num(spec.rows as f64 / total_s.max(1e-9)),
            )]),
        ),
        (
            "peak_rss_bytes".to_owned(),
            match peak_rss_bytes() {
                Some(b) => Json::Num(b as f64),
                None => Json::Null,
            },
        ),
        (
            "cache".to_owned(),
            Json::Obj(vec![
                ("hits".to_owned(), Json::Num(stats.hits as f64)),
                ("misses".to_owned(), Json::Num(stats.misses as f64)),
                ("store_hits".to_owned(), Json::Num(stats.store_hits as f64)),
                ("evictions".to_owned(), Json::Num(stats.evictions as f64)),
                ("unmaps".to_owned(), Json::Num(stats.unmaps as f64)),
                ("spills".to_owned(), Json::Num(stats.spills as f64)),
                ("resident_bytes".to_owned(), Json::Num(stats.bytes as f64)),
            ]),
        ),
    ]);
    if !merge_ok {
        return Err(io::Error::other(
            "shard merge self-check failed: duplicate stable id across shards",
        ));
    }
    Ok(ShardSweepOutcome { report, bench })
}

/// An order-sensitive digest over the per-query candidate lists — equal
/// digests mean equal reports.
fn candidate_digest(results: &[Vec<u32>]) -> u64 {
    let mut d = 0x5348_4152_445f_4556u64; // "SHARD_EV"
    for (j, list) in results.iter().enumerate() {
        d = mix64(d ^ j as u64);
        for &id in list {
            d = mix64(d ^ u64::from(id));
        }
    }
    d
}

/// Renders the deterministic report (see [`ShardSweepOutcome::report`]).
/// A short per-query head keeps failures diagnosable without bloating
/// the file at large query counts.
fn render_report(
    spec: &StreamSpec,
    threshold: f64,
    matched: usize,
    total_candidates: u64,
    digest: u64,
    results: &[Vec<u32>],
) -> String {
    let mut out = String::new();
    out.push_str("er shard sweep v1\n");
    out.push_str(&format!(
        "workload rows={} queries={} vocab={} zipf={} min_tokens={} max_tokens={} \
         dirtiness={} seed={}\n",
        spec.rows,
        spec.queries,
        spec.vocab,
        spec.zipf,
        spec.min_tokens,
        spec.max_tokens,
        spec.dirtiness,
        spec.seed,
    ));
    out.push_str(&format!("epsilon threshold={threshold} measure=cosine\n"));
    out.push_str(&format!(
        "candidates total={total_candidates} matched_queries={matched}\n"
    ));
    out.push_str(&format!("digest {digest:016x}\n"));
    for (j, list) in results.iter().enumerate().take(10) {
        let head: Vec<String> = list.iter().take(8).map(|id| id.to_string()).collect();
        out.push_str(&format!("q{j} n={} [{}]\n", list.len(), head.join(",")));
    }
    out
}

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable. This is
/// the number the out-of-core acceptance gate caps: it must stay below
/// the total artifact footprint when the residency budget is doing its
/// job.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings(args: &[&str]) -> Settings {
        Settings::parse(args.iter().map(|s| s.to_string()))
    }

    fn sweep(args: &[&str]) -> ShardSweepOutcome {
        run_shard_sweep(&settings(args), false).expect("sweep")
    }

    #[test]
    fn report_is_identical_across_shard_and_thread_counts() {
        let base = sweep(&["--rows", "600", "--queries", "40", "--shards", "1"]);
        for shards in ["3", "8"] {
            for threads in ["1", "8"] {
                let got = sweep(&[
                    "--rows",
                    "600",
                    "--queries",
                    "40",
                    "--shards",
                    shards,
                    "--threads",
                    threads,
                ]);
                assert_eq!(
                    got.report, base.report,
                    "report differs at shards={shards} threads={threads}"
                );
            }
        }
        // The workload produces a non-trivial sweep: some queries match.
        assert!(base.report.contains("matched_queries"));
        let matched: Vec<&str> = base
            .report
            .lines()
            .filter(|l| l.starts_with("candidates "))
            .collect();
        assert_eq!(matched.len(), 1);
        assert!(!matched[0].contains("matched_queries=0 "));
    }

    #[test]
    fn bench_doc_reports_the_varying_metrics() {
        let out = sweep(&["--rows", "400", "--queries", "20", "--shards", "4"]);
        let enc = out.bench.encode();
        let doc = Json::parse(&enc).expect("bench json round-trips");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("shard_sweep"));
        assert_eq!(doc.get("shards").and_then(Json::as_f64), Some(4.0));
        assert_eq!(doc.get("candidate_sets_identical"), Some(&Json::Bool(true)));
        assert!(doc.get("throughput").is_some());
        let cache = doc.get("cache").expect("cache stats");
        assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(4.0));
    }

    #[test]
    fn budgeted_store_run_unmaps_instead_of_rebuilding() {
        let dir = std::env::temp_dir().join(format!("er-shard-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let dir_s = dir.to_str().expect("utf8 dir");
        // Cold pass populates the store; a tiny budget forces every
        // insertion to evict (and spill) the previous shard.
        let args = [
            "--rows",
            "800",
            "--queries",
            "30",
            "--shards",
            "6",
            "--cache-budget",
            "4k",
            "--store-dir",
            dir_s,
        ];
        let cold = sweep(&args);
        // Warm pass: every shard is a store hit, evictions of on-disk
        // entries are unmaps, and the report is unchanged.
        let warm = sweep(&args);
        assert_eq!(warm.report, cold.report);
        let doc = Json::parse(&warm.bench.encode()).expect("json");
        let cache = doc.get("cache").expect("cache");
        assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(0.0));
        assert_eq!(cache.get("store_hits").and_then(Json::as_f64), Some(6.0));
        assert!(
            cache.get("unmaps").and_then(Json::as_f64).unwrap_or(0.0) >= 5.0,
            "budgeted warm pass must unmap cold shards: {cache:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes().expect("VmHWM") > 0);
        }
    }
}
