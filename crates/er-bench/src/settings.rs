//! Command-line settings shared by all experiment binaries.
//!
//! A tiny hand-rolled parser (no CLI dependency): every binary accepts
//!
//! ```text
//! --scale 0.1        entity-count scale of the synthetic datasets
//! --seed 42          base RNG seed
//! --grid pruned      grid resolution: full | pruned | quick
//! --target 0.9       recall target τ of Problem 1
//! --reps 3           repetitions for stochastic methods
//! --dim 128          embedding dimensionality of the dense methods
//! --datasets D1,D4   subset of datasets (default: all ten)
//! --threads 8        worker threads (0 or `auto` = hardware parallelism)
//! ```
//!
//! plus free-standing flags the individual binaries interpret (e.g.
//! `--configs`).

use er::core::optimize::GridResolution;
use er::core::Threads;
use er::datagen::profiles::{profile, DatasetProfile, PROFILES};

/// Parsed harness settings.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Entity-count scale of the synthetic datasets.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Grid resolution.
    pub resolution: GridResolution,
    /// Recall target τ.
    pub target_pc: f64,
    /// Stochastic-method repetitions (the paper uses 10).
    pub reps: usize,
    /// Embedding dimensionality (the paper's fastText uses 300).
    pub dim: usize,
    /// Selected dataset profiles.
    pub datasets: Vec<&'static DatasetProfile>,
    /// Worker threads (`0` = resolve from `ER_THREADS` / hardware).
    pub threads: usize,
    /// Remaining free-standing flags.
    pub flags: Vec<String>,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            scale: 0.1,
            seed: 42,
            resolution: GridResolution::Pruned,
            target_pc: 0.9,
            reps: 3,
            dim: 128,
            datasets: PROFILES.iter().collect(),
            threads: 0,
            flags: Vec::new(),
        }
    }
}

impl Settings {
    /// Parses `std::env::args` (panicking with a usage hint on bad input)
    /// and applies the thread-count setting process-wide.
    pub fn from_args() -> Self {
        let s = Self::parse(std::env::args().skip(1));
        Threads::set(s.threads);
        s
    }

    /// Parses an explicit argument list.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut s = Settings::default();
        let mut it = args.into_iter();
        let value = |flag: &str, it: &mut dyn Iterator<Item = String>| -> String {
            it.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => s.scale = value("--scale", &mut it).parse().expect("scale"),
                "--seed" => s.seed = value("--seed", &mut it).parse().expect("seed"),
                "--target" => s.target_pc = value("--target", &mut it).parse().expect("target"),
                "--reps" => s.reps = value("--reps", &mut it).parse().expect("reps"),
                "--dim" => s.dim = value("--dim", &mut it).parse().expect("dim"),
                "--grid" => {
                    s.resolution = match value("--grid", &mut it).as_str() {
                        "full" => GridResolution::Full,
                        "pruned" => GridResolution::Pruned,
                        "quick" => GridResolution::Quick,
                        other => panic!("unknown grid resolution {other:?}"),
                    }
                }
                "--threads" => {
                    s.threads = Threads::parse_arg(&value("--threads", &mut it))
                        .unwrap_or_else(|e| panic!("--threads: {e}"));
                }
                "--datasets" => {
                    s.datasets = value("--datasets", &mut it)
                        .split(',')
                        .map(|id| {
                            profile(id.trim()).unwrap_or_else(|| panic!("unknown dataset {id:?}"))
                        })
                        .collect();
                }
                other => s.flags.push(other.to_owned()),
            }
        }
        assert!(s.scale > 0.0 && s.scale <= 1.0, "--scale must be in (0, 1]");
        assert!(s.reps >= 1, "--reps must be at least 1");
        s
    }

    /// True if a free-standing flag was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Settings {
        Settings::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_cover_all_datasets() {
        let s = parse(&[]);
        assert_eq!(s.datasets.len(), 10);
        assert_eq!(s.scale, 0.1);
        assert_eq!(s.resolution, GridResolution::Pruned);
    }

    #[test]
    fn parses_every_flag() {
        let s = parse(&[
            "--scale",
            "0.25",
            "--seed",
            "7",
            "--grid",
            "quick",
            "--target",
            "0.85",
            "--reps",
            "5",
            "--dim",
            "64",
            "--datasets",
            "D1,D4",
            "--threads",
            "4",
            "--configs",
        ]);
        assert_eq!(s.scale, 0.25);
        assert_eq!(s.seed, 7);
        assert_eq!(s.resolution, GridResolution::Quick);
        assert_eq!(s.target_pc, 0.85);
        assert_eq!(s.reps, 5);
        assert_eq!(s.dim, 64);
        assert_eq!(
            s.datasets.iter().map(|d| d.id).collect::<Vec<_>>(),
            vec!["D1", "D4"]
        );
        assert_eq!(s.threads, 4);
        assert!(s.has_flag("--configs"));
        assert!(!s.has_flag("--other"));
    }

    #[test]
    fn threads_accepts_auto() {
        assert_eq!(parse(&["--threads", "auto"]).threads, 0);
    }

    #[test]
    #[should_panic(expected = "--threads")]
    fn rejects_bad_thread_count() {
        let _ = parse(&["--threads", "many"]);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn rejects_unknown_dataset() {
        let _ = parse(&["--datasets", "D99"]);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_bad_scale() {
        let _ = parse(&["--scale", "1.5"]);
    }
}
