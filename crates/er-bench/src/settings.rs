//! Command-line settings shared by all experiment binaries.
//!
//! A tiny hand-rolled parser (no CLI dependency): every binary accepts
//!
//! ```text
//! --scale 0.1          entity-count scale of the synthetic datasets
//! --seed 42            base RNG seed
//! --grid pruned        grid resolution: full | pruned | quick
//! --target 0.9         recall target τ of Problem 1
//! --reps 3             repetitions for stochastic methods
//! --dim 128            embedding dimensionality of the dense methods
//! --datasets D1,D4     subset of datasets (default: all ten)
//! --threads 8          worker threads (0 or `auto` = hardware parallelism)
//! --timeout 30         per-grid-point wall-clock deadline, seconds
//! --budget 5000000     per-grid-point candidate-pair budget
//! --cache-budget 512M  artifact-cache memory budget (K/M/G suffixes;
//!                      default: unbounded)
//! --store-dir dir      persistent artifact store: load prepared
//!                      artifacts from `dir` and spill/flush new ones
//!                      into it (reused across processes)
//! --checkpoint p.jsonl append each completed grid point to a checkpoint
//! --resume p.jsonl     skip grid points recorded in the checkpoint
//! --inject-faults SPEC deterministic fault injection, e.g.
//!                      `panic@Da1/SBW;stall@*:p=0.1,ms=50` (see
//!                      `er::core::faults::FaultPlan`)
//! --shards 4           run the out-of-core streamed shard sweep with
//!                      this many deterministic shards
//! --rows 10000000      streamed sweep: indexed-row count
//! --queries 10000      streamed sweep: query-row count
//! --threshold 0.4      streamed sweep: ε-join similarity threshold
//! ```
//!
//! plus free-standing flags the individual binaries interpret (e.g.
//! `--configs`). Bad input is a single-line error: [`Settings::try_parse`]
//! returns it, [`Settings::from_args`] prints it and exits non-zero.

use er::core::guard::Limits;
use er::core::optimize::GridResolution;
use er::core::{FaultPlan, Threads};
use er::datagen::profiles::{profile, DatasetProfile, PROFILES};
use std::time::Duration;

/// Parsed harness settings.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Entity-count scale of the synthetic datasets.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Grid resolution.
    pub resolution: GridResolution,
    /// Recall target τ.
    pub target_pc: f64,
    /// Stochastic-method repetitions (the paper uses 10).
    pub reps: usize,
    /// Embedding dimensionality (the paper's fastText uses 300).
    pub dim: usize,
    /// Selected dataset profiles.
    pub datasets: Vec<&'static DatasetProfile>,
    /// Worker threads (`0` = resolve from `ER_THREADS` / hardware).
    pub threads: usize,
    /// Per-grid-point wall-clock deadline.
    pub timeout: Option<Duration>,
    /// Per-grid-point candidate-pair budget.
    pub max_candidates: Option<usize>,
    /// Artifact-cache memory budget in bytes (`None` = unbounded).
    pub cache_budget: Option<usize>,
    /// Persistent artifact-store directory (`None` = memory-only cache).
    pub store_dir: Option<String>,
    /// Checkpoint file to append completed grid points to.
    pub checkpoint: Option<String>,
    /// Checkpoint file to resume from (implies checkpointing to it).
    pub resume: Option<String>,
    /// Parsed `--inject-faults` plan (installed by the sweep binaries).
    pub faults: Option<FaultPlan>,
    /// Shard count of the out-of-core streamed sweep (`None` = the
    /// profile-based Table VII sweep). Pure execution strategy: results
    /// are byte-identical at any shard count, like thread counts.
    pub shards: Option<u32>,
    /// Indexed-row count of the streamed dataset (shard sweep only).
    pub rows: Option<u32>,
    /// Query-row count of the streamed dataset (shard sweep only).
    pub queries: Option<u32>,
    /// ε-join similarity threshold of the streamed sweep.
    pub threshold: Option<f64>,
    /// Remaining free-standing flags.
    pub flags: Vec<String>,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            scale: 0.1,
            seed: 42,
            resolution: GridResolution::Pruned,
            target_pc: 0.9,
            reps: 3,
            dim: 128,
            datasets: PROFILES.iter().collect(),
            threads: 0,
            timeout: None,
            max_candidates: None,
            cache_budget: None,
            store_dir: None,
            checkpoint: None,
            resume: None,
            faults: None,
            shards: None,
            rows: None,
            queries: None,
            threshold: None,
            flags: Vec::new(),
        }
    }
}

impl Settings {
    /// Parses `std::env::args`, printing a single-line error and exiting
    /// non-zero on bad input, and applies the thread-count setting
    /// process-wide.
    pub fn from_args() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(s) => {
                Threads::set(s.threads);
                s
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut s = Settings::default();
        let mut it = args.into_iter();
        let mut value = |flag: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        fn parsed<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
            v.parse()
                .map_err(|_| format!("{flag}: invalid value {v:?}"))
        }
        // The closure borrows `it`; take each next flag through it too.
        while let Ok(arg) = value("") {
            match arg.as_str() {
                "--scale" => s.scale = parsed("--scale", &value("--scale")?)?,
                "--seed" => s.seed = parsed("--seed", &value("--seed")?)?,
                "--target" => s.target_pc = parsed("--target", &value("--target")?)?,
                "--reps" => s.reps = parsed("--reps", &value("--reps")?)?,
                "--dim" => s.dim = parsed("--dim", &value("--dim")?)?,
                "--grid" => {
                    s.resolution = match value("--grid")?.as_str() {
                        "full" => GridResolution::Full,
                        "pruned" => GridResolution::Pruned,
                        "quick" => GridResolution::Quick,
                        other => return Err(format!("unknown grid resolution {other:?}")),
                    }
                }
                "--threads" => {
                    s.threads = Threads::parse_arg(&value("--threads")?)
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                "--datasets" => {
                    s.datasets = value("--datasets")?
                        .split(',')
                        .map(|id| {
                            profile(id.trim()).ok_or_else(|| format!("unknown dataset {id:?}"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--timeout" => {
                    let secs: f64 = parsed("--timeout", &value("--timeout")?)?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err("--timeout must be a positive number of seconds".to_owned());
                    }
                    s.timeout = Some(Duration::from_secs_f64(secs));
                }
                "--budget" => {
                    let n: usize = parsed("--budget", &value("--budget")?)?;
                    if n == 0 {
                        return Err("--budget must be at least 1 candidate pair".to_owned());
                    }
                    s.max_candidates = Some(n);
                }
                "--cache-budget" => {
                    s.cache_budget = Some(
                        parse_bytes(&value("--cache-budget")?)
                            .map_err(|e| format!("--cache-budget: {e}"))?,
                    );
                }
                "--store-dir" => {
                    let dir = value("--store-dir")?;
                    if dir.is_empty() {
                        return Err("--store-dir requires a directory path".to_owned());
                    }
                    s.store_dir = Some(dir);
                }
                "--checkpoint" => s.checkpoint = Some(value("--checkpoint")?),
                "--resume" => s.resume = Some(value("--resume")?),
                "--inject-faults" => {
                    let spec = value("--inject-faults")?;
                    s.faults =
                        Some(FaultPlan::parse(&spec).map_err(|e| format!("--inject-faults: {e}"))?);
                }
                "--shards" => {
                    let n: u32 = parsed("--shards", &value("--shards")?)?;
                    if n == 0 {
                        return Err("--shards must be at least 1".to_owned());
                    }
                    s.shards = Some(n);
                }
                "--rows" => {
                    let n: u32 = parsed("--rows", &value("--rows")?)?;
                    if n == 0 {
                        return Err("--rows must be at least 1".to_owned());
                    }
                    s.rows = Some(n);
                }
                "--queries" => {
                    let n: u32 = parsed("--queries", &value("--queries")?)?;
                    if n == 0 {
                        return Err("--queries must be at least 1".to_owned());
                    }
                    s.queries = Some(n);
                }
                "--threshold" => {
                    let t: f64 = parsed("--threshold", &value("--threshold")?)?;
                    if !(t > 0.0 && t <= 1.0) {
                        return Err("--threshold must be in (0, 1]".to_owned());
                    }
                    s.threshold = Some(t);
                }
                _ => s.flags.push(arg),
            }
        }
        if !(s.scale > 0.0 && s.scale <= 1.0) {
            return Err("--scale must be in (0, 1]".to_owned());
        }
        if s.reps < 1 {
            return Err("--reps must be at least 1".to_owned());
        }
        Ok(s)
    }

    /// Panicking variant of [`Settings::try_parse`], for tests and
    /// callers that prefer unwinding.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        Self::try_parse(args).unwrap_or_else(|e| panic!("{e}"))
    }

    /// True if a free-standing flag was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// Per-grid-point guard limits: an armed deadline/budget from the
    /// flags, with panic capture whenever any fault-isolation feature
    /// (timeout, budget, fault injection) is requested. All-`None`
    /// settings yield disabled limits — sweeps behave exactly as without
    /// the guard layer.
    pub fn limits(&self) -> Limits {
        let mut limits = Limits::none();
        limits.timeout = self.timeout;
        limits.max_candidates = self.max_candidates;
        limits.catch_panics =
            self.timeout.is_some() || self.max_candidates.is_some() || self.faults.is_some();
        limits
    }

    /// The checkpoint path in effect (`--resume` implies appending new
    /// grid points to the same file).
    pub fn checkpoint_path(&self) -> Option<&str> {
        self.resume.as_deref().or(self.checkpoint.as_deref())
    }

    /// A stable fingerprint of every setting that determines sweep
    /// *results* (not execution strategy: thread counts, shard counts,
    /// guard limits and checkpoint paths are excluded — a resumed run may
    /// change them, and sharded runs are byte-identical to monolithic
    /// ones). The streamed-sweep workload flags (`--rows`, `--queries`,
    /// `--threshold`) *do* change results, so they append when set —
    /// leaving every pre-existing fingerprint unchanged.
    pub fn fingerprint(&self) -> String {
        let datasets: Vec<&str> = self.datasets.iter().map(|d| d.id).collect();
        let mut fp = format!(
            "scale={};seed={};grid={:?};target={};reps={};dim={};datasets={}",
            self.scale,
            self.seed,
            self.resolution,
            self.target_pc,
            self.reps,
            self.dim,
            datasets.join(",")
        );
        if let Some(rows) = self.rows {
            fp.push_str(&format!(";rows={rows}"));
        }
        if let Some(queries) = self.queries {
            fp.push_str(&format!(";queries={queries}"));
        }
        if let Some(threshold) = self.threshold {
            fp.push_str(&format!(";threshold={threshold}"));
        }
        fp
    }
}

/// Parses a byte size with an optional binary K/M/G suffix (`512M`,
/// `2g`, `65536`).
fn parse_bytes(v: &str) -> Result<usize, String> {
    let v = v.trim();
    let (digits, unit) = match v.chars().last() {
        Some('k' | 'K') => (&v[..v.len() - 1], 1usize << 10),
        Some('m' | 'M') => (&v[..v.len() - 1], 1usize << 20),
        Some('g' | 'G') => (&v[..v.len() - 1], 1usize << 30),
        _ => (v, 1),
    };
    let n: usize = digits
        .parse()
        .map_err(|_| format!("invalid byte size {v:?}"))?;
    if n == 0 {
        return Err("byte size must be positive".to_owned());
    }
    n.checked_mul(unit)
        .ok_or_else(|| format!("byte size {v:?} overflows"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Settings, String> {
        Settings::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_cover_all_datasets() {
        let s = parse(&[]).expect("defaults");
        assert_eq!(s.datasets.len(), 10);
        assert_eq!(s.scale, 0.1);
        assert_eq!(s.resolution, GridResolution::Pruned);
        assert!(!s.limits().enabled());
        assert!(s.checkpoint_path().is_none());
    }

    #[test]
    fn parses_every_flag() {
        let s = parse(&[
            "--scale",
            "0.25",
            "--seed",
            "7",
            "--grid",
            "quick",
            "--target",
            "0.85",
            "--reps",
            "5",
            "--dim",
            "64",
            "--datasets",
            "D1,D4",
            "--threads",
            "4",
            "--timeout",
            "2.5",
            "--budget",
            "1000000",
            "--cache-budget",
            "512M",
            "--store-dir",
            "artifacts",
            "--checkpoint",
            "ck.jsonl",
            "--inject-faults",
            "panic@Da1/SBW",
            "--shards",
            "4",
            "--rows",
            "50000",
            "--queries",
            "500",
            "--threshold",
            "0.4",
            "--configs",
        ])
        .expect("parse");
        assert_eq!(s.scale, 0.25);
        assert_eq!(s.seed, 7);
        assert_eq!(s.resolution, GridResolution::Quick);
        assert_eq!(s.target_pc, 0.85);
        assert_eq!(s.reps, 5);
        assert_eq!(s.dim, 64);
        assert_eq!(
            s.datasets.iter().map(|d| d.id).collect::<Vec<_>>(),
            vec!["D1", "D4"]
        );
        assert_eq!(s.threads, 4);
        assert_eq!(s.timeout, Some(Duration::from_millis(2500)));
        assert_eq!(s.max_candidates, Some(1_000_000));
        assert_eq!(s.cache_budget, Some(512 << 20));
        assert_eq!(s.store_dir.as_deref(), Some("artifacts"));
        assert_eq!(s.checkpoint_path(), Some("ck.jsonl"));
        assert!(s.faults.is_some());
        assert_eq!(s.shards, Some(4));
        assert_eq!(s.rows, Some(50_000));
        assert_eq!(s.queries, Some(500));
        assert_eq!(s.threshold, Some(0.4));
        assert!(s.has_flag("--configs"));
        assert!(!s.has_flag("--other"));
        let limits = s.limits();
        assert!(limits.enabled() && limits.catch_panics);
    }

    #[test]
    fn threads_accepts_auto() {
        assert_eq!(parse(&["--threads", "auto"]).expect("auto").threads, 0);
    }

    #[test]
    fn bad_input_yields_single_line_errors() {
        for (args, needle) in [
            (&["--threads", "many"][..], "--threads"),
            (&["--datasets", "D99"][..], "unknown dataset"),
            (&["--scale", "1.5"][..], "--scale"),
            (&["--scale", "zero"][..], "--scale"),
            (&["--timeout", "-1"][..], "--timeout"),
            (&["--budget", "0"][..], "--budget"),
            (&["--cache-budget", "0"][..], "--cache-budget"),
            (&["--cache-budget", "12Q"][..], "--cache-budget"),
            (&["--store-dir", ""][..], "--store-dir"),
            (&["--inject-faults", "??"][..], "--inject-faults"),
            (&["--shards", "0"][..], "--shards"),
            (&["--shards", "three"][..], "--shards"),
            (&["--rows", "0"][..], "--rows"),
            (&["--queries", "0"][..], "--queries"),
            (&["--threshold", "1.5"][..], "--threshold"),
            (&["--threshold", "0"][..], "--threshold"),
            (&["--seed"][..], "requires a value"),
        ] {
            let err = parse(args).expect_err(needle);
            assert!(err.contains(needle), "{args:?}: {err}");
            assert!(!err.contains('\n'), "single line: {err:?}");
        }
    }

    #[test]
    fn cache_budget_accepts_binary_suffixes() {
        for (spec, bytes) in [
            ("65536", 65536),
            ("4k", 4 << 10),
            ("32M", 32 << 20),
            ("2G", 2 << 30),
        ] {
            let s = parse(&["--cache-budget", spec]).expect(spec);
            assert_eq!(s.cache_budget, Some(bytes), "{spec}");
        }
    }

    #[test]
    fn resume_implies_checkpointing_to_the_same_file() {
        let s = parse(&["--resume", "sweep.jsonl"]).expect("resume");
        assert_eq!(s.checkpoint_path(), Some("sweep.jsonl"));
    }

    #[test]
    fn fingerprint_ignores_execution_strategy() {
        let a = parse(&[]).expect("a");
        let b = parse(&[
            "--threads",
            "8",
            "--timeout",
            "5",
            "--cache-budget",
            "64M",
            "--store-dir",
            "artifacts",
            "--resume",
            "x.jsonl",
        ])
        .expect("b");
        let c = parse(&["--seed", "43"]).expect("c");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Shard count is execution strategy; the streamed-workload shape
        // is not.
        let sharded = parse(&["--shards", "8"]).expect("sharded");
        assert_eq!(a.fingerprint(), sharded.fingerprint());
        let rows = parse(&["--rows", "1000"]).expect("rows");
        assert_ne!(a.fingerprint(), rows.fingerprint());
        assert_ne!(
            parse(&["--threshold", "0.3"]).expect("t").fingerprint(),
            parse(&["--threshold", "0.5"]).expect("t").fingerprint()
        );
    }
}
