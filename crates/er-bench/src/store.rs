//! The workspace codec registry for the persistent artifact store.
//!
//! Every prepare-stage artifact family the Table VII sweep caches has one
//! codec here; opening a store through this module makes `--store-dir`
//! cover all 17 sweep methods (the DeepBlocker runs share the dense
//! flat-index codec). The honest baselines that bypass the artifact cache
//! (DkNN) never reach the store by construction.

use er::blocking::BlockingCodec;
use er::dense::{
    CrossPolytopeCodec, DenseFlatCodec, DenseFlatQCodec, HyperplaneCodec, MinHashCodec,
    PartitionedCodec,
};
use er::sparse::{SparseCodec, SparseManifestCodec, SparsePackedCodec, SparseSegmentCodec};
use er::store::{ArtifactCodec, ArtifactStore};
use std::io;
use std::path::Path;

/// One codec per artifact family (plus the decode-only legacy layouts),
/// in codec-id order.
pub fn all_codecs() -> Vec<Box<dyn ArtifactCodec>> {
    vec![
        Box::new(SparseCodec),
        Box::new(BlockingCodec),
        Box::new(DenseFlatCodec),
        Box::new(MinHashCodec),
        Box::new(HyperplaneCodec),
        Box::new(CrossPolytopeCodec),
        Box::new(PartitionedCodec),
        Box::new(SparsePackedCodec),
        Box::new(DenseFlatQCodec),
        Box::new(SparseSegmentCodec),
        Box::new(SparseManifestCodec),
    ]
}

/// Opens (creating if needed) `dir` with the full codec registry.
pub fn open_store(dir: &Path) -> io::Result<ArtifactStore> {
    ArtifactStore::open(dir, all_codecs()).map_err(io::Error::other)
}

/// Opens an existing `dir` read-only with the full codec registry — the
/// serving path: the daemon must never create or modify store files, and a
/// missing directory is a startup error rather than an empty store.
pub fn open_store_read_only(dir: &Path) -> io::Result<ArtifactStore> {
    ArtifactStore::open_read_only(dir, all_codecs()).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_ids_are_unique_and_stable() {
        let codecs = all_codecs();
        let ids: Vec<u32> = codecs.iter().map(|c| c.id()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn open_creates_the_directory() {
        let dir = std::env::temp_dir().join(format!("er_bench_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = open_store(&dir).expect("open");
        assert!(store.dir().is_dir());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
