//! Configuration optimization per method (Problem 1) and the 16-method
//! sweep behind Table VII.
//!
//! Each `run_*` function fine-tunes one technique on one dataset view with
//! respect to the recall target, then re-executes the winning configuration
//! to obtain honest run-time phase breakdowns. Stochastic methods
//! (MinHash/HP/CP-LSH, DeepBlocker) are additionally averaged over
//! `reps` seeds, as the paper averages 10 repetitions.

use er::blocking::{comparison_propagation, BlockingWorkflow, ComparisonCleaning, WorkflowKind};
use er::core::artifacts::{ArtifactCache, ArtifactKey};
use er::core::dataset::GroundTruth;
use er::core::filter::Prepared;
use er::core::guard::{self, FailReason, Limits, RunOutcome};
use er::core::metrics::{evaluate, Effectiveness};
use er::core::optimize::{Evaluated, Failure, GridResolution, OptimizationOutcome, Optimizer};
use er::core::parallel::{self, Threads};
use er::core::schema::TextView;
use er::core::timing::PhaseBreakdown;
use er::core::{faults, Filter};
use er::dense::{
    grid as dense_grid, CrossPolytopeLsh, DeepBlocker, DenseIndexArtifact, EmbeddingConfig,
    FlatKnn, HyperplaneLsh, MinHashLsh, PartitionedArtifact, PartitionedKnn,
};
use er::sparse::{
    dknn_baseline, epsilon_grid, knn_grid, EpsilonJoin, KnnJoin, ScanCountScratch,
    TokenSetsArtifact,
};
use std::time::Duration;

/// Shared per-(dataset, schema-setting) evaluation context.
pub struct Context<'a> {
    /// The extracted per-entity texts.
    pub view: &'a TextView,
    /// The duplicate pairs.
    pub gt: &'a GroundTruth,
    /// The Problem 1 optimizer (recall target + budget + guard limits).
    pub optimizer: Optimizer,
    /// Grid resolution.
    pub resolution: GridResolution,
    /// Embedding configuration for the dense methods.
    pub embedding: EmbeddingConfig,
    /// Base seed.
    pub seed: u64,
    /// Stochastic-method repetitions.
    pub reps: usize,
    /// Column label (e.g. `"Da2"`); keys fault-injection sites and
    /// checkpoint records for this (dataset, schema-setting).
    pub label: String,
    /// The shared prepare-stage artifact cache: grid points with equal
    /// representation keys on this dataset share one preparation.
    pub cache: &'a ArtifactCache,
    /// The dataset fingerprint half of every artifact key.
    pub dataset_fp: u64,
}

impl<'a> Context<'a> {
    /// A context with default sweep parameters; callers override fields
    /// via struct update syntax (`Context { seed: 7, ..Context::new(..) }`).
    pub fn new(view: &'a TextView, gt: &'a GroundTruth, cache: &'a ArtifactCache) -> Context<'a> {
        Context {
            view,
            gt,
            optimizer: Optimizer::default(),
            resolution: GridResolution::Quick,
            embedding: EmbeddingConfig::default(),
            seed: 0,
            reps: 1,
            label: String::new(),
            cache,
            dataset_fp: view.fingerprint(),
        }
    }

    /// The per-grid-point guard limits of the sweep.
    pub fn limits(&self) -> Limits {
        self.optimizer.limits
    }

    fn eval(&self, filter: &dyn Filter) -> (Effectiveness, PhaseBreakdown) {
        let out = er::core::filter::run_hooked(filter, self.view);
        (evaluate(&out.candidates, self.gt), out.breakdown)
    }

    /// Query-stage evaluation against a shared prepare artifact.
    fn eval_query(
        &self,
        filter: &dyn Filter,
        prepared: &Prepared,
    ) -> (Effectiveness, PhaseBreakdown) {
        let out = filter.query(self.view, prepared);
        (evaluate(&out.candidates, self.gt), out.breakdown)
    }

    /// Runs a filter's prepare stage, firing the `prepare/<repr>`
    /// fault-injection site first so sweeps can be tested against
    /// prepare-time crashes.
    fn prepare(&self, filter: &dyn Filter) -> Prepared {
        if faults::enabled() {
            faults::fire(&format!("prepare/{}", filter.repr_key()));
        }
        filter.prepare(self.view)
    }

    /// Fetches the prepare-stage artifact for `filter` through the shared
    /// cache. A miss runs the prepare under the sweep's guard limits; a
    /// failing prepare poisons the entry and returns the structured
    /// failure, and a poisoned hit replays it without re-running anything.
    fn prepared_for(&self, filter: &dyn Filter) -> Result<Prepared, (FailReason, Duration)> {
        let repr = filter.repr_key();
        let key = ArtifactKey::new(self.dataset_fp, repr.clone());
        match self.cache.lookup(&key) {
            Some(Ok(prepared)) => Ok(prepared),
            Some(Err(reason)) => Err((FailReason::Poisoned { repr, reason }, Duration::ZERO)),
            None => match guard::run_guarded(self.limits(), || self.prepare(filter)) {
                RunOutcome::Ok(prepared) => {
                    self.cache.insert(key, prepared.clone());
                    Ok(prepared)
                }
                RunOutcome::Failed { reason, elapsed } => {
                    self.cache.poison(key, reason.to_string());
                    Err((reason, elapsed))
                }
            },
        }
    }
}

/// Records a whole configuration group as failed after its shared prepare
/// failed: the first member carries the original reason (and the elapsed
/// time), every other member a zero-cost [`FailReason::Poisoned`] row. A
/// group failing on a poisoned cache hit replays the same poisoned reason
/// for every member.
fn fail_group<C>(
    outcome: &mut OptimizationOutcome<C>,
    configs: impl IntoIterator<Item = C>,
    repr: &str,
    reason: FailReason,
    elapsed: Duration,
) {
    let poisoned = match &reason {
        FailReason::Poisoned { .. } => reason.clone(),
        fresh => FailReason::Poisoned {
            repr: repr.to_owned(),
            reason: fresh.to_string(),
        },
    };
    let mut first = Some((reason, elapsed));
    for config in configs {
        let (reason, elapsed) = first
            .take()
            .unwrap_or_else(|| (poisoned.clone(), Duration::ZERO));
        outcome.failures.push(Failure {
            config,
            reason,
            elapsed,
        });
    }
}

/// The optimized result of one method on one dataset view.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Method name as printed in Table VII.
    pub method: String,
    /// Pair completeness of the reported configuration.
    pub pc: f64,
    /// Pairs quality.
    pub pq: f64,
    /// Candidate count `|C|` (averaged for stochastic methods).
    pub candidates: f64,
    /// Overall run-time of the reported configuration.
    pub runtime: Duration,
    /// Phase breakdown of the reported configuration.
    pub breakdown: PhaseBreakdown,
    /// True if the recall target was met.
    pub feasible: bool,
    /// One-line description of the winning configuration.
    pub config: String,
    /// Number of configurations evaluated during optimization.
    pub evaluated: usize,
    /// `Some(reason)` if this grid point failed (panic, timeout or budget)
    /// instead of producing a measurement; the measures are then zero and
    /// `runtime` holds the elapsed time until the failure.
    pub error: Option<String>,
}

impl MethodOutcome {
    /// A structured failure row: the grid point was attempted but did not
    /// produce a measurement.
    pub fn failed(method: &str, reason: &FailReason, elapsed: Duration) -> MethodOutcome {
        MethodOutcome {
            method: method.to_owned(),
            pc: 0.0,
            pq: 0.0,
            candidates: 0.0,
            runtime: elapsed,
            breakdown: PhaseBreakdown::new(),
            feasible: false,
            config: "-".to_owned(),
            evaluated: 0,
            error: Some(reason.to_string()),
        }
    }

    /// True if this row carries a measurement (no failure recorded).
    pub fn is_measured(&self) -> bool {
        self.error.is_none()
    }
}

/// Folds a sweep whose configurations *all* failed under guards into one
/// failure row carrying the first failure's reason and the total elapsed
/// time spent attempting.
fn all_failed<C: Clone>(method: &str, opt: &OptimizationOutcome<C>) -> MethodOutcome {
    let elapsed = opt.failures.iter().map(|f| f.elapsed).sum();
    match opt.failures.first() {
        Some(f) => MethodOutcome::failed(method, &f.reason, elapsed),
        None => MethodOutcome::failed(
            method,
            &FailReason::Panicked("no configuration evaluated".to_owned()),
            elapsed,
        ),
    }
}

fn outcome_from<C: Clone>(
    method: &str,
    opt: &OptimizationOutcome<C>,
    describe: impl Fn(&C) -> String,
    rerun: impl Fn(&C) -> (Effectiveness, PhaseBreakdown),
) -> MethodOutcome {
    let Some(best) = opt.best() else {
        return all_failed(method, opt);
    };
    let (eff, breakdown) = rerun(&best.config);
    MethodOutcome {
        method: method.to_owned(),
        pc: eff.pc,
        pq: eff.pq,
        candidates: eff.candidates as f64,
        runtime: breakdown.total(),
        breakdown,
        feasible: opt.is_feasible(),
        config: describe(&best.config),
        evaluated: opt.evaluated,
        error: None,
    }
}

/// Evaluates a fixed (baseline) configuration.
fn fixed_outcome(ctx: &Context<'_>, method: &str, f: &dyn Filter, config: String) -> MethodOutcome {
    let (eff, breakdown) = ctx.eval(f);
    MethodOutcome {
        method: method.to_owned(),
        pc: eff.pc,
        pq: eff.pq,
        candidates: eff.candidates as f64,
        runtime: breakdown.total(),
        breakdown,
        feasible: eff.pc >= ctx.optimizer.target.0,
        config,
        evaluated: 1,
        error: None,
    }
}

// ---------------------------------------------------------------------------
// Blocking workflows
// ---------------------------------------------------------------------------

/// Fine-tunes one blocking workflow family (SBW/QBW/EQBW/SABW/ESABW).
///
/// Raw block building — the representation-dependent step — goes through
/// the shared artifact cache (keyed by the builder alone, so every purge /
/// filter / cleaning combination over one builder shares one collection,
/// as does a later warm sweep). The cleaned collection, the blocking graph
/// and the weighted edges remain local caches matching the grid's loop
/// nesting, exactly as before.
pub fn run_blocking_family(ctx: &Context<'_>, kind: WorkflowKind) -> MethodOutcome {
    use er::blocking::{
        block_filtering, block_purging, BlockCollection, BlockingGraph, WeightingScheme,
    };
    let grid = kind.grid(ctx.resolution);
    let mut outcome: OptimizationOutcome<BlockingWorkflow> = OptimizationOutcome::default();
    // Raw blocks per builder (via the artifact cache, with prepare-failure
    // poisoning); cleaned blocks per (builder, purge, ratio); the blocking
    // graph per cleaned blocks; weighted edges per (graph, scheme).
    let mut raw: Option<(String, Result<Prepared, String>)> = None;
    let mut cleaned: Option<(BlockingWorkflow, Option<BlockCollection>)> = None;
    let mut graph_cache: Option<BlockingGraph> = None;
    let mut edges_cache: Option<(WeightingScheme, Vec<er::blocking::metablocking::Edge>)> = None;
    for wf in grid {
        if outcome.attempted() >= ctx.optimizer.max_evaluations {
            break;
        }
        // Cooperative deadline check once per configuration: an armed
        // method-level guard can time the sweep out between grid points.
        guard::checkpoint();
        let repr = wf.repr_key();
        if !raw.as_ref().is_some_and(|(r, _)| r == &repr) {
            let fetched = match ctx.prepared_for(&wf) {
                Ok(prepared) => Ok(prepared),
                Err((reason, elapsed)) => {
                    let msg = reason.to_string();
                    outcome.failures.push(Failure {
                        config: wf.clone(),
                        reason,
                        elapsed,
                    });
                    Err(msg)
                }
            };
            let failed = fetched.is_err();
            raw = Some((repr.clone(), fetched));
            cleaned = None;
            graph_cache = None;
            edges_cache = None;
            if failed {
                continue; // this wf's failure row was just pushed
            }
        }
        let (_, state) = raw.as_ref().expect("raw cache just refreshed");
        let prepared = match state {
            Ok(prepared) => prepared,
            Err(msg) => {
                outcome.failures.push(Failure {
                    config: wf.clone(),
                    reason: FailReason::Poisoned {
                        repr: repr.clone(),
                        reason: msg.clone(),
                    },
                    elapsed: Duration::ZERO,
                });
                continue;
            }
        };
        let raw_blocks = prepared.downcast::<BlockCollection>();
        let prefix_matches = cleaned.as_ref().is_some_and(|(prev, _)| {
            prev.builder == wf.builder
                && prev.purge == wf.purge
                && prev.filter_ratio == wf.filter_ratio
        });
        if !prefix_matches {
            let mut b: Option<BlockCollection> = None;
            if wf.purge {
                b = Some(block_purging(raw_blocks));
            }
            if let Some(r) = wf.filter_ratio {
                if r < 1.0 {
                    b = Some(block_filtering(b.as_ref().unwrap_or(raw_blocks), r));
                }
            }
            cleaned = Some((wf.clone(), b));
            graph_cache = None;
            edges_cache = None;
        }
        let (_, cleaned_blocks) = cleaned.as_ref().expect("cache just refreshed");
        let blocks = cleaned_blocks.as_ref().unwrap_or(raw_blocks);
        let candidates = match &wf.cleaning {
            ComparisonCleaning::Propagation => comparison_propagation(blocks),
            ComparisonCleaning::Meta(mb) => {
                let graph = graph_cache.get_or_insert_with(|| BlockingGraph::build(blocks));
                let reuse = edges_cache
                    .as_ref()
                    .is_some_and(|(scheme, _)| *scheme == mb.scheme);
                if !reuse {
                    edges_cache = Some((mb.scheme, graph.weighted_edges(mb.scheme)));
                }
                let (_, edges) = edges_cache.as_ref().expect("edges just refreshed");
                graph.prune(edges, mb.pruning)
            }
        };
        let eff = evaluate(&candidates, ctx.gt);
        outcome.consider(
            Evaluated {
                config: wf,
                eff,
                breakdown: PhaseBreakdown::new(),
            },
            ctx.optimizer.target.0,
        );
    }
    outcome_from(kind.acronym(), &outcome, BlockingWorkflow::describe, |wf| {
        ctx.eval(wf)
    })
}

/// The Parameter-free Blocking Workflow baseline.
pub fn run_pbw(ctx: &Context<'_>) -> MethodOutcome {
    let wf = BlockingWorkflow::pbw();
    fixed_outcome(ctx, "PBW", &wf, wf.describe())
}

/// The Default Blocking Workflow baseline.
pub fn run_dbw(ctx: &Context<'_>) -> MethodOutcome {
    let wf = BlockingWorkflow::dbw();
    fixed_outcome(ctx, "DBW", &wf, wf.describe())
}

// ---------------------------------------------------------------------------
// Sparse NN methods
// ---------------------------------------------------------------------------

/// Similarity histogram bins used for the ε-Join threshold sweep.
pub const SIM_BINS: usize = 1000;

/// Fine-tunes the ε-Join.
///
/// For each `(CL, SM, RM)` combination one ScanCount pass histograms every
/// overlapping pair's similarity into [`SIM_BINS`] bins split by
/// duplicate/non-duplicate; each threshold of the descending sweep is then
/// a suffix sum — the whole sweep costs one join instead of one per
/// threshold.
pub fn run_epsilon(ctx: &Context<'_>) -> MethodOutcome {
    let groups = epsilon_grid(ctx.resolution);
    let mut outcome: OptimizationOutcome<EpsilonJoin> = OptimizationOutcome::default();
    let total_dups = ctx.gt.len().max(1) as f64;

    for group in groups {
        guard::checkpoint();
        let probe = *group.first().expect("non-empty threshold group");
        // Tokenization + the ScanCount index come from the shared artifact
        // cache: every similarity measure (and the kNN-Join/top-k sweeps)
        // over the same (CL, RM) reuses one preparation.
        let prepared = match ctx.prepared_for(&probe) {
            Ok(prepared) => prepared,
            Err((reason, elapsed)) => {
                fail_group(&mut outcome, group, &probe.repr_key(), reason, elapsed);
                continue;
            }
        };
        let art = prepared.downcast::<TokenSetsArtifact>();
        let index = &art.index;

        // Histogram pass: each worker chunk accumulates its own partial
        // histogram; the `u64` partials merge in chunk order (addition is
        // exact, so the result is thread-count-invariant either way).
        let chunk = parallel::query_chunk_len(art.query_sets.len());
        let partials = parallel::par_map_chunks_with(
            Threads::get(),
            art.query_sets.set_sizes(),
            chunk,
            |offset, part| {
                let mut scratch = ScanCountScratch::default();
                let mut hits: Vec<(u32, u32)> = Vec::new();
                let mut totals = vec![0u64; SIM_BINS + 1];
                let mut dups = vec![0u64; SIM_BINS + 1];
                for (local, &size) in part.iter().enumerate() {
                    let j = (offset + local) as u32;
                    let qlen = size as usize;
                    index.query_row_with(&mut scratch, &art.query_sets, j as usize, &mut hits);
                    for &(i, overlap) in &hits {
                        let sim = probe
                            .measure
                            .compute(overlap as usize, index.set_size(i), qlen);
                        let bin = ((sim * SIM_BINS as f64).floor() as usize).min(SIM_BINS);
                        totals[bin] += 1;
                        if ctx.gt.contains(er::core::Pair::new(i, j)) {
                            dups[bin] += 1;
                        }
                    }
                }
                (totals, dups)
            },
        );
        let mut totals = vec![0u64; SIM_BINS + 1];
        let mut dups = vec![0u64; SIM_BINS + 1];
        for (t, d) in partials {
            for b in 0..=SIM_BINS {
                totals[b] += t[b];
                dups[b] += d[b];
            }
        }
        // Suffix sums: candidates/duplicates at similarity >= bin boundary.
        for b in (0..SIM_BINS).rev() {
            totals[b] += totals[b + 1];
            dups[b] += dups[b + 1];
        }

        for cfg in &group {
            let bin = ((cfg.threshold * SIM_BINS as f64) - 1e-9).ceil().max(0.0) as usize;
            let bin = bin.min(SIM_BINS);
            let candidates = totals[bin] as usize;
            let found = dups[bin] as usize;
            let eff = Effectiveness {
                pc: found as f64 / total_dups,
                pq: if candidates == 0 {
                    0.0
                } else {
                    found as f64 / candidates as f64
                },
                candidates,
                duplicates_found: found,
            };
            let feasible = eff.pc >= ctx.optimizer.target.0;
            outcome.consider(
                Evaluated {
                    config: *cfg,
                    eff,
                    breakdown: PhaseBreakdown::new(),
                },
                ctx.optimizer.target.0,
            );
            if feasible {
                break; // thresholds descend: later ones only lower PQ
            }
        }
    }
    outcome_from("e-Join", &outcome, EpsilonJoin::describe, |cfg| {
        ctx.eval(cfg)
    })
}

/// Largest K swept for kNN-style methods at a resolution.
fn max_k(res: GridResolution) -> usize {
    *dense_grid::k_sweep(res).last().expect("non-empty sweep")
}

/// Fine-tunes the kNN-Join.
///
/// Rankings per `(CL, SM, RM, RVS)` combination are computed once over the
/// cached token-set artifact; the ascending K sweep reads prefixes
/// (distinct-similarity semantics).
pub fn run_knn(ctx: &Context<'_>) -> MethodOutcome {
    let groups = knn_grid(ctx.resolution);
    let mut outcome: OptimizationOutcome<KnnJoin> = OptimizationOutcome::default();
    for group in groups {
        guard::checkpoint();
        let probe = *group.first().expect("non-empty K group");
        let k_cap = group.last().expect("non-empty").k;
        let prepared = match ctx.prepared_for(&probe) {
            Ok(prepared) => prepared,
            Err((reason, elapsed)) => {
                fail_group(&mut outcome, group, &probe.repr_key(), reason, elapsed);
                continue;
            }
        };
        let rankings = probe.rankings_from(
            prepared.downcast::<TokenSetsArtifact>(),
            (k_cap * 2).max(k_cap + 16),
        );
        for cfg in &group {
            let candidates = rankings.candidates_top_k_distinct(cfg.k);
            let eff = evaluate(&candidates, ctx.gt);
            let feasible = eff.pc >= ctx.optimizer.target.0;
            outcome.consider(
                Evaluated {
                    config: *cfg,
                    eff,
                    breakdown: PhaseBreakdown::new(),
                },
                ctx.optimizer.target.0,
            );
            if feasible {
                break; // K ascends: later Ks only lower PQ
            }
        }
    }
    outcome_from("kNN-Join", &outcome, KnnJoin::describe, |cfg| ctx.eval(cfg))
}

/// The Default kNN-Join baseline.
pub fn run_dknn(ctx: &Context<'_>) -> MethodOutcome {
    let cfg = dknn_baseline(ctx.view.e1.len(), ctx.view.e2.len());
    fixed_outcome(ctx, "DkNN", &cfg, cfg.describe())
}

// ---------------------------------------------------------------------------
// Dense NN methods
// ---------------------------------------------------------------------------

/// Averages a stochastic method's winning configuration over `reps` seeds.
fn average_stochastic<C: Clone>(
    ctx: &Context<'_>,
    method: &str,
    opt: &OptimizationOutcome<C>,
    describe: impl Fn(&C) -> String,
    with_seed: impl Fn(&C, u64) -> Box<dyn Filter>,
) -> MethodOutcome {
    let Some(best) = opt.best() else {
        return all_failed(method, opt);
    };
    let mut pc = 0.0;
    let mut pq = 0.0;
    let mut candidates = 0.0;
    let mut runtime = Duration::ZERO;
    let mut breakdown = PhaseBreakdown::new();
    for rep in 0..ctx.reps {
        let filter = with_seed(&best.config, ctx.seed.wrapping_add(rep as u64));
        let (eff, bd) = ctx.eval(filter.as_ref());
        pc += eff.pc;
        pq += eff.pq;
        candidates += eff.candidates as f64;
        runtime += bd.total();
        breakdown.merge(&bd);
    }
    let n = ctx.reps as f64;
    MethodOutcome {
        method: method.to_owned(),
        pc: pc / n,
        pq: pq / n,
        candidates: candidates / n,
        runtime: runtime / ctx.reps as u32,
        breakdown,
        feasible: pc / n >= ctx.optimizer.target.0,
        config: describe(&best.config),
        evaluated: opt.evaluated,
        error: None,
    }
}

/// Fine-tunes MinHash LSH (grouped grid over `CL × bands/rows × k`). The
/// MinHash representation key spans every parameter, so the grouped sweep
/// degenerates to one prepare per grid point — which still makes a warm
/// re-sweep over the same dataset prepare-free.
pub fn run_minhash(ctx: &Context<'_>) -> MethodOutcome {
    let grid = dense_grid::minhash_grid(ctx.resolution, ctx.seed);
    let opt = ctx.optimizer.grid_grouped(
        ctx.cache,
        ctx.dataset_fp,
        grid,
        |cfg: &MinHashLsh| cfg.repr_key(),
        |cfg| ctx.prepare(cfg),
        |cfg, prepared| ctx.eval_query(cfg, prepared),
    );
    average_stochastic(ctx, "MH-LSH", &opt, MinHashLsh::describe, |cfg, seed| {
        Box::new(MinHashLsh { seed, ..*cfg })
    })
}

/// Fine-tunes Hyperplane LSH (probe sweep ascending per combination). The
/// representation key excludes the probe count, so the whole ascending
/// probe sweep shares one set of hash tables.
pub fn run_hyperplane(ctx: &Context<'_>) -> MethodOutcome {
    let groups = dense_grid::hyperplane_grid(ctx.resolution, ctx.embedding, ctx.seed);
    let mut outcome: OptimizationOutcome<HyperplaneLsh> = OptimizationOutcome::default();
    for group in groups {
        guard::checkpoint();
        let probe = *group.first().expect("non-empty probe group");
        let prepared = match ctx.prepared_for(&probe) {
            Ok(prepared) => prepared,
            Err((reason, elapsed)) => {
                fail_group(&mut outcome, group, &probe.repr_key(), reason, elapsed);
                continue;
            }
        };
        let sub = ctx
            .optimizer
            .first_feasible_par(group, |cfg| ctx.eval_query(cfg, &prepared));
        merge_outcomes(&mut outcome, sub, ctx.optimizer.target.0);
    }
    average_stochastic(
        ctx,
        "HP-LSH",
        &outcome,
        HyperplaneLsh::describe,
        |cfg, seed| Box::new(HyperplaneLsh { seed, ..*cfg }),
    )
}

/// Fine-tunes Cross-Polytope LSH.
pub fn run_crosspolytope(ctx: &Context<'_>) -> MethodOutcome {
    let groups = dense_grid::crosspolytope_grid(ctx.resolution, ctx.embedding, ctx.seed);
    let mut outcome: OptimizationOutcome<CrossPolytopeLsh> = OptimizationOutcome::default();
    for group in groups {
        guard::checkpoint();
        let probe = *group.first().expect("non-empty probe group");
        let prepared = match ctx.prepared_for(&probe) {
            Ok(prepared) => prepared,
            Err((reason, elapsed)) => {
                fail_group(&mut outcome, group, &probe.repr_key(), reason, elapsed);
                continue;
            }
        };
        let sub = ctx
            .optimizer
            .first_feasible_par(group, |cfg| ctx.eval_query(cfg, &prepared));
        merge_outcomes(&mut outcome, sub, ctx.optimizer.target.0);
    }
    average_stochastic(
        ctx,
        "CP-LSH",
        &outcome,
        CrossPolytopeLsh::describe,
        |cfg, seed| Box::new(CrossPolytopeLsh { seed, ..*cfg }),
    )
}

fn merge_outcomes<C: Clone>(
    into: &mut OptimizationOutcome<C>,
    from: OptimizationOutcome<C>,
    target: f64,
) {
    let before = into.evaluated;
    for cand in [from.best_feasible, from.best_fallback]
        .into_iter()
        .flatten()
    {
        into.consider(cand, target);
    }
    // `consider` double-counts the merged champions; the true total is the
    // sum of the sub-sweep's evaluations.
    into.evaluated = before + from.evaluated;
    into.failures.extend(from.failures);
}

/// Generic driver for the cardinality-based dense methods: rankings per
/// combination (over the cached prepare artifact), ascending-K prefix
/// sweep, honest re-run of the winner. A failed prepare fails the combo's
/// whole K sweep as structured rows instead of aborting the method.
fn run_cardinality_dense<C: Clone + Filter>(
    ctx: &Context<'_>,
    combos: Vec<C>,
    rankings_of: impl Fn(&C, usize) -> Result<er::core::QueryRankings, (FailReason, Duration)>,
    with_k: impl Fn(&C, usize) -> C,
) -> OptimizationOutcome<C> {
    let ks = dense_grid::k_sweep(ctx.resolution);
    let k_cap = max_k(ctx.resolution);
    let mut outcome: OptimizationOutcome<C> = OptimizationOutcome::default();
    for combo in combos {
        guard::checkpoint();
        let rankings = match rankings_of(&combo, k_cap) {
            Ok(rankings) => rankings,
            Err((reason, elapsed)) => {
                fail_group(
                    &mut outcome,
                    ks.iter().map(|&k| with_k(&combo, k)),
                    &combo.repr_key(),
                    reason,
                    elapsed,
                );
                continue;
            }
        };
        for &k in &ks {
            let candidates = rankings.candidates_top_k(k);
            let eff = evaluate(&candidates, ctx.gt);
            let feasible = eff.pc >= ctx.optimizer.target.0;
            outcome.consider(
                Evaluated {
                    config: with_k(&combo, k),
                    eff,
                    breakdown: PhaseBreakdown::new(),
                },
                ctx.optimizer.target.0,
            );
            if feasible {
                break;
            }
        }
    }
    outcome
}

/// Fine-tunes the FAISS-equivalent flat kNN.
pub fn run_faiss(ctx: &Context<'_>) -> MethodOutcome {
    let combos = dense_grid::flat_combos(ctx.resolution, ctx.embedding);
    let opt = run_cardinality_dense(
        ctx,
        combos,
        |c: &FlatKnn, k_cap| {
            let prepared = ctx.prepared_for(c)?;
            Ok(c.rankings_from(prepared.downcast::<DenseIndexArtifact>(), k_cap))
        },
        |c, k| FlatKnn { k, ..*c },
    );
    outcome_from("FAISS", &opt, FlatKnn::describe, |cfg| ctx.eval(cfg))
}

/// Fine-tunes the SCANN-equivalent partitioned kNN.
pub fn run_scann(ctx: &Context<'_>) -> MethodOutcome {
    let combos = dense_grid::scann_combos(ctx.resolution, ctx.embedding, ctx.seed);
    let opt = run_cardinality_dense(
        ctx,
        combos,
        |c: &PartitionedKnn, k_cap| {
            let prepared = ctx.prepared_for(c)?;
            Ok(c.rankings_from(prepared.downcast::<PartitionedArtifact>(), k_cap))
        },
        |c, k| PartitionedKnn { k, ..*c },
    );
    outcome_from("SCANN", &opt, PartitionedKnn::describe, |cfg| ctx.eval(cfg))
}

/// Fine-tunes DeepBlocker.
pub fn run_deepblocker(ctx: &Context<'_>) -> MethodOutcome {
    let combos = dense_grid::deepblocker_combos(ctx.resolution, ctx.embedding, ctx.seed);
    let opt = run_cardinality_dense(
        ctx,
        combos,
        |c: &DeepBlocker, k_cap| {
            let prepared = ctx.prepared_for(c)?;
            Ok(c.rankings_from(prepared.downcast::<DenseIndexArtifact>(), k_cap))
        },
        |c, k| DeepBlocker::new(er::dense::DeepBlockerConfig { k, ..c.config }),
    );
    average_stochastic(
        ctx,
        "DeepBlocker",
        &opt,
        DeepBlocker::describe,
        |cfg, seed| {
            Box::new(DeepBlocker::new(er::dense::DeepBlockerConfig {
                seed,
                ..cfg.config
            }))
        },
    )
}

/// The Default DeepBlocker baseline.
pub fn run_ddb(ctx: &Context<'_>) -> MethodOutcome {
    let cfg = dense_grid::ddb_baseline(
        ctx.view.e1.len(),
        ctx.view.e2.len(),
        ctx.embedding,
        ctx.seed,
    );
    let mut opt: OptimizationOutcome<DeepBlocker> = OptimizationOutcome::default();
    let (eff, bd) = ctx.eval(&cfg);
    opt.consider(
        Evaluated {
            config: cfg,
            eff,
            breakdown: bd,
        },
        ctx.optimizer.target.0,
    );
    average_stochastic(ctx, "DDB", &opt, DeepBlocker::describe, |c, seed| {
        Box::new(DeepBlocker::new(er::dense::DeepBlockerConfig {
            seed,
            ..c.config
        }))
    })
}

// ---------------------------------------------------------------------------
// The full Table VII sweep
// ---------------------------------------------------------------------------

/// One of the 17 methods of the Table VII sweep, in table order.
///
/// A `(column, MethodId)` pair is the sweep's unit of fault isolation and
/// checkpointing: each runs under its own guard, fails independently, and
/// is recorded as one checkpoint line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodId {
    /// Standard Blocking workflow.
    Sbw,
    /// Q-Grams Blocking workflow.
    Qbw,
    /// Extended Q-Grams Blocking workflow.
    Eqbw,
    /// Suffix Arrays Blocking workflow.
    Sabw,
    /// Extended Suffix Arrays Blocking workflow.
    Esabw,
    /// Parameter-free Blocking Workflow baseline.
    Pbw,
    /// Default Blocking Workflow baseline.
    Dbw,
    /// ε-Join.
    Epsilon,
    /// kNN-Join.
    Knn,
    /// Default kNN-Join baseline.
    Dknn,
    /// MinHash LSH.
    MinHash,
    /// Cross-Polytope LSH.
    CrossPolytope,
    /// Hyperplane LSH.
    Hyperplane,
    /// FAISS-equivalent flat kNN.
    Faiss,
    /// SCANN-equivalent partitioned kNN.
    Scann,
    /// DeepBlocker.
    DeepBlocker,
    /// Default DeepBlocker baseline.
    Ddb,
}

impl MethodId {
    /// All methods in the paper's table order.
    pub const ALL: [MethodId; 17] = [
        MethodId::Sbw,
        MethodId::Qbw,
        MethodId::Eqbw,
        MethodId::Sabw,
        MethodId::Esabw,
        MethodId::Pbw,
        MethodId::Dbw,
        MethodId::Epsilon,
        MethodId::Knn,
        MethodId::Dknn,
        MethodId::MinHash,
        MethodId::CrossPolytope,
        MethodId::Hyperplane,
        MethodId::Faiss,
        MethodId::Scann,
        MethodId::DeepBlocker,
        MethodId::Ddb,
    ];

    /// The method name as printed in Table VII (also the checkpoint key).
    pub fn name(self) -> &'static str {
        match self {
            MethodId::Sbw => "SBW",
            MethodId::Qbw => "QBW",
            MethodId::Eqbw => "EQBW",
            MethodId::Sabw => "SABW",
            MethodId::Esabw => "ESABW",
            MethodId::Pbw => "PBW",
            MethodId::Dbw => "DBW",
            MethodId::Epsilon => "e-Join",
            MethodId::Knn => "kNN-Join",
            MethodId::Dknn => "DkNN",
            MethodId::MinHash => "MH-LSH",
            MethodId::CrossPolytope => "CP-LSH",
            MethodId::Hyperplane => "HP-LSH",
            MethodId::Faiss => "FAISS",
            MethodId::Scann => "SCANN",
            MethodId::DeepBlocker => "DeepBlocker",
            MethodId::Ddb => "DDB",
        }
    }

    /// Looks a method up by its Table VII name.
    pub fn parse(name: &str) -> Option<MethodId> {
        MethodId::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Runs this method's full fine-tuning sweep on one context,
    /// unguarded: panics propagate. Use [`run_method`] in sweeps.
    pub fn run(self, ctx: &Context<'_>) -> MethodOutcome {
        match self {
            MethodId::Sbw => run_blocking_family(ctx, WorkflowKind::Sbw),
            MethodId::Qbw => run_blocking_family(ctx, WorkflowKind::Qbw),
            MethodId::Eqbw => run_blocking_family(ctx, WorkflowKind::Eqbw),
            MethodId::Sabw => run_blocking_family(ctx, WorkflowKind::Sabw),
            MethodId::Esabw => run_blocking_family(ctx, WorkflowKind::Esabw),
            MethodId::Pbw => run_pbw(ctx),
            MethodId::Dbw => run_dbw(ctx),
            MethodId::Epsilon => run_epsilon(ctx),
            MethodId::Knn => run_knn(ctx),
            MethodId::Dknn => run_dknn(ctx),
            MethodId::MinHash => run_minhash(ctx),
            MethodId::CrossPolytope => run_crosspolytope(ctx),
            MethodId::Hyperplane => run_hyperplane(ctx),
            MethodId::Faiss => run_faiss(ctx),
            MethodId::Scann => run_scann(ctx),
            MethodId::DeepBlocker => run_deepblocker(ctx),
            MethodId::Ddb => run_ddb(ctx),
        }
    }
}

/// Runs one method under the context's guard limits. A panic, blown
/// deadline or candidate budget becomes a structured failure row (see
/// [`MethodOutcome::failed`]) instead of tearing the sweep down; the
/// fault-injection site for this grid point is `<label>/<method>`.
///
/// When the limits are disabled this is exactly `id.run(ctx)` — panics
/// propagate as before.
pub fn run_method(ctx: &Context<'_>, id: MethodId) -> MethodOutcome {
    let run = || {
        if faults::enabled() {
            faults::fire(&format!("{}/{}", ctx.label, id.name()));
        }
        id.run(ctx)
    };
    match guard::run_guarded(ctx.limits(), run) {
        RunOutcome::Ok(outcome) => outcome,
        RunOutcome::Failed { reason, elapsed } => {
            MethodOutcome::failed(id.name(), &reason, elapsed)
        }
    }
}

/// Runs all 17 methods (5 + 2 blocking, 2 + 1 sparse, 5 + 1 dense) on one
/// view, in the paper's table order, each under the context's guard
/// limits. Each method's *optimization* wall time is reported through
/// `on_done` (the per-run RT lives in the outcome).
pub fn run_all_methods_with(
    ctx: &Context<'_>,
    mut on_done: impl FnMut(&MethodOutcome, Duration),
) -> Vec<MethodOutcome> {
    let mut out: Vec<MethodOutcome> = Vec::with_capacity(MethodId::ALL.len());
    for id in MethodId::ALL {
        let sw = er::core::Stopwatch::start();
        let o = run_method(ctx, id);
        on_done(&o, sw.elapsed());
        out.push(o);
    }
    out
}

/// [`run_all_methods_with`] without the progress callback.
pub fn run_all_methods(ctx: &Context<'_>) -> Vec<MethodOutcome> {
    run_all_methods_with(ctx, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use er::core::schema::{text_view, SchemaMode};
    use er::datagen::profiles::profile;

    fn quick_ctx<'a>(
        view: &'a TextView,
        gt: &'a GroundTruth,
        cache: &'a ArtifactCache,
    ) -> Context<'a> {
        Context {
            optimizer: Optimizer::new(0.9),
            embedding: EmbeddingConfig {
                dim: 48,
                ..Default::default()
            },
            seed: 11,
            label: "test".to_owned(),
            ..Context::new(view, gt, cache)
        }
    }

    #[test]
    fn blocking_optimization_beats_or_ties_pbw_precision() {
        let ds = er::datagen::generate(profile("D2").expect("D2"), 0.05, 3);
        let view = text_view(&ds, &SchemaMode::Agnostic);
        let cache = ArtifactCache::new();
        let ctx = quick_ctx(&view, &ds.groundtruth, &cache);
        let sbw = run_blocking_family(&ctx, WorkflowKind::Sbw);
        let pbw = run_pbw(&ctx);
        assert!(sbw.pc >= 0.9, "SBW pc {}", sbw.pc);
        assert!(
            sbw.pq >= pbw.pq,
            "fine-tuned {} < baseline {}",
            sbw.pq,
            pbw.pq
        );
    }

    #[test]
    fn sparse_methods_reach_target_on_clean_data() {
        let ds = er::datagen::generate(profile("D4").expect("D4"), 0.05, 5);
        let view = text_view(&ds, &SchemaMode::Agnostic);
        let cache = ArtifactCache::new();
        let ctx = quick_ctx(&view, &ds.groundtruth, &cache);
        let eps = run_epsilon(&ctx);
        let knn = run_knn(&ctx);
        assert!(eps.feasible, "e-Join infeasible: pc {}", eps.pc);
        assert!(knn.feasible, "kNN infeasible: pc {}", knn.pc);
        assert!(knn.pq > 0.1, "kNN pq {}", knn.pq);
    }

    #[test]
    fn cardinality_dense_methods_run() {
        let ds = er::datagen::generate(profile("D1").expect("D1"), 0.1, 5);
        let view = text_view(&ds, &SchemaMode::Agnostic);
        let cache = ArtifactCache::new();
        let ctx = quick_ctx(&view, &ds.groundtruth, &cache);
        let faiss = run_faiss(&ctx);
        assert!(faiss.pc > 0.5, "FAISS pc {}", faiss.pc);
        assert!(faiss.candidates > 0.0);
        let scann = run_scann(&ctx);
        assert!(scann.pc > 0.5, "SCANN pc {}", scann.pc);
    }

    #[test]
    fn epsilon_histogram_sweep_matches_direct_run() {
        // The binned sweep's winner, re-run directly, must report the same
        // candidate counts (within histogram-boundary tolerance).
        let ds = er::datagen::generate(profile("D2").expect("D2"), 0.05, 9);
        let view = text_view(&ds, &SchemaMode::Agnostic);
        let cache = ArtifactCache::new();
        let ctx = quick_ctx(&view, &ds.groundtruth, &cache);
        let eps = run_epsilon(&ctx);
        // `outcome_from` re-runs the winner; pc/pq in the outcome are thus
        // ground truth. The sweep only picks the config; verify coherence.
        assert!(eps.pc >= 0.0 && eps.pq >= 0.0);
        assert!(eps.evaluated >= 1);
    }

    #[test]
    fn minhash_runs_and_averages() {
        let ds = er::datagen::generate(profile("D1").expect("D1"), 0.1, 13);
        let view = text_view(&ds, &SchemaMode::Agnostic);
        let cache = ArtifactCache::new();
        let mut ctx = quick_ctx(&view, &ds.groundtruth, &cache);
        ctx.reps = 2;
        let mh = run_minhash(&ctx);
        assert!(mh.candidates >= 0.0);
        assert!(mh.evaluated >= 2);
    }

    #[test]
    fn sparse_artifacts_are_shared_across_methods_and_sweeps() {
        let ds = er::datagen::generate(profile("D4").expect("D4"), 0.05, 5);
        let view = text_view(&ds, &SchemaMode::Agnostic);
        let cache = ArtifactCache::new();
        let ctx = quick_ctx(&view, &ds.groundtruth, &cache);

        let cold = run_epsilon(&ctx);
        let cold_misses = cache.stats().misses;
        assert!(cold_misses > 0, "cold sweep prepares artifacts");

        // The kNN-Join's non-reversed combinations reuse the ε-Join's
        // token-set artifacts.
        let _ = run_knn(&ctx);
        assert!(
            cache.stats().hits > 0,
            "kNN reuses the e-Join's token-set artifacts"
        );

        // A warm re-sweep prepares nothing new and reports identically.
        let misses_before = cache.stats().misses;
        let warm = run_epsilon(&ctx);
        assert_eq!(
            cache.stats().misses,
            misses_before,
            "warm sweep adds no misses"
        );
        assert_eq!(warm.pc, cold.pc);
        assert_eq!(warm.pq, cold.pq);
        assert_eq!(warm.candidates, cold.candidates);
        assert_eq!(warm.config, cold.config);
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;
    use er::core::schema::{text_view, SchemaMode};
    use er::datagen::profiles::profile;
    use er::sparse::ScanCountIndex;

    /// The binned ε-Join sweep must agree with direct runs at every grid
    /// threshold: same candidate counts and duplicate counts.
    #[test]
    fn epsilon_histogram_matches_direct_runs_exactly() {
        let ds = er::datagen::generate(profile("D2").expect("D2"), 0.05, 77);
        let view = text_view(&ds, &SchemaMode::Agnostic);
        let model = er::sparse::RepresentationModel::parse("T1G").expect("T1G");
        let measure = er::sparse::SimilarityMeasure::Jaccard;

        // Build the same histogram run_epsilon builds.
        let cleaner = er::text::Cleaner::off();
        let sets1: Vec<Vec<u64>> = view
            .e1
            .iter()
            .map(|t| model.token_set(t, &cleaner))
            .collect();
        let sets2: Vec<Vec<u64>> = view
            .e2
            .iter()
            .map(|t| model.token_set(t, &cleaner))
            .collect();
        let index = ScanCountIndex::build(&sets1);
        let mut scratch = er::sparse::ScanCountScratch::default();
        let mut totals = vec![0u64; SIM_BINS + 1];
        let mut dups = vec![0u64; SIM_BINS + 1];
        let mut hits: Vec<(u32, u32)> = Vec::new();
        for (j, query) in sets2.iter().enumerate() {
            let qlen = query.len();
            index.query_with(&mut scratch, query, &mut hits);
            for &(i, overlap) in &hits {
                let sim = measure.compute(overlap as usize, index.set_size(i), qlen);
                let bin = ((sim * SIM_BINS as f64).floor() as usize).min(SIM_BINS);
                totals[bin] += 1;
                if ds.groundtruth.contains(er::core::Pair::new(i, j as u32)) {
                    dups[bin] += 1;
                }
            }
        }
        for b in (0..SIM_BINS).rev() {
            totals[b] += totals[b + 1];
            dups[b] += dups[b + 1];
        }

        // Compare against direct runs at the grid's threshold step (0.05).
        for i in 0..=20u32 {
            let threshold = f64::from(i) / 20.0;
            let join = er::sparse::EpsilonJoin {
                cleaning: false,
                model,
                measure,
                threshold,
            };
            let direct = join.run(&view);
            let found = ds.groundtruth.duplicates_in(&direct.candidates);
            let bin = ((threshold * SIM_BINS as f64) - 1e-9).ceil().max(0.0) as usize;
            let bin = bin.min(SIM_BINS);
            // At threshold 0 the direct join still requires >= 1 shared
            // token, same as the histogram (only overlapping pairs binned).
            assert_eq!(
                totals[bin] as usize,
                direct.candidates.len(),
                "candidate mismatch at t={threshold}"
            );
            assert_eq!(
                dups[bin] as usize, found,
                "duplicate mismatch at t={threshold}"
            );
        }
    }
}
