//! Regenerates Table VI: the technical characteristics of the (synthetic
//! stand-ins for the) ten Clean-Clean ER datasets, at the requested scale.

use er::core::schema::best_attribute;
use er::datagen::generate;
use er_bench::{Settings, Table};

fn main() {
    let settings = Settings::from_args();
    println!(
        "Table VI: dataset characteristics (scale {}, seed {})\n",
        settings.scale, settings.seed
    );
    let mut table = Table::new([
        "Dataset",
        "E1 / E2",
        "|E1|",
        "|E2|",
        "Duplicates",
        "Cartesian",
        "Best Attr",
        "Auto-selected",
        "Schema-based",
    ]);
    for profile in &settings.datasets {
        let ds = generate(profile, settings.scale, settings.seed);
        table.row([
            profile.id.to_owned(),
            profile.sources.to_owned(),
            ds.e1.len().to_string(),
            ds.e2.len().to_string(),
            ds.groundtruth.len().to_string(),
            format!("{:.2e}", ds.cartesian() as f64),
            profile.best_attribute().to_owned(),
            best_attribute(&ds).unwrap_or_default(),
            if profile.schema_based_viable {
                "yes"
            } else {
                "excluded"
            }
            .to_owned(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Note: original (scale 1.0) counts follow the paper exactly; see\n\
         er_datagen::PROFILES. Schema-based settings are excluded for\n\
         D5-D7 and D10, whose best-attribute coverage of duplicates is\n\
         insufficient for the recall target (paper Section VI)."
    );
}
