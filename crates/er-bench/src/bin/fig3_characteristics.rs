//! Regenerates Figure 3: (a) best-attribute coverage (overall and on
//! duplicates), (b) vocabulary size and (c) overall character length per
//! dataset, for schema-agnostic vs schema-based settings, with and without
//! cleaning.

use er::core::schema::{attribute_stats, corpus_stats, text_view, SchemaMode};
use er::datagen::generate;
use er_bench::{Settings, Table};

fn main() {
    let settings = Settings::from_args();
    println!(
        "Figure 3 statistics (scale {}, seed {})\n",
        settings.scale, settings.seed
    );

    let mut coverage = Table::new(["Dataset", "Best Attr", "Coverage", "GT Coverage"]);
    let mut corpus = Table::new([
        "Dataset",
        "Vocab (agn)",
        "Vocab (agn+clean)",
        "Vocab (based)",
        "Vocab (based+clean)",
        "Chars (agn)",
        "Chars (agn+clean)",
        "Chars (based)",
        "Chars (based+clean)",
    ]);

    let mut vocab_reduction = Vec::new();
    let mut char_reduction = Vec::new();
    for profile in &settings.datasets {
        let ds = generate(profile, settings.scale, settings.seed);
        let stats = attribute_stats(&ds);
        // Report the paper-designated attribute (Table VI), not the
        // auto-selected one.
        let best = stats
            .iter()
            .find(|s| s.name == profile.best_attribute())
            .expect("designated attribute present");
        coverage.row([
            profile.id.to_owned(),
            best.name.clone(),
            format!("{:.1}%", 100.0 * best.coverage),
            format!("{:.1}%", 100.0 * best.groundtruth_coverage),
        ]);

        let agn = text_view(&ds, &SchemaMode::Agnostic);
        let based = text_view(&ds, &profile.schema_based_mode());
        let a = corpus_stats(&agn, false);
        let ac = corpus_stats(&agn, true);
        let b = corpus_stats(&based, false);
        let bc = corpus_stats(&based, true);
        vocab_reduction.push(1.0 - b.vocabulary_size as f64 / a.vocabulary_size.max(1) as f64);
        char_reduction.push(1.0 - b.char_length as f64 / a.char_length.max(1) as f64);
        corpus.row([
            profile.id.to_owned(),
            a.vocabulary_size.to_string(),
            ac.vocabulary_size.to_string(),
            b.vocabulary_size.to_string(),
            bc.vocabulary_size.to_string(),
            a.char_length.to_string(),
            ac.char_length.to_string(),
            b.char_length.to_string(),
            bc.char_length.to_string(),
        ]);
    }

    println!("(a) best-attribute coverage\n{}", coverage.render());
    println!(
        "(b)+(c) vocabulary size and character length\n{}",
        corpus.render()
    );
    let n = vocab_reduction.len().max(1) as f64;
    println!(
        "Schema-based settings reduce vocabulary by {:.1}% and characters by {:.1}% on average\n\
         (paper: 66.0% and 67.7% on the real datasets).",
        100.0 * vocab_reduction.iter().sum::<f64>() / n,
        100.0 * char_reduction.iter().sum::<f64>() / n,
    );
}
