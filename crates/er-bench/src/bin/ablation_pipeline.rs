//! Ablation: the optional block-cleaning steps (paper §IV-B / Fig. 1).
//!
//! Block Purging and Block Filtering are optional; the paper treats them as
//! such and reports the best among the four pipeline variants. This binary
//! quantifies each variant's contribution for the Standard Blocking
//! workflow with a fixed comparison cleaning, showing how the two steps
//! trade recall for precision.

use er::blocking::{BlockBuilder, BlockingWorkflow, ComparisonCleaning};
use er::core::metrics::evaluate;
use er::core::schema::{text_view, SchemaMode};
use er::core::Filter;
use er::datagen::generate;
use er_bench::report::fmt_measure;
use er_bench::{Settings, Table};

fn main() {
    let settings = Settings::from_args();
    println!(
        "Ablation: Block Purging (BP) / Block Filtering (BF) pipeline variants\n\
         (Standard Blocking + Comparison Propagation, scale {})\n",
        settings.scale
    );

    let variants: [(&str, bool, Option<f64>); 4] = [
        ("neither", false, None),
        ("BP only", true, None),
        ("BF only", false, Some(0.5)),
        ("BP + BF", true, Some(0.5)),
    ];

    let mut table = Table::new(["Dataset", "Variant", "PC", "PQ", "|C|"]);
    let mut monotone_violations = 0usize;
    for profile in &settings.datasets {
        let ds = generate(profile, settings.scale, settings.seed);
        let view = text_view(&ds, &SchemaMode::Agnostic);
        let mut prev_candidates = u64::MAX;
        for (name, purge, ratio) in variants {
            let wf = BlockingWorkflow {
                builder: BlockBuilder::Standard,
                purge,
                filter_ratio: ratio,
                cleaning: ComparisonCleaning::Propagation,
            };
            let out = wf.run(&view);
            let eff = evaluate(&out.candidates, &ds.groundtruth);
            // Every added cleaning step must shrink the candidate set.
            if name != "neither" && name != "BF only" && eff.candidates as u64 > prev_candidates {
                monotone_violations += 1;
            }
            if name == "neither" {
                prev_candidates = eff.candidates as u64;
            }
            table.row([
                profile.id.to_owned(),
                name.to_owned(),
                fmt_measure(eff.pc),
                fmt_measure(eff.pq),
                eff.candidates.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Expected: each cleaning step trades a sliver of PC for a PQ increase;\n\
         BP+BF gives the largest search-space reduction. Monotonicity violations: {monotone_violations}."
    );
}
