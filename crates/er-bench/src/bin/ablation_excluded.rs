//! Ablation: the methods the paper evaluated and *excluded*.
//!
//! * Sorted Neighborhood (§IV-B): "consistently underperforms the above
//!   methods" because its windowed candidates are incompatible with block
//!   and comparison cleaning.
//! * FAISS range search (§IV-D): "consistently underperforms kNN search".
//! * FAISS's approximate indexes, here HNSW (§IV-D): "they do not
//!   outperform the Flat index with respect to Problem 1".
//!
//! This binary fine-tunes the excluded methods alongside their retained
//! counterparts and reports the precision gap that justified each
//! exclusion.

use er::blocking::SortedNeighborhood;
use er::core::metrics::evaluate;
use er::core::optimize::Optimizer;
use er::core::schema::{text_view, SchemaMode};
use er::core::{Effectiveness, Filter};
use er::datagen::generate;
use er::dense::{EmbeddingConfig, FlatRange, HnswKnn};
use er_bench::report::{fmt_measure_flagged, Table};
use er_bench::Settings;

/// Sweeps a monotone family (candidate volume non-decreasing) and returns
/// the first feasible outcome or the max-recall fallback.
fn tune<F: Filter + Clone>(
    configs: Vec<F>,
    view: &er::core::TextView,
    gt: &er::core::GroundTruth,
    target: f64,
) -> (Effectiveness, bool) {
    let optimizer = Optimizer::new(target);
    let outcome = optimizer.first_feasible(configs, |cfg| {
        let out = cfg.run(view);
        (evaluate(&out.candidates, gt), out.breakdown)
    });
    let feasible = outcome.is_feasible();
    (outcome.best().expect("non-empty sweep").eff, feasible)
}

fn main() {
    let settings = Settings::from_args();
    let embedding = EmbeddingConfig {
        dim: settings.dim,
        ..Default::default()
    };
    println!(
        "Ablation: methods the paper evaluated and excluded (scale {}, target {})\n",
        settings.scale, settings.target_pc
    );
    let mut table = Table::new([
        "Dataset",
        "SN PC",
        "SN PQ",
        "SBW-grid best PQ",
        "range PC",
        "range PQ",
        "HNSW PC",
        "HNSW PQ",
        "kNN PC",
        "kNN PQ",
    ]);

    let mut sn_losses = 0usize;
    let mut range_losses = 0usize;
    let mut hnsw_losses = 0usize;
    let mut total = 0usize;
    for profile in &settings.datasets {
        let ds = generate(profile, settings.scale, settings.seed);
        let view = text_view(&ds, &SchemaMode::Agnostic);
        let target = settings.target_pc;

        // Sorted Neighborhood: sweep the window size ascending.
        let (sn, sn_ok) = tune(
            (2..=512)
                .step_by(2)
                .map(|window| SortedNeighborhood { window })
                .collect(),
            &view,
            &ds.groundtruth,
            target,
        );

        // The retained counterpart: the optimized SBW family.
        let cache = er::core::artifacts::ArtifactCache::new();
        let ctx = er_bench::harness::Context {
            optimizer: Optimizer::new(target),
            resolution: settings.resolution,
            embedding: EmbeddingConfig {
                dim: settings.dim,
                ..Default::default()
            },
            seed: settings.seed,
            label: profile.id.to_owned(),
            ..er_bench::harness::Context::new(&view, &ds.groundtruth, &cache)
        };
        let sbw = er_bench::harness::run_blocking_family(&ctx, er::blocking::WorkflowKind::Sbw);

        // FAISS range search: sweep the radius ascending (unit vectors ->
        // squared distances live in [0, 4]).
        let (range, range_ok) = tune(
            (1..=80)
                .map(|i| FlatRange {
                    cleaning: true,
                    radius: i as f32 * 0.05,
                    embedding,
                })
                .collect(),
            &view,
            &ds.groundtruth,
            target,
        );

        // FAISS-HNSW: same K sweep as Flat, fixed M/efSearch.
        let (hnsw, hnsw_ok) = tune(
            [1usize, 2, 3, 5, 8, 12, 20, 35, 60, 100]
                .into_iter()
                .map(|k| HnswKnn {
                    cleaning: true,
                    k,
                    m: 16,
                    ef_search: 96,
                    embedding,
                    seed: settings.seed,
                })
                .collect(),
            &view,
            &ds.groundtruth,
            target,
        );

        // The retained counterpart: FAISS kNN search.
        let faiss = er_bench::harness::run_faiss(&ctx);

        total += 1;
        if sn.pq <= sbw.pq || !sn_ok {
            sn_losses += 1;
        }
        if range.pq <= faiss.pq || !range_ok {
            range_losses += 1;
        }
        if hnsw.pq <= faiss.pq || !hnsw_ok {
            hnsw_losses += 1;
        }
        table.row([
            profile.id.to_owned(),
            fmt_measure_flagged(sn.pc, sn_ok),
            fmt_measure_flagged(sn.pq, sn_ok),
            fmt_measure_flagged(sbw.pq, sbw.feasible),
            fmt_measure_flagged(range.pc, range_ok),
            fmt_measure_flagged(range.pq, range_ok),
            fmt_measure_flagged(hnsw.pc, hnsw_ok),
            fmt_measure_flagged(hnsw.pq, hnsw_ok),
            fmt_measure_flagged(faiss.pc, faiss.feasible),
            fmt_measure_flagged(faiss.pq, faiss.feasible),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Sorted Neighborhood loses to the SBW grid in {sn_losses}/{total} datasets;\n\
         range search loses to kNN search in {range_losses}/{total} datasets;\n\
         HNSW does not beat the Flat index in {hnsw_losses}/{total} datasets\n\
         (paper: all three excluded for not outperforming the retained methods)."
    );
}
