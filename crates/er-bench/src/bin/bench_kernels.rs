//! Kernel/layout micro-benchmark: old naive layouts vs the CSR/interned
//! sparse hot path and the scalar vs blocked dense kernels, on the D2
//! smoke workload.
//!
//! First verifies the optimized pipeline produces candidate sets identical
//! to the frozen naive reference (exiting non-zero on any mismatch), then
//! times both layouts and writes a one-line JSON summary — wall seconds
//! per variant plus speedups — to the output path (default
//! `BENCH_kernels.json`). Run by `scripts/bench_smoke.sh` and uploaded as
//! a CI artifact next to `BENCH_parallel.json` / `BENCH_prepare.json`.

use std::hint::black_box;
use std::time::Duration;

use er::core::schema::{text_view, SchemaMode};
use er::core::{Filter, Stopwatch};
use er::datagen::{generate, profiles::profile};
use er::dense::{dot, dot_batch4, dot_scalar, EmbeddingConfig, FlatVectors, HashEmbedder};
use er::sparse::reference::{self, NaiveScanCountIndex};
use er::sparse::{
    EpsilonJoin, KnnJoin, RepresentationModel, ScanCountIndex, ScanCountScratch, SimilarityMeasure,
};
use er_bench::jsonl::Json;

/// Minimum wall time over `reps` runs of `f` — the usual micro-benchmark
/// noise floor estimator.
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let sw = Stopwatch::start();
        black_box(f());
        best = best.min(sw.elapsed());
    }
    best
}

fn speedup(old: Duration, new: Duration) -> f64 {
    old.as_secs_f64() / new.as_secs_f64().max(1e-12)
}

fn main() {
    let mut out_path = "BENCH_kernels.json".to_owned();
    let mut scale = 0.25f64;
    let mut seed = 7u64;
    let mut reps = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => out_path = value("--out"),
            "--scale" => scale = value("--scale").parse().expect("--scale"),
            "--seed" => seed = value("--seed").parse().expect("--seed"),
            "--reps" => reps = value("--reps").parse().expect("--reps"),
            other => panic!("unknown argument {other}"),
        }
    }

    let ds = generate(profile("D2").expect("D2"), scale, seed);
    let view = text_view(&ds, &SchemaMode::Agnostic);
    let model = RepresentationModel::parse("C3G").expect("C3G");
    let measure = SimilarityMeasure::Cosine;
    let threshold = 0.4;

    // -- Correctness gate: optimized pipeline == frozen naive reference.
    let eps = EpsilonJoin {
        cleaning: false,
        model,
        measure,
        threshold,
    };
    let eps_got = eps.run(&view).candidates.to_sorted_vec();
    let eps_want = reference::naive_epsilon(&view, false, model, measure, threshold);
    let knn = KnnJoin {
        cleaning: false,
        model,
        measure,
        k: 3,
        reversed: false,
    };
    let knn_got = knn.run(&view).candidates.to_sorted_vec();
    let knn_want = reference::naive_knn(&view, false, model, measure, 3, false);
    let identical = eps_got == eps_want && knn_got == knn_want;
    if !identical {
        eprintln!("bench-kernels: CSR pipeline disagrees with the naive reference");
        std::process::exit(1);
    }

    // -- Sparse: identical merge-count + scoring loop over both layouts.
    let (index_sets, query_sets) = reference::tokenize(&view, false, model, false);
    let naive = NaiveScanCountIndex::build(&index_sets);
    let naive_s = time_min(reps, || {
        let mut kept = 0u64;
        for query in &query_sets {
            for (i, overlap) in naive.query(query) {
                let sim = measure.compute(overlap as usize, naive.set_size(i), query.len());
                kept += u64::from(sim >= threshold);
            }
        }
        kept
    });
    let (csr_index, _) = ScanCountIndex::build_with_sets(&index_sets);
    let csr_queries = csr_index.intern_queries(&query_sets);
    let csr_s = time_min(reps, || {
        let mut scratch = ScanCountScratch::default();
        let mut hits: Vec<(u32, u32)> = Vec::new();
        let mut kept = 0u64;
        for j in 0..csr_queries.len() {
            let qlen = csr_queries.set_size(j);
            csr_index.query_ids_with(&mut scratch, csr_queries.row(j), &mut hits);
            for &(i, overlap) in &hits {
                let sim = measure.compute(overlap as usize, csr_index.set_size(i), qlen);
                kept += u64::from(sim >= threshold);
            }
        }
        kept
    });

    // -- Sparse index build: per-token Vec postings vs one CSR pass.
    let naive_build_s = time_min(reps, || NaiveScanCountIndex::build(&index_sets));
    let csr_build_s = time_min(reps, || ScanCountIndex::build(&index_sets));

    // -- Dense: scalar vs blocked vs batch-of-4 dot scans over the same
    // contiguous rows.
    let embedder = HashEmbedder::new(EmbeddingConfig {
        dim: 64,
        ..Default::default()
    });
    let cleaner = er::text::Cleaner::off();
    let rows: Vec<Vec<f32>> = view
        .e1
        .iter()
        .map(|t| embedder.embed(t, &cleaner))
        .collect();
    let queries: Vec<Vec<f32>> = view
        .e2
        .iter()
        .map(|t| embedder.embed(t, &cleaner))
        .collect();
    let flat = FlatVectors::from_rows(&rows);
    let scan = |kernel: &dyn Fn(&[f32], &[f32]) -> f32| {
        let mut acc = 0.0f64;
        for q in &queries {
            for i in 0..flat.len() {
                acc += f64::from(kernel(q, flat.row(i)));
            }
        }
        acc
    };
    let dense_scalar_s = time_min(reps, || scan(&dot_scalar));
    let dense_blocked_s = time_min(reps, || scan(&dot));
    let dense_batch4_s = time_min(reps, || {
        let mut acc = 0.0f64;
        let n = flat.len();
        for q in &queries {
            let mut i = 0;
            while i + 4 <= n {
                let got = dot_batch4(
                    q,
                    [
                        flat.row(i),
                        flat.row(i + 1),
                        flat.row(i + 2),
                        flat.row(i + 3),
                    ],
                );
                acc += got.iter().map(|&v| f64::from(v)).sum::<f64>();
                i += 4;
            }
            for r in i..n {
                acc += f64::from(dot(q, flat.row(r)));
            }
        }
        acc
    });

    let secs = |d: Duration| Json::Num(d.as_secs_f64());
    let doc = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("kernels_smoke".to_owned())),
        (
            "workload".to_owned(),
            Json::Obj(vec![
                ("profile".to_owned(), Json::Str("D2".to_owned())),
                ("scale".to_owned(), Json::Num(scale)),
                ("seed".to_owned(), Json::Num(seed as f64)),
                ("reps".to_owned(), Json::Num(reps as f64)),
            ]),
        ),
        ("candidate_sets_identical".to_owned(), Json::Bool(identical)),
        (
            "sparse_query".to_owned(),
            Json::Obj(vec![
                ("naive_s".to_owned(), secs(naive_s)),
                ("csr_s".to_owned(), secs(csr_s)),
                ("speedup".to_owned(), Json::Num(speedup(naive_s, csr_s))),
            ]),
        ),
        (
            "sparse_build".to_owned(),
            Json::Obj(vec![
                ("naive_s".to_owned(), secs(naive_build_s)),
                ("csr_s".to_owned(), secs(csr_build_s)),
                (
                    "speedup".to_owned(),
                    Json::Num(speedup(naive_build_s, csr_build_s)),
                ),
            ]),
        ),
        (
            "dense_dot_scan".to_owned(),
            Json::Obj(vec![
                ("scalar_s".to_owned(), secs(dense_scalar_s)),
                ("blocked_s".to_owned(), secs(dense_blocked_s)),
                ("batch4_s".to_owned(), secs(dense_batch4_s)),
                (
                    "speedup_blocked".to_owned(),
                    Json::Num(speedup(dense_scalar_s, dense_blocked_s)),
                ),
                (
                    "speedup_batch4".to_owned(),
                    Json::Num(speedup(dense_scalar_s, dense_batch4_s)),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.encode() + "\n").expect("write kernel bench output");
    eprintln!("bench-kernels: wrote {out_path}");
    println!("{}", doc.encode());
}
