//! Kernel/layout micro-benchmark: the optimized hot paths against their
//! reference implementations on the D2 smoke workload — naive vs
//! CSR/interned sparse queries, plain vs bitpacked posting traversal,
//! scalar vs blocked vs SIMD-dispatched dense kernels, and the exact vs
//! quantized-with-rescore flat scan.
//!
//! Every optimized variant is first checked against its reference —
//! candidate sets must be identical and kernel outputs bitwise equal
//! (`to_bits`) — and the binary exits non-zero on any mismatch, making it
//! a correctness gate as much as a benchmark. It then times each pair and
//! writes a one-line JSON summary — wall seconds per variant plus
//! speedups and the packed-postings size ratio — to the output path
//! (default `BENCH_kernels.json`). Run by `scripts/bench_smoke.sh` and
//! uploaded as a CI artifact next to `BENCH_parallel.json` /
//! `BENCH_prepare.json`; `bench_history` tracks the speedups over time.

use std::hint::black_box;
use std::time::Duration;

use er::core::schema::{text_view, SchemaMode};
use er::core::{Filter, Stopwatch};
use er::datagen::{generate, profiles::profile};
use er::dense::{
    dot, dot_blocked, dot_scalar, l2_sq, l2_sq_blocked, EmbeddingConfig, FlatIndex, FlatVectors,
    HashEmbedder, Metric,
};
use er::sparse::reference::{self, NaiveScanCountIndex};
use er::sparse::{
    EpsilonJoin, KnnJoin, RepresentationModel, ScanCountIndex, ScanCountScratch, SimilarityMeasure,
};
use er_bench::jsonl::Json;

/// Minimum wall time over `reps` runs of `f` — the usual micro-benchmark
/// noise floor estimator.
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let sw = Stopwatch::start();
        black_box(f());
        best = best.min(sw.elapsed());
    }
    best
}

fn speedup(old: Duration, new: Duration) -> f64 {
    old.as_secs_f64() / new.as_secs_f64().max(1e-12)
}

fn main() {
    let mut out_path = "BENCH_kernels.json".to_owned();
    let mut scale = 0.25f64;
    let mut seed = 7u64;
    let mut reps = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => out_path = value("--out"),
            "--scale" => scale = value("--scale").parse().expect("--scale"),
            "--seed" => seed = value("--seed").parse().expect("--seed"),
            "--reps" => reps = value("--reps").parse().expect("--reps"),
            other => panic!("unknown argument {other}"),
        }
    }

    let ds = generate(profile("D2").expect("D2"), scale, seed);
    let view = text_view(&ds, &SchemaMode::Agnostic);
    let model = RepresentationModel::parse("C3G").expect("C3G");
    let measure = SimilarityMeasure::Cosine;
    let threshold = 0.4;
    let mut gate_failures: Vec<&str> = Vec::new();

    // -- Gate: optimized sparse pipeline == frozen naive reference.
    let eps = EpsilonJoin {
        cleaning: false,
        model,
        measure,
        threshold,
    };
    let eps_got = eps.run(&view).candidates.to_sorted_vec();
    let eps_want = reference::naive_epsilon(&view, false, model, measure, threshold);
    let knn = KnnJoin {
        cleaning: false,
        model,
        measure,
        k: 3,
        reversed: false,
    };
    let knn_got = knn.run(&view).candidates.to_sorted_vec();
    let knn_want = reference::naive_knn(&view, false, model, measure, 3, false);
    if eps_got != eps_want || knn_got != knn_want {
        gate_failures.push("sparse joins vs naive reference");
    }

    // -- Sparse: identical merge-count + scoring loop over both layouts.
    let (index_sets, query_sets) = reference::tokenize(&view, false, model, false);
    let naive = NaiveScanCountIndex::build(&index_sets);
    let naive_s = time_min(reps, || {
        let mut kept = 0u64;
        for query in &query_sets {
            for (i, overlap) in naive.query(query) {
                let sim = measure.compute(overlap as usize, naive.set_size(i), query.len());
                kept += u64::from(sim >= threshold);
            }
        }
        kept
    });
    let (csr_index, _) = ScanCountIndex::build_with_sets(&index_sets);
    let csr_queries = csr_index.intern_queries(&query_sets);
    let csr_s = time_min(reps, || {
        let mut scratch = ScanCountScratch::default();
        let mut hits: Vec<(u32, u32)> = Vec::new();
        let mut kept = 0u64;
        for j in 0..csr_queries.len() {
            let qlen = csr_queries.set_size(j);
            csr_index.query_row_with(&mut scratch, &csr_queries, j, &mut hits);
            for &(i, overlap) in &hits {
                let sim = measure.compute(overlap as usize, csr_index.set_size(i), qlen);
                kept += u64::from(sim >= threshold);
            }
        }
        kept
    });

    // -- Sparse index build: per-token Vec postings vs one CSR pass.
    let naive_build_s = time_min(reps, || NaiveScanCountIndex::build(&index_sets));
    let csr_build_s = time_min(reps, || ScanCountIndex::build(&index_sets));

    // -- Packed postings: the *chosen* traversal (`decode_row_into`,
    // which serves the plain mirror below the size cutover and unpacks
    // above it) vs the plain u32 CSR it replaces, plus the always-unpack
    // bitpacked path for reference. The chosen path must never be the
    // slower of the two — that was the 0.21× smoke-scale regression the
    // mirror cutover fixed.
    let postings = csr_index.postings();
    let (plain_offsets, plain_values) = postings.decode_all();
    let traverse_chosen = || {
        let mut buf = Vec::new();
        let mut sum = 0u64;
        for r in 0..postings.len() {
            for &v in postings.decode_row_into(r, &mut buf) {
                sum += u64::from(v);
            }
        }
        sum
    };
    let traverse_bitpacked = || {
        let mut buf = Vec::new();
        let mut sum = 0u64;
        for r in 0..postings.len() {
            for &v in postings.unpack_row_into(r, &mut buf) {
                sum += u64::from(v);
            }
        }
        sum
    };
    let plain_sum: u64 = plain_values.iter().map(|&v| u64::from(v)).sum();
    if traverse_chosen() != plain_sum || traverse_bitpacked() != plain_sum {
        gate_failures.push("packed posting traversal vs plain CSR");
    }
    let packed_traverse_s = time_min(reps, traverse_chosen);
    let bitpacked_traverse_s = time_min(reps, traverse_bitpacked);
    let plain_traverse_s = time_min(reps, || {
        let mut sum = 0u64;
        for w in plain_offsets.windows(2) {
            for &v in &plain_values[w[0] as usize..w[1] as usize] {
                sum += u64::from(v);
            }
        }
        sum
    });
    // Cutover gate (slack absorbs timer noise; the regression this
    // guards was ~5x, not 1.5x).
    let packed_floor = plain_traverse_s.min(bitpacked_traverse_s).as_secs_f64() * 1.5;
    if packed_traverse_s.as_secs_f64() > packed_floor {
        gate_failures.push("packed cutover chose the slower traversal path");
    }
    let packed_bytes = postings.heap_bytes();
    let plain_bytes = postings.plain_bytes();

    // -- Dense kernels: scalar vs blocked vs whatever `dot`/`l2_sq`
    // dispatch to on this host (AVX2/NEON with the `simd` feature).
    let embedder = HashEmbedder::new(EmbeddingConfig {
        dim: 64,
        ..Default::default()
    });
    let cleaner = er::text::Cleaner::off();
    let rows: Vec<Vec<f32>> = view
        .e1
        .iter()
        .map(|t| embedder.embed(t, &cleaner))
        .collect();
    let queries: Vec<Vec<f32>> = view
        .e2
        .iter()
        .map(|t| embedder.embed(t, &cleaner))
        .collect();
    let flat = FlatVectors::from_rows(&rows);
    // Gate: the dispatched kernels must match the blocked reference bit
    // for bit on every query/row pair of the workload.
    let mut bits_ok = true;
    for q in &queries {
        for i in 0..flat.len() {
            let r = flat.row(i);
            bits_ok &= dot(q, r).to_bits() == dot_blocked(q, r).to_bits();
            bits_ok &= l2_sq(q, r).to_bits() == l2_sq_blocked(q, r).to_bits();
        }
    }
    if !bits_ok {
        gate_failures.push("simd kernels vs blocked reference (to_bits)");
    }
    let scan = |kernel: &dyn Fn(&[f32], &[f32]) -> f32| {
        let mut acc = 0.0f64;
        for q in &queries {
            for i in 0..flat.len() {
                acc += f64::from(kernel(q, flat.row(i)));
            }
        }
        acc
    };
    let dot_scalar_s = time_min(reps, || scan(&dot_scalar));
    let dot_blocked_s = time_min(reps, || scan(&dot_blocked));
    let dot_simd_s = time_min(reps, || scan(&dot));
    let l2_blocked_s = time_min(reps, || scan(&l2_sq_blocked));
    let l2_simd_s = time_min(reps, || scan(&l2_sq));

    // -- Quantized flat scan with exact rescore vs the always-exact scan;
    // results must be bitwise identical. `FlatIndex::build` is the
    // *chosen* path — it only attaches the quantization sidecar above
    // `QUANT_CUTOVER_ROWS` (the sidecar was a 0.36× loss at smoke scale)
    // — so the forced-quantized constructor supplies the quantized
    // timing and the chosen path is gated against both.
    let k = 10usize;
    let chosen = FlatIndex::build(rows.clone(), Metric::L2Sq);
    let quantized = FlatIndex::build_quantized(rows.clone(), Metric::L2Sq);
    let exact = FlatIndex::build_unquantized(rows.clone(), Metric::L2Sq);
    let exact_nn = exact.knn_batch_with(1, &queries, k);
    let identical_nn = |other: &FlatIndex| {
        let nn = other.knn_batch_with(1, &queries, k);
        nn.len() == exact_nn.len()
            && nn.iter().zip(&exact_nn).all(|(a, b)| {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|(x, y)| x.0 == y.0 && x.1.to_bits() == y.1.to_bits())
            })
    };
    let quant_identical = identical_nn(&quantized) && identical_nn(&chosen);
    if !quant_identical {
        gate_failures.push("quantized flat scan vs exact scan");
    }
    let quant_scan_s = time_min(reps, || quantized.knn_batch_with(1, &queries, k));
    let exact_scan_s = time_min(reps, || exact.knn_batch_with(1, &queries, k));
    let chosen_scan_s = time_min(reps, || chosen.knn_batch_with(1, &queries, k));
    let quant_floor = exact_scan_s.min(quant_scan_s).as_secs_f64() * 1.5;
    if chosen_scan_s.as_secs_f64() > quant_floor {
        gate_failures.push("quantization cutover chose the slower scan path");
    }

    let identical = gate_failures.is_empty();
    if !identical {
        for what in &gate_failures {
            eprintln!("bench-kernels: MISMATCH: {what}");
        }
    }

    let secs = |d: Duration| Json::Num(d.as_secs_f64());
    let doc = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("kernels_smoke".to_owned())),
        (
            "workload".to_owned(),
            Json::Obj(vec![
                ("profile".to_owned(), Json::Str("D2".to_owned())),
                ("scale".to_owned(), Json::Num(scale)),
                ("seed".to_owned(), Json::Num(seed as f64)),
                ("reps".to_owned(), Json::Num(reps as f64)),
            ]),
        ),
        ("candidate_sets_identical".to_owned(), Json::Bool(identical)),
        (
            "sparse_query".to_owned(),
            Json::Obj(vec![
                ("naive_s".to_owned(), secs(naive_s)),
                ("csr_s".to_owned(), secs(csr_s)),
                ("speedup".to_owned(), Json::Num(speedup(naive_s, csr_s))),
            ]),
        ),
        (
            "sparse_build".to_owned(),
            Json::Obj(vec![
                ("naive_s".to_owned(), secs(naive_build_s)),
                ("csr_s".to_owned(), secs(csr_build_s)),
                (
                    "speedup".to_owned(),
                    Json::Num(speedup(naive_build_s, csr_build_s)),
                ),
            ]),
        ),
        (
            "packed_postings".to_owned(),
            Json::Obj(vec![
                (
                    "candidate_sets_identical".to_owned(),
                    Json::Bool(traverse_chosen() == plain_sum),
                ),
                ("plain_s".to_owned(), secs(plain_traverse_s)),
                ("packed_s".to_owned(), secs(packed_traverse_s)),
                ("bitpacked_s".to_owned(), secs(bitpacked_traverse_s)),
                (
                    "speedup".to_owned(),
                    Json::Num(speedup(plain_traverse_s, packed_traverse_s)),
                ),
                (
                    "speedup_bitpacked".to_owned(),
                    Json::Num(speedup(plain_traverse_s, bitpacked_traverse_s)),
                ),
                ("packed_bytes".to_owned(), Json::Num(packed_bytes as f64)),
                ("plain_bytes".to_owned(), Json::Num(plain_bytes as f64)),
                (
                    "size_ratio".to_owned(),
                    Json::Num(plain_bytes as f64 / (packed_bytes as f64).max(1.0)),
                ),
            ]),
        ),
        (
            "dense_dot_scan".to_owned(),
            Json::Obj(vec![
                ("bitwise_identical".to_owned(), Json::Bool(bits_ok)),
                ("scalar_s".to_owned(), secs(dot_scalar_s)),
                ("blocked_s".to_owned(), secs(dot_blocked_s)),
                ("simd_s".to_owned(), secs(dot_simd_s)),
                (
                    "speedup_blocked".to_owned(),
                    Json::Num(speedup(dot_scalar_s, dot_blocked_s)),
                ),
                (
                    "speedup_simd".to_owned(),
                    Json::Num(speedup(dot_scalar_s, dot_simd_s)),
                ),
            ]),
        ),
        (
            "dense_l2_scan".to_owned(),
            Json::Obj(vec![
                ("bitwise_identical".to_owned(), Json::Bool(bits_ok)),
                ("blocked_s".to_owned(), secs(l2_blocked_s)),
                ("simd_s".to_owned(), secs(l2_simd_s)),
                (
                    "speedup_simd".to_owned(),
                    Json::Num(speedup(l2_blocked_s, l2_simd_s)),
                ),
            ]),
        ),
        (
            "quantized_scan".to_owned(),
            Json::Obj(vec![
                (
                    "candidate_sets_identical".to_owned(),
                    Json::Bool(quant_identical),
                ),
                ("exact_s".to_owned(), secs(exact_scan_s)),
                ("quantized_s".to_owned(), secs(quant_scan_s)),
                ("chosen_s".to_owned(), secs(chosen_scan_s)),
                (
                    "speedup".to_owned(),
                    Json::Num(speedup(exact_scan_s, quant_scan_s)),
                ),
                (
                    "speedup_chosen".to_owned(),
                    Json::Num(speedup(exact_scan_s, chosen_scan_s)),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.encode() + "\n").expect("write kernel bench output");
    eprintln!("bench-kernels: wrote {out_path}");
    println!("{}", doc.encode());
    if !identical {
        std::process::exit(1);
    }
}
