//! Regenerates Table VII — PC, PQ and RT of every filtering method on every
//! dataset in schema-agnostic and schema-based settings — plus, behind
//! flags, the best-configuration Tables VIII–X (`--configs`) and the
//! candidate-count Table XI (`--candidates`).
//!
//! Typical invocations:
//!
//! ```text
//! cargo run --release --bin table7_main                          # defaults
//! cargo run --release --bin table7_main -- --scale 0.05 --grid quick
//! cargo run --release --bin table7_main -- --datasets D1,D4 --configs --candidates
//! cargo run --release --bin table7_main -- --threads 4 --csv table7.csv
//! cargo run --release --bin table7_main -- --timeout 60 --checkpoint sweep.jsonl
//! cargo run --release --bin table7_main -- --resume sweep.jsonl
//! cargo run --release --bin table7_main -- --store-dir artifacts
//! ```
//!
//! `--threads N` (legacy alias: `--parallel N`) sets the worker count of
//! the parallel execution layer and additionally fans dataset columns out
//! over N threads. Effectiveness (PC/PQ/|C|) is byte-identical for every
//! thread count, but reported run-times contend for cores — keep the
//! default (serial columns) for faithful RT measurements.
//!
//! With `--timeout`, `--budget` or `--inject-faults`, each (setting,
//! method) grid point runs under a guard: a panic, blown deadline or
//! candidate budget is reported as a failure row and the sweep continues.
//! `--checkpoint`/`--resume` make an interrupted sweep restartable — see
//! the sweep driver in `er_bench::sweep`. `--store-dir` persists every
//! prepared artifact as a checksummed file a later process reloads
//! (mmap) instead of re-preparing — see DESIGN.md §11.

use er::core::parallel::Threads;
use er_bench::report::{render_report, sweep_csv, ReportOptions};
use er_bench::sweep::run_sweep;
use er_bench::Settings;

/// Prints a usage error and exits with a non-zero status (instead of a
/// panic with a backtrace, which is unhelpful for a flag typo).
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: table7_main [--threads N|auto] [--scale S] [--grid full|pruned|quick] ...");
    std::process::exit(2);
}

fn main() {
    let settings = Settings::from_args();
    // `--parallel` is the legacy alias of `--threads`; it also applies
    // process-wide so the intra-method hot paths use the same count.
    let threads: usize = match settings.flags.iter().position(|f| f == "--parallel") {
        Some(pos) => {
            let v = settings
                .flags
                .get(pos + 1)
                .unwrap_or_else(|| usage_error("--parallel requires a thread count (or 'auto')"));
            let n = Threads::parse_arg(v).unwrap_or_else(|e| usage_error(&e));
            Threads::set(n);
            if n == 0 {
                Threads::get()
            } else {
                n
            }
        }
        None => settings.threads,
    };
    // Columns stay serial unless a thread count was requested explicitly;
    // the parallel layer inside each method still uses `Threads::get()`.
    let column_workers = threads.max(1);
    eprintln!(
        "Table VII sweep: scale {}, grid {:?}, target PC {}, reps {}, dim {}, threads {}",
        settings.scale,
        settings.resolution,
        settings.target_pc,
        settings.reps,
        settings.dim,
        Threads::get(),
    );
    if let Some(plan) = settings.faults.clone() {
        eprintln!("fault injection armed: {} site pattern(s)", plan.len());
        er::core::faults::configure(Some(plan));
    }

    let columns = run_sweep(&settings, column_workers, true).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    print!(
        "{}",
        render_report(
            &columns,
            ReportOptions {
                candidates: settings.has_flag("--candidates"),
                configs: settings.has_flag("--configs"),
            },
        )
    );

    // CSV export for downstream analysis: one row per (setting, method).
    if let Some(pos) = settings.flags.iter().position(|f| f == "--csv") {
        let path = settings
            .flags
            .get(pos + 1)
            .cloned()
            .unwrap_or_else(|| "table7.csv".to_owned());
        let csv = sweep_csv(&columns, true);
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
