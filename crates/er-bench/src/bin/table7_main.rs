//! Regenerates Table VII — PC, PQ and RT of every filtering method on every
//! dataset in schema-agnostic and schema-based settings — plus, behind
//! flags, the best-configuration Tables VIII–X (`--configs`) and the
//! candidate-count Table XI (`--candidates`).
//!
//! Typical invocations:
//!
//! ```text
//! cargo run --release --bin table7_main                          # defaults
//! cargo run --release --bin table7_main -- --scale 0.05 --grid quick
//! cargo run --release --bin table7_main -- --datasets D1,D4 --configs --candidates
//! cargo run --release --bin table7_main -- --threads 4 --csv table7.csv
//! ```
//!
//! `--threads N` (legacy alias: `--parallel N`) sets the worker count of
//! the parallel execution layer and additionally fans dataset columns out
//! over N threads. Effectiveness (PC/PQ/|C|) is byte-identical for every
//! thread count, but reported run-times contend for cores — keep the
//! default (serial columns) for faithful RT measurements.

use er::core::optimize::Optimizer;
use er::core::parallel::{self, Threads};
use er::core::schema::{text_view, SchemaMode};
use er::core::timing::format_runtime;
use er::datagen::generate;
use er_bench::harness::{run_all_methods_with, Context, MethodOutcome};
use er_bench::report::{fmt_measure_flagged, Table};
use er_bench::Settings;

/// One evaluated column of Table VII.
struct Column {
    label: String,
    cartesian: u64,
    outcomes: Vec<MethodOutcome>,
}

/// Evaluates one (dataset, schema-setting) column.
fn evaluate_column(
    profile: &er::datagen::DatasetProfile,
    mode: SchemaMode,
    label: String,
    settings: &Settings,
    verbose: bool,
) -> Column {
    let ds = generate(profile, settings.scale, settings.seed);
    let view = text_view(&ds, &mode);
    let ctx = Context {
        view: &view,
        gt: &ds.groundtruth,
        optimizer: Optimizer::new(settings.target_pc),
        resolution: settings.resolution,
        dim: settings.dim,
        seed: settings.seed,
        reps: settings.reps,
    };
    let outcomes = run_all_methods_with(&ctx, |o, elapsed| {
        if verbose {
            eprintln!(
                "   [{label}] {:<12} pc={:.3} pq={:.4} |C|={:>9.0} rt={:<9} ({} cfgs in {}) {}",
                o.method,
                o.pc,
                o.pq,
                o.candidates,
                format_runtime(o.runtime),
                o.evaluated,
                format_runtime(elapsed),
                if o.feasible { "" } else { " [below target]" },
            );
        }
    });
    Column {
        label,
        cartesian: ds.cartesian(),
        outcomes,
    }
}

/// Prints a usage error and exits with a non-zero status (instead of a
/// panic with a backtrace, which is unhelpful for a flag typo).
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: table7_main [--threads N|auto] [--scale S] [--grid full|pruned|quick] ...");
    std::process::exit(2);
}

fn main() {
    let settings = Settings::from_args();
    // `--parallel` is the legacy alias of `--threads`; it also applies
    // process-wide so the intra-method hot paths use the same count.
    let threads: usize = match settings.flags.iter().position(|f| f == "--parallel") {
        Some(pos) => {
            let v = settings
                .flags
                .get(pos + 1)
                .unwrap_or_else(|| usage_error("--parallel requires a thread count (or 'auto')"));
            let n = Threads::parse_arg(v).unwrap_or_else(|e| usage_error(&e));
            Threads::set(n);
            if n == 0 {
                Threads::get()
            } else {
                n
            }
        }
        None => settings.threads,
    };
    // Columns stay serial unless a thread count was requested explicitly;
    // the parallel layer inside each method still uses `Threads::get()`.
    let column_workers = threads.max(1);
    eprintln!(
        "Table VII sweep: scale {}, grid {:?}, target PC {}, reps {}, dim {}, threads {}",
        settings.scale,
        settings.resolution,
        settings.target_pc,
        settings.reps,
        settings.dim,
        Threads::get(),
    );

    // Enumerate the columns: schema-agnostic for every dataset, then
    // schema-based for the viable ones.
    let mut specs: Vec<(&er::datagen::DatasetProfile, SchemaMode, String)> = Vec::new();
    for mode_label in ["a", "b"] {
        for profile in &settings.datasets {
            if mode_label == "b" && !profile.schema_based_viable {
                continue;
            }
            let mode = if mode_label == "a" {
                SchemaMode::Agnostic
            } else {
                profile.schema_based_mode()
            };
            specs.push((
                profile,
                mode,
                format!("D{}{}", mode_label, &profile.id[1..]),
            ));
        }
    }

    let columns: Vec<Column> = if column_workers <= 1 {
        specs
            .into_iter()
            .map(|(profile, mode, label)| {
                eprintln!("== {label} ({} / {:?})", profile.id, mode);
                evaluate_column(profile, mode, label, &settings, true)
            })
            .collect()
    } else {
        // One chunk per column through the shared parallel layer: columns
        // are work-stolen but merged in spec order, so output ordering is
        // identical to the serial path.
        parallel::par_map_chunks_with(column_workers, &specs, 1, |_, spec| {
            let (profile, mode, label) = &spec[0];
            eprintln!("== {label} ({} / {:?})", profile.id, mode);
            let column = evaluate_column(profile, mode.clone(), label.clone(), &settings, false);
            eprintln!("== {label} done");
            column
        })
    };

    let methods: Vec<String> = columns
        .first()
        .map(|c| c.outcomes.iter().map(|o| o.method.clone()).collect())
        .unwrap_or_default();

    let matrix = |title: &str, cell: &dyn Fn(&MethodOutcome) -> String| {
        let mut header = vec!["Method".to_owned()];
        header.extend(columns.iter().map(|c| c.label.clone()));
        let mut t = Table::new(header);
        for (mi, method) in methods.iter().enumerate() {
            let mut row = vec![method.clone()];
            for col in &columns {
                row.push(cell(&col.outcomes[mi]));
            }
            t.row(row);
        }
        println!("{title}\n{}", t.render());
    };

    matrix(
        "Table VII(a): recall (PC) — '*' marks PC below the target",
        &|o| fmt_measure_flagged(o.pc, o.feasible),
    );
    matrix("Table VII(b): precision (PQ)", &|o| {
        fmt_measure_flagged(o.pq, o.feasible)
    });
    matrix("Table VII(c): run-time (RT)", &|o| {
        format_runtime(o.runtime)
    });

    // The paper's Section VI analysis: per-method mean deviation from the
    // per-setting maximum PQ, and how often each method achieves it.
    {
        let mut table = Table::new([
            "Method",
            "PQ wins",
            "Mean deviation from best PQ",
            "Mean |C| reduction vs brute force",
        ]);
        for (mi, method) in methods.iter().enumerate() {
            let mut wins = 0usize;
            let mut deviation = 0.0f64;
            let mut counted = 0usize;
            let mut reduction = 0.0f64;
            let mut reductions = 0usize;
            for col in &columns {
                let o = &col.outcomes[mi];
                if o.candidates > 0.0 {
                    reduction += 1.0 - o.candidates / col.cartesian as f64;
                    reductions += 1;
                }
                if !o.feasible {
                    continue;
                }
                let best_pq = col
                    .outcomes
                    .iter()
                    .filter(|x| x.feasible)
                    .map(|x| x.pq)
                    .fold(0.0, f64::max);
                if best_pq <= 0.0 {
                    continue;
                }
                counted += 1;
                if (o.pq - best_pq).abs() < 1e-12 {
                    wins += 1;
                }
                deviation += (best_pq - o.pq) / best_pq;
            }
            table.row([
                method.clone(),
                wins.to_string(),
                if counted == 0 {
                    "-".to_owned()
                } else {
                    format!("{:.1}%", 100.0 * deviation / counted as f64)
                },
                if reductions == 0 {
                    "-".to_owned()
                } else {
                    format!("{:.1}%", 100.0 * reduction / reductions as f64)
                },
            ]);
        }
        println!(
            "Section VI analysis: PQ winners and mean deviation from the best\n\
             feasible PQ (counting only settings where the method met the target)\n{}",
            table.render()
        );
    }

    if settings.has_flag("--candidates") {
        matrix("Table XI: candidate pairs |C|", &|o| {
            format!("{:.0}", o.candidates)
        });
    }
    // CSV export for downstream analysis: one row per (setting, method).
    if let Some(pos) = settings.flags.iter().position(|f| f == "--csv") {
        let path = settings
            .flags
            .get(pos + 1)
            .cloned()
            .unwrap_or_else(|| "table7.csv".to_owned());
        let mut csv = String::from("setting,method,pc,pq,candidates,runtime_ms,feasible,config\n");
        for col in &columns {
            for o in &col.outcomes {
                csv.push_str(&format!(
                    "{},{},{:.6},{:.6},{:.0},{:.3},{},\"{}\"\n",
                    col.label,
                    o.method,
                    o.pc,
                    o.pq,
                    o.candidates,
                    o.runtime.as_secs_f64() * 1e3,
                    o.feasible,
                    o.config.replace('"', "'"),
                ));
            }
        }
        std::fs::write(&path, csv).expect("write csv");
        eprintln!("wrote {path}");
    }
    if settings.has_flag("--configs") {
        println!("Tables VIII-X: best configuration per method and setting\n");
        for col in &columns {
            println!("-- {}", col.label);
            for o in &col.outcomes {
                println!("   {:<12} {}", o.method, o.config);
            }
            println!();
        }
    }
}
