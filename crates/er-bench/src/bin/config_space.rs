//! Regenerates the configuration-space summaries of Tables III, IV and V:
//! the number of configurations each method's grid spans, at the paper's
//! full resolution and at the harness's pruned/quick resolutions.

use er::blocking::WorkflowKind;
use er::core::optimize::GridResolution;
use er::dense::{grid as dense_grid, EmbeddingConfig};
use er::sparse::{epsilon_grid, knn_grid};
use er_bench::Table;

const RESOLUTIONS: [GridResolution; 3] = [
    GridResolution::Full,
    GridResolution::Pruned,
    GridResolution::Quick,
];

fn row(table: &mut Table, name: &str, count: impl Fn(GridResolution) -> usize) {
    let counts: Vec<String> = RESOLUTIONS.iter().map(|&r| count(r).to_string()).collect();
    table.row([name, &counts[0], &counts[1], &counts[2]]);
}

fn main() {
    let emb = EmbeddingConfig::default();
    let mut table = Table::new(["Method", "Full", "Pruned", "Quick"]);

    // Table III: blocking workflows.
    for kind in WorkflowKind::ALL {
        row(&mut table, &format!("{} workflow", kind.acronym()), |r| {
            kind.grid(r).len()
        });
    }
    // Table IV: sparse NN methods.
    row(&mut table, "e-Join", |r| {
        epsilon_grid(r).iter().map(Vec::len).sum()
    });
    row(&mut table, "kNN-Join", |r| {
        knn_grid(r).iter().map(Vec::len).sum()
    });
    // Table V: dense NN methods.
    row(&mut table, "MH-LSH", |r| {
        dense_grid::minhash_grid(r, 0).len()
    });
    row(&mut table, "HP-LSH", |r| {
        dense_grid::hyperplane_grid(r, emb, 0)
            .iter()
            .map(Vec::len)
            .sum()
    });
    row(&mut table, "CP-LSH", |r| {
        dense_grid::crosspolytope_grid(r, emb, 0)
            .iter()
            .map(Vec::len)
            .sum()
    });
    row(&mut table, "FAISS", |r| {
        dense_grid::flat_combos(r, emb).len() * dense_grid::k_sweep(r).len()
    });
    row(&mut table, "SCANN", |r| {
        dense_grid::scann_combos(r, emb, 0).len() * dense_grid::k_sweep(r).len()
    });
    row(&mut table, "DeepBlocker", |r| {
        dense_grid::deepblocker_combos(r, emb, 0).len() * dense_grid::k_sweep(r).len()
    });

    println!("Configuration-space sizes per method (Tables III-V)\n");
    println!("{}", table.render());
}
