//! Regenerates Figures 7–9: the run-time breakdown of every filtering
//! method — block building / purging / filtering / comparison cleaning for
//! blocking workflows, pre-processing / indexing / querying for NN methods.
//!
//! Representative fixed configurations (the baselines plus mid-grid
//! settings) are used, as the breakdown shape — not the absolute time — is
//! the figure's content.

use er::blocking::BlockingWorkflow;
use er::core::schema::{text_view, SchemaMode};
use er::core::timing::format_runtime;
use er::core::Filter;
use er::datagen::generate;
use er::dense::{
    CrossPolytopeLsh, DeepBlocker, DeepBlockerConfig, EmbeddingConfig, FlatKnn, HyperplaneLsh,
    MinHashLsh, PartitionedKnn, Scoring,
};
use er::sparse::{dknn_baseline, EpsilonJoin, KnnJoin, RepresentationModel, SimilarityMeasure};
use er_bench::{Settings, Table};

fn main() {
    let settings = Settings::from_args();
    let embedding = EmbeddingConfig {
        dim: settings.dim,
        ..Default::default()
    };
    let c3g = RepresentationModel::parse("C3G").expect("C3G");

    for (fig, mode) in [
        ("Figures 7+8: schema-agnostic", SchemaMode::Agnostic),
        ("Figure 9: schema-based", SchemaMode::BestAttribute),
    ] {
        println!("{fig}\n");
        for profile in &settings.datasets {
            if mode == SchemaMode::BestAttribute && !profile.schema_based_viable {
                continue;
            }
            let ds = generate(profile, settings.scale, settings.seed);
            let effective_mode = if mode == SchemaMode::BestAttribute {
                profile.schema_based_mode()
            } else {
                mode.clone()
            };
            let view = text_view(&ds, &effective_mode);

            let filters: Vec<(&str, Box<dyn Filter>)> = vec![
                ("PBW", Box::new(BlockingWorkflow::pbw())),
                ("DBW", Box::new(BlockingWorkflow::dbw())),
                (
                    "e-Join",
                    Box::new(EpsilonJoin {
                        cleaning: true,
                        model: c3g,
                        measure: SimilarityMeasure::Cosine,
                        threshold: 0.4,
                    }),
                ),
                (
                    "kNN-Join",
                    Box::new(KnnJoin {
                        cleaning: true,
                        model: c3g,
                        measure: SimilarityMeasure::Cosine,
                        k: 1,
                        reversed: ds.e1.len() < ds.e2.len(),
                    }),
                ),
                ("DkNN", Box::new(dknn_baseline(ds.e1.len(), ds.e2.len()))),
                (
                    "MH-LSH",
                    Box::new(MinHashLsh {
                        cleaning: false,
                        shingle_k: 3,
                        bands: 32,
                        rows: 8,
                        seed: settings.seed,
                    }),
                ),
                (
                    "HP-LSH",
                    Box::new(HyperplaneLsh {
                        cleaning: true,
                        tables: 16,
                        hashes: 10,
                        probes: 8,
                        embedding,
                        seed: settings.seed,
                    }),
                ),
                (
                    "CP-LSH",
                    Box::new(CrossPolytopeLsh {
                        cleaning: true,
                        tables: 16,
                        hashes: 1,
                        last_cp_dim: 64,
                        probes: 4,
                        embedding,
                        seed: settings.seed,
                    }),
                ),
                (
                    "FAISS",
                    Box::new(FlatKnn {
                        cleaning: true,
                        k: 5,
                        reversed: ds.e1.len() < ds.e2.len(),
                        embedding,
                    }),
                ),
                (
                    "SCANN",
                    Box::new(PartitionedKnn {
                        cleaning: true,
                        k: 5,
                        reversed: ds.e1.len() < ds.e2.len(),
                        scoring: Scoring::AsymmetricHashing,
                        metric: er::dense::Metric::L2Sq,
                        probe_fraction: 0.25,
                        embedding,
                        seed: settings.seed,
                    }),
                ),
                (
                    "DeepBlocker",
                    Box::new(DeepBlocker::new(DeepBlockerConfig {
                        cleaning: true,
                        k: 5,
                        reversed: ds.e1.len() < ds.e2.len(),
                        embedding,
                        hidden_dim: (settings.dim / 2).max(2),
                        epochs: 10,
                        seed: settings.seed,
                    })),
                ),
            ];

            let mut table = Table::new([
                "Method",
                "build",
                "purge",
                "filter",
                "clean",
                "preprocess",
                "index",
                "query",
                "total",
            ]);
            for (name, filter) in filters {
                let out = filter.run(&view);
                let cell = |phase: &str| -> String {
                    match out.breakdown.get(phase) {
                        Some(d) => {
                            format!("{:.0}%", 100.0 * out.breakdown.fraction(phase)).to_string()
                                + &format!(" ({})", format_runtime(d))
                        }
                        None => "-".to_owned(),
                    }
                };
                table.row([
                    name.to_owned(),
                    cell("build"),
                    cell("purge"),
                    cell("filter"),
                    cell("clean"),
                    cell("preprocess"),
                    cell("index"),
                    cell("query"),
                    format_runtime(out.breakdown.total()),
                ]);
            }
            println!(
                "-- {} ({})\n{}",
                profile.id,
                profile.sources,
                table.render()
            );
        }
    }
    println!(
        "Expected shapes (paper Appendix C): block cleaning is a tiny share of blocking\n\
         workflows; indexing is the cheapest NN phase; pre-processing dominates the dense\n\
         methods (embedding + training), most extremely for DeepBlocker."
    );
}
